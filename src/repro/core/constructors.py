"""The paper's constructors: µ, γ, ∆ (schema cast), ▽ (column cast).

These map between relations and matrices (paper §3, §4.1) and are the formal
vocabulary the relational matrix operations are defined with.  The engine's
fast path (:mod:`repro.core.context`) fuses them; the explicit versions here
are the specification and are exercised directly by the tests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bat.bat import BAT, DataType
from repro.bat.sorting import order_by, require_key
from repro.errors import OrderSchemaError, RmaError, SchemaError
from repro.linalg.matrix import Columns
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema


def mu(relation: Relation, order_names: Sequence[str],
       take_names: Sequence[str]) -> Columns:
    """Matrix constructor µ (Definition 4.2), numeric variant.

    Returns the values of ``take_names`` sorted by ``order_names`` as float
    columns — the matrix ``µ_take(r)`` with the order imposed by the order
    schema.
    """
    bats = mu_bats(relation, order_names, take_names)
    return [bat.as_float() for bat in bats]


def matrix_constructor(relation: Relation, order_names: Sequence[str],
                       take_names: Sequence[str]) -> np.ndarray:
    """µ as a dense array (convenient for reducibility checks, Def. 6.1)."""
    columns = mu(relation, order_names, take_names)
    return np.column_stack(columns) if columns else np.empty((0, 0))


def mu_bats(relation: Relation, order_names: Sequence[str],
            take_names: Sequence[str]) -> list[BAT]:
    """µ over BATs of any type (used for order parts)."""
    if not order_names:
        raise OrderSchemaError("order schema must not be empty")
    positions = order_by(relation.bats(order_names))
    return [relation.column(name).fetch(positions) for name in take_names]


def gamma(columns: Sequence[BAT], names: Sequence[str]) -> Relation:
    """Relation constructor γ (Definition 4.4).

    Combines aligned columns and a schema into a relation.  The paper
    requires the matrix rows to be unique; we follow the implementation
    (Alg. 1's Concat) and do not re-verify uniqueness here — the inputs
    are produced from keyed order schemas, which guarantees it.
    """
    if len(columns) != len(names):
        raise SchemaError(
            f"relation constructor got {len(columns)} columns for "
            f"{len(names)} attribute names")
    schema = Schema(Attribute(str(name), col.dtype)
                    for name, col in zip(names, columns))
    return Relation(schema, list(columns))


def schema_cast(names: Sequence[str]) -> BAT:
    """Schema cast ∆U: a single string column holding attribute names.

    (Equation 4: creates a one-column matrix from the names of U.)
    """
    if not names:
        raise RmaError("schema cast of an empty attribute list")
    return BAT(DataType.STR, np.array([str(n) for n in names], dtype=object))


def column_cast(relation: Relation, order_name: str,
                validate: bool = True) -> list[str]:
    """Column cast ▽U: sorted values of a key attribute as names.

    (Equation 2: generates a schema from the values of a single-attribute
    key.)  Used by ``tra``, ``usv`` and ``opd`` to name result columns.
    """
    bat = relation.column(order_name)
    if bat.is_nil().any():
        raise RmaError("column cast over nil values cannot name attributes")
    positions = np.argsort(bat.tail, kind="stable")
    if validate:
        require_key([bat], [order_name], positions)
    sorted_bat = bat.fetch(positions)
    return [_name_of(v) for v in sorted_bat.python_values()]


def _name_of(value) -> str:
    if value is None:
        raise RmaError("column cast over nil values cannot name attributes")
    return str(value)


def concat_matrices(*column_lists: Columns) -> Columns:
    """Matrix concatenation m ⊞ n (Equation 3): column lists side by side."""
    out: Columns = []
    n = None
    for columns in column_lists:
        for col in columns:
            if n is None:
                n = len(col)
            elif len(col) != n:
                raise RmaError(
                    "matrix concatenation requires equal row counts")
            out.append(col)
    return out
