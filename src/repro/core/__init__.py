"""Relational matrix algebra (RMA) — the paper's contribution.

RMA extends the relational algebra with the 19 relational matrix operations
of Table 2.  Every operation takes relations plus *order schemas* (``BY``
attribute lists), computes the base result of the corresponding matrix
operation over the application part, and morphs contextual information into
a result relation with row and column origins.

>>> from repro.core import inv
>>> from repro.relational import Relation
>>> rating = Relation.from_rows(
...     ["User", "Balto", "Heat"],
...     [("Ann", 2.0, 1.0), ("Tom", 1.0, 1.0)])
>>> print(inv(rating, by="User").names)
['User', 'Balto', 'Heat']
"""

from repro.core.config import RmaConfig, default_config, set_default_config
from repro.core.constructors import (
    column_cast,
    gamma,
    matrix_constructor,
    mu,
    schema_cast,
)
from repro.core.algebra import (
    add,
    chf,
    cpd,
    det,
    dsv,
    emu,
    evc,
    evl,
    inv,
    mmu,
    opd,
    qqr,
    rma_operation,
    rnk,
    rqr,
    sadd,
    sdiv,
    smul,
    sol,
    ssub,
    sub,
    tra,
    usv,
    vsv,
)
from repro.core.origins import column_origin, row_origin, verify_origins

__all__ = [
    "RmaConfig",
    "default_config",
    "set_default_config",
    "mu",
    "gamma",
    "matrix_constructor",
    "schema_cast",
    "column_cast",
    "rma_operation",
    "add", "sub", "emu", "mmu", "opd", "cpd", "tra", "sol", "inv",
    "evc", "evl", "qqr", "rqr", "dsv", "usv", "vsv", "det", "rnk", "chf",
    "sadd", "ssub", "smul", "sdiv",
    "row_origin", "column_origin", "verify_origins",
]
