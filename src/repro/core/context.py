"""Split, sort, morph: contextual-information handling (paper Alg. 1, §8.1).

A relational matrix operation splits each argument relation into order part
and application part, establishes the row order the matrix kernel needs, and
keeps the order part aligned with it so the merge step can attach row
origins.  Sorting is the expensive part, and the paper's §8.1 optimizations
avoid it whenever the operation allows:

* *invariant* operations (``rnk``, ``rqr``, ``dsv``, ``vsv``) skip sorting
  entirely — their base result does not depend on row order;
* *equivariant* operations (``qqr``, ``usv``; first argument of ``mmu`` and
  ``opd``) skip sorting — permuted input rows only permute result rows, and
  the attached order part still identifies them;
* *relative* (element-wise ``add``/``sub``/``emu``, plus ``cpd``/``sol``)
  leave the first relation in storage order and align the second to it with
  one composed permutation — only the second relation is fetchjoined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.bat.bat import BAT, DataType
from repro.bat.properties import properties_enabled
from repro.bat.sorting import key_violation, order_by, rank_of, require_key
from repro.core.config import ParallelConfig, RmaConfig
from repro.engine.parallel import (
    parallel_astype_float,
    parallel_gather,
    parallel_gather_columns,
)
from repro.engine.pool import run_tasks
from repro.errors import (
    ApplicationSchemaError,
    OrderSchemaError,
    RmaError,
)
from repro.linalg.matrix import Columns
from repro.opspec import OpSpec, SortClass
from repro.relational.relation import Relation


@dataclass
class PreparedInput:
    """One argument relation, split and ordered for the kernel.

    ``order_bats`` are the order-part columns in *result row order* (the
    order the kernel sees), so the merge step can concatenate them directly
    with base-result columns.  ``app_columns`` is the matrix µ as float
    columns in the same row order.
    """

    relation: Relation
    order_names: list[str]
    app_names: list[str]
    order_bats: list[BAT]
    app_columns: Columns
    sorted_storage: bool  # True when rows were physically sorted
    validated: bool = False  # True when the order schema passed key checks

    @property
    def shape(self) -> tuple[int, int]:
        return (self.relation.nrows, len(self.app_names))


def _as_names(by: str | Sequence[str]) -> list[str]:
    if isinstance(by, str):
        return [by]
    names = list(by)
    if not names:
        raise OrderSchemaError("order schema must not be empty")
    return names


def split_schema(relation: Relation, by: str | Sequence[str],
                 spec: OpSpec, argument: int) -> tuple[list[str], list[str]]:
    """Split R into order schema U and application schema U-bar.

    Validates the paper's preconditions: the order schema attributes exist,
    the application schema is non-empty and numeric, and operations that use
    the column cast have a single-attribute order schema.
    """
    order_names = _as_names(by)
    seen = set()
    for name in order_names:
        if name in seen:
            raise OrderSchemaError(
                f"duplicate attribute {name!r} in order schema")
        seen.add(name)
        if name not in relation.schema:
            raise OrderSchemaError(
                f"order attribute {name!r} not in schema "
                f"({', '.join(relation.names)})")
    app_names = relation.schema.complement(order_names)
    if not app_names:
        raise ApplicationSchemaError(
            f"{spec.name}: application schema is empty — every attribute "
            "is in the order schema")
    for name in app_names:
        if not relation.schema.dtype(name).is_numeric:
            raise ApplicationSchemaError(
                f"{spec.name}: application attribute {name!r} has "
                f"non-numeric type {relation.schema.dtype(name).value}; "
                "drop it with a projection or add it to the order schema")
    if argument in spec.order_card_one and len(order_names) != 1:
        raise OrderSchemaError(
            f"{spec.name}: the column cast requires a single-attribute "
            f"order schema for argument {argument}, got {len(order_names)}")
    return order_names, app_names


def _as_float(bat: BAT, parallel: ParallelConfig | None) -> np.ndarray:
    """``bat.as_float()`` with the INT→float cast run per-morsel."""
    if parallel is None or bat.dtype is not DataType.INT:
        return bat.as_float()
    return bat.as_float(
        astype=lambda tail: parallel_astype_float(tail, parallel))


def _parallel_of(config: RmaConfig) -> ParallelConfig | None:
    parallel = config.parallel
    return parallel if parallel.active() else None


def _prepare_arguments(thunks, config: RmaConfig) -> list:
    """Run independent per-argument prepare thunks, pooled when enabled.

    Error order matches the serial loop: the caller runs the first thunk
    itself, and its exception wins over later arguments' (see
    :func:`repro.engine.pool.run_tasks`).
    """
    if _parallel_of(config) is not None and len(thunks) > 1:
        return run_tasks(thunks)
    return [thunk() for thunk in thunks]


def _prepare_sorted(relation: Relation, order_names: list[str],
                    app_names: list[str], validate: bool,
                    config: RmaConfig) -> PreparedInput:
    """FULL sorting: argsort the order part, fetchjoin everything.

    With the property layer on, the permutation and key check come from the
    relation's order cache (computed once per relation and order schema)
    and the application part is gathered from each column's cached float
    view instead of fetch-then-cast; the morsel engine chunks those
    gathers across the worker pool.
    """
    order_bats = relation.bats(order_names)
    if config.use_properties:
        parallel = _parallel_of(config)
        info = relation.order_info(order_names)
        # With the engine on, force the (possibly cold) argsort first so
        # it runs chunk-parallel; the key check then reuses the cached
        # order.  Serially the check goes first — it may decide from
        # cached property bits without ever sorting.
        positions = info.positions_with(parallel) \
            if parallel is not None else None
        if validate and not info.is_key:
            raise key_violation(order_names)
        if positions is None:
            positions = info.positions
        app_columns = parallel_gather_columns(
            [_as_float(relation.column(n), parallel) for n in app_names],
            positions, parallel)
    else:
        positions = order_by(order_bats)
        if validate:
            require_key(order_bats, order_names, positions)
        app_columns = [relation.column(n).fetch(positions).as_float()
                       for n in app_names]
    sorted_order = [bat.fetch(positions, positions_key=True)
                    for bat in order_bats]
    if sorted_order:
        _seed_major_key_sorted(sorted_order[0])
    return PreparedInput(relation, order_names, app_names, sorted_order,
                         app_columns, sorted_storage=True,
                         validated=validate)


def _seed_major_key_sorted(bat: BAT) -> None:
    """After a lexicographic sort, the major key column is sorted — except
    in raw-encoding terms for DBL with NaN (argsort puts NaN last, the
    ``tsorted`` contract is nil-free only), so that case is not seeded
    unless the column is known nil-free.  STR columns are safe here:
    ``order_by`` already rejected nil strings.
    """
    if bat.dtype is not DataType.DBL or bat.cached_prop("tnonil"):
        bat._seed_props(tsorted=True)


def _prepare_unsorted(relation: Relation, order_names: list[str],
                      app_names: list[str], validate: bool,
                      config: RmaConfig) -> PreparedInput:
    """No sorting: storage order is the kernel order."""
    order_bats = relation.bats(order_names)
    if validate:
        if config.use_properties:
            if not relation.order_info(order_names).is_key:
                raise key_violation(order_names)
        else:
            require_key(order_bats, order_names)
    parallel = _parallel_of(config) if config.use_properties else None
    app_columns = [_as_float(relation.column(n), parallel)
                   for n in app_names]
    return PreparedInput(relation, order_names, app_names, order_bats,
                         app_columns, sorted_storage=False,
                         validated=validate)


def _needs_key(spec: OpSpec, config: RmaConfig) -> bool:
    """Whether the order schema must be validated as a key.

    Order-invariant operations (``rnk``, ``rqr``, ``dsv``, ``vsv``) neither
    use the row order nor attach row origins from the order part, so the key
    requirement does not apply — the paper's own Fig. 9 example
    ``rnk_H(π_{H,W}(r))`` orders by the non-key attribute H.
    """
    return config.validate_keys and spec.sort_class is not SortClass.INVARIANT


def prepare_unary(relation: Relation, by: str | Sequence[str],
                  spec: OpSpec, config: RmaConfig) -> PreparedInput:
    order_names, app_names = split_schema(relation, by, spec, argument=1)
    validate = _needs_key(spec, config)
    if not config.optimize_sorting or spec.sort_class is SortClass.FULL:
        return _prepare_sorted(relation, order_names, app_names, validate,
                               config)
    # INVARIANT and EQUIVARIANT unary operations skip sorting (§8.1).
    return _prepare_unsorted(relation, order_names, app_names, validate,
                             config)


def prepare_binary(r: Relation, r_by: str | Sequence[str], s: Relation,
                   s_by: str | Sequence[str], spec: OpSpec,
                   config: RmaConfig) -> tuple[PreparedInput, PreparedInput]:
    r_order, r_app = split_schema(r, r_by, spec, argument=1)
    s_order, s_app = split_schema(s, s_by, spec, argument=2)
    _check_binary_compat(r, r_order, r_app, s, s_order, s_app, spec)
    use_props = config.use_properties

    if not config.optimize_sorting or spec.sort_class is SortClass.FULL:
        # The two argument preparations are independent (order caches are
        # per relation and thread-safe): with the morsel engine on their
        # argsorts and key checks run concurrently on the pool.
        prepared = _prepare_arguments(
            [lambda: _prepare_sorted(r, r_order, r_app,
                                     config.validate_keys, config),
             lambda: _prepare_sorted(s, s_order, s_app,
                                     config.validate_keys, config)],
            config)
        return prepared[0], prepared[1]

    if spec.sort_class is SortClass.EQUIVARIANT:
        # First argument keeps storage order; second must still be sorted
        # (its rows align with the first argument's *columns*).
        prepared = _prepare_arguments(
            [lambda: _prepare_unsorted(r, r_order, r_app,
                                       config.validate_keys, config),
             lambda: _prepare_sorted(s, s_order, s_app,
                                     config.validate_keys, config)],
            config)
        return prepared[0], prepared[1]

    # RELATIVE: align s's rows to r's storage order with one composed
    # permutation; r is never fetchjoined (paper: "only the order part of
    # the second relation requires sorting").
    r_order_bats = r.bats(r_order)
    s_order_bats = s.bats(s_order)
    if use_props:
        parallel = _parallel_of(config)
        r_info = r.order_info(r_order)
        s_info = s.order_info(s_order)
        if parallel is not None:
            # Force the two sides' sort work concurrently (cached
            # afterwards); the key checks below then reuse the orders.
            # The first thunk runs on the calling thread, so its argsorts
            # additionally chunk across the pool (inside a worker the
            # parallel primitives inline to serial).
            run_tasks([lambda: r_info.ranks_with(parallel),
                       lambda: s_info.positions_with(parallel)])
        if config.validate_keys:
            if not r_info.is_key:
                raise key_violation(r_order)
            if not s_info.is_key:
                raise key_violation(s_order)
        aligned = parallel_gather(s_info.positions,
                                  r_info.ranks_with(parallel), parallel)
        s_app_columns = parallel_gather_columns(
            [_as_float(s.column(n), parallel) for n in s_app],
            aligned, parallel)
    else:
        parallel = None
        r_positions = order_by(r_order_bats)
        if config.validate_keys:
            require_key(r_order_bats, r_order, r_positions)
        s_positions = order_by(s_order_bats)
        if config.validate_keys:
            require_key(s_order_bats, s_order, s_positions)
        aligned = s_positions[rank_of(r_positions)]
        s_app_columns = [s.column(n).fetch(aligned).as_float()
                         for n in s_app]
    prepared_r = PreparedInput(
        r, r_order, r_app, r_order_bats,
        [_as_float(r.column(n), parallel) for n in r_app],
        sorted_storage=False,
        validated=config.validate_keys)
    prepared_s = PreparedInput(
        s, s_order, s_app,
        [bat.fetch(aligned, positions_key=True) for bat in s_order_bats],
        s_app_columns, sorted_storage=False,
        validated=config.validate_keys)
    return prepared_r, prepared_s


class FusionFallback(Exception):
    """Internal: fused-execution preconditions do not hold.

    Raised by :func:`prepare_fused` (and callers) when a fused element-wise
    chain cannot be executed as one pass — the executor then replays the
    chain step by step, which either produces the identical unfused result
    or raises the exact error the unfused pipeline would have raised.
    Never user-visible.
    """


def prepare_fused(relations: Sequence[Relation],
                  bys: Sequence[Sequence[str]],
                  config: RmaConfig) -> list[PreparedInput]:
    """Prepare all leaves of a fused element-wise chain in one pass.

    Every leaf is split into order and application part and aligned into the
    *first* leaf's storage order.  Because each chain step keeps its first
    argument's storage order (RELATIVE class) and each intermediate's sort
    by its combined order schema equals its first leaf's sort by its own
    order schema (keyed order schemas: a stable lexicographic sort never
    reaches the tie-breakers), the alignment of leaf ``i`` composes to the
    single permutation ``positions_i[ranks_0]`` — the same relative-sorting
    rule :func:`prepare_binary` applies per step, collapsed over the chain.

    Raises :class:`FusionFallback` when any precondition cannot be
    established cheaply:

    * the per-relation order cache is unavailable (property layer off),
    * cardinalities or application-schema widths disagree,
    * order schemas overlap or contain unknown/non-numeric splits,
    * a leaf's order schema is not a verified key (with duplicate keys the
      per-step sorts are not derivable from the leaf sorts, so only the
      step-by-step path is faithful).
    """
    if not (config.use_properties and properties_enabled()
            and config.optimize_sorting):
        raise FusionFallback("property layer or sorting optimization off")
    if not relations or len(relations) != len(bys):
        raise FusionFallback("malformed fused chain")
    n = relations[0].nrows
    seen: set[str] = set()
    splits: list[tuple[list[str], list[str]]] = []
    for relation, by in zip(relations, bys):
        if relation.nrows != n:
            raise FusionFallback("cardinality mismatch")
        order_names = list(by)
        if not order_names:
            raise FusionFallback("empty order schema")
        for name in order_names:
            if name in seen or name not in relation.schema:
                raise FusionFallback("order schema overlap or unknown")
            seen.add(name)
        app_names = relation.schema.complement(order_names)
        if not app_names:
            raise FusionFallback("empty application schema")
        if any(not relation.schema.dtype(a).is_numeric for a in app_names):
            raise FusionFallback("non-numeric application attribute")
        splits.append((order_names, app_names))
    width = len(splits[0][1])
    if any(len(app) != width for _, app in splits):
        raise FusionFallback("application schema widths differ")

    parallel = _parallel_of(config)
    infos = [relation.order_info(order_names)
             for relation, (order_names, _) in zip(relations, splits)]
    if parallel is not None and len(infos) > 1:
        # Per-leaf argsorts and key checks are independent; force them
        # concurrently on the pool (the per-relation order caches are
        # thread-safe, so each computes exactly once).  The first leaf
        # runs on the calling thread, where the argsort itself chunks
        # across the pool.
        run_tasks([lambda info=info: (info.positions_with(parallel),
                                      info.is_key)
                   for info in infos])
    for (order_names, _), info in zip(splits, infos):
        if not info.is_key:
            raise FusionFallback("order schema is not a key")

    ranks = infos[0].ranks_with(parallel) if len(relations) > 1 else None

    def prepare_leaf(i: int) -> PreparedInput:
        relation, (order_names, app_names) = relations[i], splits[i]
        if i == 0:
            order_bats = relation.bats(order_names)
            app_columns = [_as_float(relation.column(a), parallel)
                           for a in app_names]
        else:
            aligned = parallel_gather(infos[i].positions, ranks, parallel)
            order_bats = [bat.fetch(aligned, positions_key=True)
                          for bat in relation.bats(order_names)]
            app_columns = parallel_gather_columns(
                [_as_float(relation.column(a), parallel)
                 for a in app_names],
                aligned, parallel)
        return PreparedInput(
            relation, order_names, app_names, order_bats, app_columns,
            sorted_storage=False, validated=True)

    # Leaf alignments are independent too: ship them to the pool as
    # whole-leaf tasks (the cheap first leaf runs on the caller); the
    # chunked gathers inside inline when already on a worker.
    if parallel is not None and len(relations) > 1:
        return run_tasks([lambda i=i: prepare_leaf(i)
                          for i in range(len(relations))])
    return [prepare_leaf(i) for i in range(len(relations))]


def _check_binary_compat(r: Relation, r_order: list[str], r_app: list[str],
                         s: Relation, s_order: list[str], s_app: list[str],
                         spec: OpSpec) -> None:
    """Schema-level preconditions of binary operations (paper Table 2)."""
    if spec.same_shape:
        # add/sub/emu: union-compatible application schemas,
        # non-overlapping order schemas (the result carries both).
        if len(r_app) != len(s_app):
            raise ApplicationSchemaError(
                f"{spec.name}: application schemas must be union "
                f"compatible, got {len(r_app)} and {len(s_app)} attributes")
        overlap = set(r_order) & set(s_order)
        if overlap:
            raise OrderSchemaError(
                f"{spec.name}: order schemas overlap on "
                f"{sorted(overlap)}; rename one side first")
        if r.nrows != s.nrows:
            raise RmaError(
                f"{spec.name}: relations have different cardinalities "
                f"({r.nrows} vs {s.nrows})")
    if spec.inner_dims and len(r_app) != s.nrows:
        raise RmaError(
            f"{spec.name}: first application schema has {len(r_app)} "
            f"attributes but second relation has {s.nrows} tuples")
    if spec.same_rows and r.nrows != s.nrows:
        raise RmaError(
            f"{spec.name}: relations have different cardinalities "
            f"({r.nrows} vs {s.nrows})")
    if spec.same_cols and len(r_app) != len(s_app):
        raise ApplicationSchemaError(
            f"{spec.name}: application schemas must have the same width, "
            f"got {len(r_app)} and {len(s_app)}")


def sorted_order_values(prepared: PreparedInput) -> list[str]:
    """▽U for a prepared input: sorted values of the single order attribute.

    Cheap even in the no-sort modes: only the (single) order column is
    argsorted, never the application part.
    """
    if len(prepared.order_names) != 1:
        raise OrderSchemaError(
            "column cast requires a single-attribute order schema")
    bat = prepared.order_bats[0]
    if prepared.sorted_storage:
        values = bat.python_values()
    elif properties_enabled() and bat.tsorted:
        values = bat.python_values()
    elif (properties_enabled()
          and bat is prepared.relation.column(prepared.order_names[0])):
        # Storage-order column: reuse (and populate) the relation's order
        # cache instead of argsorting on every call.
        positions = prepared.relation.order_info(
            prepared.order_names[:1]).positions
        values = bat.fetch(positions, positions_key=True).python_values()
    else:
        positions = np.argsort(bat.tail, kind="stable")
        values = bat.fetch(positions).python_values()
    out = []
    for value in values:
        if value is None:
            raise RmaError("column cast over nil values")
        out.append(str(value))
    return out
