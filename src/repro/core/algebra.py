"""Public RMA operations (paper Table 2).

Each function wraps :func:`repro.core.ops.execute_rma` for one operation.
Argument conventions are shared:

* ``r``/``s``       — argument relations;
* ``by``/``s_by``   — order schemas (attribute name or list of names); the
  attributes must form a key of their relation;
* ``config``        — optional :class:`~repro.core.config.RmaConfig`.

The remaining attributes form the application schema the matrix kernel is
applied to; they must be numeric.

These functions execute *eagerly*, one operation at a time.  Pipelines that
chain several operations (or repeat a subexpression) get plan-level
optimization — common-subexpression elimination, order-aware join planning
and warm order caches on derived relations — by building the same calls
lazily through :mod:`repro.plan.lazy`::

    from repro.plan.lazy import scan
    beta = (scan(xtx).rma("inv", by="C")
            .rma("mmu", by="C", other=xty, other_by="C")
            .collect())

Results are bit-identical between the two styles; the lazy path runs on the
shared plan executor (:mod:`repro.plan.physical`).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import RmaConfig
from repro.core.ops import execute_rma
from repro.relational.relation import Relation

By = str | Sequence[str]


def rma_operation(name: str, r: Relation, by: By,
                  s: Relation | None = None, s_by: By | None = None,
                  config: RmaConfig | None = None,
                  scalar: float | None = None) -> Relation:
    """Run an operation by name (used by the plan executor)."""
    return execute_rma(name, r, by, s, s_by, config, scalar=scalar)


# -- element-wise (shape type (r*, c*)) -------------------------------------

def add(r: Relation, by: By, s: Relation, s_by: By,
        config: RmaConfig | None = None) -> Relation:
    """Matrix addition over relations: ``add_{U;V}(r, s)``.

    Result schema is ``U ∘ V ∘ U-bar``: both order parts plus the sums named
    by ``r``'s application schema.  Rows are matched positionally after
    ordering each relation by its order schema.
    """
    return execute_rma("add", r, by, s, s_by, config)


def sub(r: Relation, by: By, s: Relation, s_by: By,
        config: RmaConfig | None = None) -> Relation:
    """Matrix subtraction over relations (see :func:`add`)."""
    return execute_rma("sub", r, by, s, s_by, config)


def emu(r: Relation, by: By, s: Relation, s_by: By,
        config: RmaConfig | None = None) -> Relation:
    """Element-wise multiplication over relations (see :func:`add`)."""
    return execute_rma("emu", r, by, s, s_by, config)


# -- scalar variants (kernel-program layer, not part of Table 2) ---------------

def sadd(r: Relation, by: By, value: float,
         config: RmaConfig | None = None) -> Relation:
    """Add a constant to every application value: ``sadd_{U}(r, c)``.

    Result schema is ``U ∘ U-bar`` with rows in ``r``'s storage order (the
    order part is attached verbatim).  Inside lazy pipelines scalar steps
    fuse into the surrounding element-wise chain as a single kernel step.
    """
    return execute_rma("sadd", r, by, config=config, scalar=value)


def ssub(r: Relation, by: By, value: float,
         config: RmaConfig | None = None) -> Relation:
    """Subtract a constant from every application value (see :func:`sadd`)."""
    return execute_rma("ssub", r, by, config=config, scalar=value)


def smul(r: Relation, by: By, value: float,
         config: RmaConfig | None = None) -> Relation:
    """Multiply every application value by a constant (see :func:`sadd`)."""
    return execute_rma("smul", r, by, config=config, scalar=value)


# -- products ----------------------------------------------------------------

def mmu(r: Relation, by: By, s: Relation, s_by: By,
        config: RmaConfig | None = None) -> Relation:
    """Matrix multiplication ``mmu_{U;V}(r, s)``; shape type (r1, c2).

    The application part of ``r`` (n x k) is multiplied with the application
    part of ``s`` (k x m): ``r``'s application schema width must equal
    ``s``'s cardinality.  Result schema: ``U ∘ V-bar``.
    """
    return execute_rma("mmu", r, by, s, s_by, config)


def opd(r: Relation, by: By, s: Relation, s_by: By,
        config: RmaConfig | None = None) -> Relation:
    """Outer product ``opd_{U;V}(r, s) = A·Bᵀ``; shape type (r1, r2).

    Result columns are named by the sorted values of ``s``'s (single)
    order attribute (column cast ▽V).
    """
    return execute_rma("opd", r, by, s, s_by, config)


def cpd(r: Relation, by: By, s: Relation, s_by: By,
        config: RmaConfig | None = None) -> Relation:
    """Cross product ``cpd_{U;V}(r, s) = Aᵀ·B``; shape type (c1, c2).

    The result has a context attribute ``C`` holding ``r``'s application
    schema names and one column per attribute of ``s``'s application schema.
    Passing the same relation and order schema twice computes the symmetric
    ``AᵀA`` via the dsyrk-style fast path.
    """
    return execute_rma("cpd", r, by, s, s_by, config)


def sol(r: Relation, by: By, s: Relation, s_by: By,
        config: RmaConfig | None = None) -> Relation:
    """Least-squares solve of ``A·x = b``; shape type (c1, c2).

    ``r`` holds the coefficient matrix, ``s`` the right-hand side(s); both
    are ordered by their order schemas and matched positionally.
    """
    return execute_rma("sol", r, by, s, s_by, config)


# -- unary --------------------------------------------------------------------

def tra(r: Relation, by: By, config: RmaConfig | None = None) -> Relation:
    """Transpose; shape type (c1, r1).

    Result attribute ``C`` holds the application schema names; the remaining
    attributes are named by the sorted values of the single order attribute
    (column cast), so ``tra`` requires ``|U| = 1``.
    """
    return execute_rma("tra", r, by, config=config)


def inv(r: Relation, by: By, config: RmaConfig | None = None) -> Relation:
    """Matrix inversion; shape type (r1, c1); square application part."""
    return execute_rma("inv", r, by, config=config)


def evc(r: Relation, by: By, config: RmaConfig | None = None) -> Relation:
    """Eigenvectors (columns sorted by decreasing |eigenvalue|);
    shape type (r1, c1); square application part."""
    return execute_rma("evc", r, by, config=config)


def evl(r: Relation, by: By, config: RmaConfig | None = None) -> Relation:
    """Eigenvalues as a single column named ``evl``; shape type (r1, 1)."""
    return execute_rma("evl", r, by, config=config)


def chf(r: Relation, by: By, config: RmaConfig | None = None) -> Relation:
    """Cholesky factorization (upper factor, like R's ``chol``);
    shape type (r1, c1); symmetric positive-definite application part."""
    return execute_rma("chf", r, by, config=config)


def qqr(r: Relation, by: By, config: RmaConfig | None = None) -> Relation:
    """Q factor of the QR decomposition; shape type (r1, c1)."""
    return execute_rma("qqr", r, by, config=config)


def rqr(r: Relation, by: By, config: RmaConfig | None = None) -> Relation:
    """R factor of the QR decomposition; shape type (c1, c1)."""
    return execute_rma("rqr", r, by, config=config)


def usv(r: Relation, by: By, config: RmaConfig | None = None) -> Relation:
    """Left singular vectors (full U); shape type (r1, r1).

    Result columns are named by the sorted order values (requires
    ``|U| = 1``).
    """
    return execute_rma("usv", r, by, config=config)


def dsv(r: Relation, by: By, config: RmaConfig | None = None) -> Relation:
    """Singular values as a diagonal matrix; shape type (c1, c1)."""
    return execute_rma("dsv", r, by, config=config)


def vsv(r: Relation, by: By, config: RmaConfig | None = None) -> Relation:
    """Right singular vectors V; shape type (c1, c1).

    Note: the paper's Table 1 types ``vsv`` as (r1, 1), which contradicts
    its own definition of VSV returning the V matrix; we follow the
    definition (see DESIGN.md).
    """
    return execute_rma("vsv", r, by, config=config)


def det(r: Relation, by: By, config: RmaConfig | None = None) -> Relation:
    """Determinant; shape type (1, 1): one row ``('r', value)``."""
    return execute_rma("det", r, by, config=config)


def rnk(r: Relation, by: By, config: RmaConfig | None = None) -> Relation:
    """Matrix rank; shape type (1, 1): one row ``('r', value)``."""
    return execute_rma("rnk", r, by, config=config)
