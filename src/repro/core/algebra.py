"""Public RMA operations (paper Table 2), as one-op plan expressions.

Each function runs one operation *eagerly*.  Argument conventions are
shared:

* ``r``/``s``       — argument relations;
* ``by``/``s_by``   — order schemas (attribute name or list of names); the
  attributes must form a key of their relation;
* ``config``        — optional :class:`~repro.core.config.RmaConfig`.

The remaining attributes form the application schema the matrix kernel is
applied to; they must be numeric.

Since the API redesign these functions are thin adapters over the shared
plan layer (:mod:`repro.api.eager`): each call builds a one-operation
expression on the shared IR and collects it immediately on the shared plan
executor — the exact pipeline SQL statements and
:class:`~repro.api.matrix.Matrix` expressions run on, producing the exact
relation (same object, same warm order caches, same errors) the direct
:func:`repro.core.ops.execute_rma` call produced before.

A *chain* of operations written this way still executes one op at a time,
though — re-sorting derived relations, materializing every intermediate and
caching nothing across calls.  Chains belong on a session
(:func:`repro.connect`), where the same expression gets element-wise
fusion, CSE and the session result cache::

    db = repro.connect()
    xtx = db.matrix(xtx_rel, by="C")
    beta = (xtx.inv() @ db.matrix(xty_rel, by="C")).collect()

Results are bit-identical between all the styles; the equivalence tests
assert it for every operation and the paper's four workloads.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import RmaConfig
from repro.core.ops import execute_rma
from repro.relational.relation import Relation

By = str | Sequence[str]


def rma_operation(name: str, r: Relation, by: By,
                  s: Relation | None = None, s_by: By | None = None,
                  config: RmaConfig | None = None,
                  scalar: float | None = None) -> Relation:
    """Run an operation by name — the plan executor's internal hook.

    This stays on the direct :func:`execute_rma` path (the executor calls
    it per RMA node; routing it back through the plan layer would
    recurse).
    """
    return execute_rma(name, r, by, s, s_by, config, scalar=scalar)


def _eager(name: str, r: Relation, by: By,
           s: Relation | None = None, s_by: By | None = None,
           config: RmaConfig | None = None,
           scalar: float | None = None) -> Relation:
    """One-op expression, collected immediately on the plan executor."""
    from repro.api.eager import eager_rma  # deferred: api builds on core
    return eager_rma(name, r, by, s, s_by, config, scalar=scalar)


# -- element-wise (shape type (r*, c*)) -------------------------------------

def add(r: Relation, by: By, s: Relation, s_by: By,
        config: RmaConfig | None = None) -> Relation:
    """Matrix addition over relations: ``add_{U;V}(r, s)``.

    Result schema is ``U ∘ V ∘ U-bar``: both order parts plus the sums named
    by ``r``'s application schema.  Rows are matched positionally after
    ordering each relation by its order schema.
    """
    return _eager("add", r, by, s, s_by, config)


def sub(r: Relation, by: By, s: Relation, s_by: By,
        config: RmaConfig | None = None) -> Relation:
    """Matrix subtraction over relations (see :func:`add`)."""
    return _eager("sub", r, by, s, s_by, config)


def emu(r: Relation, by: By, s: Relation, s_by: By,
        config: RmaConfig | None = None) -> Relation:
    """Element-wise multiplication over relations (see :func:`add`)."""
    return _eager("emu", r, by, s, s_by, config)


# -- scalar variants (kernel-program layer, not part of Table 2) ---------------

def sadd(r: Relation, by: By, value: float,
         config: RmaConfig | None = None) -> Relation:
    """Add a constant to every application value: ``sadd_{U}(r, c)``.

    Result schema is ``U ∘ U-bar`` with rows in ``r``'s storage order (the
    order part is attached verbatim).  Inside lazy pipelines scalar steps
    fuse into the surrounding element-wise chain as a single kernel step.
    """
    return _eager("sadd", r, by, config=config, scalar=value)


def ssub(r: Relation, by: By, value: float,
         config: RmaConfig | None = None) -> Relation:
    """Subtract a constant from every application value (see :func:`sadd`)."""
    return _eager("ssub", r, by, config=config, scalar=value)


def smul(r: Relation, by: By, value: float,
         config: RmaConfig | None = None) -> Relation:
    """Multiply every application value by a constant (see :func:`sadd`)."""
    return _eager("smul", r, by, config=config, scalar=value)


def sdiv(r: Relation, by: By, value: float,
         config: RmaConfig | None = None) -> Relation:
    """Divide every application value by a constant (see :func:`sadd`).

    True element-wise division (``np.divide``) — not multiplication by the
    reciprocal, which differs in the last ulp for most divisors.  Division
    by zero follows IEEE semantics (±inf/nan) at execution time.
    """
    return _eager("sdiv", r, by, config=config, scalar=value)


# -- products ----------------------------------------------------------------

def mmu(r: Relation, by: By, s: Relation, s_by: By,
        config: RmaConfig | None = None) -> Relation:
    """Matrix multiplication ``mmu_{U;V}(r, s)``; shape type (r1, c2).

    The application part of ``r`` (n x k) is multiplied with the application
    part of ``s`` (k x m): ``r``'s application schema width must equal
    ``s``'s cardinality.  Result schema: ``U ∘ V-bar``.
    """
    return _eager("mmu", r, by, s, s_by, config)


def opd(r: Relation, by: By, s: Relation, s_by: By,
        config: RmaConfig | None = None) -> Relation:
    """Outer product ``opd_{U;V}(r, s) = A·Bᵀ``; shape type (r1, r2).

    Result columns are named by the sorted values of ``s``'s (single)
    order attribute (column cast ▽V).
    """
    return _eager("opd", r, by, s, s_by, config)


def cpd(r: Relation, by: By, s: Relation, s_by: By,
        config: RmaConfig | None = None) -> Relation:
    """Cross product ``cpd_{U;V}(r, s) = Aᵀ·B``; shape type (c1, c2).

    The result has a context attribute ``C`` holding ``r``'s application
    schema names and one column per attribute of ``s``'s application schema.
    Passing the same relation and order schema twice computes the symmetric
    ``AᵀA`` via the dsyrk-style fast path.
    """
    return _eager("cpd", r, by, s, s_by, config)


def sol(r: Relation, by: By, s: Relation, s_by: By,
        config: RmaConfig | None = None) -> Relation:
    """Least-squares solve of ``A·x = b``; shape type (c1, c2).

    ``r`` holds the coefficient matrix, ``s`` the right-hand side(s); both
    are ordered by their order schemas and matched positionally.
    """
    return _eager("sol", r, by, s, s_by, config)


# -- unary --------------------------------------------------------------------

def tra(r: Relation, by: By, config: RmaConfig | None = None) -> Relation:
    """Transpose; shape type (c1, r1).

    Result attribute ``C`` holds the application schema names; the remaining
    attributes are named by the sorted values of the single order attribute
    (column cast), so ``tra`` requires ``|U| = 1``.
    """
    return _eager("tra", r, by, config=config)


def inv(r: Relation, by: By, config: RmaConfig | None = None) -> Relation:
    """Matrix inversion; shape type (r1, c1); square application part."""
    return _eager("inv", r, by, config=config)


def evc(r: Relation, by: By, config: RmaConfig | None = None) -> Relation:
    """Eigenvectors (columns sorted by decreasing |eigenvalue|);
    shape type (r1, c1); square application part."""
    return _eager("evc", r, by, config=config)


def evl(r: Relation, by: By, config: RmaConfig | None = None) -> Relation:
    """Eigenvalues as a single column named ``evl``; shape type (r1, 1)."""
    return _eager("evl", r, by, config=config)


def chf(r: Relation, by: By, config: RmaConfig | None = None) -> Relation:
    """Cholesky factorization (upper factor, like R's ``chol``);
    shape type (r1, c1); symmetric positive-definite application part."""
    return _eager("chf", r, by, config=config)


def qqr(r: Relation, by: By, config: RmaConfig | None = None) -> Relation:
    """Q factor of the QR decomposition; shape type (r1, c1)."""
    return _eager("qqr", r, by, config=config)


def rqr(r: Relation, by: By, config: RmaConfig | None = None) -> Relation:
    """R factor of the QR decomposition; shape type (c1, c1)."""
    return _eager("rqr", r, by, config=config)


def usv(r: Relation, by: By, config: RmaConfig | None = None) -> Relation:
    """Left singular vectors (full U); shape type (r1, r1).

    Result columns are named by the sorted order values (requires
    ``|U| = 1``).
    """
    return _eager("usv", r, by, config=config)


def dsv(r: Relation, by: By, config: RmaConfig | None = None) -> Relation:
    """Singular values as a diagonal matrix; shape type (c1, c1)."""
    return _eager("dsv", r, by, config=config)


def vsv(r: Relation, by: By, config: RmaConfig | None = None) -> Relation:
    """Right singular vectors V; shape type (c1, c1).

    Note: the paper's Table 1 types ``vsv`` as (r1, 1), which contradicts
    its own definition of VSV returning the V matrix; we follow the
    definition (see DESIGN.md).
    """
    return _eager("vsv", r, by, config=config)


def det(r: Relation, by: By, config: RmaConfig | None = None) -> Relation:
    """Determinant; shape type (1, 1): one row ``('r', value)``."""
    return _eager("det", r, by, config=config)


def rnk(r: Relation, by: By, config: RmaConfig | None = None) -> Relation:
    """Matrix rank; shape type (1, 1): one row ``('r', value)``."""
    return _eager("rnk", r, by, config=config)
