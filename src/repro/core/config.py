"""Configuration for relational matrix operations."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.linalg.policy import BackendPolicy


@dataclass
class RmaConfig:
    """Execution knobs for RMA operations.

    * ``policy`` — which kernel backend runs base results (§7.3);
    * ``optimize_sorting`` — apply the §8.1 optimizations (skip sorting for
      row-order-invariant/-equivariant operations, relative sorting for
      element-wise operations).  Disabling reproduces the unoptimized curves
      of Fig. 13;
    * ``validate_keys`` — verify that order schemas form keys.  This is the
      safe default; benchmarks that reproduce the paper's timings disable it
      (MonetDB relies on declared key constraints instead of re-checking).
    """

    policy: BackendPolicy = field(default_factory=BackendPolicy)
    optimize_sorting: bool = True
    validate_keys: bool = True


_DEFAULT = RmaConfig()


def default_config() -> RmaConfig:
    """The process-wide default configuration."""
    return _DEFAULT


def set_default_config(config: RmaConfig) -> RmaConfig:
    """Replace the process-wide default; returns the previous one."""
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = config
    return previous
