"""Configuration for relational matrix operations."""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.linalg.policy import BackendPolicy


def _env_int(name: str, default: int) -> int:
    """An integer environment override, or ``default`` when unset/invalid."""
    raw = os.environ.get(name, "")
    try:
        return int(raw) if raw else default
    except ValueError:
        return default


@dataclass
class ParallelConfig:
    """Knobs of the morsel-driven parallel engine (:mod:`repro.engine`).

    * ``enabled`` — master gate.  Off by default: the serial pipeline is
      the reference implementation and the parallel engine must be
      bit-identical to it (the ablation and the doubled CI run assert
      this).  The environment variable ``REPRO_PARALLEL`` (``1``/``true``/
      ``on``) flips the *default* on, which is how CI forces the engine
      through the whole tier-1 suite;
    * ``workers`` — the engine's degree of parallelism; ``0`` means one
      per CPU (``os.cpu_count()``).  ``REPRO_PARALLEL_WORKERS`` overrides
      the default.  An effective worker count of 1 short-circuits to the
      serial path.  The cap bounds each parallel call site (morsel
      partitions and task-group widths); the threads themselves come
      from one shared CPU-sized pool (:mod:`repro.engine.pool`), so
      independent call sites that overlap — concurrent subplan subtrees
      each chunking their own columns — can briefly exceed it;
    * ``min_morsel_rows`` — never split a column into morsels smaller
      than this (``REPRO_PARALLEL_MIN_MORSEL_ROWS`` overrides): thread
      handoff costs microseconds, so tiny inputs stay serial.  Tests set
      it to 1 to force morsel execution on small data.
    """

    enabled: bool = False
    workers: int = 0
    min_morsel_rows: int = 65536

    @classmethod
    def from_env(cls) -> "ParallelConfig":
        """Defaults, with the ``REPRO_PARALLEL*`` overrides applied.

        Malformed numeric overrides are ignored (with the built-in
        default kept): this runs inside every ``RmaConfig()``
        construction, so a typo'd environment variable must not take the
        whole library down.
        """
        enabled = os.environ.get("REPRO_PARALLEL", "").lower() in (
            "1", "true", "on", "yes")
        config = cls(enabled=enabled,
                     workers=_env_int("REPRO_PARALLEL_WORKERS", 0))
        min_rows = _env_int("REPRO_PARALLEL_MIN_MORSEL_ROWS", 0)
        if min_rows > 0:
            config.min_morsel_rows = min_rows
        return config

    def effective_workers(self) -> int:
        if self.workers > 0:
            return self.workers
        return os.cpu_count() or 1

    def active(self) -> bool:
        """Whether parallel execution is on at all (before sizing)."""
        return self.enabled and self.effective_workers() > 1

    def token(self) -> tuple:
        return (self.enabled, self.workers, self.min_morsel_rows)


@dataclass
class RmaConfig:
    """Execution knobs for RMA operations.

    * ``policy`` — which kernel backend runs base results (§7.3);
    * ``optimize_sorting`` — apply the §8.1 optimizations (skip sorting for
      row-order-invariant/-equivariant operations, relative sorting for
      element-wise operations).  Disabling reproduces the unoptimized curves
      of Fig. 13;
    * ``validate_keys`` — verify that order schemas form keys.  This is the
      safe default; benchmarks that reproduce the paper's timings disable it
      (MonetDB relies on declared key constraints instead of re-checking);
    * ``use_properties`` — exploit cached physical properties and the
      per-relation order cache (BAT ``tsorted``/``tkey`` bits, memoized sort
      permutations and float views; see :mod:`repro.bat.properties`).
      Immutability makes the caches sound, so this is on by default;
      ``benchmarks/bench_ablation_properties.py`` measures the ablation.
      The flag gates the engine-level caches; the BAT-layer short-circuits
      are gated by the module switch in :mod:`repro.bat.properties`, which
      ablations toggle alongside this flag.
    * ``seed_result_orders`` — let ``merge_result`` pre-populate the order
      cache of result relations (identity for sorted results, the input's
      cached order for storage-order results), so chained operations over
      derived relations skip re-sorting.  On by default; the plan-layer
      ablation (``benchmarks/bench_ablation_plan.py``) disables it for its
      baseline.
    * ``fuse_elementwise`` — let the plan optimizer collapse chains of
      relative-class element-wise operations (``add``/``sub``/``emu`` and
      the scalar variants) into one :class:`~repro.plan.nodes.FusedRma`
      node, executed as a single prepare/align/kernel-program/merge pass
      with all intermediate relations elided.  On by default;
      ``benchmarks/bench_ablation_fusion.py`` measures the ablation.
    * ``parallel`` — the morsel-driven parallel engine
      (:class:`ParallelConfig`, see :mod:`repro.engine`): element-wise
      kernel programs, application-part gathers/float casts and
      independent subplan subtrees run partitioned across a shared worker
      pool.  Results are bit-identical to serial execution (a deterministic
      chunk-ordered merge reassembles morsel results).  Off by default;
      the ``REPRO_PARALLEL`` environment variable flips the default on and
      ``benchmarks/bench_ablation_parallel.py`` measures the ablation.
    """

    policy: BackendPolicy = field(default_factory=BackendPolicy)
    optimize_sorting: bool = True
    validate_keys: bool = True
    use_properties: bool = True
    seed_result_orders: bool = True
    fuse_elementwise: bool = True
    parallel: ParallelConfig = field(default_factory=ParallelConfig.from_env)

    def cache_token(self) -> tuple:
        """Value identity for plan/result caches.

        Results and optimized plans depend on the configuration, so cache
        entries are stamped with this token and revalidated on lookup.
        The token is built from *values*, not object identity: it covers
        every semantic input (all flags plus the policy's type and
        decision inputs), so in-place mutation is caught while
        equal-valued configs — e.g. a fresh ``RmaConfig()`` per
        ``collect(cache=...)`` call — keep hitting.
        """
        return (self.optimize_sorting, self.validate_keys,
                self.use_properties, self.seed_result_orders,
                self.fuse_elementwise, self.parallel.token(),
                type(self.policy).__qualname__,
                self.policy.prefer, self.policy.memory_limit_bytes)


_DEFAULT = RmaConfig()


def default_config() -> RmaConfig:
    """The process-wide default configuration."""
    return _DEFAULT


def set_default_config(config: RmaConfig) -> RmaConfig:
    """Replace the process-wide default; returns the previous one."""
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = config
    return previous
