"""Configuration for relational matrix operations."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.linalg.policy import BackendPolicy


@dataclass
class RmaConfig:
    """Execution knobs for RMA operations.

    * ``policy`` — which kernel backend runs base results (§7.3);
    * ``optimize_sorting`` — apply the §8.1 optimizations (skip sorting for
      row-order-invariant/-equivariant operations, relative sorting for
      element-wise operations).  Disabling reproduces the unoptimized curves
      of Fig. 13;
    * ``validate_keys`` — verify that order schemas form keys.  This is the
      safe default; benchmarks that reproduce the paper's timings disable it
      (MonetDB relies on declared key constraints instead of re-checking);
    * ``use_properties`` — exploit cached physical properties and the
      per-relation order cache (BAT ``tsorted``/``tkey`` bits, memoized sort
      permutations and float views; see :mod:`repro.bat.properties`).
      Immutability makes the caches sound, so this is on by default;
      ``benchmarks/bench_ablation_properties.py`` measures the ablation.
      The flag gates the engine-level caches; the BAT-layer short-circuits
      are gated by the module switch in :mod:`repro.bat.properties`, which
      ablations toggle alongside this flag.
    * ``seed_result_orders`` — let ``merge_result`` pre-populate the order
      cache of result relations (identity for sorted results, the input's
      cached order for storage-order results), so chained operations over
      derived relations skip re-sorting.  On by default; the plan-layer
      ablation (``benchmarks/bench_ablation_plan.py``) disables it for its
      baseline.
    * ``fuse_elementwise`` — let the plan optimizer collapse chains of
      relative-class element-wise operations (``add``/``sub``/``emu`` and
      the scalar variants) into one :class:`~repro.plan.nodes.FusedRma`
      node, executed as a single prepare/align/kernel-program/merge pass
      with all intermediate relations elided.  On by default;
      ``benchmarks/bench_ablation_fusion.py`` measures the ablation.
    """

    policy: BackendPolicy = field(default_factory=BackendPolicy)
    optimize_sorting: bool = True
    validate_keys: bool = True
    use_properties: bool = True
    seed_result_orders: bool = True
    fuse_elementwise: bool = True

    def cache_token(self) -> tuple:
        """Value identity for plan/result caches.

        Results and optimized plans depend on the configuration, so cache
        entries are stamped with this token and revalidated on lookup.
        The token is built from *values*, not object identity: it covers
        every semantic input (all flags plus the policy's type and
        decision inputs), so in-place mutation is caught while
        equal-valued configs — e.g. a fresh ``RmaConfig()`` per
        ``collect(cache=...)`` call — keep hitting.
        """
        return (self.optimize_sorting, self.validate_keys,
                self.use_properties, self.seed_result_orders,
                self.fuse_elementwise, type(self.policy).__qualname__,
                self.policy.prefer, self.policy.memory_limit_bytes)


_DEFAULT = RmaConfig()


def default_config() -> RmaConfig:
    """The process-wide default configuration."""
    return _DEFAULT


def set_default_config(config: RmaConfig) -> RmaConfig:
    """Replace the process-wide default; returns the previous one."""
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = config
    return previous
