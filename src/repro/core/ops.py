"""Execution of relational matrix operations (paper Table 2 / Alg. 1).

Execution is an explicit three-stage pipeline:

* **prepare** (:func:`prepare_stage`, delegating to
  :mod:`repro.core.context`) — split each argument into order and
  application part and establish the row order the kernel needs;
* **kernel** (:func:`kernel_stage`) — run a *kernel program*
  (:class:`repro.linalg.kernels.KernelProgram`) over the prepared
  application columns.  A plain operation is the one-step program; a fused
  element-wise chain is a multi-step program over shared prepared inputs
  with every intermediate relation elided (:func:`execute_fused`);
* **merge** (:func:`merge_result` / :func:`merge_fused`) — attach the
  morphed contextual information to the base result and pre-warm the
  result's order caches.

``execute_rma`` composes the three stages for one operation, exactly as the
monolithic implementation did; ``execute_fused`` composes them once for a
whole chain.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bat.bat import BAT, DataType
from repro.bat.properties import properties_enabled
from repro.core.config import RmaConfig, default_config
from repro.core.constructors import gamma, schema_cast
from repro.core.context import (
    FusionFallback,
    PreparedInput,
    prepare_binary,
    prepare_fused,
    prepare_unary,
    sorted_order_values,
)
from repro.errors import RmaError
from repro.linalg.kernels import (
    KernelProgram,
    KernelStep,
    run_program,
    run_program_parallel,
)
from repro.linalg.matrix import Columns
from repro.opspec import OpSpec, spec_of
from repro.relational.relation import Relation

CONTEXT_ATTRIBUTE = "C"
"""Name of the synthesized context attribute (paper Table 2)."""


def prepare_stage(spec: OpSpec, r: Relation, by: str | Sequence[str],
                  s: Relation | None, s_by: str | Sequence[str] | None,
                  config: RmaConfig) \
        -> tuple[PreparedInput, PreparedInput | None]:
    """Stage 1: split/sort/morph the argument relations (paper Alg. 1)."""
    if spec.arity == 2:
        if s is None or s_by is None:
            raise RmaError(f"{spec.name} is binary: supply s and s_by")
        return prepare_binary(r, by, s, s_by, spec, config)
    if s is not None or s_by is not None:
        raise RmaError(f"{spec.name} is unary: s/s_by are not accepted")
    return prepare_unary(r, by, spec, config), None


def kernel_stage(program: KernelProgram, inputs: Sequence[Columns],
                 config: RmaConfig) -> Columns:
    """Stage 2: run a kernel program over prepared application columns.

    With the morsel engine active, row-decomposable (element-wise)
    programs execute partitioned across the shared worker pool —
    bit-identical to the serial pass (see
    :func:`repro.linalg.kernels.run_program_parallel`).
    """
    if config.parallel.active():
        return run_program_parallel(program, inputs, config.policy,
                                    config.parallel)
    return run_program(program, inputs, config.policy)


def execute_rma(name: str, r: Relation, by: str | Sequence[str],
                s: Relation | None = None,
                s_by: str | Sequence[str] | None = None,
                config: RmaConfig | None = None,
                scalar: float | None = None) -> Relation:
    """Run relational matrix operation ``name`` and return the result.

    ``by`` (and ``s_by`` for binary operations) are the order schemas;
    ``scalar`` is the constant of the scalar variants (``sadd``/``ssub``/
    ``smul``) and is rejected for every other operation.
    """
    spec = spec_of(name)
    config = config or default_config()
    if spec.scalar and scalar is None:
        raise RmaError(f"{name} requires a scalar value")
    if not spec.scalar and scalar is not None:
        raise RmaError(f"{name} does not accept a scalar value")
    prepared_r, prepared_s = prepare_stage(spec, r, by, s, s_by, config)
    program = KernelProgram.single(spec.name, binary=prepared_s is not None,
                                   scalar=scalar)
    inputs = [prepared_r.app_columns]
    if prepared_s is not None:
        inputs.append(prepared_s.app_columns)
    base = kernel_stage(program, inputs, config)
    return merge_result(spec, prepared_r, prepared_s, base,
                        seed_orders=config.seed_result_orders)


def execute_fused(steps: Sequence[KernelStep],
                  relations: Sequence[Relation],
                  bys: Sequence[Sequence[str]],
                  config: RmaConfig | None = None) -> Relation:
    """Run a fused element-wise chain as one prepare/kernel/merge pass.

    ``steps`` reference slots ``0 .. len(relations) - 1`` (the chain's leaf
    inputs, each split by its order schema in ``bys``) and
    ``len(relations) + j`` (the result of step ``j``).  All leaves are
    aligned into the first leaf's storage order by the prepare stage, the
    kernel program runs over the aligned application columns, and a single
    merge attaches every leaf's order part — bit-identical to executing the
    chain operation by operation, with the intermediate relations elided.

    Raises :class:`repro.core.context.FusionFallback` when the fused
    preconditions do not hold; callers then replay the chain unfused.
    """
    config = config or default_config()
    prepared = prepare_fused(relations, bys, config)
    program = KernelProgram(len(prepared), tuple(steps))
    base = kernel_stage(program, [p.app_columns for p in prepared], config)
    return merge_fused(prepared, base,
                       seed_orders=config.seed_result_orders)


def merge_result(spec: OpSpec, r: PreparedInput,
                 s: PreparedInput | None, base: Columns,
                 seed_orders: bool = True) -> Relation:
    """Merge step: attach morphed context to the base result (Table 2).

    The shape type decides the row context (order parts, a ∆-cast context
    column, or the literal ``'r'``) and the base-result attribute names
    (inherited application schemas, ▽-cast order values, or the operation
    name).
    """
    x, y = spec.shape_type
    names: list[str] = []
    columns: list[BAT] = []

    # -- row context (x) ----------------------------------------------------
    if x == "r1":
        names += r.order_names
        columns += r.order_bats
    elif x == "r*":
        assert s is not None
        names += r.order_names + s.order_names
        columns += r.order_bats + s.order_bats
    elif x == "c1":
        names.append(CONTEXT_ATTRIBUTE)
        columns.append(schema_cast(r.app_names))
    elif x == "1":
        names.append(CONTEXT_ATTRIBUTE)
        columns.append(BAT.from_values(["r"], DataType.STR))
    else:  # pragma: no cover - no operation uses other row types
        raise RmaError(f"unhandled row shape type {x!r}")

    # -- base result attribute names (y) -------------------------------------
    if y == "c1" or y == "c*":
        base_names = list(r.app_names)
    elif y == "c2":
        assert s is not None
        base_names = list(s.app_names)
    elif y == "r1":
        base_names = sorted_order_values(r)
    elif y == "r2":
        assert s is not None
        base_names = sorted_order_values(s)
    elif y == "1":
        base_names = [spec.name]
    else:  # pragma: no cover
        raise RmaError(f"unhandled column shape type {y!r}")

    if len(base_names) != len(base):
        raise RmaError(
            f"{spec.name}: base result has {len(base)} columns but "
            f"{len(base_names)} names were derived — shape type "
            f"{spec.shape_type} violated")

    # Element-wise operations carry both order parts (schema U ∘ V ∘ U-bar).
    if x == "r*":
        pass  # both order parts already attached above
    names += base_names
    columns += [BAT(DataType.DBL, np.asarray(col, dtype=np.float64))
                for col in base]
    result = gamma(columns, names)
    if seed_orders:
        _seed_result_order(result, spec, r, s)
    return result


def merge_fused(prepared: Sequence[PreparedInput], base: Columns,
                seed_orders: bool = True) -> Relation:
    """Merge step of a fused chain: all order parts plus the base result.

    The result schema is ``U1 ∘ U2 ∘ ... ∘ Uk ∘ U1-bar`` — exactly what the
    last step of the unfused chain produces (each step contributes its
    second argument's order part; base-result names come from the first
    leaf's application schema).

    Order-cache seeding mirrors the unfused final merge: the first leaf's
    cached :class:`OrderInfo` is shared for ``U1``, and — because every
    leaf's order schema was verified to be a key by the prepare stage — the
    first leaf's sort positions are the result's sort by every aligned
    schema ``Ui`` and by every combined prefix ``U1 ∘ ... ∘ Ui``.
    """
    first = prepared[0]
    names: list[str] = []
    columns: list[BAT] = []
    for p in prepared:
        names += p.order_names
        columns += p.order_bats
    base_names = list(first.app_names)
    if len(base_names) != len(base):
        raise RmaError(
            f"fused chain: base result has {len(base)} columns but "
            f"{len(base_names)} names were derived")
    names += base_names
    columns += [BAT(DataType.DBL, np.asarray(col, dtype=np.float64))
                for col in base]
    result = gamma(columns, names)
    if seed_orders and properties_enabled():
        n = result.nrows
        _seed_order_part(result, first, n)
        info = first.relation.cached_order_info(tuple(first.order_names))
        positions = info.known_positions if info is not None else None
        combined = tuple(first.order_names)
        for p in prepared[1:]:
            key = tuple(p.order_names)
            combined = combined + key
            if positions is not None:
                result.seed_order(key, positions=positions, is_key=True)
                result.seed_order(combined, positions=positions,
                                  is_key=True)
            if len(key) == 1:
                result.column(key[0])._seed_props(tkey=True)
    return result


def _seed_result_order(result: Relation, spec: OpSpec,
                       r: PreparedInput, s: PreparedInput | None) -> None:
    """Pre-warm the result's order cache — derived relations start warm.

    The merge step knows exactly how the result rows relate to the order
    schemas but used to discard that knowledge, so every chained operation
    re-sorted from scratch (the PR 1 ROADMAP follow-up).  Three cases:

    * rows were physically sorted by the order schema (FULL-sort class):
      the order is the identity permutation, and a validated order schema
      is a key — seed both, plus the single-attribute ``tkey`` bit;
    * rows are in the first input's storage order (equivariant/relative
      classes): the input's cached :class:`OrderInfo` applies verbatim to
      the result, so the result *shares* it;
    * the aligned second argument of an element-wise operation: its rows
      were permuted into the first input's storage order, and sorting the
      result by the second order schema is exactly the first input's sort
      permutation (``aligned = s_pos[r_ranks]`` implies
      ``aligned[r_pos] = s_pos``).  Seeded only when the second schema is
      a *known* key — with duplicates the derived permutation is valid but
      not bit-identical to a fresh stable sort, and bit-identity with the
      cold path is the contract here.
    """
    if not properties_enabled():
        return
    x = spec.shape_type[0]
    if x not in ("r1", "r*"):
        return
    n = result.nrows
    _seed_order_part(result, r, n)
    if x == "r*" and s is not None:
        if s.sorted_storage:
            _seed_order_part(result, s, n)
        else:
            _seed_aligned_part(result, r, s)
        _seed_combined_part(result, r, s, n)


def _seed_order_part(result: Relation, prepared: PreparedInput,
                     n: int) -> None:
    key = tuple(prepared.order_names)
    if prepared.sorted_storage:
        identity = np.arange(n, dtype=np.int64)
        result.seed_order(key, positions=identity,
                          is_key=True if prepared.validated else None)
    else:
        info = prepared.relation.cached_order_info(key)
        if info is not None:
            result.seed_order(key, info=info)
    if len(key) == 1 and prepared.validated:
        result.column(key[0])._seed_props(tkey=True)


def _seed_combined_part(result: Relation, r: PreparedInput,
                        s: PreparedInput, n: int) -> None:
    """Seed the concatenated order schema U ∘ V of element-wise results.

    Chained element-wise operations must order the derived relation by its
    *whole* order part (U and V together — the schemas must stay disjoint
    between arguments).  When U is a validated key, a stable lexicographic
    sort by U ∘ V never reaches the V tie-breakers, so it is bit-identical
    to the sort by U alone — which is known: identity for sorted storage,
    the first input's cached permutation otherwise.
    """
    if not r.validated:
        return
    combined = tuple(r.order_names) + tuple(s.order_names)
    if r.sorted_storage:
        result.seed_order(combined,
                          positions=np.arange(n, dtype=np.int64),
                          is_key=True)
        return
    info = r.relation.cached_order_info(tuple(r.order_names))
    if info is not None and info.known_positions is not None:
        result.seed_order(combined, positions=info.known_positions,
                          is_key=True)


def _seed_aligned_part(result: Relation, r: PreparedInput,
                       s: PreparedInput) -> None:
    r_info = r.relation.cached_order_info(tuple(r.order_names))
    s_info = s.relation.cached_order_info(tuple(s.order_names))
    if r_info is None or s_info is None:
        return
    key = tuple(s.order_names)
    if r_info.known_positions is not None and s_info.known_is_key:
        result.seed_order(key, positions=r_info.known_positions,
                          is_key=True)
    if len(key) == 1 and s.validated:
        result.column(key[0])._seed_props(tkey=True)
