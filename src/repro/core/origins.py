"""Row and column origins (paper §6.2, Table 3).

Origins are the inherited contextual information that (1) uniquely defines
the relative positioning of result values, (2) gives values a meaning with
respect to the operation, and (3) connects argument and result relations.
This module derives the expected origins of an operation from its shape
type and verifies them against an actual result relation — the executable
form of Theorem 6.8.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import RmaError
from repro.opspec import spec_of
from repro.relational.relation import Relation


def _order_part_values(relation: Relation,
                       order_names: Sequence[str]) -> list[tuple]:
    return [tuple(row) for row in zip(
        *(relation.column(n).python_values() for n in order_names))]


def _sorted_cast(relation: Relation, order_names: Sequence[str]) -> list[str]:
    if len(order_names) != 1:
        raise RmaError("column cast origins require |U| = 1")
    values = relation.column(order_names[0]).python_values()
    return [str(v) for v in sorted(values, key=lambda v: (v is None, v))]


def row_origin(op: str, r: Relation, by: Sequence[str] | str,
               s: Relation | None = None,
               s_by: Sequence[str] | str | None = None):
    """The expected row origin per Table 3 (as a list, or the literal 'r')."""
    spec = spec_of(op)
    r_by = [by] if isinstance(by, str) else list(by)
    x = spec.shape_type[0]
    if x == "r1":
        return _order_part_values(r, r_by)
    if x == "r*":
        assert s is not None and s_by is not None
        v_by = [s_by] if isinstance(s_by, str) else list(s_by)
        return (_order_part_values(r, r_by), _order_part_values(s, v_by))
    if x == "c1":
        return [(name,) for name in _app_names(r, r_by)]
    if x == "1":
        return "r"
    raise RmaError(f"unhandled shape type {x!r}")  # pragma: no cover


def column_origin(op: str, r: Relation, by: Sequence[str] | str,
                  s: Relation | None = None,
                  s_by: Sequence[str] | str | None = None) -> list[str]:
    """The expected column origin per Table 3."""
    spec = spec_of(op)
    r_by = [by] if isinstance(by, str) else list(by)
    y = spec.shape_type[1]
    if y in ("c1", "c*"):
        return _app_names(r, r_by)
    if y == "c2":
        assert s is not None and s_by is not None
        v_by = [s_by] if isinstance(s_by, str) else list(s_by)
        return _app_names(s, v_by)
    if y == "r1":
        return _sorted_cast(r, r_by)
    if y == "r2":
        assert s is not None and s_by is not None
        v_by = [s_by] if isinstance(s_by, str) else list(s_by)
        return _sorted_cast(s, v_by)
    if y == "1":
        return [spec.name]
    raise RmaError(f"unhandled shape type {y!r}")  # pragma: no cover


def _app_names(relation: Relation, order_names: list[str]) -> list[str]:
    return relation.schema.complement(order_names)


def verify_origins(op: str, result: Relation, r: Relation,
                   by: Sequence[str] | str, s: Relation | None = None,
                   s_by: Sequence[str] | str | None = None) -> bool:
    """Check that ``result`` carries the origins Table 3 prescribes.

    Row origins must appear as the values of the result's leading context
    attributes (as a set — storage order is not semantics); column origins
    must be the names of the base-result attributes.
    """
    spec = spec_of(op)
    x, y = spec.shape_type
    r_by = [by] if isinstance(by, str) else list(by)

    expected_cols = column_origin(op, r, by, s, s_by)
    actual_cols = result.names[-len(expected_cols):]
    if actual_cols != [str(c) for c in expected_cols]:
        return False

    expected_rows = row_origin(op, r, by, s, s_by)
    if x == "r1":
        actual = _order_part_values(result, r_by)
        return sorted(map(repr, actual)) == sorted(map(repr, expected_rows))
    if x == "r*":
        assert s is not None and s_by is not None
        v_by = [s_by] if isinstance(s_by, str) else list(s_by)
        actual_r = _order_part_values(result, r_by)
        actual_s = _order_part_values(result, v_by)
        exp_r, exp_s = expected_rows
        return (sorted(map(repr, actual_r)) == sorted(map(repr, exp_r))
                and sorted(map(repr, actual_s)) == sorted(map(repr, exp_s)))
    if x == "c1":
        actual = [(v,) for v in result.column("C").python_values()]
        return actual == expected_rows
    if x == "1":
        return result.column("C").python_values() == ["r"]
    return False  # pragma: no cover
