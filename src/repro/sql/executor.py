"""Physical execution of logical plans over the BAT engine."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.bat.bat import BAT, DataType
from repro.bat.catalog import Catalog
from repro.bat import kernels
from repro.core.config import RmaConfig, default_config
from repro.core.algebra import rma_operation
from repro.errors import BindError, PlanError, SqlError
import repro.relational.aggregate as rel_aggregate
import repro.relational.joins as rel_join
import repro.relational.ops as rel_ops
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema
from repro.sql import ast, logical
from repro.sql.functions import SCALAR_FUNCTIONS


@dataclass(frozen=True)
class Binding:
    """Maps a user-visible (alias, column) pair to an internal column.

    ``hidden`` bindings are resolvable (so ORDER BY can reference source
    columns after projection) but are not part of the visible output.
    """

    alias: Optional[str]
    name: str
    internal: str
    hidden: bool = False


class Frame:
    """A relation with name bindings for expression resolution.

    Internal column names are globally unique within the frame so joins can
    concatenate schemas without clashes while user-visible names stay
    resolvable (qualified or unqualified).
    """

    _counter = 0

    def __init__(self, relation: Relation, bindings: list[Binding]):
        self.relation = relation
        self.bindings = bindings

    @classmethod
    def _fresh(cls, hint: str) -> str:
        cls._counter += 1
        return f"{hint}#{cls._counter}"

    @classmethod
    def from_relation(cls, relation: Relation,
                      alias: Optional[str]) -> "Frame":
        bindings = []
        internal_names = []
        for name in relation.names:
            internal = cls._fresh(name)
            bindings.append(Binding(alias, name, internal))
            internal_names.append(internal)
        schema = Schema(Attribute(internal, relation.schema.dtype(name))
                        for internal, name in zip(internal_names,
                                                  relation.names))
        return cls(Relation(schema, relation.columns), bindings)

    # -- resolution ----------------------------------------------------------

    def resolve(self, ref: ast.ColumnRef) -> str:
        def lookup(candidates: list[Binding]) -> list[Binding]:
            return [b for b in candidates
                    if b.name == ref.name
                    and (ref.table is None or b.alias == ref.table)]

        matches = lookup(self.visible_bindings())
        if not matches:
            matches = lookup([b for b in self.bindings if b.hidden])
        if not matches:
            known = sorted({b.name for b in self.bindings})
            raise BindError(
                f"unknown column {ref.to_sql()!r}; available: "
                f"{', '.join(known)}")
        if len(matches) > 1 and ref.table is None:
            aliases = sorted({str(b.alias) for b in matches})
            raise BindError(
                f"ambiguous column {ref.name!r} (in {', '.join(aliases)}); "
                "qualify it")
        return matches[0].internal

    def column(self, ref: ast.ColumnRef) -> BAT:
        return self.relation.column(self.resolve(ref))

    def visible_bindings(self) -> list[Binding]:
        return [b for b in self.bindings if not b.hidden]

    def star_bindings(self, table: Optional[str]) -> list[Binding]:
        if table is None:
            return self.visible_bindings()
        matches = [b for b in self.visible_bindings() if b.alias == table]
        if not matches:
            raise BindError(f"unknown table alias {table!r} in star")
        return matches

    def to_plain_relation(self) -> Relation:
        """Expose user-visible names (for RMA inputs and final output)."""
        visible = self.visible_bindings()
        names = [b.name for b in visible]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise BindError(
                f"duplicate output columns {duplicates}; add aliases")
        schema = Schema(Attribute(b.name,
                                  self.relation.schema.dtype(b.internal))
                        for b in visible)
        columns = [self.relation.column(b.internal) for b in visible]
        return Relation(schema, columns)

    def select_positions(self, positions: np.ndarray) -> "Frame":
        relation = Relation(
            self.relation.schema,
            [col.fetch(positions) for col in self.relation.columns])
        return Frame(relation, self.bindings)


# -- expression evaluation -------------------------------------------------------

_LIKE_CACHE: dict[str, re.Pattern] = {}


def _like_pattern(pattern: str) -> re.Pattern:
    if pattern not in _LIKE_CACHE:
        regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
        _LIKE_CACHE[pattern] = re.compile(f"^{regex}$", re.IGNORECASE)
    return _LIKE_CACHE[pattern]


def _as_mask(value: Any, n: int) -> np.ndarray:
    if isinstance(value, BAT):
        if value.dtype is not DataType.BOOL:
            raise PlanError("predicate did not evaluate to a boolean")
        return value.tail.astype(bool)
    if isinstance(value, (bool, np.bool_)):
        return np.full(n, bool(value))
    raise PlanError(f"predicate evaluated to {type(value).__name__}")


def _broadcast(value: Any, n: int) -> BAT:
    if isinstance(value, BAT):
        return value
    return BAT.constant(value, n)


class ExpressionEvaluator:
    """Vectorized evaluation of AST expressions over a frame."""

    def __init__(self, frame: Frame):
        self.frame = frame
        self.n = frame.relation.nrows

    def eval(self, expr: ast.Expr) -> Any:
        """Returns a BAT (column result) or a python scalar."""
        method = getattr(self, f"_eval_{type(expr).__name__.lower()}", None)
        if method is None:
            raise PlanError(f"cannot evaluate expression {expr!r}")
        return method(expr)

    def mask(self, expr: ast.Expr) -> np.ndarray:
        return _as_mask(self.eval(expr), self.n)

    # -- node handlers ----------------------------------------------------------

    def _eval_literal(self, expr: ast.Literal) -> Any:
        return expr.value

    def _eval_columnref(self, expr: ast.ColumnRef) -> BAT:
        return self.frame.column(expr)

    def _eval_unaryop(self, expr: ast.UnaryOp) -> Any:
        value = self.eval(expr.operand)
        if expr.op == "NOT":
            mask = _as_mask(value, self.n)
            return BAT(DataType.BOOL, ~mask)
        if expr.op == "-":
            if isinstance(value, BAT):
                return kernels.neg(value)
            return -value
        return value

    def _eval_binaryop(self, expr: ast.BinaryOp) -> Any:
        op = expr.op
        if op in ("AND", "OR"):
            left = _as_mask(self.eval(expr.left), self.n)
            right = _as_mask(self.eval(expr.right), self.n)
            out = left & right if op == "AND" else left | right
            return BAT(DataType.BOOL, out)
        if op in ("LIKE", "NOT LIKE"):
            return self._eval_like(expr)
        left = self.eval(expr.left)
        right = self.eval(expr.right)
        if op in ("+", "-", "*", "/", "%"):
            if isinstance(left, BAT):
                return kernels.binop(op, left, right)
            if isinstance(right, BAT):
                return kernels.rbinop(op, left, right)
            if op == "/":
                return left / right
            if op == "%":
                return left % right
            return {"+": left + right, "-": left - right,
                    "*": left * right}[op]
        if op == "||":
            return self._concat(left, right)
        # comparisons
        if isinstance(left, BAT):
            mask = kernels.compare(op, left, right)
        elif isinstance(right, BAT):
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
            mask = kernels.compare(flipped, right, left)
        else:
            func = {"=": lambda a, b: a == b, "<>": lambda a, b: a != b,
                    "!=": lambda a, b: a != b, "<": lambda a, b: a < b,
                    "<=": lambda a, b: a <= b, ">": lambda a, b: a > b,
                    ">=": lambda a, b: a >= b}[op]
            return func(left, right)
        return BAT(DataType.BOOL, mask)

    def _concat(self, left: Any, right: Any) -> Any:
        if not isinstance(left, BAT) and not isinstance(right, BAT):
            return str(left) + str(right)
        left_bat = _broadcast(left, self.n).cast(DataType.STR)
        right_bat = _broadcast(right, self.n).cast(DataType.STR)
        values = np.array(
            [None if a is None or b is None else a + b
             for a, b in zip(left_bat.tail, right_bat.tail)], dtype=object)
        return BAT(DataType.STR, values)

    def _eval_like(self, expr: ast.BinaryOp) -> BAT:
        value = self.eval(expr.left)
        pattern = self.eval(expr.right)
        if isinstance(pattern, BAT):
            raise PlanError("LIKE pattern must be a constant")
        regex = _like_pattern(str(pattern))
        bat = _broadcast(value, self.n).cast(DataType.STR)
        mask = np.array([v is not None and bool(regex.match(v))
                         for v in bat.tail], dtype=bool)
        if expr.op == "NOT LIKE":
            mask = ~mask
        return BAT(DataType.BOOL, mask)

    def _eval_isnull(self, expr: ast.IsNull) -> BAT:
        value = self.eval(expr.operand)
        if isinstance(value, BAT):
            mask = value.is_nil()
        else:
            mask = np.full(self.n, value is None)
        if expr.negated:
            mask = ~mask
        return BAT(DataType.BOOL, mask)

    def _eval_between(self, expr: ast.Between) -> BAT:
        rewritten = ast.BinaryOp(
            "AND",
            ast.BinaryOp(">=", expr.operand, expr.low),
            ast.BinaryOp("<=", expr.operand, expr.high))
        mask = _as_mask(self.eval(rewritten), self.n)
        if expr.negated:
            mask = ~mask
        return BAT(DataType.BOOL, mask)

    def _eval_inlist(self, expr: ast.InList) -> BAT:
        mask = np.zeros(self.n, dtype=bool)
        operand = self.eval(expr.operand)
        for item in expr.items:
            value = self.eval(item)
            if isinstance(operand, BAT):
                mask |= kernels.compare("=", operand, value)
            else:
                mask |= np.full(self.n, operand == value)
        if expr.negated:
            mask = ~mask
        return BAT(DataType.BOOL, mask)

    def _eval_casewhen(self, expr: ast.CaseWhen) -> Any:
        conditions = [_as_mask(self.eval(c), self.n)
                      for c, _ in expr.branches]
        values = [self.eval(v) for _, v in expr.branches]
        otherwise = (self.eval(expr.otherwise)
                     if expr.otherwise is not None else None)
        # Pick a result type from the first columnar/non-null value.
        prototype = next((v for v in values + [otherwise]
                          if isinstance(v, BAT)), None)
        if prototype is not None:
            dtype = prototype.dtype
        else:
            from repro.bat.bat import infer_type
            scalars = [v for v in values + [otherwise] if v is not None]
            dtype = infer_type(scalars)
        result = (_broadcast(otherwise, self.n) if otherwise is not None
                  else BAT.constant(None, self.n, dtype))
        # Apply branches from last to first so the first match wins.
        for mask, value in reversed(list(zip(conditions, values))):
            value_bat = (_broadcast(value, self.n) if value is not None
                         else BAT.constant(None, self.n, dtype))
            result = kernels.ifthenelse(mask, value_bat, result)
        return result

    def _eval_functioncall(self, expr: ast.FunctionCall) -> Any:
        if expr.name in logical.AGGREGATE_FUNCTIONS:
            raise PlanError(
                f"aggregate {expr.name} used outside of SELECT/HAVING "
                "with GROUP BY")
        func = SCALAR_FUNCTIONS.get(expr.name)
        if func is None:
            raise BindError(f"unknown function {expr.name}")
        args = [self.eval(a) for a in expr.args]
        return func(self, args)

    def _eval_star(self, expr: ast.Star) -> Any:
        raise PlanError("'*' is only valid in SELECT lists and COUNT(*)")


# -- plan execution -----------------------------------------------------------------

class Executor:
    """Evaluates logical plans against a catalog."""

    def __init__(self, catalog: Catalog, config: RmaConfig | None = None):
        self.catalog = catalog
        self.config = config or default_config()

    def run(self, plan: logical.Plan) -> Frame:
        method = getattr(self, f"_run_{type(plan).__name__.lower()}")
        return method(plan)

    # -- leaves -------------------------------------------------------------------

    def _run_scan(self, plan: logical.Scan) -> Frame:
        if plan.table == "_dual":
            relation = Relation.from_columns({"_one": [1]})
            return Frame.from_relation(relation, None)
        relation = self.catalog.get(plan.table)
        return Frame.from_relation(relation, plan.alias)

    def _run_subqueryscan(self, plan: logical.SubqueryScan) -> Frame:
        inner = self.run(plan.plan)
        return Frame.from_relation(inner.to_plain_relation(), plan.alias)

    def _run_rma(self, plan: logical.Rma) -> Frame:
        relations = [self.run(child).to_plain_relation()
                     for child in plan.inputs]
        if len(relations) == 1:
            result = rma_operation(plan.op, relations[0], list(plan.by[0]),
                                   config=self.config)
        else:
            result = rma_operation(plan.op, relations[0], list(plan.by[0]),
                                   relations[1], list(plan.by[1]),
                                   config=self.config)
        return Frame.from_relation(result, plan.alias)

    # -- unary nodes -----------------------------------------------------------------

    def _run_filter(self, plan: logical.Filter) -> Frame:
        frame = self.run(plan.child)
        mask = ExpressionEvaluator(frame).mask(plan.predicate)
        positions = np.nonzero(mask)[0].astype(np.int64)
        return frame.select_positions(positions)

    def _run_prune(self, plan: logical.Prune) -> Frame:
        frame = self.run(plan.child)
        keep = [b for b in frame.bindings if b.name in plan.names]
        if not keep:
            return frame
        relation = Relation(
            frame.relation.schema.project([b.internal for b in keep]),
            [frame.relation.column(b.internal) for b in keep])
        return Frame(relation, keep)

    def _run_project(self, plan: logical.Project) -> Frame:
        frame = self.run(plan.child)
        evaluator = ExpressionEvaluator(frame)
        names: list[str] = []
        columns: list[BAT] = []
        for index, item in enumerate(plan.items):
            if isinstance(item.expr, ast.Star):
                for binding in frame.star_bindings(item.expr.table):
                    names.append(binding.name)
                    columns.append(frame.relation.column(binding.internal))
                continue
            value = evaluator.eval(item.expr)
            names.append(item.alias
                         or logical.default_output_name(item.expr, index))
            columns.append(_broadcast(value, frame.relation.nrows))
        bindings = []
        internals = []
        for name, column in zip(names, columns):
            internal = Frame._fresh(name)
            bindings.append(Binding(None, name, internal))
            internals.append(internal)
        schema = Schema(Attribute(i, c.dtype)
                        for i, c in zip(internals, columns))
        # Keep the child's columns as hidden bindings so ORDER BY above the
        # projection can still reference source columns.
        hidden = [Binding(b.alias, b.name, b.internal, hidden=True)
                  for b in frame.bindings]
        schema = schema.concat(frame.relation.schema)
        all_columns = columns + list(frame.relation.columns)
        return Frame(Relation(schema, all_columns), bindings + hidden)

    def _run_distinct(self, plan: logical.Distinct) -> Frame:
        frame = self.run(plan.child)
        # DISTINCT applies to the visible output only; hidden (source)
        # columns are dropped — referencing them above DISTINCT is invalid.
        visible = frame.visible_bindings()
        relation = Relation(
            frame.relation.schema.project([b.internal for b in visible]),
            [frame.relation.column(b.internal) for b in visible])
        return Frame(rel_ops.distinct(relation), visible)

    def _run_sort(self, plan: logical.Sort) -> Frame:
        frame = self.run(plan.child)
        evaluator = ExpressionEvaluator(frame)
        positions = np.arange(frame.relation.nrows, dtype=np.int64)
        for item in reversed(plan.items):
            value = evaluator.eval(item.expr)
            column = _broadcast(value, frame.relation.nrows)
            key = column.tail[positions]
            order = np.argsort(key, kind="stable")
            if item.descending:
                order = order[::-1]
            positions = positions[order]
        return frame.select_positions(positions)

    def _run_limit(self, plan: logical.Limit) -> Frame:
        frame = self.run(plan.child)
        relation = rel_ops.limit(frame.relation, plan.count, plan.offset)
        return Frame(relation, frame.bindings)

    # -- aggregation --------------------------------------------------------------------

    def _run_aggregate(self, plan: logical.Aggregate) -> Frame:
        frame = self.run(plan.child)
        evaluator = ExpressionEvaluator(frame)
        n = frame.relation.nrows

        data: dict[str, BAT] = {}
        key_bindings: list[tuple[str, ast.Expr]] = []
        for key_expr, key_name in zip(plan.keys, plan.key_names):
            data[key_name] = _broadcast(evaluator.eval(key_expr), n)
            key_bindings.append((key_name, key_expr))

        specs: list[rel_aggregate.AggregateSpec] = []
        distinct_specs: list[logical.AggregateSpecNode] = []
        for spec in plan.aggregates:
            if spec.distinct:
                if spec.func != "count":
                    raise PlanError(
                        "DISTINCT is only supported for COUNT")
                distinct_specs.append(spec)
                continue
            if spec.argument is None:
                specs.append(rel_aggregate.AggregateSpec(
                    "count", "*", spec.out_name))
            else:
                arg_name = f"_arg_{spec.out_name}"
                data[arg_name] = _broadcast(evaluator.eval(spec.argument), n)
                specs.append(rel_aggregate.AggregateSpec(
                    spec.func, arg_name, spec.out_name))
        for spec in distinct_specs:
            arg_name = f"_arg_{spec.out_name}"
            data[arg_name] = _broadcast(evaluator.eval(spec.argument), n)

        work = Relation.from_columns(data) if data else frame.relation
        key_names = [name for name, _ in key_bindings]
        grouped = rel_aggregate.group_by(work, key_names, specs)

        if distinct_specs:
            grouped = self._attach_count_distinct(
                work, grouped, key_names, distinct_specs)

        bindings = []
        for name, expr in key_bindings:
            bindings.append(Binding(None, name, name))
            # Also expose the original column name so un-rewritten
            # references (e.g. qualified GROUP BY keys) still resolve.
            if isinstance(expr, ast.ColumnRef):
                bindings.append(Binding(expr.table, expr.name, name))
        for spec in plan.aggregates:
            bindings.append(Binding(None, spec.out_name, spec.out_name))
        return Frame(grouped, bindings)

    def _attach_count_distinct(self, work: Relation, grouped: Relation,
                               key_names: list[str],
                               specs: list[logical.AggregateSpecNode]) \
            -> Relation:
        """COUNT(DISTINCT x): count unique (group, value) pairs per group."""
        if key_names:
            gids = rel_join.factorize(work.bats(key_names))
        else:
            gids = np.zeros(work.nrows, dtype=np.int64)
        uniques, inverse = np.unique(gids, return_inverse=True)
        ngroups = max(len(uniques), 1)
        for spec in specs:
            if work.nrows == 0:
                counts = np.zeros(ngroups, dtype=np.int64)
            else:
                values = work.column(f"_arg_{spec.out_name}")
                value_codes = rel_join.factorize([values])
                span = int(value_codes.max()) + 1
                pairs = inverse.astype(np.int64) * span + value_codes
                pair_gids = np.unique(pairs) // span
                counts = np.bincount(pair_gids, minlength=ngroups)
            if not key_names:
                column = BAT.from_values([int(counts[0])], DataType.INT)
            else:
                # grouped rows are in np.unique(gids) order, matching
                # counts' indexing.
                column = BAT(DataType.INT, counts.astype(np.int64))
            grouped = rel_ops.extend(grouped, spec.out_name, column)
        return grouped

    # -- joins ------------------------------------------------------------------------

    def _run_joinplan(self, plan: logical.JoinPlan) -> Frame:
        left = self.run(plan.left)
        right = self.run(plan.right)
        if plan.kind == "cross" and plan.condition is None:
            relation = rel_ops.cross(left.relation, right.relation)
            return Frame(relation, left.bindings + right.bindings)
        equi, residual = self._split_join_condition(plan.condition, left,
                                                    right)
        if not equi:
            if plan.kind == "left":
                raise PlanError(
                    "LEFT JOIN requires at least one equality condition")
            frame = Frame(rel_ops.cross(left.relation, right.relation),
                          left.bindings + right.bindings)
            if plan.condition is not None:
                mask = ExpressionEvaluator(frame).mask(plan.condition)
                frame = frame.select_positions(
                    np.nonzero(mask)[0].astype(np.int64))
            return frame
        left_keys = [ExpressionEvaluator(left).eval(e) for e, _ in equi]
        right_keys = [ExpressionEvaluator(right).eval(e) for _, e in equi]
        left_keys = [_broadcast(k, left.relation.nrows) for k in left_keys]
        right_keys = [_broadcast(k, right.relation.nrows)
                      for k in right_keys]
        lpos, rpos = rel_join.join_positions(left_keys, right_keys,
                                             how=plan.kind
                                             if plan.kind != "cross"
                                             else "inner")
        left_frame = left.select_positions(lpos)
        if plan.kind == "left":
            safe = np.where(rpos < 0, 0, rpos)
            right_cols = []
            for col in right.relation.columns:
                fetched = col.fetch(safe)
                nil = BAT.constant(None, len(rpos), fetched.dtype) \
                    if fetched.dtype is not DataType.BOOL else fetched
                tail = np.where(rpos < 0, nil.tail, fetched.tail)
                if fetched.dtype is DataType.STR:
                    tail = tail.astype(object)
                right_cols.append(
                    BAT(fetched.dtype,
                        tail.astype(fetched.dtype.numpy_dtype)))
            right_rel = Relation(right.relation.schema, right_cols)
        else:
            right_rel = Relation(
                right.relation.schema,
                [col.fetch(rpos) for col in right.relation.columns])
        combined = Relation(
            left_frame.relation.schema.concat(right_rel.schema),
            list(left_frame.relation.columns) + list(right_rel.columns))
        frame = Frame(combined, left.bindings + right.bindings)
        if residual:
            predicate = logical.conjoin(residual)
            mask = ExpressionEvaluator(frame).mask(predicate)
            frame = frame.select_positions(
                np.nonzero(mask)[0].astype(np.int64))
        return frame

    def _split_join_condition(self, condition: Optional[ast.Expr],
                              left: Frame, right: Frame):
        """Separate equi-join conjuncts (left expr, right expr) from the
        residual predicate."""
        if condition is None:
            return [], []
        equi: list[tuple[ast.Expr, ast.Expr]] = []
        residual: list[ast.Expr] = []
        for conjunct in logical.split_conjuncts(condition):
            if (isinstance(conjunct, ast.BinaryOp)
                    and conjunct.op == "="):
                sides = self._classify_sides(conjunct, left, right)
                if sides is not None:
                    equi.append(sides)
                    continue
            residual.append(conjunct)
        return equi, residual

    def _classify_sides(self, eq: ast.BinaryOp, left: Frame,
                        right: Frame):
        def side_of(expr: ast.Expr) -> str | None:
            refs = logical.column_refs(expr)
            if not refs:
                return None
            sides = set()
            for ref in refs:
                if self._resolvable(left, ref):
                    sides.add("left")
                elif self._resolvable(right, ref):
                    sides.add("right")
                else:
                    return "unknown"
            if len(sides) == 1:
                return sides.pop()
            return "both"

        left_side = side_of(eq.left)
        right_side = side_of(eq.right)
        if left_side == "left" and right_side == "right":
            return eq.left, eq.right
        if left_side == "right" and right_side == "left":
            return eq.right, eq.left
        return None

    @staticmethod
    def _resolvable(frame: Frame, ref: ast.ColumnRef) -> bool:
        try:
            frame.resolve(ref)
            return True
        except BindError:
            return False
