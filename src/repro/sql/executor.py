"""Compatibility shim: plan execution moved to the shared plan layer.

The executor, expression evaluator and frame machinery live in
:mod:`repro.plan.physical` — one engine serving the SQL session and the
lazy builder.  This module re-exports the public names so existing imports
(``from repro.sql.executor import Executor``) keep working.
"""

from repro.plan.physical import (  # noqa: F401  (re-exported API)
    Binding,
    ExecStats,
    ExpressionEvaluator,
    Executor,
    Frame,
    PhysicalInfo,
    _as_mask,
    _broadcast,
    _like_pattern,
    plan_physical,
)

__all__ = [
    "Binding", "ExecStats", "ExpressionEvaluator", "Executor", "Frame",
    "PhysicalInfo", "plan_physical",
]
