"""Abstract syntax tree for the SQL dialect.

Expression nodes render back to SQL via ``to_sql()`` so tests can assert
parse/render round trips.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence


class Node:
    """Base class for AST nodes."""

    def to_sql(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


# -- expressions ------------------------------------------------------------

class Expr(Node):
    pass


@dataclass(frozen=True)
class Literal(Expr):
    value: Any  # int, float, str, bool, datetime.date/time, or None

    def to_sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        import datetime
        if isinstance(self.value, datetime.date):
            return f"DATE '{self.value.isoformat()}'"
        if isinstance(self.value, datetime.time):
            return f"TIME '{self.value.isoformat()}'"
        return repr(self.value)


@dataclass(frozen=True)
class ColumnRef(Expr):
    name: str
    table: Optional[str] = None

    def to_sql(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Expr):
    table: Optional[str] = None

    def to_sql(self) -> str:
        return f"{self.table}.*" if self.table else "*"


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str
    left: Expr
    right: Expr

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # "-", "+", "NOT"
    operand: Expr

    def to_sql(self) -> str:
        if self.op == "NOT":
            return f"(NOT {self.operand.to_sql()})"
        return f"({self.op}{self.operand.to_sql()})"


@dataclass(frozen=True)
class FunctionCall(Expr):
    name: str  # upper-cased
    args: tuple[Expr, ...]
    distinct: bool = False

    def to_sql(self) -> str:
        inner = ", ".join(a.to_sql() for a in self.args)
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.name}({prefix}{inner})"


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False

    def to_sql(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.to_sql()} {suffix})"


@dataclass(frozen=True)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def to_sql(self) -> str:
        word = "NOT BETWEEN" if self.negated else "BETWEEN"
        return (f"({self.operand.to_sql()} {word} {self.low.to_sql()} "
                f"AND {self.high.to_sql()})")


@dataclass(frozen=True)
class InList(Expr):
    operand: Expr
    items: tuple[Expr, ...]
    negated: bool = False

    def to_sql(self) -> str:
        word = "NOT IN" if self.negated else "IN"
        inner = ", ".join(i.to_sql() for i in self.items)
        return f"({self.operand.to_sql()} {word} ({inner}))"


@dataclass(frozen=True)
class CaseWhen(Expr):
    branches: tuple[tuple[Expr, Expr], ...]
    otherwise: Optional[Expr] = None

    def to_sql(self) -> str:
        parts = ["CASE"]
        for cond, value in self.branches:
            parts.append(f"WHEN {cond.to_sql()} THEN {value.to_sql()}")
        if self.otherwise is not None:
            parts.append(f"ELSE {self.otherwise.to_sql()}")
        parts.append("END")
        return " ".join(parts)


# -- table expressions --------------------------------------------------------

class TableExpr(Node):
    pass


@dataclass(frozen=True)
class TableRef(TableExpr):
    name: str
    alias: Optional[str] = None

    def to_sql(self) -> str:
        return f"{self.name} AS {self.alias}" if self.alias else self.name


@dataclass(frozen=True)
class SubqueryRef(TableExpr):
    query: "Select"
    alias: str

    def to_sql(self) -> str:
        return f"({self.query.to_sql()}) AS {self.alias}"


@dataclass(frozen=True)
class RmaArg(Node):
    """One ``<table expr> BY <attrs>`` argument of an RMA call."""

    table: TableExpr
    by: tuple[str, ...]

    def to_sql(self) -> str:
        by = ", ".join(self.by)
        if len(self.by) > 1:
            by = f"({by})"
        return f"{self.table.to_sql()} BY {by}"


@dataclass(frozen=True)
class RmaCall(TableExpr):
    """A relational matrix operation in the FROM clause."""

    op: str  # lower-cased operation name
    args: tuple[RmaArg, ...]
    alias: Optional[str] = None

    def to_sql(self) -> str:
        inner = ", ".join(a.to_sql() for a in self.args)
        sql = f"{self.op.upper()}({inner})"
        return f"{sql} AS {self.alias}" if self.alias else sql


@dataclass(frozen=True)
class Join(TableExpr):
    kind: str  # "inner", "left", "cross"
    left: TableExpr
    right: TableExpr
    condition: Optional[Expr] = None

    def to_sql(self) -> str:
        if self.kind == "cross":
            return f"{self.left.to_sql()} CROSS JOIN {self.right.to_sql()}"
        word = {"inner": "JOIN", "left": "LEFT JOIN"}[self.kind]
        return (f"{self.left.to_sql()} {word} {self.right.to_sql()} "
                f"ON {self.condition.to_sql()}")


# -- statements ----------------------------------------------------------------

@dataclass(frozen=True)
class SelectItem(Node):
    expr: Expr
    alias: Optional[str] = None

    def to_sql(self) -> str:
        sql = self.expr.to_sql()
        return f"{sql} AS {self.alias}" if self.alias else sql


@dataclass(frozen=True)
class OrderItem(Node):
    expr: Expr
    descending: bool = False

    def to_sql(self) -> str:
        return f"{self.expr.to_sql()}{' DESC' if self.descending else ''}"


@dataclass(frozen=True)
class Select(Node):
    items: tuple[SelectItem, ...]
    source: Optional[TableExpr] = None
    where: Optional[Expr] = None
    group_by: tuple[Expr, ...] = field(default=())
    having: Optional[Expr] = None
    order_by: tuple[OrderItem, ...] = field(default=())
    limit: Optional[int] = None
    offset: int = 0
    distinct: bool = False

    def to_sql(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(i.to_sql() for i in self.items))
        if self.source is not None:
            parts.append(f"FROM {self.source.to_sql()}")
        if self.where is not None:
            parts.append(f"WHERE {self.where.to_sql()}")
        if self.group_by:
            parts.append("GROUP BY "
                         + ", ".join(e.to_sql() for e in self.group_by))
        if self.having is not None:
            parts.append(f"HAVING {self.having.to_sql()}")
        if self.order_by:
            parts.append("ORDER BY "
                         + ", ".join(o.to_sql() for o in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
            if self.offset:
                parts.append(f"OFFSET {self.offset}")
        return " ".join(parts)


@dataclass(frozen=True)
class ColumnDef(Node):
    name: str
    type_name: str  # INT, DOUBLE, VARCHAR/STRING/TEXT, DATE, TIME, BOOLEAN

    def to_sql(self) -> str:
        return f"{self.name} {self.type_name}"


@dataclass(frozen=True)
class CreateTable(Node):
    name: str
    columns: tuple[ColumnDef, ...] = field(default=())
    source: Optional[Select] = None  # CREATE TABLE ... AS SELECT

    def to_sql(self) -> str:
        if self.source is not None:
            return f"CREATE TABLE {self.name} AS {self.source.to_sql()}"
        cols = ", ".join(c.to_sql() for c in self.columns)
        return f"CREATE TABLE {self.name} ({cols})"


@dataclass(frozen=True)
class DropTable(Node):
    name: str
    if_exists: bool = False

    def to_sql(self) -> str:
        clause = "IF EXISTS " if self.if_exists else ""
        return f"DROP TABLE {clause}{self.name}"


@dataclass(frozen=True)
class Explain(Node):
    """EXPLAIN <select>: show the optimized logical/physical plan."""

    query: Select

    def to_sql(self) -> str:
        return f"EXPLAIN {self.query.to_sql()}"


@dataclass(frozen=True)
class InsertValues(Node):
    table: str
    rows: tuple[tuple[Expr, ...], ...]
    columns: tuple[str, ...] = field(default=())

    def to_sql(self) -> str:
        cols = f" ({', '.join(self.columns)})" if self.columns else ""
        rows = ", ".join(
            "(" + ", ".join(v.to_sql() for v in row) + ")"
            for row in self.rows)
        return f"INSERT INTO {self.table}{cols} VALUES {rows}"


Statement = Select | CreateTable | DropTable | InsertValues | Explain
