"""SQL tokenizer."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SqlSyntaxError

KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING",
    "ORDER", "ASC", "DESC", "LIMIT", "OFFSET", "AS", "AND", "OR", "NOT",
    "JOIN", "INNER", "LEFT", "OUTER", "CROSS", "ON", "IS", "NULL",
    "TRUE", "FALSE", "BETWEEN", "IN", "LIKE", "CASE", "WHEN", "THEN",
    "ELSE", "END", "CREATE", "TABLE", "DROP", "INSERT", "INTO", "VALUES",
    "IF", "EXISTS", "UNION", "ALL", "DATE", "TIME", "CAST",
}
# EXPLAIN is deliberately NOT a keyword: it is recognized only at statement
# start (parser), so 'explain' stays usable as a column/table identifier.

SYMBOLS = ("<>", "!=", "<=", ">=", "||", "<", ">", "=", "(", ")", ",",
           "+", "-", "*", "/", "%", ".", ";")


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is one of: KEYWORD, IDENT, NUMBER, STRING, SYMBOL, EOF.
    Keywords are upper-cased; identifiers keep their original spelling
    (quoted identifiers via double quotes preserve case and may collide
    with keywords).
    """

    kind: str
    value: str
    line: int
    column: int

    def is_keyword(self, *words: str) -> bool:
        return self.kind == "KEYWORD" and self.value in words

    def is_symbol(self, *symbols: str) -> bool:
        return self.kind == "SYMBOL" and self.value in symbols

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind}, {self.value!r})"


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL text; raises :class:`SqlSyntaxError` on bad input."""
    tokens: list[Token] = []
    i, line, col = 0, 1, 1
    n = len(text)

    def advance(k: int) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if i < n and text[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            advance(1)
            continue
        if text.startswith("--", i):
            while i < n and text[i] != "\n":
                advance(1)
            continue
        start_line, start_col = line, col
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = seen_exp = False
            while j < n:
                c = text[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    if j + 1 < n and (text[j + 1].isdigit()
                                      or text[j + 1] in "+-"):
                        seen_exp = True
                        j += 2 if text[j + 1] in "+-" else 1
                    else:
                        break
                else:
                    break
            tokens.append(Token("NUMBER", text[i:j], start_line, start_col))
            advance(j - i)
            continue
        if ch == "'":
            j = i + 1
            parts = []
            while True:
                if j >= n:
                    raise SqlSyntaxError("unterminated string literal",
                                         start_line, start_col)
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(text[j])
                j += 1
            tokens.append(Token("STRING", "".join(parts),
                                start_line, start_col))
            advance(j + 1 - i)
            continue
        if ch == '"':
            j = text.find('"', i + 1)
            if j < 0:
                raise SqlSyntaxError("unterminated quoted identifier",
                                     start_line, start_col)
            tokens.append(Token("IDENT", text[i + 1:j],
                                start_line, start_col))
            advance(j + 1 - i)
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, start_line, start_col))
            else:
                tokens.append(Token("IDENT", word, start_line, start_col))
            advance(j - i)
            continue
        matched = False
        for sym in SYMBOLS:
            if text.startswith(sym, i):
                tokens.append(Token("SYMBOL", sym, start_line, start_col))
                advance(len(sym))
                matched = True
                break
        if not matched:
            raise SqlSyntaxError(f"unexpected character {ch!r}",
                                 start_line, start_col)
    tokens.append(Token("EOF", "", line, col))
    return tokens
