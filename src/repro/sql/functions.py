"""Scalar SQL function registry.

Each function receives the evaluator (for row count / broadcasting) and the
already-evaluated arguments (BATs or python scalars) and returns a BAT or
scalar.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.bat.bat import BAT
from repro.bat import kernels
from repro.errors import PlanError


def _unary_math(name: str):
    def apply(evaluator, args: list[Any]):
        if len(args) != 1:
            raise PlanError(f"{name} takes one argument")
        value = args[0]
        if isinstance(value, BAT):
            return kernels.math_unary(name, value)
        scalar_funcs = {
            "sqrt": math.sqrt, "abs": abs, "exp": math.exp,
            "log": math.log, "ln": math.log, "floor": math.floor,
            "ceil": math.ceil, "sin": math.sin, "cos": math.cos,
            "round": round,
        }
        return scalar_funcs[name](value)
    return apply


def _power(evaluator, args: list[Any]):
    if len(args) != 2:
        raise PlanError("POWER takes two arguments")
    base, exponent = args
    if isinstance(exponent, BAT):
        raise PlanError("POWER exponent must be a constant")
    if isinstance(base, BAT):
        return kernels.power(base, float(exponent))
    return float(base) ** float(exponent)


def _coalesce(evaluator, args: list[Any]):
    if not args:
        raise PlanError("COALESCE requires arguments")
    from repro.plan.physical import _broadcast
    n = evaluator.n
    result = _broadcast(args[-1], n)
    for value in reversed(args[:-1]):
        bat = _broadcast(value, n)
        mask = ~bat.is_nil()
        result = kernels.ifthenelse(mask, bat, result)
    return result


def _upper(evaluator, args: list[Any]):
    return _string_map(args, str.upper, "UPPER")


def _lower(evaluator, args: list[Any]):
    return _string_map(args, str.lower, "LOWER")


def _length(evaluator, args: list[Any]):
    import numpy as np
    from repro.bat.bat import DataType
    if len(args) != 1:
        raise PlanError("LENGTH takes one argument")
    value = args[0]
    if isinstance(value, BAT):
        bat = value.cast(DataType.STR)
        out = np.array([-1 if v is None else len(v) for v in bat.tail],
                       dtype=np.int64)
        from repro.bat.bat import NIL_INT
        out[[v is None for v in bat.tail]] = NIL_INT
        return BAT(DataType.INT, out)
    return len(str(value))


def _string_map(args: list[Any], func: Callable[[str], str], name: str):
    import numpy as np
    from repro.bat.bat import DataType
    if len(args) != 1:
        raise PlanError(f"{name} takes one argument")
    value = args[0]
    if isinstance(value, BAT):
        bat = value.cast(DataType.STR)
        out = np.array([None if v is None else func(v) for v in bat.tail],
                       dtype=object)
        return BAT(DataType.STR, out)
    return func(str(value))


SCALAR_FUNCTIONS: dict[str, Callable] = {
    "ABS": _unary_math("abs"),
    "SQRT": _unary_math("sqrt"),
    "EXP": _unary_math("exp"),
    "LOG": _unary_math("log"),
    "LN": _unary_math("ln"),
    "FLOOR": _unary_math("floor"),
    "CEIL": _unary_math("ceil"),
    "ROUND": _unary_math("round"),
    "SIN": _unary_math("sin"),
    "COS": _unary_math("cos"),
    "POWER": _power,
    "POW": _power,
    "COALESCE": _coalesce,
    "UPPER": _upper,
    "LOWER": _lower,
    "LENGTH": _length,
}
