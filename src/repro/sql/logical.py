"""Compatibility shim: the logical plan layer moved to :mod:`repro.plan`.

The plan node types and expression-analysis helpers live in
:mod:`repro.plan.nodes`; the SELECT compiler (AST -> shared IR) lives in
:mod:`repro.plan.build`.  This module is a pure re-export so existing
imports (``from repro.sql.logical import build_select``) keep working — the
IR has exactly one home.
"""

from repro.plan.build import (  # noqa: F401  (re-exported API)
    build_select,
    build_table_expr,
)
from repro.plan.nodes import (  # noqa: F401  (re-exported API)
    AGGREGATE_FUNCTIONS,
    Aggregate,
    AggregateSpecNode,
    Distinct,
    Filter,
    FusedRma,
    JoinPlan,
    Limit,
    Plan,
    Project,
    Prune,
    RelScan,
    Rma,
    Scan,
    Sort,
    SubqueryScan,
    aggregate_calls,
    column_refs,
    conjoin,
    contains_aggregate,
    default_output_name,
    replace_expr,
    split_conjuncts,
    walk_expr,
    walk_plan,
)

__all__ = [
    "AGGREGATE_FUNCTIONS", "Aggregate", "AggregateSpecNode", "Distinct",
    "Filter", "FusedRma", "JoinPlan", "Limit", "Plan", "Project", "Prune",
    "RelScan", "Rma", "Scan", "Sort", "SubqueryScan", "aggregate_calls",
    "build_select", "build_table_expr", "column_refs", "conjoin",
    "contains_aggregate", "default_output_name", "replace_expr",
    "split_conjuncts", "walk_expr", "walk_plan",
]
