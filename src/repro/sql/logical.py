"""Logical query plans and AST analysis utilities."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Optional

from repro.errors import PlanError
from repro.sql import ast

AGGREGATE_FUNCTIONS = {"AVG": "avg", "SUM": "sum", "COUNT": "count",
                       "MIN": "min", "MAX": "max", "VAR": "var",
                       "STDDEV": "std"}


class Plan:
    """Base class of logical plan nodes."""

    def children(self) -> tuple["Plan", ...]:
        return ()


@dataclass(frozen=True)
class Scan(Plan):
    table: str
    alias: str


@dataclass(frozen=True)
class SubqueryScan(Plan):
    plan: Plan
    alias: str

    def children(self):
        return (self.plan,)


@dataclass(frozen=True)
class Rma(Plan):
    """A relational matrix operation node: op over one or two inputs."""

    op: str
    inputs: tuple[Plan, ...]
    by: tuple[tuple[str, ...], ...]
    alias: Optional[str]

    def children(self):
        return self.inputs


@dataclass(frozen=True)
class Filter(Plan):
    child: Plan
    predicate: ast.Expr

    def children(self):
        return (self.child,)


@dataclass(frozen=True)
class JoinPlan(Plan):
    kind: str  # "inner", "left", "cross"
    left: Plan
    right: Plan
    condition: Optional[ast.Expr] = None

    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class Project(Plan):
    """Evaluate expressions into named output columns."""

    child: Plan
    items: tuple[ast.SelectItem, ...]

    def children(self):
        return (self.child,)


@dataclass(frozen=True)
class AggregateSpecNode:
    func: str          # relational aggregate name ("sum", "avg", ...)
    argument: ast.Expr | None  # None for count(*)
    distinct: bool
    out_name: str


@dataclass(frozen=True)
class Aggregate(Plan):
    child: Plan
    keys: tuple[ast.Expr, ...]
    key_names: tuple[str, ...]
    aggregates: tuple[AggregateSpecNode, ...]

    def children(self):
        return (self.child,)


@dataclass(frozen=True)
class Distinct(Plan):
    child: Plan

    def children(self):
        return (self.child,)


@dataclass(frozen=True)
class Sort(Plan):
    child: Plan
    items: tuple[ast.OrderItem, ...]

    def children(self):
        return (self.child,)


@dataclass(frozen=True)
class Limit(Plan):
    child: Plan
    count: int
    offset: int = 0

    def children(self):
        return (self.child,)


@dataclass(frozen=True)
class Prune(Plan):
    """Advisory projection: keep only the named columns (added by the
    optimizer below joins; unqualified names)."""

    child: Plan
    names: tuple[str, ...]

    def children(self):
        return (self.child,)


# -- expression analysis -------------------------------------------------------

def walk_expr(expr: ast.Expr) -> Iterator[ast.Expr]:
    """Yield the expression and all sub-expressions."""
    yield expr
    if isinstance(expr, ast.BinaryOp):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, ast.UnaryOp):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, ast.FunctionCall):
        for arg in expr.args:
            yield from walk_expr(arg)
    elif isinstance(expr, ast.IsNull):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, ast.Between):
        yield from walk_expr(expr.operand)
        yield from walk_expr(expr.low)
        yield from walk_expr(expr.high)
    elif isinstance(expr, ast.InList):
        yield from walk_expr(expr.operand)
        for item in expr.items:
            yield from walk_expr(item)
    elif isinstance(expr, ast.CaseWhen):
        for cond, value in expr.branches:
            yield from walk_expr(cond)
            yield from walk_expr(value)
        if expr.otherwise is not None:
            yield from walk_expr(expr.otherwise)


def column_refs(expr: ast.Expr) -> list[ast.ColumnRef]:
    return [e for e in walk_expr(expr) if isinstance(e, ast.ColumnRef)]


def contains_aggregate(expr: ast.Expr) -> bool:
    return any(isinstance(e, ast.FunctionCall)
               and e.name in AGGREGATE_FUNCTIONS
               for e in walk_expr(expr))


def aggregate_calls(expr: ast.Expr) -> list[ast.FunctionCall]:
    return [e for e in walk_expr(expr)
            if isinstance(e, ast.FunctionCall)
            and e.name in AGGREGATE_FUNCTIONS]


def split_conjuncts(expr: ast.Expr) -> list[ast.Expr]:
    """Break a predicate into AND-connected conjuncts."""
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: list[ast.Expr]) -> Optional[ast.Expr]:
    if not conjuncts:
        return None
    expr = conjuncts[0]
    for part in conjuncts[1:]:
        expr = ast.BinaryOp("AND", expr, part)
    return expr


def replace_expr(expr: ast.Expr, mapping: dict[ast.Expr, ast.Expr]) \
        -> ast.Expr:
    """Structurally replace sub-expressions (used to rewrite aggregates)."""
    if expr in mapping:
        return mapping[expr]
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(expr.op, replace_expr(expr.left, mapping),
                            replace_expr(expr.right, mapping))
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, replace_expr(expr.operand, mapping))
    if isinstance(expr, ast.FunctionCall):
        return ast.FunctionCall(
            expr.name,
            tuple(replace_expr(a, mapping) for a in expr.args),
            expr.distinct)
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(replace_expr(expr.operand, mapping), expr.negated)
    if isinstance(expr, ast.Between):
        return ast.Between(replace_expr(expr.operand, mapping),
                           replace_expr(expr.low, mapping),
                           replace_expr(expr.high, mapping), expr.negated)
    if isinstance(expr, ast.InList):
        return ast.InList(replace_expr(expr.operand, mapping),
                          tuple(replace_expr(i, mapping)
                                for i in expr.items), expr.negated)
    if isinstance(expr, ast.CaseWhen):
        return ast.CaseWhen(
            tuple((replace_expr(c, mapping), replace_expr(v, mapping))
                  for c, v in expr.branches),
            replace_expr(expr.otherwise, mapping)
            if expr.otherwise is not None else None)
    return expr


# -- plan construction ----------------------------------------------------------

_ANON = 0


def _fresh_alias(prefix: str) -> str:
    global _ANON
    _ANON += 1
    return f"_{prefix}{_ANON}"


def default_output_name(expr: ast.Expr, index: int) -> str:
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, ast.FunctionCall):
        return expr.name.lower()
    return f"col{index}"


def build_table_expr(node: ast.TableExpr) -> Plan:
    if isinstance(node, ast.TableRef):
        return Scan(node.name, node.alias or node.name)
    if isinstance(node, ast.SubqueryRef):
        return SubqueryScan(build_select(node.query), node.alias)
    if isinstance(node, ast.RmaCall):
        inputs = tuple(build_table_expr(arg.table) for arg in node.args)
        by = tuple(arg.by for arg in node.args)
        return Rma(node.op, inputs, by, node.alias)
    if isinstance(node, ast.Join):
        return JoinPlan(node.kind, build_table_expr(node.left),
                        build_table_expr(node.right), node.condition)
    raise PlanError(f"unhandled table expression {node!r}")


def build_select(select: ast.Select) -> Plan:
    """Translate a SELECT AST into a logical plan."""
    if select.source is None:
        plan: Plan = Scan("_dual", "_dual")
    else:
        plan = build_table_expr(select.source)
    if select.where is not None:
        plan = Filter(plan, select.where)

    has_aggregates = (bool(select.group_by)
                      or any(contains_aggregate(i.expr)
                             for i in select.items)
                      or (select.having is not None
                          and contains_aggregate(select.having)))

    if has_aggregates:
        plan, items, having = _plan_aggregation(plan, select)
    else:
        items = select.items
        having = select.having
        if having is not None:
            raise PlanError("HAVING without aggregation or GROUP BY")

    # SQL clause order: ... GROUP BY -> HAVING -> SELECT -> DISTINCT ->
    # ORDER BY -> LIMIT.  ORDER BY may reference both select aliases and
    # source columns; Project keeps source columns as hidden bindings so the
    # Sort above it can resolve them.
    if having is not None:
        plan = Filter(plan, having)
    plan = Project(plan, tuple(items))
    if select.distinct:
        plan = Distinct(plan)
    if select.order_by:
        plan = Sort(plan, select.order_by)
    if select.limit is not None:
        plan = Limit(plan, select.limit, select.offset)
    return plan


def _plan_aggregation(plan: Plan, select: ast.Select) \
        -> tuple[Plan, tuple[ast.SelectItem, ...], Optional[ast.Expr]]:
    """Insert an Aggregate node and rewrite select items / HAVING.

    Aggregate calls become references to generated columns; group keys are
    available under generated names as well.
    """
    mapping: dict[ast.Expr, ast.Expr] = {}
    specs: list[AggregateSpecNode] = []
    seen: dict[ast.Expr, str] = {}

    sources = [item.expr for item in select.items]
    if select.having is not None:
        sources.append(select.having)
    counter = 0
    for source in sources:
        for call in aggregate_calls(source):
            if call in seen:
                continue
            counter += 1
            out_name = f"_agg{counter}"
            seen[call] = out_name
            func = AGGREGATE_FUNCTIONS[call.name]
            if len(call.args) != 1:
                raise PlanError(
                    f"{call.name} takes exactly one argument")
            arg = call.args[0]
            argument: ast.Expr | None
            if isinstance(arg, ast.Star):
                if call.name != "COUNT":
                    raise PlanError(f"{call.name}(*) is not valid")
                argument = None
            else:
                argument = arg
            specs.append(AggregateSpecNode(func, argument, call.distinct,
                                           out_name))
            mapping[call] = ast.ColumnRef(out_name)

    key_names = []
    key_exprs = list(select.group_by)
    for i, key in enumerate(key_exprs):
        name = default_output_name(key, i)
        key_name = f"_key{i}_{name}"
        key_names.append(key_name)
        mapping[key] = ast.ColumnRef(key_name)

    plan = Aggregate(plan, tuple(key_exprs), tuple(key_names), tuple(specs))

    new_items = []
    for index, item in enumerate(select.items):
        rewritten = replace_expr(item.expr, mapping)
        alias = item.alias or default_output_name(item.expr, index)
        new_items.append(ast.SelectItem(rewritten, alias))
    having = (replace_expr(select.having, mapping)
              if select.having is not None else None)
    return plan, tuple(new_items), having
