"""Recursive-descent SQL parser with the RMA FROM-clause extension."""

from __future__ import annotations

import datetime as _dt

from repro.errors import SqlSyntaxError
from repro.opspec import OPS
from repro.sql import ast
from repro.sql.lexer import Token, tokenize

_RMA_OPS = frozenset(OPS)

_AGGREGATES = frozenset({"AVG", "SUM", "COUNT", "MIN", "MAX", "VAR",
                         "STDDEV"})


class Parser:
    """One-pass recursive descent over the token stream."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "EOF":
            self.pos += 1
        return token

    def error(self, message: str) -> SqlSyntaxError:
        token = self.peek()
        return SqlSyntaxError(f"{message}, found {token.value!r}",
                              token.line, token.column)

    def accept_keyword(self, *words: str) -> Token | None:
        if self.peek().is_keyword(*words):
            return self.advance()
        return None

    def expect_keyword(self, word: str) -> Token:
        token = self.accept_keyword(word)
        if token is None:
            raise self.error(f"expected {word}")
        return token

    def accept_symbol(self, *symbols: str) -> Token | None:
        if self.peek().is_symbol(*symbols):
            return self.advance()
        return None

    def expect_symbol(self, symbol: str) -> Token:
        token = self.accept_symbol(symbol)
        if token is None:
            raise self.error(f"expected {symbol!r}")
        return token

    def expect_ident(self, what: str = "identifier") -> str:
        token = self.peek()
        if token.kind == "IDENT":
            return self.advance().value
        # Unreserved use of soft keywords as identifiers (e.g. a column
        # called "date") is not supported; quoted identifiers are.
        raise self.error(f"expected {what}")

    # -- entry points ---------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        token = self.peek()
        # EXPLAIN is a soft keyword, recognized only here: no statement can
        # start with a bare identifier, so this never shadows a column or
        # table named 'explain'.
        if token.kind == "IDENT" and token.value.upper() == "EXPLAIN":
            self.advance()
            if not self.peek().is_keyword("SELECT"):
                raise self.error("EXPLAIN supports SELECT statements only")
            stmt: ast.Statement = ast.Explain(self.parse_select())
        elif token.is_keyword("SELECT"):
            stmt = self.parse_select()
        elif token.is_keyword("CREATE"):
            stmt = self.parse_create()
        elif token.is_keyword("DROP"):
            stmt = self.parse_drop()
        elif token.is_keyword("INSERT"):
            stmt = self.parse_insert()
        else:
            raise self.error(
                "expected SELECT, EXPLAIN, CREATE, DROP or INSERT")
        self.accept_symbol(";")
        if self.peek().kind != "EOF":
            raise self.error("unexpected trailing input")
        return stmt

    # -- SELECT -----------------------------------------------------------------

    def parse_select(self) -> ast.Select:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT") is not None
        items = [self.parse_select_item()]
        while self.accept_symbol(","):
            items.append(self.parse_select_item())
        source = None
        if self.accept_keyword("FROM"):
            source = self.parse_table_expr()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()
        group_by: list[ast.Expr] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_expr())
            while self.accept_symbol(","):
                group_by.append(self.parse_expr())
        having = None
        if self.accept_keyword("HAVING"):
            having = self.parse_expr()
        order_by: list[ast.OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self.parse_order_item())
            while self.accept_symbol(","):
                order_by.append(self.parse_order_item())
        limit, offset = None, 0
        if self.accept_keyword("LIMIT"):
            limit = self.parse_int_literal("LIMIT")
            if self.accept_keyword("OFFSET"):
                offset = self.parse_int_literal("OFFSET")
        return ast.Select(tuple(items), source, where, tuple(group_by),
                          having, tuple(order_by), limit, offset, distinct)

    def parse_int_literal(self, what: str) -> int:
        token = self.peek()
        if token.kind != "NUMBER" or "." in token.value:
            raise self.error(f"expected integer after {what}")
        self.advance()
        return int(token.value)

    def parse_select_item(self) -> ast.SelectItem:
        if self.peek().is_symbol("*"):
            self.advance()
            return ast.SelectItem(ast.Star())
        if (self.peek().kind == "IDENT" and self.peek(1).is_symbol(".")
                and self.peek(2).is_symbol("*")):
            table = self.advance().value
            self.advance()
            self.advance()
            return ast.SelectItem(ast.Star(table))
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident("alias")
        elif self.peek().kind == "IDENT":
            alias = self.advance().value
        return ast.SelectItem(expr, alias)

    def parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_expr()
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        return ast.OrderItem(expr, descending)

    # -- FROM clause ---------------------------------------------------------

    def parse_table_expr(self) -> ast.TableExpr:
        left = self.parse_table_primary()
        while True:
            if self.accept_symbol(","):
                right = self.parse_table_primary()
                left = ast.Join("cross", left, right)
            elif self.peek().is_keyword("CROSS"):
                self.advance()
                self.expect_keyword("JOIN")
                right = self.parse_table_primary()
                left = ast.Join("cross", left, right)
            elif self.peek().is_keyword("JOIN", "INNER", "LEFT"):
                kind = "inner"
                if self.accept_keyword("LEFT"):
                    self.accept_keyword("OUTER")
                    kind = "left"
                else:
                    self.accept_keyword("INNER")
                self.expect_keyword("JOIN")
                right = self.parse_table_primary()
                self.expect_keyword("ON")
                condition = self.parse_expr()
                left = ast.Join(kind, left, right, condition)
            else:
                return left

    def parse_table_primary(self) -> ast.TableExpr:
        token = self.peek()
        if token.is_symbol("("):
            self.advance()
            if self.peek().is_keyword("SELECT"):
                query = self.parse_select()
                self.expect_symbol(")")
                alias = self.parse_optional_alias(required=True)
                return ast.SubqueryRef(query, alias)
            inner = self.parse_table_expr()
            self.expect_symbol(")")
            alias = self.parse_optional_alias()
            if alias and isinstance(inner, ast.TableRef):
                return ast.TableRef(inner.name, alias)
            return inner
        if token.kind == "IDENT" and token.value.lower() in _RMA_OPS \
                and self.peek(1).is_symbol("("):
            return self.parse_rma_call()
        if token.kind == "IDENT":
            name = self.advance().value
            alias = self.parse_optional_alias()
            return ast.TableRef(name, alias)
        raise self.error("expected a table name, subquery or RMA call")

    def parse_optional_alias(self, required: bool = False) -> str | None:
        if self.accept_keyword("AS"):
            return self.expect_ident("alias")
        if self.peek().kind == "IDENT":
            # Bare alias, but not if it starts the next clause of an RMA
            # argument list (`... BY a`, handled elsewhere).
            return self.advance().value
        if required:
            raise self.error("subquery requires an alias")
        return None

    def parse_rma_call(self) -> ast.RmaCall:
        op = self.advance().value.lower()
        self.expect_symbol("(")
        args = [self.parse_rma_arg()]
        while self.accept_symbol(","):
            args.append(self.parse_rma_arg())
        self.expect_symbol(")")
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident("alias")
        elif self.peek().kind == "IDENT":
            alias = self.advance().value
        return ast.RmaCall(op, tuple(args), alias)

    def parse_rma_arg(self) -> ast.RmaArg:
        table = self.parse_rma_arg_table()
        self.expect_keyword("BY")
        by = self.parse_by_list()
        return ast.RmaArg(table, tuple(by))

    def parse_rma_arg_table(self) -> ast.TableExpr:
        """A table primary *without* alias consumption (BY follows)."""
        token = self.peek()
        if token.is_symbol("("):
            self.advance()
            if self.peek().is_keyword("SELECT"):
                query = self.parse_select()
                self.expect_symbol(")")
                return ast.SubqueryRef(query, "_rma_subquery")
            inner = self.parse_table_expr()
            self.expect_symbol(")")
            return inner
        if token.kind == "IDENT" and token.value.lower() in _RMA_OPS \
                and self.peek(1).is_symbol("("):
            return self.parse_rma_call_nested()
        if token.kind == "IDENT":
            return ast.TableRef(self.advance().value)
        raise self.error("expected a table in RMA argument")

    def parse_rma_call_nested(self) -> ast.RmaCall:
        op = self.advance().value.lower()
        self.expect_symbol("(")
        args = [self.parse_rma_arg()]
        while self.accept_symbol(","):
            args.append(self.parse_rma_arg())
        self.expect_symbol(")")
        return ast.RmaCall(op, tuple(args))

    def parse_by_list(self) -> list[str]:
        """Order-schema attribute list after BY.

        Either parenthesized — ``BY (a, b)`` — or bare.  A bare list stops
        before ``, <table> BY``: a comma followed by something that starts
        the next RMA argument.
        """
        if self.accept_symbol("("):
            names = [self.expect_ident("order attribute")]
            while self.accept_symbol(","):
                names.append(self.expect_ident("order attribute"))
            self.expect_symbol(")")
            return names
        names = [self.expect_ident("order attribute")]
        while self.peek().is_symbol(","):
            # Lookahead: `, IDENT BY` or `, ( ...` starts the next argument.
            next_token = self.peek(1)
            after = self.peek(2)
            if next_token.is_symbol("("):
                break
            if next_token.kind == "IDENT" and (
                    after.is_keyword("BY") or after.is_symbol("(")):
                break
            if next_token.kind != "IDENT":
                break
            self.advance()  # consume ','
            names.append(self.expect_ident("order attribute"))
        return names

    # -- expressions ------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self.parse_or()

    def parse_or(self) -> ast.Expr:
        left = self.parse_and()
        while self.accept_keyword("OR"):
            left = ast.BinaryOp("OR", left, self.parse_and())
        return left

    def parse_and(self) -> ast.Expr:
        left = self.parse_not()
        while self.accept_keyword("AND"):
            left = ast.BinaryOp("AND", left, self.parse_not())
        return left

    def parse_not(self) -> ast.Expr:
        if self.accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self) -> ast.Expr:
        left = self.parse_additive()
        token = self.peek()
        if token.is_symbol("=", "<>", "!=", "<", "<=", ">", ">="):
            op = self.advance().value
            return ast.BinaryOp(op, left, self.parse_additive())
        if token.is_keyword("IS"):
            self.advance()
            negated = self.accept_keyword("NOT") is not None
            self.expect_keyword("NULL")
            return ast.IsNull(left, negated)
        negated = False
        if token.is_keyword("NOT"):
            nxt = self.peek(1)
            if nxt.is_keyword("BETWEEN", "IN", "LIKE"):
                self.advance()
                negated = True
                token = self.peek()
        if token.is_keyword("BETWEEN"):
            self.advance()
            low = self.parse_additive()
            self.expect_keyword("AND")
            high = self.parse_additive()
            return ast.Between(left, low, high, negated)
        if token.is_keyword("IN"):
            self.advance()
            self.expect_symbol("(")
            items = [self.parse_additive()]
            while self.accept_symbol(","):
                items.append(self.parse_additive())
            self.expect_symbol(")")
            return ast.InList(left, tuple(items), negated)
        if token.is_keyword("LIKE"):
            self.advance()
            pattern = self.parse_additive()
            return ast.BinaryOp("LIKE" if not negated else "NOT LIKE",
                                left, pattern)
        return left

    def parse_additive(self) -> ast.Expr:
        left = self.parse_multiplicative()
        while True:
            token = self.peek()
            if token.is_symbol("+", "-", "||"):
                op = self.advance().value
                left = ast.BinaryOp(op, left, self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self) -> ast.Expr:
        left = self.parse_unary()
        while True:
            token = self.peek()
            if token.is_symbol("*", "/", "%"):
                op = self.advance().value
                left = ast.BinaryOp(op, left, self.parse_unary())
            else:
                return left

    def parse_unary(self) -> ast.Expr:
        if self.accept_symbol("-"):
            return ast.UnaryOp("-", self.parse_unary())
        if self.accept_symbol("+"):
            return self.parse_unary()
        return self.parse_primary()

    def parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "NUMBER":
            self.advance()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return ast.Literal(float(text))
            return ast.Literal(int(text))
        if token.kind == "STRING":
            self.advance()
            return ast.Literal(token.value)
        if token.is_keyword("NULL"):
            self.advance()
            return ast.Literal(None)
        if token.is_keyword("TRUE", "FALSE"):
            self.advance()
            return ast.Literal(token.value == "TRUE")
        if token.is_keyword("DATE"):
            self.advance()
            value = self.peek()
            if value.kind != "STRING":
                raise self.error("expected string after DATE")
            self.advance()
            return ast.Literal(_dt.date.fromisoformat(value.value))
        if token.is_keyword("TIME"):
            self.advance()
            value = self.peek()
            if value.kind != "STRING":
                raise self.error("expected string after TIME")
            self.advance()
            return ast.Literal(_dt.time.fromisoformat(value.value))
        if token.is_keyword("CASE"):
            return self.parse_case()
        if token.is_symbol("("):
            self.advance()
            expr = self.parse_expr()
            self.expect_symbol(")")
            return expr
        if token.kind == "IDENT":
            if self.peek(1).is_symbol("("):
                return self.parse_function_call()
            name = self.advance().value
            if self.accept_symbol("."):
                column = self.expect_ident("column name")
                return ast.ColumnRef(column, name)
            return ast.ColumnRef(name)
        raise self.error("expected an expression")

    def parse_case(self) -> ast.Expr:
        self.expect_keyword("CASE")
        branches = []
        while self.accept_keyword("WHEN"):
            condition = self.parse_expr()
            self.expect_keyword("THEN")
            value = self.parse_expr()
            branches.append((condition, value))
        if not branches:
            raise self.error("CASE requires at least one WHEN branch")
        otherwise = None
        if self.accept_keyword("ELSE"):
            otherwise = self.parse_expr()
        self.expect_keyword("END")
        return ast.CaseWhen(tuple(branches), otherwise)

    def parse_function_call(self) -> ast.Expr:
        name = self.advance().value.upper()
        self.expect_symbol("(")
        distinct = False
        args: list[ast.Expr] = []
        if self.accept_symbol("*"):
            args.append(ast.Star())
        elif not self.peek().is_symbol(")"):
            if name in _AGGREGATES and self.accept_keyword("DISTINCT"):
                distinct = True
            args.append(self.parse_expr())
            while self.accept_symbol(","):
                args.append(self.parse_expr())
        self.expect_symbol(")")
        return ast.FunctionCall(name, tuple(args), distinct)

    # -- DDL / DML -----------------------------------------------------------

    def parse_create(self) -> ast.CreateTable:
        self.expect_keyword("CREATE")
        self.expect_keyword("TABLE")
        name = self.expect_ident("table name")
        if self.accept_keyword("AS"):
            query = self.parse_select()
            return ast.CreateTable(name, source=query)
        self.expect_symbol("(")
        columns = [self.parse_column_def()]
        while self.accept_symbol(","):
            columns.append(self.parse_column_def())
        self.expect_symbol(")")
        return ast.CreateTable(name, tuple(columns))

    def parse_column_def(self) -> ast.ColumnDef:
        name = self.expect_ident("column name")
        token = self.peek()
        if token.kind == "IDENT" or token.is_keyword("DATE", "TIME"):
            type_name = self.advance().value.upper()
        else:
            raise self.error("expected a column type")
        # Swallow optional length, e.g. VARCHAR(32).
        if self.accept_symbol("("):
            self.parse_int_literal("type length")
            self.expect_symbol(")")
        return ast.ColumnDef(name, type_name)

    def parse_drop(self) -> ast.DropTable:
        self.expect_keyword("DROP")
        self.expect_keyword("TABLE")
        if_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            if_exists = True
        name = self.expect_ident("table name")
        return ast.DropTable(name, if_exists)

    def parse_insert(self) -> ast.InsertValues:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident("table name")
        columns: list[str] = []
        if self.accept_symbol("("):
            columns.append(self.expect_ident("column name"))
            while self.accept_symbol(","):
                columns.append(self.expect_ident("column name"))
            self.expect_symbol(")")
        self.expect_keyword("VALUES")
        rows = [self.parse_value_row()]
        while self.accept_symbol(","):
            rows.append(self.parse_value_row())
        return ast.InsertValues(table, tuple(rows), tuple(columns))

    def parse_value_row(self) -> tuple[ast.Expr, ...]:
        self.expect_symbol("(")
        values = [self.parse_expr()]
        while self.accept_symbol(","):
            values.append(self.parse_expr())
        self.expect_symbol(")")
        return tuple(values)


def parse_sql(text: str) -> ast.Statement:
    """Parse one SQL statement."""
    return Parser(tokenize(text)).parse_statement()
