"""Compatibility shim: the logical optimizer moved to the shared plan layer.

Both the SQL session and the lazy builder optimize plans with
:mod:`repro.plan.optimizer`; this module re-exports it so existing imports
(``from repro.sql.optimizer import optimize``) keep working.
"""

from repro.plan.optimizer import (  # noqa: F401  (re-exported API)
    _DYNAMIC_SCHEMA_OPS,
    Optimizer,
    optimize,
)

__all__ = ["Optimizer", "optimize"]
