"""Rule-based logical optimizer.

Three rewrites, mirroring what MonetDB's pipeline gives the paper's mixed
workloads for free (and what R lacks, §8.6):

1. **Predicate pushdown** — WHERE conjuncts move below joins to the deepest
   input that can resolve all their columns;
2. **Cross-to-inner conversion and greedy join ordering** — comma-style
   FROM lists plus equality predicates become hash joins, ordered smallest
   estimated input first;
3. **Projection pruning** — scans keep only the columns the rest of the
   plan references.

Plans containing RMA operations with data-dependent output schemas
(``tra``/``usv``/``opd``) are left untouched below the RMA node — their
column names are only known at run time.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.bat.catalog import Catalog
from repro.errors import CatalogError
from repro.opspec import OPS
from repro.sql import ast, logical

_DYNAMIC_SCHEMA_OPS = {name for name, spec in OPS.items()
                       if "r1" == spec.shape_type[1]
                       or "r2" == spec.shape_type[1]}


def optimize(plan: logical.Plan, catalog: Catalog) -> logical.Plan:
    """Apply all rewrite rules bottom-up."""
    opt = Optimizer(catalog)
    plan = opt.rewrite(plan)
    # The root's visible output is fully described by its projections, so
    # nothing beyond them is needed from below.
    plan = opt.prune_columns(plan, set())
    return plan


class Optimizer:
    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    # -- schema inference -----------------------------------------------------

    def output_names(self, plan: logical.Plan) -> Optional[set[tuple]]:
        """(alias, name) pairs a plan produces, or None when unknown."""
        if isinstance(plan, logical.Scan):
            try:
                relation = self.catalog.get(plan.table)
            except CatalogError:
                return None
            return {(plan.alias, n) for n in relation.names}
        if isinstance(plan, logical.SubqueryScan):
            inner = self.visible_names(plan.plan)
            if inner is None:
                return None
            return {(plan.alias, n) for _, n in inner}
        if isinstance(plan, logical.Rma):
            return self.rma_output_names(plan)
        if isinstance(plan, logical.JoinPlan):
            left = self.output_names(plan.left)
            right = self.output_names(plan.right)
            if left is None or right is None:
                return None
            return left | right
        if isinstance(plan, (logical.Filter, logical.Distinct, logical.Sort,
                             logical.Limit, logical.Prune)):
            return self.output_names(plan.children()[0])
        if isinstance(plan, logical.Project):
            names = set()
            for index, item in enumerate(plan.items):
                if isinstance(item.expr, ast.Star):
                    inner = self.output_names(plan.child)
                    if inner is None:
                        return None
                    if item.expr.table is None:
                        names |= {(None, n) for _, n in inner}
                    else:
                        names |= {(None, n) for a, n in inner
                                  if a == item.expr.table}
                    continue
                names.add((None, item.alias
                           or logical.default_output_name(item.expr, index)))
            return names
        if isinstance(plan, logical.Aggregate):
            names = {(None, k) for k in plan.key_names}
            for key in plan.keys:
                if isinstance(key, ast.ColumnRef):
                    names.add((key.table, key.name))
            names |= {(None, s.out_name) for s in plan.aggregates}
            return names
        return None

    def visible_names(self, plan: logical.Plan) -> Optional[set[tuple]]:
        return self.output_names(plan)

    def rma_output_names(self, plan: logical.Rma) -> Optional[set[tuple]]:
        spec = OPS[plan.op]
        if spec.shape_type[1] in ("r1", "r2"):
            return None  # data-dependent column names (column cast)
        input_names = []
        for child in plan.inputs:
            names = self.output_names(child)
            if names is None:
                return None
            input_names.append({n for _, n in names})
        out: set[tuple] = set()
        x, y = spec.shape_type
        if x == "r1":
            out |= {(plan.alias, n) for n in plan.by[0]}
        elif x == "r*":
            out |= {(plan.alias, n) for n in plan.by[0] + plan.by[1]}
        elif x in ("c1", "1"):
            out.add((plan.alias, "C"))
        if y in ("c1", "c*"):
            out |= {(plan.alias, n) for n in input_names[0]
                    if n not in plan.by[0]}
        elif y == "c2":
            out |= {(plan.alias, n) for n in input_names[1]
                    if n not in plan.by[1]}
        elif y == "1":
            out.add((plan.alias, plan.op))
        return out

    # -- rule 1+2: pushdown and join rewriting -----------------------------------

    def rewrite(self, plan: logical.Plan) -> logical.Plan:
        if isinstance(plan, logical.Filter):
            child = self.rewrite(plan.child)
            conjuncts = logical.split_conjuncts(plan.predicate)
            child, remaining = self.push_conjuncts(child, conjuncts)
            predicate = logical.conjoin(remaining)
            if predicate is None:
                return child
            return logical.Filter(child, predicate)
        if isinstance(plan, logical.JoinPlan):
            left = self.rewrite(plan.left)
            right = self.rewrite(plan.right)
            return logical.JoinPlan(plan.kind, left, right, plan.condition)
        children = plan.children()
        if not children:
            return plan
        rewritten = tuple(self.rewrite(c) for c in children)
        return _with_children(plan, rewritten)

    def push_conjuncts(self, plan: logical.Plan,
                       conjuncts: list[ast.Expr]) \
            -> tuple[logical.Plan, list[ast.Expr]]:
        """Push filter conjuncts as deep as possible; returns the rewritten
        plan and the conjuncts that could not be pushed."""
        if not conjuncts:
            return plan, []
        if isinstance(plan, logical.JoinPlan) and plan.kind != "left":
            left_names = self.output_names(plan.left)
            right_names = self.output_names(plan.right)
            push_left: list[ast.Expr] = []
            push_right: list[ast.Expr] = []
            join_conds: list[ast.Expr] = []
            keep: list[ast.Expr] = []
            for conjunct in conjuncts:
                target = self._conjunct_target(conjunct, left_names,
                                               right_names)
                if target == "left":
                    push_left.append(conjunct)
                elif target == "right":
                    push_right.append(conjunct)
                elif target == "both" and self._is_equality(conjunct):
                    join_conds.append(conjunct)
                else:
                    keep.append(conjunct)
            left, rest_l = self.push_conjuncts(plan.left, push_left)
            right, rest_r = self.push_conjuncts(plan.right, push_right)
            keep = rest_l + rest_r + keep
            condition = plan.condition
            kind = plan.kind
            if join_conds:
                new_condition = logical.conjoin(
                    ([condition] if condition is not None else [])
                    + join_conds)
                condition = new_condition
                if kind == "cross":
                    kind = "inner"
            return logical.JoinPlan(kind, left, right, condition), keep
        if isinstance(plan, logical.Filter):
            child, rest = self.push_conjuncts(
                plan.child, conjuncts
                + logical.split_conjuncts(plan.predicate))
            predicate = logical.conjoin(rest)
            if predicate is None:
                return child, []
            return logical.Filter(child, predicate), []
        if isinstance(plan, (logical.Scan, logical.SubqueryScan,
                             logical.Rma)):
            names = self.output_names(plan)
            applicable = []
            rest = []
            for conjunct in conjuncts:
                if names is not None and self._covers(conjunct, names):
                    applicable.append(conjunct)
                else:
                    rest.append(conjunct)
            predicate = logical.conjoin(applicable)
            if predicate is not None:
                return logical.Filter(plan, predicate), rest
            return plan, rest
        return plan, conjuncts

    def _conjunct_target(self, conjunct: ast.Expr,
                         left_names: Optional[set[tuple]],
                         right_names: Optional[set[tuple]]) -> str:
        if left_names is None or right_names is None:
            return "unknown"
        refs = logical.column_refs(conjunct)
        if not refs:
            return "unknown"
        sides = set()
        for ref in refs:
            in_left = self._matches(ref, left_names)
            in_right = self._matches(ref, right_names)
            if in_left and in_right:
                return "ambiguous"
            if in_left:
                sides.add("left")
            elif in_right:
                sides.add("right")
            else:
                return "unknown"
        if sides == {"left"}:
            return "left"
        if sides == {"right"}:
            return "right"
        return "both"

    @staticmethod
    def _matches(ref: ast.ColumnRef, names: set[tuple]) -> bool:
        for alias, name in names:
            if name != ref.name:
                continue
            if ref.table is None or ref.table == alias:
                return True
        return False

    def _covers(self, conjunct: ast.Expr, names: set[tuple]) -> bool:
        return all(self._matches(ref, names)
                   for ref in logical.column_refs(conjunct))

    @staticmethod
    def _is_equality(conjunct: ast.Expr) -> bool:
        return isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="

    # -- rule 3: projection pruning ------------------------------------------------

    def prune_columns(self, plan: logical.Plan,
                      needed: Optional[set[str]] = None) -> logical.Plan:
        """Insert Prune nodes above scans keeping only referenced columns.

        ``needed`` is a set of unqualified column names required above;
        ``None`` means "everything" (e.g. below a SELECT * or an RMA input,
        whose application schema is the complement of the order schema).
        """
        if isinstance(plan, logical.Project):
            names: Optional[set[str]] = set()
            for item in plan.items:
                if isinstance(item.expr, ast.Star):
                    names = None
                    break
                names.update(r.name for r in logical.column_refs(item.expr))
            if names is not None and needed is not None:
                # Nodes above the projection (ORDER BY, HAVING) may still
                # reference source columns through hidden bindings.
                names |= needed
            elif needed is None:
                names = None
            return logical.Project(
                self.prune_columns(plan.child, names), plan.items)
        if isinstance(plan, logical.Filter):
            if needed is not None:
                needed = needed | {r.name for r in
                                   logical.column_refs(plan.predicate)}
            return logical.Filter(self.prune_columns(plan.child, needed),
                                  plan.predicate)
        if isinstance(plan, logical.JoinPlan):
            child_needed = None
            if needed is not None:
                child_needed = set(needed)
                if plan.condition is not None:
                    child_needed |= {r.name for r in
                                     logical.column_refs(plan.condition)}
            return logical.JoinPlan(
                plan.kind,
                self.prune_columns(plan.left, child_needed),
                self.prune_columns(plan.right, child_needed),
                plan.condition)
        if isinstance(plan, logical.Aggregate):
            child_needed: Optional[set[str]] = set()
            for key in plan.keys:
                child_needed.update(r.name
                                    for r in logical.column_refs(key))
            for spec in plan.aggregates:
                if spec.argument is not None:
                    child_needed.update(
                        r.name for r in logical.column_refs(spec.argument))
            return logical.Aggregate(
                self.prune_columns(plan.child, child_needed),
                plan.keys, plan.key_names, plan.aggregates)
        if isinstance(plan, logical.Scan):
            if needed is None:
                return plan
            return logical.Prune(plan, tuple(sorted(needed)))
        if isinstance(plan, logical.Rma):
            # RMA consumes its whole input (order + application schema).
            return logical.Rma(
                plan.op,
                tuple(self.prune_columns(c, None) for c in plan.inputs),
                plan.by, plan.alias)
        if isinstance(plan, (logical.Sort,)):
            if needed is not None:
                needed = needed | {
                    r.name for item in plan.items
                    for r in logical.column_refs(item.expr)}
            return logical.Sort(self.prune_columns(plan.child, needed),
                                plan.items)
        children = plan.children()
        if not children:
            return plan
        rewritten = tuple(self.prune_columns(c, needed) for c in children)
        return _with_children(plan, rewritten)


def _with_children(plan: logical.Plan,
                   children: tuple[logical.Plan, ...]) -> logical.Plan:
    """Clone a plan node with new children."""
    if isinstance(plan, logical.SubqueryScan):
        return logical.SubqueryScan(children[0], plan.alias)
    if isinstance(plan, logical.Rma):
        return logical.Rma(plan.op, children, plan.by, plan.alias)
    if isinstance(plan, logical.Filter):
        return logical.Filter(children[0], plan.predicate)
    if isinstance(plan, logical.JoinPlan):
        return logical.JoinPlan(plan.kind, children[0], children[1],
                                plan.condition)
    if isinstance(plan, logical.Project):
        return logical.Project(children[0], plan.items)
    if isinstance(plan, logical.Aggregate):
        return logical.Aggregate(children[0], plan.keys, plan.key_names,
                                 plan.aggregates)
    if isinstance(plan, logical.Distinct):
        return logical.Distinct(children[0])
    if isinstance(plan, logical.Sort):
        return logical.Sort(children[0], plan.items)
    if isinstance(plan, logical.Limit):
        return logical.Limit(children[0], plan.count, plan.offset)
    if isinstance(plan, logical.Prune):
        return logical.Prune(children[0], plan.names)
    return plan
