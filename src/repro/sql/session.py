"""Deprecated SQL sessions — superseded by ``repro.connect()``.

The session machinery (catalog binding, parse/plan/result caches, SQL
statement execution) moved to :class:`repro.api.database.Database`, the
single front door that also serves the matrix-expression API
(:meth:`~repro.api.database.Database.matrix`) and the lazy pipeline
builder.  :class:`Session` remains as a thin compatibility subclass so
existing imports keep working:

>>> from repro.sql import Session     # deprecated
>>> session = Session()               # identical to repro.connect()

New code should call :func:`repro.connect`.
"""

from __future__ import annotations

from repro.api.database import Database, _TYPE_NAMES  # noqa: F401  (shim)


class Session(Database):
    """Deprecated alias of :class:`repro.api.database.Database`.

    Kept so pre-redesign code and the paper-era examples keep running
    unchanged; it adds nothing over ``Database`` and will eventually be
    removed.  Use :func:`repro.connect` instead.
    """


__all__ = ["Session"]
