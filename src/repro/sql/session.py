"""SQL sessions: statements in, relations out."""

from __future__ import annotations

from typing import Any

from repro.bat.bat import DataType
from repro.bat.catalog import Catalog
from repro.core.config import RmaConfig
from repro.errors import BindError, PlanError, SqlError
from repro.plan.explain import explain_lines
from repro.plan.physical import PhysicalInfo, plan_physical
from repro.relational.relation import Relation
from repro.relational.ops import union_all
from repro.sql import ast, logical
from repro.sql.executor import Executor, ExpressionEvaluator, Frame
from repro.sql.optimizer import optimize
from repro.sql.parser import parse_sql

_TYPE_NAMES = {
    "INT": DataType.INT, "INTEGER": DataType.INT, "BIGINT": DataType.INT,
    "SMALLINT": DataType.INT,
    "DOUBLE": DataType.DBL, "FLOAT": DataType.DBL, "REAL": DataType.DBL,
    "DECIMAL": DataType.DBL, "NUMERIC": DataType.DBL,
    "VARCHAR": DataType.STR, "CHAR": DataType.STR, "TEXT": DataType.STR,
    "STRING": DataType.STR,
    "DATE": DataType.DATE, "TIME": DataType.TIME,
    "BOOLEAN": DataType.BOOL, "BOOL": DataType.BOOL,
}


class Session:
    """A connection-like object bound to a catalog.

    >>> session = Session()
    >>> session.register("r", some_relation)
    >>> result = session.execute("SELECT * FROM INV(r BY T)")
    """

    def __init__(self, catalog: Catalog | None = None,
                 config: RmaConfig | None = None,
                 optimize_plans: bool = True):
        self.catalog = catalog or Catalog()
        self.config = config
        self.optimize_plans = optimize_plans

    # -- catalog helpers --------------------------------------------------------

    def register(self, name: str, relation: Relation,
                 replace: bool = True) -> None:
        """Register an in-memory relation as a table."""
        self.catalog.create(name, relation, replace=replace)

    def table(self, name: str) -> Relation:
        return self.catalog.get(name)

    # -- execution -----------------------------------------------------------------

    def execute(self, sql: str) -> Relation | None:
        """Execute one SQL statement.

        SELECT returns a relation; DDL/DML return None (INSERT returns
        None after updating the catalog).
        """
        statement = parse_sql(sql)
        if isinstance(statement, ast.Select):
            return self._run_select(statement)
        if isinstance(statement, ast.Explain):
            lines = self._explain_lines(statement.query)
            return Relation.from_columns({"explain": lines})
        if isinstance(statement, ast.CreateTable):
            return self._run_create(statement)
        if isinstance(statement, ast.DropTable):
            self.catalog.drop(statement.name, if_exists=statement.if_exists)
            return None
        if isinstance(statement, ast.InsertValues):
            return self._run_insert(statement)
        raise SqlError(f"unsupported statement {statement!r}")

    def _plan_select(self, statement: ast.Select) -> logical.Plan:
        """AST -> shared plan IR, optimized per session settings.

        The single entry point for plan construction: plan(), EXPLAIN and
        execution all route through here, so they can never diverge.
        """
        plan = logical.build_select(statement)
        if self.optimize_plans:
            plan = optimize(plan, self.catalog)
        return plan

    def plan(self, sql: str) -> logical.Plan:
        """Parse and optimize without executing (for tests/EXPLAIN)."""
        statement = parse_sql(sql)
        if isinstance(statement, ast.Explain):
            statement = statement.query
        if not isinstance(statement, ast.Select):
            raise PlanError("only SELECT statements can be planned")
        return self._plan_select(statement)

    def physical_info(self, sql: str) -> PhysicalInfo:
        """The physical planner's annotations for a statement."""
        return plan_physical(self.plan(sql), self.catalog)

    def explain(self, sql: str) -> str:
        """The optimized plan with physical annotations, as text."""
        statement = parse_sql(sql)
        if isinstance(statement, ast.Explain):
            statement = statement.query
        if not isinstance(statement, ast.Select):
            raise PlanError("only SELECT statements can be explained")
        return "\n".join(self._explain_lines(statement))

    def _explain_lines(self, statement: ast.Select) -> list[str]:
        plan = self._plan_select(statement)
        info = plan_physical(plan, self.catalog)
        return explain_lines(plan, info)

    def _run_select(self, statement: ast.Select) -> Relation:
        plan = self._plan_select(statement)
        info = plan_physical(plan, self.catalog)
        executor = Executor(self.catalog, self.config, physical=info)
        frame = executor.run(plan)
        return frame.to_plain_relation()

    def _run_create(self, statement: ast.CreateTable) -> None:
        if statement.source is not None:
            relation = self._run_select(statement.source)
            self.catalog.create(statement.name, relation)
            return None
        attrs = []
        for column in statement.columns:
            dtype = _TYPE_NAMES.get(column.type_name)
            if dtype is None:
                raise BindError(
                    f"unknown column type {column.type_name!r}")
            attrs.append((column.name, dtype))
        from repro.relational.schema import Attribute, Schema
        schema = Schema(Attribute(n, t) for n, t in attrs)
        self.catalog.create(statement.name, Relation.empty(schema))
        return None

    def _run_insert(self, statement: ast.InsertValues) -> None:
        target = self.catalog.get(statement.table)
        names = list(statement.columns) or target.names
        unknown = set(names) - set(target.names)
        if unknown:
            raise BindError(
                f"unknown columns {sorted(unknown)} in INSERT")
        rows: list[list[Any]] = []
        dual = Relation.from_columns({"_one": [1]})
        frame = Frame.from_relation(dual, None)
        evaluator = ExpressionEvaluator(frame)
        for row_exprs in statement.rows:
            if len(row_exprs) != len(names):
                raise PlanError(
                    f"INSERT row has {len(row_exprs)} values for "
                    f"{len(names)} columns")
            row = []
            for expr in row_exprs:
                value = evaluator.eval(expr)
                if hasattr(value, "tail"):
                    raise PlanError("INSERT values must be constants")
                row.append(value)
            rows.append(row)
        # Build a relation in target column order, filling missing with nil.
        data: dict[str, list[Any]] = {n: [] for n in target.names}
        for row in rows:
            provided = dict(zip(names, row))
            for n in target.names:
                data[n].append(provided.get(n))
        types = {n: target.schema.dtype(n) for n in target.names}
        addition = Relation.from_columns(data, types)
        self.catalog.create(statement.table,
                            union_all(target, addition), replace=True)
        return None
