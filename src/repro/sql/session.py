"""SQL sessions: statements in, relations out.

A :class:`Session` owns three caches, all scoped to the session:

* a **parse cache** (SQL text -> statement AST — parsing is pure);
* a **statement-plan cache** (SQL text -> optimized logical plan, stamped
  with the catalog versions of the referenced tables, since optimization
  reads table schemas);
* a **result cache** (:class:`repro.plan.cache.PlanCache`): repeated RMA /
  subquery subplans — including across *different* statements — return
  their memoized relations.  Entries are stamped with per-table catalog
  versions, so ``CREATE``/``INSERT``/``DROP``/``register`` invalidate
  exactly the affected entries.

``Session(plan_cache=False)`` disables all three (the fully-uncached mode
the ablation benchmark's baseline measures); plan and result entries are
additionally revalidated against the config's
:meth:`~repro.core.config.RmaConfig.cache_token`, so swapping or mutating
the session config replans instead of serving stale entries.
"""

from __future__ import annotations

from typing import Any

from repro.bat.bat import DataType
from repro.bat.catalog import Catalog
from repro.core.config import RmaConfig, default_config
from repro.errors import BindError, PlanError, SqlError
from repro.plan import nodes
from repro.plan.build import build_select
from repro.plan.cache import LruDict, PlanCache, catalog_stamps
from repro.plan.explain import explain_lines
from repro.plan.optimizer import optimize
from repro.plan.physical import (
    Executor,
    ExpressionEvaluator,
    Frame,
    PhysicalInfo,
    plan_physical,
)
from repro.relational.relation import Relation
from repro.relational.ops import union_all
from repro.sql import ast
from repro.sql.parser import parse_sql

_MAX_CACHED_STATEMENTS = 256

_TYPE_NAMES = {
    "INT": DataType.INT, "INTEGER": DataType.INT, "BIGINT": DataType.INT,
    "SMALLINT": DataType.INT,
    "DOUBLE": DataType.DBL, "FLOAT": DataType.DBL, "REAL": DataType.DBL,
    "DECIMAL": DataType.DBL, "NUMERIC": DataType.DBL,
    "VARCHAR": DataType.STR, "CHAR": DataType.STR, "TEXT": DataType.STR,
    "STRING": DataType.STR,
    "DATE": DataType.DATE, "TIME": DataType.TIME,
    "BOOLEAN": DataType.BOOL, "BOOL": DataType.BOOL,
}


class Session:
    """A connection-like object bound to a catalog.

    >>> session = Session()
    >>> session.register("r", some_relation)
    >>> result = session.execute("SELECT * FROM INV(r BY T)")
    """

    def __init__(self, catalog: Catalog | None = None,
                 config: RmaConfig | None = None,
                 optimize_plans: bool = True,
                 plan_cache: "bool | PlanCache" = True):
        self.catalog = catalog or Catalog()
        self.config = config
        self.optimize_plans = optimize_plans
        # ``plan_cache=False`` disables ALL session caching (parse,
        # statement-plan and result) — the fully-uncached mode the
        # ablation baseline measures.
        self._caching = not (plan_cache is False or plan_cache is None)
        if plan_cache is True:
            self.result_cache: PlanCache | None = PlanCache()
        elif not self._caching:
            self.result_cache = None
        else:
            self.result_cache = plan_cache
        self.last_stats = None  # ExecStats of the most recent SELECT
        self._statements: LruDict = LruDict(_MAX_CACHED_STATEMENTS)
        # Select AST -> (plan, physical info, stamps, config token,
        #                optimize_plans)
        self._select_plans: LruDict = LruDict(_MAX_CACHED_STATEMENTS)

    # -- catalog helpers --------------------------------------------------------

    def register(self, name: str, relation: Relation,
                 replace: bool = True) -> None:
        """Register an in-memory relation as a table."""
        self.catalog.create(name, relation, replace=replace)

    def table(self, name: str) -> Relation:
        return self.catalog.get(name)

    # -- execution -----------------------------------------------------------------

    def execute(self, sql: str) -> Relation | None:
        """Execute one SQL statement.

        SELECT returns a relation; DDL/DML return None (INSERT returns
        None after updating the catalog).
        """
        statement = self._parse_cached(sql)
        if isinstance(statement, ast.Select):
            return self._run_select(statement)
        if isinstance(statement, ast.Explain):
            lines = self._explain_lines(statement.query)
            return Relation.from_columns({"explain": lines})
        if isinstance(statement, ast.CreateTable):
            return self._run_create(statement)
        if isinstance(statement, ast.DropTable):
            self.catalog.drop(statement.name, if_exists=statement.if_exists)
            return None
        if isinstance(statement, ast.InsertValues):
            return self._run_insert(statement)
        raise SqlError(f"unsupported statement {statement!r}")

    def _parse_cached(self, sql: str) -> ast.Statement:
        """Parse with a per-session cache (parsing is a pure function)."""
        if not self._caching:
            return parse_sql(sql)
        key = sql.strip()
        statement = self._statements.get(key)
        if statement is None:
            statement = parse_sql(sql)
            self._statements.store(key, statement)
        else:
            self._statements.touch(key)
        return statement

    def _effective_config(self) -> RmaConfig:
        return self.config or default_config()

    def _plan_select(self, statement: ast.Select) \
            -> tuple[nodes.Plan, PhysicalInfo]:
        """AST -> optimized shared plan IR + physical annotations.

        The single entry point for plan construction: plan(), EXPLAIN and
        execution all route through here — and all share the
        statement-plan cache, keyed by the (frozen, structurally hashable)
        Select AST itself — so they can never diverge.  Cached entries are
        stamped with the
        catalog versions of the referenced tables (optimization and
        physical planning consult their schemas and properties) and with
        the effective config's cache token and ``optimize_plans`` flag, so
        changing any of them replans instead of serving a plan built under
        different settings.
        """
        config = self._effective_config()
        cache_key = statement if self._caching else None
        if cache_key is not None:
            entry = self._select_plans.get(cache_key)
            if entry is not None:
                plan, info, stamps, entry_token, entry_optimize = entry
                if (entry_token == config.cache_token()
                        and entry_optimize == self.optimize_plans
                        and all(self.catalog.table_version(name) == version
                                for name, version in stamps)):
                    self._select_plans.touch(cache_key)
                    return plan, info
                del self._select_plans[cache_key]
        plan = build_select(statement)
        if self.optimize_plans:
            plan = optimize(plan, self.catalog,
                            fuse=config.fuse_elementwise)
        info = plan_physical(plan, self.catalog)
        if cache_key is not None:
            self._select_plans.store(
                cache_key,
                (plan, info, catalog_stamps(plan, self.catalog),
                 config.cache_token(), self.optimize_plans))
        return plan, info

    def _select_statement(self, sql: str) -> ast.Select:
        """Parse one statement and unwrap to its SELECT (EXPLAIN peels)."""
        statement = self._parse_cached(sql)
        if isinstance(statement, ast.Explain):
            statement = statement.query
        if not isinstance(statement, ast.Select):
            raise PlanError("only SELECT statements can be planned")
        return statement

    def plan(self, sql: str) -> nodes.Plan:
        """Parse and optimize without executing (for tests/EXPLAIN)."""
        return self._plan_select(self._select_statement(sql))[0]

    def physical_info(self, sql: str) -> PhysicalInfo:
        """The physical planner's annotations for a statement."""
        return self._plan_select(self._select_statement(sql))[1]

    def explain(self, sql: str) -> str:
        """The optimized plan with physical annotations, as text."""
        return "\n".join(self._explain_lines(self._select_statement(sql)))

    def _explain_lines(self, statement: ast.Select) -> list[str]:
        plan, info = self._plan_select(statement)
        return explain_lines(plan, info)

    def _run_select(self, statement: ast.Select) -> Relation:
        plan, info = self._plan_select(statement)
        executor = Executor(self.catalog, self.config, physical=info,
                            result_cache=self.result_cache)
        frame = executor.run(plan)
        self.last_stats = executor.stats
        return frame.to_plain_relation()

    def _run_create(self, statement: ast.CreateTable) -> None:
        if statement.source is not None:
            relation = self._run_select(statement.source)
            self.catalog.create(statement.name, relation)
            return None
        attrs = []
        for column in statement.columns:
            dtype = _TYPE_NAMES.get(column.type_name)
            if dtype is None:
                raise BindError(
                    f"unknown column type {column.type_name!r}")
            attrs.append((column.name, dtype))
        from repro.relational.schema import Attribute, Schema
        schema = Schema(Attribute(n, t) for n, t in attrs)
        self.catalog.create(statement.name, Relation.empty(schema))
        return None

    def _run_insert(self, statement: ast.InsertValues) -> None:
        target = self.catalog.get(statement.table)
        names = list(statement.columns) or target.names
        unknown = set(names) - set(target.names)
        if unknown:
            raise BindError(
                f"unknown columns {sorted(unknown)} in INSERT")
        rows: list[list[Any]] = []
        dual = Relation.from_columns({"_one": [1]})
        frame = Frame.from_relation(dual, None)
        evaluator = ExpressionEvaluator(frame)
        for row_exprs in statement.rows:
            if len(row_exprs) != len(names):
                raise PlanError(
                    f"INSERT row has {len(row_exprs)} values for "
                    f"{len(names)} columns")
            row = []
            for expr in row_exprs:
                value = evaluator.eval(expr)
                if hasattr(value, "tail"):
                    raise PlanError("INSERT values must be constants")
                row.append(value)
            rows.append(row)
        # Build a relation in target column order, filling missing with nil.
        data: dict[str, list[Any]] = {n: [] for n in target.names}
        for row in rows:
            provided = dict(zip(names, row))
            for n in target.names:
                data[n].append(provided.get(n))
        types = {n: target.schema.dtype(n) for n in target.names}
        addition = Relation.from_columns(data, types)
        self.catalog.create(statement.table,
                            union_all(target, addition), replace=True)
        return None
