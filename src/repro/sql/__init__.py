"""SQL front end with the RMA syntax extension.

The paper extends MonetDB's SQL parser so relational matrix operations are
available in the FROM clause (§7.2):

.. code-block:: sql

    SELECT * FROM INV(rating BY User);
    SELECT * FROM MMU(w4 BY C, w3 BY U) AS w5 CROSS JOIN (...) AS t;

This package provides the same surface on our engine, as a *thin front
end* over the shared plan layer (:mod:`repro.plan`): a lexer, a recursive
descent parser, and ``build_select`` compiling the AST into the shared
logical IR.  Optimization and execution happen in :mod:`repro.plan` — the
same optimizer, physical planner (order-aware join strategy, CSE) and
executor also serve the lazy Python builder (:mod:`repro.plan.lazy`) and
the matrix-expression API (:mod:`repro.api`).

Statement execution lives on :class:`repro.api.database.Database`
(``repro.connect()``), which owns the catalog, the statement/plan/result
caches and ``EXPLAIN <select>``.  :class:`~repro.sql.session.Session` is
kept as a deprecated compatibility alias of ``Database`` — it is imported
lazily here (module ``__getattr__``) because ``repro.api`` itself compiles
onto this package's expression AST.

The ``logical``/``optimizer``/``executor`` modules remain as compatibility
shims re-exporting the plan layer.
"""

from repro.sql.parser import parse_sql
from repro.sql.lexer import tokenize

__all__ = ["Session", "parse_sql", "tokenize"]


def __getattr__(name):
    # Deferred: repro.sql.session subclasses repro.api.database.Database,
    # and repro.api imports this package's AST module — an eager import
    # here would close that cycle during package initialization.
    if name == "Session":
        from repro.sql.session import Session
        return Session
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
