"""SQL front end with the RMA syntax extension.

The paper extends MonetDB's SQL parser so relational matrix operations are
available in the FROM clause (§7.2):

.. code-block:: sql

    SELECT * FROM INV(rating BY User);
    SELECT * FROM MMU(w4 BY C, w3 BY U) AS w5 CROSS JOIN (...) AS t;

This package provides the same surface on our engine, as a *thin front
end* over the shared plan layer (:mod:`repro.plan`): a lexer, a recursive
descent parser, and ``build_select`` compiling the AST into the shared
logical IR.  Optimization and execution happen in :mod:`repro.plan` — the
same optimizer, physical planner (order-aware join strategy, CSE) and
executor also serve the lazy Python builder (:mod:`repro.plan.lazy`).
:class:`~repro.sql.session.Session` ties it to a catalog and adds
``EXPLAIN <select>``, which returns the optimized plan with its physical
annotations as a one-column relation.

The ``logical``/``optimizer``/``executor`` modules remain as compatibility
shims re-exporting the plan layer.
"""

from repro.sql.session import Session
from repro.sql.parser import parse_sql
from repro.sql.lexer import tokenize

__all__ = ["Session", "parse_sql", "tokenize"]
