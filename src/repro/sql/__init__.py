"""SQL front end with the RMA syntax extension.

The paper extends MonetDB's SQL parser so relational matrix operations are
available in the FROM clause (§7.2):

.. code-block:: sql

    SELECT * FROM INV(rating BY User);
    SELECT * FROM MMU(w4 BY C, w3 BY U) AS w5 CROSS JOIN (...) AS t;

This package provides the same surface on our engine: a lexer, a recursive
descent parser, a logical planner with a small rule-based optimizer
(predicate pushdown, projection pruning, join ordering), and a BAT executor.
:class:`~repro.sql.session.Session` ties it to a catalog.
"""

from repro.sql.session import Session
from repro.sql.parser import parse_sql
from repro.sql.lexer import tokenize

__all__ = ["Session", "parse_sql", "tokenize"]
