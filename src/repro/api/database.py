"""The session-scoped front door: ``repro.connect()`` -> :class:`Database`.

A :class:`Database` is the one entry point behind which every user surface
compiles into the shared plan IR (:mod:`repro.plan.nodes`) and executes on
the shared executor (:mod:`repro.plan.physical`):

* :meth:`Database.matrix` returns a lazy :class:`~repro.api.matrix.Matrix`
  expression handle (operator overloading + one method per Table 2
  operation) — chained eager-style code gets element-wise fusion, CSE, the
  byte-budget plan/result cache and the morsel-parallel engine for free;
* :meth:`Database.execute` runs SQL statements (the paper's §7.2 front
  end), sharing the same statement-plan and subplan-result caches;
* :func:`repro.plan.lazy.scan` pipelines can join in through
  ``collect(cache=db.result_cache)`` or ``Matrix.to_lazy()``.

It supersedes :class:`repro.sql.session.Session`, which remains a thin
compatibility subclass.  A database owns three session-scoped caches, all
invalidated precisely (catalog table versions + config cache tokens):

* a **parse cache** (SQL text -> statement AST — parsing is pure);
* a **plan cache** (SQL ``SELECT`` AST *or* expression plan node ->
  optimized plan + physical annotations);
* a **result cache** (:class:`repro.plan.cache.PlanCache`): repeated
  RMA/subquery subplans — across statements *and* across surfaces —
  return their memoized relations.

``Database(plan_cache=False)`` disables all three (the fully-uncached mode
the ablation benchmarks' baselines measure).

Configuration is session-scoped with per-call override:

>>> db = connect()
>>> db.configure(validate_keys=False)          # persistent for the session
>>> with db.configure(parallel=True):          # scoped to the block
...     m.collect()
>>> m.collect(fuse_elementwise=False)          # this call only
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional, Sequence

from repro.bat.bat import DataType
from repro.bat.catalog import Catalog
from repro.core.config import ParallelConfig, RmaConfig, default_config
from repro.errors import BindError, PlanError, SqlError
from repro.plan import nodes
from repro.plan.build import build_select
from repro.plan.cache import LruDict, PlanCache, catalog_stamps
from repro.plan.explain import explain_lines
from repro.plan.optimizer import optimize
from repro.plan.physical import (
    Executor,
    ExpressionEvaluator,
    Frame,
    PhysicalInfo,
    plan_physical,
)
from repro.api.matrix import Matrix
from repro.relational.relation import Relation
from repro.relational.ops import union_all
from repro.sql import ast
from repro.sql.parser import parse_sql

_MAX_CACHED_STATEMENTS = 256

_TYPE_NAMES = {
    "INT": DataType.INT, "INTEGER": DataType.INT, "BIGINT": DataType.INT,
    "SMALLINT": DataType.INT,
    "DOUBLE": DataType.DBL, "FLOAT": DataType.DBL, "REAL": DataType.DBL,
    "DECIMAL": DataType.DBL, "NUMERIC": DataType.DBL,
    "VARCHAR": DataType.STR, "CHAR": DataType.STR, "TEXT": DataType.STR,
    "STRING": DataType.STR,
    "DATE": DataType.DATE, "TIME": DataType.TIME,
    "BOOLEAN": DataType.BOOL, "BOOL": DataType.BOOL,
}

_CONFIG_FIELDS = frozenset(
    f.name for f in dataclasses.fields(RmaConfig) if f.name != "parallel")
_PARALLEL_FIELDS = frozenset(
    f.name for f in dataclasses.fields(ParallelConfig) if f.name != "enabled")


def derive_config(base: RmaConfig, overrides: dict) -> RmaConfig:
    """A copy of ``base`` with configuration knobs patched.

    Accepts every :class:`RmaConfig` field by name, plus ``parallel`` as a
    bool (toggling the engine while keeping the sizing knobs) or a full
    :class:`ParallelConfig`, and the engine's sizing knobs ``workers`` /
    ``min_morsel_rows`` directly.  Unknown knobs raise ``TypeError`` — a
    typo must not silently configure nothing.
    """
    overrides = dict(overrides)
    parallel = base.parallel
    if "parallel" in overrides:
        value = overrides.pop("parallel")
        if isinstance(value, ParallelConfig):
            parallel = value
        else:
            parallel = dataclasses.replace(parallel, enabled=bool(value))
    for knob in _PARALLEL_FIELDS:
        if knob in overrides:
            parallel = dataclasses.replace(
                parallel, **{knob: overrides.pop(knob)})
    unknown = set(overrides) - _CONFIG_FIELDS
    if unknown:
        raise TypeError(
            f"unknown configuration knob(s): {', '.join(sorted(unknown))}; "
            f"known: parallel, {', '.join(sorted(_PARALLEL_FIELDS))}, "
            f"{', '.join(sorted(_CONFIG_FIELDS))}")
    return dataclasses.replace(base, parallel=parallel, **overrides)


def _scans_in_memory_relations(plan: nodes.Plan) -> bool:
    """Whether any leaf is a ``RelScan`` (id-deduplicated walk, DAG-safe:
    expression plans share subtree objects, e.g. a Gram matrix used on
    both sides of a solve)."""
    stack, seen = [plan], set()
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, nodes.RelScan):
            return True
        stack.extend(node.children())
    return False


class _ConfigScope:
    """Handle returned by :meth:`Database.configure`.

    The configuration change is applied immediately (session-scoped); used
    as a context manager, leaving the ``with`` block restores the previous
    configuration, turning the same call into a scoped override.
    """

    def __init__(self, db: "Database", previous: Optional[RmaConfig]):
        self._db = db
        self._previous = previous

    def __enter__(self) -> "Database":
        return self._db

    def __exit__(self, *exc_info) -> None:
        self._db.config = self._previous


class Database:
    """A connection-like object bound to a catalog (see module docstring).

    >>> db = connect()
    >>> db.register("rating", some_relation)
    >>> m = db.matrix("rating", by="User")
    >>> (m.inv() @ m).collect()            # one plan, fused + cached
    >>> db.execute("SELECT * FROM INV(rating BY User)")   # same plan IR
    """

    def __init__(self, catalog: Catalog | None = None,
                 config: RmaConfig | None = None,
                 optimize_plans: bool = True,
                 plan_cache: "bool | PlanCache" = True):
        self.catalog = catalog or Catalog()
        self.config = config
        self.optimize_plans = optimize_plans
        # ``plan_cache=False`` disables ALL session caching (parse,
        # statement-plan and result) — the fully-uncached mode the
        # ablation baselines measure.
        self._caching = not (plan_cache is False or plan_cache is None)
        if plan_cache is True:
            self.result_cache: PlanCache | None = PlanCache()
        elif not self._caching:
            self.result_cache = None
        else:
            self.result_cache = plan_cache
        self.last_stats = None  # ExecStats of the most recent execution
        self._statements: LruDict = LruDict(_MAX_CACHED_STATEMENTS)
        # Select AST or expression Plan -> (optimized plan, physical info,
        # stamps, config token, optimize_plans)
        self._select_plans: LruDict = LruDict(_MAX_CACHED_STATEMENTS)

    # -- catalog helpers -------------------------------------------------------

    def register(self, name: str, relation: Relation,
                 replace: bool = True) -> None:
        """Register an in-memory relation as a table."""
        self.catalog.create(name, relation, replace=replace)

    def table(self, name: str) -> Relation:
        return self.catalog.get(name)

    def tables(self) -> list[str]:
        """The catalog's table names, sorted."""
        return self.catalog.names()

    # -- configuration ---------------------------------------------------------

    def _effective_config(self) -> RmaConfig:
        return self.config or default_config()

    def configure(self, config: RmaConfig | None = None,
                  **knobs) -> _ConfigScope:
        """Set session configuration; usable as a context manager.

        ``db.configure(validate_keys=False)`` patches the session config in
        place (starting from the current effective configuration);
        ``with db.configure(parallel=True): ...`` restores the previous
        configuration when the block exits.  ``config=`` replaces the whole
        configuration before the knobs apply.  Plans and cached results
        produced under other settings are revalidated via config cache
        tokens, never served stale.
        """
        previous = self.config
        base = config or self._effective_config()
        self.config = derive_config(base, knobs) if knobs else base
        return _ConfigScope(self, previous)

    def _call_config(self, config: Optional[RmaConfig],
                     overrides: dict) -> RmaConfig:
        base = config or self._effective_config()
        return derive_config(base, overrides) if overrides else base

    # -- the matrix-expression surface ----------------------------------------

    def matrix(self, source: "str | Relation | Matrix",
               by: "str | Sequence[str]",
               name: str | None = None) -> Matrix:
        """A lazy :class:`~repro.api.matrix.Matrix` handle over a relation.

        ``source`` is a catalog table name or an in-memory
        :class:`Relation` (or an existing handle, which is re-keyed —
        sugar for :meth:`Matrix.ordered_by`).  ``by`` is the order schema:
        the attributes whose values identify rows; the remaining
        (numeric) attributes form the matrix the operations apply to.
        """
        from repro.plan.lazy import default_alias
        if isinstance(source, Matrix):
            if name is not None:
                raise PlanError(
                    "matrix: name= applies to new scans only, not when "
                    "re-keying an existing Matrix")
            if source.database is not self:
                # A handle's plan may scan *this* database's tables by
                # name; silently adopting it would resolve them against
                # the wrong catalog and mix caches across sessions.
                raise PlanError(
                    "matrix: the Matrix belongs to a different database; "
                    "re-key it there (or rebuild from the relation)")
            return source.ordered_by(by)
        names = (by,) if isinstance(by, str) else tuple(by)
        if not names:
            raise PlanError("matrix: order schema must not be empty")
        if isinstance(source, str):
            relation = self.catalog.get(source)  # raises CatalogError
            plan: nodes.Plan = nodes.Scan(source, name or source)
        elif isinstance(source, Relation):
            relation = source
            plan = nodes.RelScan(source, name or default_alias(source))
        else:
            raise PlanError(
                "matrix expects a table name, a Relation or a Matrix, "
                f"got {type(source).__name__}")
        missing = [n for n in names if n not in relation.schema]
        if missing:
            from repro.errors import OrderSchemaError
            raise OrderSchemaError(
                f"order attribute(s) {', '.join(map(repr, missing))} not "
                f"in schema ({', '.join(relation.names)})")
        app = tuple(n for n in relation.names if n not in names)
        return Matrix(self, plan, names, app)

    # -- expression planning and execution -------------------------------------

    def _plan_expression(self, plan: nodes.Plan, config: RmaConfig) \
            -> tuple[nodes.Plan, PhysicalInfo]:
        """Optimize + physically annotate an expression plan, cached.

        Shares the statement-plan cache with the SQL surface: the cache is
        keyed by the (structurally hashable) plan node itself, stamped
        with the catalog versions of scanned tables and the config's cache
        token — equal expressions re-planned only when something they
        depend on changed.

        Plans with in-memory leaves (``RelScan``) are planned fresh every
        time instead: their nodes hold strong references to the input
        relations, and unlike the byte-budgeted result cache the plan
        cache only caps entry *count* — caching them would let a
        long-lived session pin up to 256 generations of dead input data.
        Planning is cheap relative to execution, and the result cache
        still serves repeated subplan results.
        """
        key = plan if not _scans_in_memory_relations(plan) else None
        return self._plan_cached(key, config, lambda: plan, keep_all=True)

    def _plan_cached(self, cache_key, config: RmaConfig, build,
                     keep_all: bool) -> tuple[nodes.Plan, PhysicalInfo]:
        """The statement-plan cache shared by both front ends.

        ``cache_key`` is a hashable description of the un-optimized plan
        (the SELECT AST or the expression plan node), or None to bypass
        the cache; ``build`` produces the un-optimized plan on a miss.
        ``keep_all`` mirrors :func:`repro.plan.optimizer.optimize`: SQL
        SELECTs end in a Project that names their whole visible output
        (so pruning below it is safe, keep_all=False), while expression
        plans may end in any node whose every column is part of the
        result.
        """
        key = cache_key if self._caching else None
        if key is not None:
            entry = self._select_plans.get(key)
            if entry is not None:
                planned, info, stamps, entry_token, entry_optimize = entry
                if (entry_token == config.cache_token()
                        and entry_optimize == self.optimize_plans
                        and all(self.catalog.table_version(name) == version
                                for name, version in stamps)):
                    self._select_plans.touch(key)
                    return planned, info
                del self._select_plans[key]
        planned = build()
        if self.optimize_plans:
            planned = optimize(planned, self.catalog, keep_all=keep_all,
                               fuse=config.fuse_elementwise)
        info = plan_physical(planned, self.catalog)
        if key is not None:
            self._select_plans.store(
                key,
                (planned, info, catalog_stamps(planned, self.catalog),
                 config.cache_token(), self.optimize_plans))
        return planned, info

    def _collect_expression(self, plan: nodes.Plan,
                            config: Optional[RmaConfig],
                            overrides: dict) -> Relation:
        effective = self._call_config(config, overrides)
        planned, info = self._plan_expression(plan, effective)
        executor = Executor(self.catalog, effective, physical=info,
                            result_cache=self.result_cache)
        frame = executor.run(planned)
        self.last_stats = executor.stats
        return frame.to_plain_relation()

    def _explain_expression(self, plan: nodes.Plan,
                            config: Optional[RmaConfig],
                            overrides: dict) -> str:
        effective = self._call_config(config, overrides)
        planned, info = self._plan_expression(plan, effective)
        return "\n".join(explain_lines(planned, info))

    # -- SQL execution ---------------------------------------------------------

    def execute(self, sql: str) -> Relation | None:
        """Execute one SQL statement.

        SELECT returns a relation; DDL/DML return None (INSERT returns
        None after updating the catalog).
        """
        statement = self._parse_cached(sql)
        if isinstance(statement, ast.Select):
            return self._run_select(statement)
        if isinstance(statement, ast.Explain):
            lines = self._explain_lines(statement.query)
            return Relation.from_columns({"explain": lines})
        if isinstance(statement, ast.CreateTable):
            return self._run_create(statement)
        if isinstance(statement, ast.DropTable):
            self.catalog.drop(statement.name, if_exists=statement.if_exists)
            return None
        if isinstance(statement, ast.InsertValues):
            return self._run_insert(statement)
        raise SqlError(f"unsupported statement {statement!r}")

    def _parse_cached(self, sql: str) -> ast.Statement:
        """Parse with a per-session cache (parsing is a pure function)."""
        if not self._caching:
            return parse_sql(sql)
        key = sql.strip()
        statement = self._statements.get(key)
        if statement is None:
            statement = parse_sql(sql)
            self._statements.store(key, statement)
        else:
            self._statements.touch(key)
        return statement

    def _plan_select(self, statement: ast.Select) \
            -> tuple[nodes.Plan, PhysicalInfo]:
        """AST -> optimized shared plan IR + physical annotations.

        The single entry point for SQL plan construction: plan(), EXPLAIN
        and execution all route through here and share the statement-plan
        cache (keyed by the frozen, structurally hashable Select AST), so
        they can never diverge.
        """
        return self._plan_cached(statement, self._effective_config(),
                                 lambda: build_select(statement),
                                 keep_all=False)

    def _select_statement(self, sql: str) -> ast.Select:
        """Parse one statement and unwrap to its SELECT (EXPLAIN peels)."""
        statement = self._parse_cached(sql)
        if isinstance(statement, ast.Explain):
            statement = statement.query
        if not isinstance(statement, ast.Select):
            raise PlanError("only SELECT statements can be planned")
        return statement

    def plan(self, sql: str) -> nodes.Plan:
        """Parse and optimize without executing (for tests/EXPLAIN)."""
        return self._plan_select(self._select_statement(sql))[0]

    def physical_info(self, sql: str) -> PhysicalInfo:
        """The physical planner's annotations for a statement."""
        return self._plan_select(self._select_statement(sql))[1]

    def explain(self, sql: str) -> str:
        """The optimized plan with physical annotations, as text."""
        return "\n".join(self._explain_lines(self._select_statement(sql)))

    def _explain_lines(self, statement: ast.Select) -> list[str]:
        plan, info = self._plan_select(statement)
        return explain_lines(plan, info)

    def _run_select(self, statement: ast.Select) -> Relation:
        plan, info = self._plan_select(statement)
        executor = Executor(self.catalog, self.config, physical=info,
                            result_cache=self.result_cache)
        frame = executor.run(plan)
        self.last_stats = executor.stats
        return frame.to_plain_relation()

    def _run_create(self, statement: ast.CreateTable) -> None:
        if statement.source is not None:
            relation = self._run_select(statement.source)
            self.catalog.create(statement.name, relation)
            return None
        attrs = []
        for column in statement.columns:
            dtype = _TYPE_NAMES.get(column.type_name)
            if dtype is None:
                raise BindError(
                    f"unknown column type {column.type_name!r}")
            attrs.append((column.name, dtype))
        from repro.relational.schema import Attribute, Schema
        schema = Schema(Attribute(n, t) for n, t in attrs)
        self.catalog.create(statement.name, Relation.empty(schema))
        return None

    def _run_insert(self, statement: ast.InsertValues) -> None:
        target = self.catalog.get(statement.table)
        names = list(statement.columns) or target.names
        unknown = set(names) - set(target.names)
        if unknown:
            raise BindError(
                f"unknown columns {sorted(unknown)} in INSERT")
        rows: list[list[Any]] = []
        dual = Relation.from_columns({"_one": [1]})
        frame = Frame.from_relation(dual, None)
        evaluator = ExpressionEvaluator(frame)
        for row_exprs in statement.rows:
            if len(row_exprs) != len(names):
                raise PlanError(
                    f"INSERT row has {len(row_exprs)} values for "
                    f"{len(names)} columns")
            row = []
            for expr in row_exprs:
                value = evaluator.eval(expr)
                if hasattr(value, "tail"):
                    raise PlanError("INSERT values must be constants")
                row.append(value)
            rows.append(row)
        # Build a relation in target column order, filling missing with nil.
        data: dict[str, list[Any]] = {n: [] for n in target.names}
        for row in rows:
            provided = dict(zip(names, row))
            for n in target.names:
                data[n].append(provided.get(n))
        types = {n: target.schema.dtype(n) for n in target.names}
        addition = Relation.from_columns(data, types)
        self.catalog.create(statement.table,
                            union_all(target, addition), replace=True)
        return None


def connect(catalog: Catalog | None = None,
            config: RmaConfig | None = None,
            optimize_plans: bool = True,
            plan_cache: "bool | PlanCache" = True) -> Database:
    """Open a :class:`Database` — the library's front door.

    >>> import repro
    >>> db = repro.connect()
    >>> db.register("rating", rating)
    >>> m = db.matrix("rating", by="User")
    >>> beta = (m.inv() @ m).collect()
    """
    return Database(catalog=catalog, config=config,
                    optimize_plans=optimize_plans, plan_cache=plan_cache)
