"""Order-schema and application-schema inference for matrix expressions.

A :class:`~repro.api.matrix.Matrix` handle is a logical plan plus the two
pieces of schema knowledge chaining needs *before* execution:

* its **order schema** (``by``) — always known: the shape types of paper
  Table 1 determine the row context of every result, so the order schema
  of ``a @ b``, ``(a + b).T`` etc. follows mechanically from the operand
  schemas (:func:`result_by`);
* its **application schema** (``app``) — known when statically derivable
  (:func:`result_app` returns ``None`` for the column-cast operations
  ``tra``/``usv``/``opd``, whose result attributes are *data values*).

The same table drives the early precondition checks (:func:`check_operands`)
so expression-building errors surface at the call site that caused them,
not at ``collect()`` — with the same exception types the execution pipeline
itself raises (:class:`~repro.errors.OrderSchemaError` and friends).  The
execution-time checks in :mod:`repro.core.context` remain authoritative;
nothing here is load-bearing for correctness.
"""

from __future__ import annotations

from typing import Optional

from repro.core.ops import CONTEXT_ATTRIBUTE
from repro.errors import OrderSchemaError
from repro.opspec import OpSpec

By = tuple[str, ...]


def result_by(spec: OpSpec, by1: By, by2: Optional[By] = None) -> By:
    """The order schema of an operation's result (paper Table 1/2).

    * shape type ``r1`` — the result keeps the first input's order part;
    * ``r*`` — element-wise results carry both order parts (U ∘ V);
    * ``c1``/``1`` — the result rows are identified by the synthesized
      context attribute ``C`` (schema cast ∆ or the literal ``'r'``).
    """
    x = spec.shape_type[0]
    if x == "r1":
        return by1
    if x == "r*":
        assert by2 is not None
        return by1 + by2
    return (CONTEXT_ATTRIBUTE,)


def result_app(spec: OpSpec, app1: Optional[By],
               app2: Optional[By] = None) -> Optional[By]:
    """The application schema of a result, or None when data-dependent.

    ``c1``/``c*`` inherit the first input's application schema, ``c2`` the
    second's, ``1`` is the single column named after the operation, and the
    column-cast types ``r1``/``r2`` name their columns after *order values*
    — unknowable before execution.
    """
    y = spec.shape_type[1]
    if y in ("c1", "c*"):
        return app1
    if y == "c2":
        return app2
    if y == "1":
        return (spec.name,)
    return None  # r1 / r2: column names are sorted order values


def check_operands(spec: OpSpec, by1: By, by2: Optional[By] = None) -> None:
    """Early (build-time) order-schema checks for expression chaining.

    Only conditions that are decidable from the handles alone are checked
    here; everything data-dependent (key property, cardinalities, numeric
    application attributes) stays with the execution pipeline.
    """
    for argument, by in ((1, by1), (2, by2)):
        if by is None:
            continue
        if argument in spec.order_card_one and len(by) != 1:
            raise OrderSchemaError(
                f"{spec.name}: the column cast requires a single-attribute "
                f"order schema for argument {argument}, got {len(by)}")
    if spec.same_shape and by2 is not None:
        overlap = set(by1) & set(by2)
        if overlap:
            raise OrderSchemaError(
                f"{spec.name}: order schemas overlap on "
                f"{sorted(overlap)}; rename one side first")
