"""The ``Matrix`` expression handle: linear algebra over relations, lazily.

A :class:`Matrix` is the paper's central object made first-class: an ordered
relation *is* a matrix, so users write matrix algebra over relations
directly and the column store optimizes the whole expression.  Handles are
created by :meth:`repro.api.database.Database.matrix` and compose through

* **operators** — ``a @ b`` (mmu), ``a + b`` / ``a - b`` / ``a * b``
  (element-wise add/sub/emu), scalar arithmetic ``2.0 * a``, ``a + 1.0``,
  ``-a``, ``a / 3`` (the kernel-layer scalar variants), and ``a.T``
  (transpose);
* **named methods** — one per Table 2 operation and scalar variant,
  generated from the declarative op table (:mod:`repro.opspec`):
  ``a.inv()``, ``a.qqr()``, ``a.sol(rhs)``, ``a.cpd(b)``, ``a.smul(2.0)``,
  ...

Nothing executes until :meth:`Matrix.collect`.  Every composition step
builds a node of the shared plan IR (:mod:`repro.plan.nodes`) — the same IR
the SQL session and the lazy builder compile into — so a chained
"eager-looking" expression gets the whole plan stack for free: element-wise
fusion into one kernel pass (:class:`~repro.plan.nodes.FusedRma`),
common-subexpression elimination, the session's byte-budget plan/result
cache, and the morsel-parallel engine.  :meth:`Matrix.explain` prints the
optimized plan with its physical annotations.

The order schema of every intermediate is inferred from the paper's shape
types (:mod:`repro.api.inference`), which is what lets ``(a @ b + c).T``
chain without re-stating ``BY`` lists at each step.
"""

from __future__ import annotations

import numbers
from typing import TYPE_CHECKING, Optional, Sequence

from repro.api import inference
from repro.core.config import RmaConfig
from repro.errors import PlanError
from repro.opspec import OPS, SCALAR_OPS, spec_of
from repro.plan import nodes
from repro.plan.build import build_rma
from repro.relational.relation import Relation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.database import Database
    from repro.plan.lazy import LazyFrame


class Matrix:
    """A lazy matrix expression over relations (see module docstring).

    Handles are immutable: every operation returns a new handle wrapping a
    new plan node.  Reusing a handle in two places of one expression builds
    *equal* subplans, which the executor recognizes and runs once (CSE) —
    ``gram = a.cpd(a)`` then ``gram.inv() @ gram`` evaluates the cross
    product a single time.
    """

    __slots__ = ("_db", "_plan", "_by", "_app", "_parts")

    def __init__(self, db: "Database", plan: nodes.Plan,
                 by: Sequence[str], app: Optional[Sequence[str]] = None,
                 parts: Optional[tuple[tuple[str, ...], ...]] = None):
        self._db = db
        self._plan = plan
        self._by = tuple(by)
        self._app = tuple(app) if app is not None else None
        # The order schema grouped by originating operand: element-wise
        # results carry one aligned order part per operand (U ∘ V), and
        # narrow() needs the first *group*, not the first attribute.
        self._parts = parts if parts is not None else (self._by,)

    # -- introspection ------------------------------------------------------

    @property
    def plan(self) -> nodes.Plan:
        """The (un-optimized) logical plan built so far."""
        return self._plan

    @property
    def by(self) -> tuple[str, ...]:
        """The order schema identifying this expression's rows."""
        return self._by

    @property
    def app_names(self) -> Optional[tuple[str, ...]]:
        """The application schema, or None when data-dependent (e.g. after
        a transpose, whose column names are order *values*)."""
        return self._app

    @property
    def database(self) -> "Database":
        return self._db

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        app = ", ".join(self._app) if self._app is not None else "?"
        return (f"Matrix({type(self._plan).__name__}; "
                f"by=({', '.join(self._by)}); app=({app}))")

    # -- expression building ------------------------------------------------

    def _coerce(self, other: "Matrix | Relation", op: str,
                by: "str | Sequence[str] | None") -> "Matrix":
        if isinstance(other, Matrix):
            if other._db is not self._db:
                raise PlanError(
                    f"{op}: operands belong to different databases")
            if by is not None:
                raise PlanError(
                    f"{op}: by= is only for plain-relation operands; the "
                    "Matrix operand already carries its order schema")
            return other
        if isinstance(other, Relation):
            if by is None:
                raise PlanError(
                    f"{op}: a plain Relation operand needs by=...")
            return self._db.matrix(other, by=by)
        raise PlanError(
            f"{op}: expected a Matrix or Relation operand, got "
            f"{type(other).__name__}")

    def _unary(self, op: str, scalar: Optional[float] = None) -> "Matrix":
        spec = spec_of(op)
        lhs = self._narrowed_for(spec, argument=1)
        inference.check_operands(spec, lhs._by)
        plan = build_rma(op, (lhs._plan,), (lhs._by,), scalar=scalar)
        return Matrix(self._db, plan, inference.result_by(spec, lhs._by),
                      inference.result_app(spec, lhs._app),
                      _result_parts(spec, lhs._parts))

    def _binary(self, op: str, other: "Matrix | Relation",
                by: "str | Sequence[str] | None" = None) -> "Matrix":
        spec = spec_of(op)
        rhs = self._coerce(other, op, by)
        lhs = self._narrowed_for(spec, argument=1)
        rhs = rhs._narrowed_for(spec, argument=2)
        inference.check_operands(spec, lhs._by, rhs._by)
        plan = build_rma(op, (lhs._plan, rhs._plan), (lhs._by, rhs._by))
        return Matrix(self._db, plan,
                      inference.result_by(spec, lhs._by, rhs._by),
                      inference.result_app(spec, lhs._app, rhs._app),
                      _result_parts(spec, lhs._parts, rhs._parts))

    def _narrowed_for(self, spec, argument: int) -> "Matrix":
        """Auto-narrow a composite order part for column-cast operands.

        ``(a @ b + 2.0 * c - d).T`` leaves the chain result keyed by the
        concatenation of every operand's order schema; the transpose (and
        the other column-cast operations) need the single identifying
        schema, so the aligned copies the element-wise steps attached are
        projected away first (see :meth:`narrow`).  Only fires when it
        provably helps: a single-part handle is returned unchanged, and
        narrowing a multi-part handle down to a still-composite first
        schema leaves the usual precondition error to ``check_operands``.
        """
        if argument in spec.order_card_one and len(self._parts) > 1:
            return self.narrow()
        return self

    def narrow(self) -> "Matrix":
        """Reduce a composite order part to its first order schema.

        Element-wise results carry one order part per operand (schema
        ``U ∘ V ∘ U-bar``); the parts are aligned key copies identifying
        the same rows, so keeping only the first loses no row identity —
        it drops redundant provenance.  Requires a statically known
        application schema (projection needs column names).
        """
        if len(self._parts) <= 1:
            return self
        if self._app is None:
            raise PlanError(
                "narrow: application schema is data-dependent; project "
                "the relation explicitly (to_lazy().select(...))")
        keep = self._parts[0] + self._app
        plan = nodes.Prune(self._plan, keep)
        return Matrix(self._db, plan, self._parts[0], self._app,
                      (self._parts[0],))

    def ordered_by(self, by: "str | Sequence[str]") -> "Matrix":
        """The same expression re-keyed by a different order schema.

        The order schema splits the relation into order and application
        part for the *next* operation, so re-keying is free — it only
        changes how subsequent operations read this handle.
        """
        names = (by,) if isinstance(by, str) else tuple(by)
        if not names:
            raise PlanError("ordered_by: order schema must not be empty")
        app = None
        if self._app is not None:
            # Statically known schema: an unknown name is a certain error
            # — surface it here, at the call site, like Database.matrix
            # does for plain relations.  Data-dependent schemas (app is
            # None) can only be checked at execution time.
            known = set(self._by) | set(self._app)
            missing = [n for n in names if n not in known]
            if missing:
                from repro.errors import OrderSchemaError
                raise OrderSchemaError(
                    f"order attribute(s) {', '.join(map(repr, missing))} "
                    f"not in schema ({', '.join(self._by + self._app)})")
            app = tuple(n for n in self._by + self._app
                        if n not in names)
        return Matrix(self._db, self._plan, names, app, (names,))

    # -- operator overloading ----------------------------------------------

    def __matmul__(self, other: "Matrix") -> "Matrix":
        return self._binary("mmu", other)

    def __add__(self, other):
        if isinstance(other, Matrix):
            return self._binary("add", other)
        if isinstance(other, numbers.Real):
            return self._unary("sadd", scalar=float(other))
        return NotImplemented

    def __radd__(self, other):
        if isinstance(other, numbers.Real):
            return self._unary("sadd", scalar=float(other))
        return NotImplemented

    def __sub__(self, other):
        if isinstance(other, Matrix):
            return self._binary("sub", other)
        if isinstance(other, numbers.Real):
            return self._unary("ssub", scalar=float(other))
        return NotImplemented

    def __rsub__(self, other):
        # c - M has no dedicated kernel: negate, then shift (both fuse
        # into the surrounding element-wise chain anyway).
        if isinstance(other, numbers.Real):
            return self._unary("smul", scalar=-1.0) \
                       ._unary("sadd", scalar=float(other))
        return NotImplemented

    def __mul__(self, other):
        if isinstance(other, Matrix):
            return self._binary("emu", other)
        if isinstance(other, numbers.Real):
            return self._unary("smul", scalar=float(other))
        return NotImplemented

    def __rmul__(self, other):
        if isinstance(other, numbers.Real):
            return self._unary("smul", scalar=float(other))
        return NotImplemented

    def __truediv__(self, other):
        if isinstance(other, numbers.Real):
            return self._unary("sdiv", scalar=float(other))
        return NotImplemented

    def __neg__(self) -> "Matrix":
        return self._unary("smul", scalar=-1.0)

    @property
    def T(self) -> "Matrix":
        """Transpose (``tra``); requires a single-attribute order schema."""
        return self._unary("tra")

    # -- execution ----------------------------------------------------------

    def collect(self, config: Optional[RmaConfig] = None,
                **overrides) -> Relation:
        """Optimize, plan and execute the expression; returns the relation.

        Runs on the owning database's executor with its session-scoped
        caches (statement-plan and subplan-result).  ``config`` replaces
        the session configuration for this call; keyword overrides patch
        individual knobs (``validate_keys=False``, ``parallel=True``,
        ``fuse_elementwise=False``, ...) on top of it — the same knobs
        :meth:`repro.api.database.Database.configure` accepts.
        """
        return self._db._collect_expression(self._plan, config, overrides)

    def explain(self, config: Optional[RmaConfig] = None,
                **overrides) -> str:
        """The optimized plan with physical annotations, as text.

        Fused element-wise chains show up as one ``FusedRma`` node;
        repeated subexpressions are annotated ``shared xN``.
        """
        return self._db._explain_expression(self._plan, config, overrides)

    def to_lazy(self) -> "LazyFrame":
        """Bridge into the relational pipeline API (:mod:`repro.plan.lazy`)
        for filters, joins, projections and aggregation over this
        expression's result — same plan, same executor.  The frame stays
        bound to this database: it plans against its catalog (named-table
        leaves resolve) and its ``collect``/``explain`` default to the
        session configuration and result cache."""
        from repro.plan.lazy import LazyFrame
        return LazyFrame(self._plan, session=self._db)


def _result_parts(spec, parts1, parts2=None):
    """Order-schema groups of a result (see ``Matrix._parts``).

    Must stay in lockstep with :func:`repro.api.inference.result_by`:
    ``_parts`` flattened equals ``_by`` on every handle.
    """
    x = spec.shape_type[0]
    if x == "r1":
        return parts1
    if x == "r*":
        assert parts2 is not None
        return parts1 + parts2
    return ((inference.CONTEXT_ATTRIBUTE,),)


def _unary_method(name: str, doc: str):
    def method(self: Matrix) -> Matrix:
        return self._unary(name)
    method.__name__ = name
    method.__qualname__ = f"Matrix.{name}"
    method.__doc__ = doc
    return method


def _binary_method(name: str, doc: str):
    def method(self: Matrix, other: "Matrix | Relation",
               by: "str | Sequence[str] | None" = None) -> Matrix:
        return self._binary(name, other, by)
    method.__name__ = name
    method.__qualname__ = f"Matrix.{name}"
    method.__doc__ = doc
    return method


def _scalar_method(name: str, doc: str):
    def method(self: Matrix, value: float) -> Matrix:
        return self._unary(name, scalar=float(value))
    method.__name__ = name
    method.__qualname__ = f"Matrix.{name}"
    method.__doc__ = doc
    return method


_OPERATOR_HINTS = {
    "add": "a + b", "sub": "a - b", "emu": "a * b", "mmu": "a @ b",
    "tra": "a.T", "sadd": "a + c", "ssub": "a - c", "smul": "c * a",
    "sdiv": "a / c",
}


def _document(spec) -> str:
    """Generate a method docstring from the declarative op table."""
    shape = f"shape type ({spec.shape_type[0]}, {spec.shape_type[1]})"
    if spec.scalar:
        head = (f"Scalar variant ``{spec.name}``: element-wise against a "
                f"constant; {shape}.")
    elif spec.arity == 1:
        head = f"Table 2 operation ``{spec.name}``; {shape}."
    else:
        head = (f"Table 2 operation ``{spec.name}`` over two matrices; "
                f"{shape}.  ``other`` is a Matrix, or a plain Relation "
                "with ``by=...``.")
    hint = _OPERATOR_HINTS.get(spec.name)
    if hint is not None:
        head += f"  Also spelled ``{hint}``."
    head += ("\n\n        Lazy: returns a new expression handle; "
             "``.collect()`` executes.\n        ")
    return head


def install_operations(cls=Matrix) -> None:
    """Attach one method per Table 2 operation / scalar variant to
    :class:`Matrix`, generated from :mod:`repro.opspec` — the op table is
    the single source of truth for arity and documentation."""
    for name, spec in OPS.items():
        factory = _unary_method if spec.arity == 1 else _binary_method
        setattr(cls, name, factory(name, _document(spec)))
    for name, spec in SCALAR_OPS.items():
        setattr(cls, name, _scalar_method(name, _document(spec)))


install_operations()
