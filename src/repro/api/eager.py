"""Eager one-op execution through the shared plan layer.

The public eager functions of :mod:`repro.core.algebra` (``rma.add``,
``rma.inv``, ...) are thin adapters over this module: each call builds a
one-operation expression over the shared plan IR and collects it
immediately on the shared executor — the same path SQL statements, lazy
pipelines and :class:`~repro.api.matrix.Matrix` expressions take.  One
front door, even for single operations.

A one-op plan has nothing for the optimizer to rewrite (fusion needs at
least two chained element-wise steps), so optimization is skipped; the
executor's RMA evaluation calls :func:`repro.core.ops.execute_rma`
underneath, and ``Frame.to_plain_relation`` passes the merged relation
through unchanged — results (objects, order caches, raised errors) are
identical to the pre-redesign direct execution, which the API equivalence
tests assert for every operation.

The executor's own internal hook (:func:`repro.core.algebra.rma_operation`)
keeps calling ``execute_rma`` directly — routing it back through here would
recurse.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.bat.catalog import Catalog
from repro.core.config import RmaConfig
from repro.core.ops import execute_rma
from repro.plan import nodes
from repro.plan.physical import Executor
from repro.relational.relation import Relation

# Eager calls never touch named tables (their leaves are in-memory
# relations compared by identity), so one empty catalog serves them all.
_EAGER_CATALOG = Catalog()


def _by_tuple(by) -> tuple[str, ...] | None:
    if isinstance(by, str):
        return (by,)
    try:
        return tuple(by)
    except TypeError:
        return None  # let execute_rma raise its own error


def eager_rma(name: str, r: Relation, by: "str | Sequence[str]",
              s: Relation | None = None,
              s_by: "str | Sequence[str] | None" = None,
              config: RmaConfig | None = None,
              scalar: Optional[float] = None) -> Relation:
    """Run one operation eagerly via the plan executor.

    Malformed argument combinations (one of ``s``/``s_by`` missing, an
    un-iterable order schema) fall through to :func:`execute_rma` directly
    so the error type and message stay exactly the pre-redesign ones.
    """
    from repro.plan.lazy import default_alias
    bys = [_by_tuple(by)]
    if (s is None) != (s_by is None) or bys[0] is None:
        return execute_rma(name, r, by, s, s_by, config, scalar=scalar)
    inputs = [nodes.RelScan(r, default_alias(r))]
    if s is not None:
        s_names = _by_tuple(s_by)
        if s_names is None:
            return execute_rma(name, r, by, s, s_by, config, scalar=scalar)
        inputs.append(nodes.RelScan(s, default_alias(s)))
        bys.append(s_names)
    plan = nodes.Rma(name.lower(), tuple(inputs), tuple(bys), None, scalar)
    executor = Executor(_EAGER_CATALOG, config)
    return executor.run(plan).to_plain_relation()
