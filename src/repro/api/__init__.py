"""One front door: the session-scoped matrix-expression API.

The paper's thesis is that ordered relations *are* matrices; this package
is the surface that makes the whole library behave that way.
:func:`connect` opens a :class:`~repro.api.database.Database`;
:meth:`~repro.api.database.Database.matrix` hands out lazy
:class:`~repro.api.matrix.Matrix` expression handles with operator
overloading:

>>> import repro
>>> db = repro.connect()
>>> a = db.matrix(design, by="trip_id")
>>> v = db.matrix(target, by="trip_id")
>>> beta = (a.cpd(a).inv() @ a.cpd(v)).collect()

Everything — Matrix expressions, SQL statements, lazy relational
pipelines, and even the module-level eager functions ``repro.rma.*`` —
compiles into the one shared plan IR (:mod:`repro.plan.nodes`) and runs on
the one shared executor, so chained user code gets element-wise kernel
fusion, cross-statement common-subexpression caching and morsel-parallel
execution regardless of which surface it was written against.

Modules: :mod:`repro.api.database` (Database/connect, config scoping),
:mod:`repro.api.matrix` (the expression handle, op methods generated from
:mod:`repro.opspec`), :mod:`repro.api.inference` (order/application schema
inference for chaining), :mod:`repro.api.eager` (the one-op adapter behind
``repro.rma.*``).
"""

from repro.api.database import Database, connect, derive_config
from repro.api.matrix import Matrix

__all__ = ["connect", "Database", "Matrix", "derive_config"]
