"""Row-range partitioning for morsel-driven execution.

A *morsel* is a contiguous ``[start, stop)`` row range of the prepared
inputs.  Contiguity is what makes morsels cheap and deterministic:

* the engine's per-morsel work operates on numpy *views*
  (:func:`slice_columns`) — cutting a column into morsels allocates
  nothing;
* writing morsel results back at the same offsets is a deterministic
  chunk-ordered merge — the concatenation of morsel results equals the
  serial whole-column result bit for bit, regardless of which worker
  finishes first;
* should per-morsel work ever need BATs instead of raw tails,
  :meth:`repro.bat.bat.BAT.slice` already propagates every cached
  physical property through contiguous subsetting (``tsorted``/
  ``trevsorted``/``tkey``/``tnonil``), so the serial short-circuits
  would survive slicing too — the partitioner's contract, asserted in
  the engine tests, though today's stages all run on ndarray views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class Morsel:
    """One contiguous row range ``[start, stop)`` with its chunk index.

    ``index`` is the morsel's position in the partition, which is the
    merge order: result offsets are derived from it, never from
    completion order.
    """

    index: int
    start: int
    stop: int

    @property
    def rows(self) -> int:
        return self.stop - self.start


def partition(n: int, workers: int, min_morsel_rows: int) -> list[Morsel]:
    """Split ``n`` rows into at most ``workers`` morsels.

    Morsels never shrink below ``min_morsel_rows`` (thread handoff costs
    more than computing a tiny chunk inline), are balanced to within one
    row, and cover ``0 .. n`` exactly once in index order.  A result of
    length 1 means "stay serial".
    """
    if n <= 0:
        return [Morsel(0, 0, max(n, 0))]
    min_rows = max(1, min_morsel_rows)
    chunks = min(max(1, workers), max(1, n // min_rows))
    if chunks <= 1:
        return [Morsel(0, 0, n)]
    base, extra = divmod(n, chunks)
    morsels = []
    start = 0
    for i in range(chunks):
        stop = start + base + (1 if i < extra else 0)
        morsels.append(Morsel(i, start, stop))
        start = stop
    return morsels


def slice_columns(columns: Sequence[np.ndarray],
                  morsel: Morsel) -> list[np.ndarray]:
    """The morsel's view of each column (no copies)."""
    return [col[morsel.start:morsel.stop] for col in columns]
