"""Morsel-driven parallel execution engine.

The paper's column-store implementation inherits MonetDB's memory
management and intra-operator parallelism (§7, §8.6): MonetDB's engine
slices BATs into chunks and runs kernel instructions over the chunks on a
thread pool.  This package reproduces that execution model on top of our
staged RMA pipeline (prepare → kernel → merge, :mod:`repro.core.ops`):

* :mod:`repro.engine.morsel` — the **partitioner**.  It splits the row
  range of prepared inputs into *morsels* (contiguous ``[start, stop)``
  ranges sized by :class:`~repro.core.config.ParallelConfig`), handed to
  workers as zero-copy ndarray views; property metadata survives
  chunking because contiguous BAT subsetting propagates the cached bits
  (:meth:`repro.bat.bat.BAT.slice`), should a stage ever need per-morsel
  BATs rather than raw tails;

* :mod:`repro.engine.pool` — the **shared worker pool**: one
  process-wide thread pool (NumPy ufuncs, gathers, casts and argsort all
  release the GIL on large arrays, so threads scale without pickling
  columns).  Nested parallelism degrades gracefully instead of
  deadlocking: work submitted *from* a worker thread runs inline, so a
  kernel program scheduled inside a concurrently-executed subplan never
  waits on its own pool;

* :mod:`repro.engine.parallel` — morsel-parallel primitives for the
  pipeline stages: chunked gathers (``values[positions]``), chunked
  float-view materialization, chunked inverse permutations.  Each writes
  into a preallocated output at its morsel's offsets — the **merge is
  chunk-ordered and deterministic**, so parallel results are bit-identical
  to serial execution regardless of scheduling order.

The stages plug in as follows (mirroring the paper's §7 execution model,
where the relational plan drives BAT-algebra instructions over chunks):

=================  ======================================================
pipeline stage     parallel form
=================  ======================================================
prepare            per-input order/key work (argsort, key validation)
                   runs concurrently across the arguments of a binary
                   operation and across the leaves of a fused chain;
                   application-part gathers and INT→float casts run
                   per-morsel (:mod:`repro.core.context`)
kernel             element-wise kernel programs (``add``/``sub``/``emu``
                   and scalar steps) execute per-morsel with one shared
                   global sparse/dense decision per column pair
                   (:func:`repro.linalg.kernels.run_program_parallel`)
merge              morsel results land in preallocated columns at fixed
                   offsets (chunk-ordered); the relational merge then
                   proceeds exactly as in serial execution
plan               independent subplan subtrees — the two sides of a
                   join, sibling RMA arguments, distinct fused-chain
                   leaves — are scheduled concurrently on the same pool
                   (:mod:`repro.plan.physical`)
=================  ======================================================

Everything is gated by ``RmaConfig.parallel`` (off by default; the
``REPRO_PARALLEL`` environment variable flips the default, which is how CI
runs the whole tier-1 suite a second time under the parallel engine).
``benchmarks/bench_ablation_parallel.py`` measures the ablation and
asserts bit-identity between the two modes.
"""

from repro.engine.morsel import Morsel, partition, slice_columns
from repro.engine.pool import in_worker, map_chunks, run_tasks
from repro.engine.parallel import (
    parallel_astype_float,
    parallel_gather,
    parallel_gather_columns,
    parallel_rank_of,
    plan_morsels,
)

__all__ = [
    "Morsel",
    "partition",
    "plan_morsels",
    "slice_columns",
    "in_worker",
    "map_chunks",
    "run_tasks",
    "parallel_astype_float",
    "parallel_gather",
    "parallel_gather_columns",
    "parallel_rank_of",
]
