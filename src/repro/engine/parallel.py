"""Morsel-parallel primitives for the prepare stage.

Each function is the parallel twin of a numpy expression the serial
pipeline uses, preserving it bit for bit.  The gather/cast/scatter
primitives preallocate the output once and let every morsel write its own
``[start, stop)`` range (chunk-ordered merge); the argsort primitives
(:func:`parallel_argsort`, :func:`parallel_order_by`) chunk-sort and
stable-merge, with the tie-break fixed by chunk order.  Either way the
result is independent of worker scheduling, and the underlying numpy
kernels (fancy indexing, ``astype``, ``argsort``, ``searchsorted``)
release the GIL, which is where the multi-core speedup comes from.

When the configuration is inactive, the input is too small to split, or
the caller already runs on a pool worker, each function degrades to the
exact serial expression — same code path, same result.
"""

from __future__ import annotations

import numpy as np

from repro.engine.morsel import Morsel, partition
from repro.engine.pool import in_worker, map_chunks


def plan_morsels(n: int, parallel) -> list[Morsel] | None:
    """The morsel partition to use, or None for the serial path.

    The single home of the engine's gating rule (config inactive, caller
    already a pool worker, or input below the morsel floor → serial); the
    kernel stage and the prepare primitives both consult it so their
    thresholds can never drift apart.
    """
    if parallel is None or not parallel.active() or in_worker():
        return None
    morsels = partition(n, parallel.effective_workers(),
                        parallel.min_morsel_rows)
    if len(morsels) <= 1:
        return None
    return morsels


def parallel_gather(values: np.ndarray, positions: np.ndarray,
                    parallel) -> np.ndarray:
    """``values[positions]`` with the output computed per-morsel.

    The morsels range over the *output* (``positions``), so each worker
    reads a slice of the permutation and scatters into its own output
    range — disjoint writes, deterministic merge.
    """
    morsels = plan_morsels(len(positions), parallel)
    if morsels is None:
        return values[positions]
    out = np.empty(len(positions), dtype=values.dtype)

    def run(morsel: Morsel) -> None:
        out[morsel.start:morsel.stop] = \
            values[positions[morsel.start:morsel.stop]]

    map_chunks(run, morsels)
    return out


def parallel_gather_columns(columns, positions: np.ndarray,
                            parallel) -> list:
    """``[col[positions] for col in columns]`` as one pooled batch.

    Flattening the (column x morsel) grid into a single task batch pays
    one fork/join round for the whole application part instead of one
    per column; outputs are disjoint preallocated arrays, so the merge
    stays chunk-ordered and deterministic.
    """
    morsels = plan_morsels(len(positions), parallel)
    if morsels is None or len(columns) <= 1:
        if len(columns) == 1:
            return [parallel_gather(columns[0], positions, parallel)]
        return [col[positions] for col in columns]
    outs = [np.empty(len(positions), dtype=col.dtype) for col in columns]
    units = [(j, morsel) for j in range(len(columns))
             for morsel in morsels]
    # Group the units into at most ``workers`` tasks so the configured
    # worker cap bounds this call's concurrency, not just its morsel
    # count (and so the pool pays one handoff per worker, not per unit).
    n_tasks = min(parallel.effective_workers(), len(units))
    groups = [units[k::n_tasks] for k in range(n_tasks)]

    def run(group) -> None:
        for j, morsel in group:
            outs[j][morsel.start:morsel.stop] = \
                columns[j][positions[morsel.start:morsel.stop]]

    map_chunks(run, groups)
    return outs


def parallel_astype_float(tail: np.ndarray, parallel) -> np.ndarray:
    """``tail.astype(np.float64)`` computed per-morsel."""
    morsels = plan_morsels(len(tail), parallel)
    if morsels is None:
        return tail.astype(np.float64)
    out = np.empty(len(tail), dtype=np.float64)

    def run(morsel: Morsel) -> None:
        out[morsel.start:morsel.stop] = \
            tail[morsel.start:morsel.stop].astype(np.float64)

    map_chunks(run, morsels)
    return out


def _merge_runs(keys: np.ndarray, left: np.ndarray,
                right: np.ndarray) -> np.ndarray:
    """Stable merge of two key-sorted index runs (all of ``left``'s
    indices precede ``right``'s in the original array).

    ``searchsorted(..., side="right")`` places every right-run element
    *after* the equal-key left-run elements, and the ``arange`` offset
    keeps equal right-run elements in their own order — exactly the
    (key, original index) order a stable argsort of the concatenation
    produces.  numpy's binary search uses the sort-order comparison, so
    NaN keys merge consistently with ``argsort`` (NaNs last).
    """
    left_keys = keys[left]
    right_keys = keys[right]
    target = np.searchsorted(left_keys, right_keys, side="right")
    target = target + np.arange(len(right), dtype=np.int64)
    out = np.empty(len(left) + len(right), dtype=np.int64)
    out[target] = right
    mask = np.ones(len(out), dtype=bool)
    mask[target] = False
    out[mask] = left
    return out


def parallel_argsort(keys: np.ndarray, parallel) -> np.ndarray:
    """``np.argsort(keys, kind="stable")`` computed on the worker pool.

    Each morsel stable-argsorts its contiguous slice concurrently; the
    sorted runs are then combined by a pairwise merge tree (runs stay in
    ascending original-index order, so every merge's tie-break — left run
    first — reproduces the stable order).  Bit-identical to the serial
    argsort for every dtype ``order_by`` sorts (ints, floats with NaNs,
    object strings); the engine tests assert it.
    """
    morsels = plan_morsels(len(keys), parallel)
    if morsels is None:
        return np.argsort(keys, kind="stable")
    runs = map_chunks(
        lambda m: np.argsort(keys[m.start:m.stop], kind="stable")
        .astype(np.int64, copy=False) + m.start,
        morsels)
    while len(runs) > 1:
        pairs = [(runs[i], runs[i + 1]) for i in range(0, len(runs) - 1, 2)]
        tail = [runs[-1]] if len(runs) % 2 else []
        runs = map_chunks(lambda pair: _merge_runs(keys, *pair),
                          pairs) + tail
    return runs[0]


def parallel_order_by(bats, parallel) -> np.ndarray:
    """Morsel-parallel twin of :func:`repro.bat.sorting.order_by`.

    Same structure — identity short-circuit from cached properties, then
    repeated stable argsort from the minor to the major key — with the
    argsorts and the permutation gathers running per-morsel on the shared
    pool.  Degrades to the serial function (same code path, same errors)
    when the engine is inactive, the input is below the morsel floor, or
    the caller already runs on a pool worker.
    """
    from repro.bat import sorting
    from repro.bat.properties import properties_enabled
    if not bats or plan_morsels(len(bats[0]), parallel) is None:
        return sorting.order_by(bats)
    n = len(bats[0])
    for b in bats[1:]:
        if len(b) != n:
            return sorting.order_by(bats)  # raises the alignment error
    if properties_enabled() and sorting._already_ordered(bats):
        return np.arange(n, dtype=np.int64)
    positions = np.arange(n, dtype=np.int64)
    for bat in reversed(bats):
        key = parallel_gather(sorting._sort_key_array(bat), positions,
                              parallel)
        order = parallel_argsort(key, parallel)
        positions = parallel_gather(positions, order, parallel)
    return positions


def parallel_rank_of(positions: np.ndarray, parallel) -> np.ndarray:
    """Inverse permutation (:func:`repro.bat.sorting.rank_of`) per-morsel.

    Each morsel scatters ``start .. stop`` into the rank slots named by
    its slice of ``positions``; a permutation makes those slots disjoint
    across morsels, so writes never overlap.
    """
    n = len(positions)
    morsels = plan_morsels(n, parallel)
    ranks = np.empty(n, dtype=np.int64)
    if morsels is None:
        ranks[positions] = np.arange(n, dtype=np.int64)
        return ranks

    def run(morsel: Morsel) -> None:
        ranks[positions[morsel.start:morsel.stop]] = \
            np.arange(morsel.start, morsel.stop, dtype=np.int64)

    map_chunks(run, morsels)
    return ranks
