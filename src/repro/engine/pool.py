"""The shared worker pool of the morsel-driven engine.

One process-wide :class:`~concurrent.futures.ThreadPoolExecutor` serves
every parallel call site (kernel morsels, prepare-stage gathers, and the
plan executor's independent subplan subtrees).  Threads — not processes —
because the engine's hot loops are NumPy ufuncs, fancy-indexing gathers,
dtype casts and argsorts, all of which release the GIL on large arrays;
sharing the address space means columns are never pickled or copied to be
worked on.

Two invariants keep nesting safe:

* **Workers never wait on the pool.**  Work submitted from a worker
  thread runs inline (:func:`in_worker` marks pool threads), so a kernel
  program scheduled inside a concurrently-executing subplan cannot
  deadlock against its own pool, only degrade to serial.
* **The caller is also a worker.**  :func:`run_tasks` and
  :func:`map_chunks` execute the first task on the calling thread while
  the pool handles the rest — with ``k`` tasks only ``k - 1`` handoffs
  happen and the caller's core is never idle.

Results are returned in submission order (never completion order), which
is what makes the chunk-ordered merge deterministic.  The first raised
exception propagates after all tasks finished, exactly as the serial loop
would raise it.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")

_POOL: ThreadPoolExecutor | None = None
_POOL_LOCK = threading.Lock()
_TLS = threading.local()


def pool_size() -> int:
    """Threads in the shared pool (one per CPU, minimum 2)."""
    return max(2, os.cpu_count() or 1)


def _get_pool() -> ThreadPoolExecutor:
    global _POOL
    pool = _POOL
    if pool is None:
        with _POOL_LOCK:
            pool = _POOL
            if pool is None:
                pool = ThreadPoolExecutor(
                    max_workers=pool_size(),
                    thread_name_prefix="repro-morsel")
                _POOL = pool
    return pool


def shutdown_pool() -> None:
    """Tear down the shared pool (tests; a later call recreates it)."""
    global _POOL
    with _POOL_LOCK:
        if _POOL is not None:
            _POOL.shutdown(wait=True)
            _POOL = None


def in_worker() -> bool:
    """Whether the current thread is a pool worker (nested work inlines)."""
    return getattr(_TLS, "worker", False)


def _run_marked(fn: Callable[[], T]) -> T:
    _TLS.worker = True
    try:
        return fn()
    finally:
        _TLS.worker = False


def run_tasks(thunks: Sequence[Callable[[], T]]) -> list[T]:
    """Run independent thunks, results in submission order.

    The calling thread executes the first thunk itself; the shared pool
    runs the rest.  Called from a worker thread (nested parallelism) the
    whole batch runs inline — degraded, never deadlocked.
    """
    if len(thunks) <= 1 or in_worker():
        return [thunk() for thunk in thunks]
    pool = _get_pool()
    futures = [pool.submit(_run_marked, thunk) for thunk in thunks[1:]]
    results: list = [None] * len(thunks)
    first_error: BaseException | None = None
    try:
        results[0] = thunks[0]()
    except BaseException as exc:  # still drain the pool before raising
        first_error = exc
    for i, future in enumerate(futures, start=1):
        try:
            results[i] = future.result()
        except BaseException as exc:
            if first_error is None:
                first_error = exc
    if first_error is not None:
        raise first_error
    return results


def map_chunks(fn: Callable[[T], object], chunks: Sequence[T]) -> list:
    """Apply ``fn`` to every chunk, results in chunk order."""
    return run_tasks([lambda chunk=chunk: fn(chunk) for chunk in chunks])
