"""Workload 3 — Conferences: covariance computation (paper Fig. 17).

Input: the pivoted DBLP publication table (one row per author, one numeric
attribute per conference) and a ranking table.  The query computes the
covariance matrix over the publication counts and joins it with the ranking
to keep the rows of A++ conferences.

The covariance matrix is computed via the cross product of the centered
matrix (cov = Xc'Xc / (n-1)); the paper uses ``cblas_dsyrk`` for the
symmetric cross product in RMA+, ``a.t @ a`` in AIDA and ``crossprod`` in
R.  In all systems the matrix part dominates (>= 90% of the runtime).
Only RMA+ keeps the conference names attached to the covariance rows —
AIDA and R must re-attach them manually (modeled by the explicit
name-column rebuild in their runners).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import repro.relational.ops as rel_ops
from repro.baselines.aida import AidaTable
from repro.baselines.madlib import MadlibDatabase, covariance
from repro.baselines.rlike import RFrame, as_matrix, matrix_to_frame
from repro.bat.bat import BAT, DataType
from repro.core import RmaConfig
from repro.core.ops import execute_rma
from repro.linalg.policy import BackendPolicy
from repro.relational import AggregateSpec, group_by, join, rename
from repro.relational.relation import Relation
from repro.workloads.common import PhaseTimes, WorkloadResult


@dataclass
class ConferencesDataset:
    publications: Relation   # author + one DBL column per conference
    ranking: Relation        # conference, rating

    @property
    def conference_names(self) -> list[str]:
        return [n for n in self.publications.names if n != "author"]


def _center(dataset: ConferencesDataset) -> Relation:
    """Subtract column means (engine-side, vectorized)."""
    publications = dataset.publications
    names = dataset.conference_names
    columns = {"author": publications.column("author")}
    for name in names:
        values = publications.column(name).tail
        columns[name] = BAT(DataType.DBL, values - values.mean())
    return Relation.from_columns(columns)


def _join_ranking_and_filter(cov: Relation, ranking: Relation) -> Relation:
    """Join covariance rows with the ranking, keep A++ conferences."""
    joined = join(cov, ranking, ["C"], ["conference"],
                  drop_right_keys=True)
    mask = np.array([r == "A++"
                     for r in joined.column("rating").python_values()])
    return rel_ops.select_mask(joined, mask)


def run_rma(dataset: ConferencesDataset, backend: str = "mkl",
            matrix: bool = False) -> WorkloadResult:
    times = PhaseTimes()
    config = RmaConfig(policy=BackendPolicy(prefer=backend),
                       validate_keys=False)
    n = dataset.publications.nrows
    names = dataset.conference_names
    with times.measure("prep"):
        centered = _center(dataset)
    with times.measure("matrix"):
        scale = 1.0 / (n - 1)
        if matrix:
            # One expression: symmetric cross product (the dsyrk-style
            # path — both operands are the same handle) scaled by the
            # kernel-layer smul, which keeps the context attribute C
            # attached through the scaling.
            from repro.api import connect
            cm = connect(config=config).matrix(centered, by="author")
            cov = (cm.cpd(cm) * scale).collect()
        else:
            # Same relation and order schema twice: symmetric dsyrk path.
            cross = execute_rma("cpd", centered, "author", centered,
                                "author", config=config)
            columns = {"C": cross.column("C")}
            for name in names:
                columns[name] = BAT(DataType.DBL,
                                    cross.column(name).tail * scale)
            cov = Relation.from_columns(columns)
    with times.measure("prep"):
        result = _join_ranking_and_filter(cov, dataset.ranking)
    signature = _signature(result, names)
    label = f"RMA+{backend.upper()}" + ("+API" if matrix else "")
    return WorkloadResult(label, times, signature,
                          {"a_plus_plus": result.nrows})


def _signature(result: Relation, names: list[str]) -> np.ndarray:
    """Order-independent numeric signature: per-A++-row sums, sorted."""
    if result.nrows == 0:
        return np.zeros(1)
    sums = np.zeros(result.nrows)
    for name in names:
        sums += result.column(name).tail
    return np.sort(sums)


def run_aida(dataset: ConferencesDataset) -> WorkloadResult:
    times = PhaseTimes()
    names = dataset.conference_names
    n = dataset.publications.nrows
    with times.measure("prep"):
        table = AidaTable(dataset.publications)
        arrays = table.to_python(names)  # numeric: pointer transfer
    with times.measure("matrix"):
        dense = np.column_stack([arrays[name] for name in names])
        centered = dense - dense.mean(axis=0)
        cov = (centered.T @ centered) / (n - 1)
    with times.measure("prep"):
        # AIDA's covariance has no contextual information: the conference
        # names must be manually added as a new column (§8.6(3)).
        data = {"C": np.array(names, dtype=object)}
        for j, name in enumerate(names):
            data[name] = cov[:, j]
        cov_table = AidaTable.from_python(data, table.stats)
        result = _join_ranking_and_filter(cov_table.relation,
                                          dataset.ranking)
    return WorkloadResult("AIDA", times, _signature(result, names),
                          {"a_plus_plus": result.nrows})


def run_r(dataset: ConferencesDataset) -> WorkloadResult:
    times = PhaseTimes()
    names = dataset.conference_names
    n = dataset.publications.nrows
    publications = RFrame.from_relation(dataset.publications)
    ranking = RFrame.from_relation(dataset.ranking)
    with times.measure("matrix"):
        dense = as_matrix(publications, names)
        centered = dense - dense.mean(axis=0)
        cov = (centered.T @ centered) / (n - 1)  # crossprod
    with times.measure("prep"):
        # Manually re-attach conference names, then merge with the ranking.
        frame = matrix_to_frame(cov, names)
        frame = frame.with_column("C", np.array(names, dtype=object))
        merged = frame.merge(
            RFrame({"C": ranking["conference"],
                    "rating": ranking["rating"]}), ["C"])
        mask = np.array([r == "A++" for r in merged["rating"]])
        selected = merged.subset(mask)
        sums = np.zeros(len(selected))
        for name in names:
            sums += selected[name]
        signature = np.sort(sums)
    if len(selected) == 0:
        signature = np.zeros(1)
    return WorkloadResult("R", times, signature,
                          {"a_plus_plus": len(selected)})


def run_madlib(dataset: ConferencesDataset) -> WorkloadResult:
    times = PhaseTimes()
    names = dataset.conference_names
    db = MadlibDatabase.from_relations(ranking=dataset.ranking)
    rows = [list(row[1:]) for row in dataset.publications.to_rows()]
    with times.measure("matrix"):
        cov = covariance(rows)
    with times.measure("prep"):
        rating_of = {row[0]: row[1] for row in db.rows("ranking")}
        selected = [(name, cov_row) for name, cov_row in zip(names, cov)
                    if rating_of.get(name) == "A++"]
        sums = sorted(sum(cov_row) for _, cov_row in selected)
        signature = np.array(sums) if sums else np.zeros(1)
    return WorkloadResult("MADlib", times, signature,
                          {"a_plus_plus": len(selected)})


def run_conferences(dataset: ConferencesDataset,
                    systems: tuple[str, ...] =
                    ("rma-mkl", "rma-bat", "aida", "r", "madlib")) \
        -> list[WorkloadResult]:
    runners = {
        "rma-mkl": lambda: run_rma(dataset, "mkl"),
        "rma-bat": lambda: run_rma(dataset, "bat"),
        "rma-api": lambda: run_rma(dataset, "mkl", matrix=True),
        "aida": lambda: run_aida(dataset),
        "r": lambda: run_r(dataset),
        "madlib": lambda: run_madlib(dataset),
    }
    return [runners[s]() for s in systems]
