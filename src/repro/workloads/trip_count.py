"""Workload 4 — Trip count: matrix addition (paper Fig. 18).

Each input tuple stores a rider and the trip counts to 10 destinations for
one year; ``add`` over the two year relations yields the two-year counts.
``add`` is a *linear* operation, so RMA+ runs it on BATs without any copy
(Fig. 18b: RMA+BAT beats RMA+MKL — the transformation overhead of the
delegation path cannot be amortized), while AIDA must round-trip the data
through Python and R must convert data.table -> matrix -> data.table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.aida import AidaTable
from repro.baselines.madlib import MadlibDatabase, matrix_add
from repro.baselines.rlike import RFrame, as_matrix, matrix_to_frame
from repro.core import RmaConfig
from repro.core.ops import execute_rma
from repro.linalg.policy import BackendPolicy
from repro.relational.relation import Relation
from repro.workloads.common import PhaseTimes, WorkloadResult


@dataclass
class TripCountDataset:
    year1: Relation   # rider key + destination count columns
    year2: Relation   # same schema, key named differently
    key1: str = "rider1"
    key2: str = "rider2"

    @property
    def destination_names(self) -> list[str]:
        return [n for n in self.year1.names if n != self.key1]


def _signature(values: np.ndarray) -> np.ndarray:
    return np.array([values.sum(), np.abs(values).max()])


def run_rma(dataset: TripCountDataset, backend: str = "bat",
            matrix: bool = False) -> WorkloadResult:
    """RMA+ — the policy's default for add is the no-copy BAT path.

    ``matrix=True`` writes the addition as a matrix expression
    (``m1 + m2``) on the session API; same plan node, same kernel, same
    result.
    """
    times = PhaseTimes()
    prefer = "auto" if backend == "bat" else backend
    config = RmaConfig(policy=BackendPolicy(prefer=prefer),
                       validate_keys=False)
    with times.measure("matrix"):
        if matrix:
            from repro.api import connect
            db = connect(config=config)
            result = (db.matrix(dataset.year1, by=dataset.key1)
                      + db.matrix(dataset.year2, by=dataset.key2)).collect()
        else:
            result = execute_rma("add", dataset.year1, dataset.key1,
                                 dataset.year2, dataset.key2, config=config)
    names = dataset.destination_names
    totals = np.zeros(result.nrows)
    for name in names:
        totals += result.column(name).tail
    label = ("RMA+BAT" if backend == "bat" else "RMA+MKL") + (
        "+API" if matrix else "")
    return WorkloadResult(label, times, _signature(totals),
                          {"rows": result.nrows})


def run_aida(dataset: TripCountDataset) -> WorkloadResult:
    times = PhaseTimes()
    names = dataset.destination_names
    with times.measure("matrix"):
        t1 = AidaTable(dataset.year1.sorted_by([dataset.key1]))
        t2 = AidaTable(dataset.year2.sorted_by([dataset.key2]))
        a1 = t1.to_python(names)
        a2 = t2.to_python(names)
        summed = {name: a1[name] + a2[name] for name in names}
        summed[dataset.key1] = t1.to_python([dataset.key1])[dataset.key1]
        # The result must live in the database again for later relational
        # operations: AIDA copies it back.
        result = AidaTable.from_python(summed, t1.stats)
    totals = np.zeros(result.nrows)
    for name in names:
        totals += result.relation.column(name).as_float()
    return WorkloadResult("AIDA", times, _signature(totals),
                          {"rows": result.nrows})


def run_r(dataset: TripCountDataset) -> WorkloadResult:
    times = PhaseTimes()
    names = dataset.destination_names
    f1 = RFrame.from_relation(dataset.year1)
    f2 = RFrame.from_relation(dataset.year2)
    with times.measure("matrix"):
        f1 = f1.order_by(dataset.key1)
        f2 = f2.order_by(dataset.key2)
        m1 = as_matrix(f1, names)
        m2 = as_matrix(f2, names)
        summed = m1 + m2
        result = matrix_to_frame(summed, names)
        result = result.with_column(dataset.key1, f1[dataset.key1])
    totals = np.zeros(len(result))
    for name in names:
        totals += result[name]
    return WorkloadResult("R", times, _signature(totals),
                          {"rows": len(result)})


def run_madlib(dataset: TripCountDataset) -> WorkloadResult:
    times = PhaseTimes()
    names = dataset.destination_names
    db = MadlibDatabase()
    rows1 = dataset.year1.sorted_by([dataset.key1]).to_rows()
    rows2 = dataset.year2.sorted_by([dataset.key2]).to_rows()
    db.create_matrix("y1", [row[1:] for row in rows1])
    db.create_matrix("y2", [row[1:] for row in rows2])
    with times.measure("matrix"):
        summed = matrix_add(db.matrix_rows("y1"), db.matrix_rows("y2"))
    totals = np.array([sum(row) for row in summed])
    return WorkloadResult("MADlib", times, _signature(totals),
                          {"rows": len(summed)})


def run_trip_count(dataset: TripCountDataset, systems: tuple[str, ...] =
                   ("rma-bat", "rma-mkl", "aida", "r", "madlib")) \
        -> list[WorkloadResult]:
    runners = {
        "rma-bat": lambda: run_rma(dataset, "bat"),
        "rma-mkl": lambda: run_rma(dataset, "mkl"),
        "rma-api": lambda: run_rma(dataset, "bat", matrix=True),
        "aida": lambda: run_aida(dataset),
        "r": lambda: run_r(dataset),
        "madlib": lambda: run_madlib(dataset),
    }
    return [runners[s]() for s in systems]


def make_dataset(n_riders: int, n_destinations: int = 10,
                 seed: int = 21) -> TripCountDataset:
    """Two year relations of trip counts per rider."""
    from repro.data.synthetic import uniform_relation
    year1 = uniform_relation(n_riders, n_destinations, key="rider1",
                             seed=seed, prefix="dest", low=0.0, high=40.0)
    year2 = uniform_relation(n_riders, n_destinations, key="rider2",
                             seed=seed + 1, prefix="dest", low=0.0,
                             high=40.0)
    return TripCountDataset(year1, year2)
