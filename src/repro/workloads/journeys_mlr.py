"""Workload 2 — Journeys: multiple linear regression (paper Fig. 16).

Journeys chain up to five trips that meet in a station.  Starting from
purely numeric one-trip journeys (start, end, duration), the preparation
aggregates trips into frequent (start, end) groups, chains them with k-1
equi-joins (``end_i = start_{i+1}``), joins station coordinates, and
computes the per-leg distances.  The matrix part regresses total duration
on the k leg distances.

Because the data is purely numeric, AIDA's Python handover is free and its
relational part runs on the same engine — Fig. 16a's "AIDA shows comparable
join performance to RMA+".  R pays for the python-loop merges; MADlib
additionally spends most of its relational time computing distances row by
row (§8.6(2)).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import repro.relational.ops as rel_ops
from repro.baselines.aida import AidaTable
from repro.baselines.madlib import MadlibDatabase, linregr_train
from repro.baselines.rlike import RFrame, as_matrix
from repro.bat.bat import BAT, DataType
from repro.core import RmaConfig
from repro.core.ops import execute_rma
from repro.data.bixi import station_distance_km
from repro.linalg.policy import BackendPolicy
from repro.relational import AggregateSpec, group_by, join, rename
from repro.relational.relation import Relation
from repro.workloads.common import PhaseTimes, WorkloadResult


@dataclass
class JourneysDataset:
    trips: Relation          # numeric: trip_id, start_station, end_station,
    stations: Relation       # duration
    n_legs: int = 2
    min_count: int = 50


# -- engine-side preparation ----------------------------------------------------

def _frequent_pairs(dataset: JourneysDataset) -> Relation:
    """(start, end, duration) groups occurring at least min_count times."""
    grouped = group_by(dataset.trips, ["start_station", "end_station"],
                       [AggregateSpec("count", "*", "n"),
                        AggregateSpec("avg", "duration", "avg_duration")])
    mask = grouped.column("n").tail >= dataset.min_count
    return rel_ops.select_mask(grouped, mask)


def engine_prepare(dataset: JourneysDataset) -> Relation:
    """Chain legs and attach distances; returns a relation with
    journey_id, dist1..distK and total duration."""
    pairs = _frequent_pairs(dataset)
    legs = rename(rel_ops.project(
        pairs, ["start_station", "end_station", "avg_duration"]),
        {"start_station": "s1", "end_station": "e1",
         "avg_duration": "d1"})
    journeys = legs
    for leg in range(2, dataset.n_legs + 1):
        next_leg = rename(rel_ops.project(
            pairs, ["start_station", "end_station", "avg_duration"]),
            {"start_station": f"s{leg}", "end_station": f"e{leg}",
             "avg_duration": f"d{leg}"})
        journeys = join(journeys, next_leg, [f"e{leg - 1}"], [f"s{leg}"])
    coords = dataset.stations
    total = np.zeros(journeys.nrows, dtype=np.float64)
    distances: list[np.ndarray] = []
    for leg in range(1, dataset.n_legs + 1):
        start_coords = rename(rel_ops.project(
            coords, ["code", "latitude", "longitude"]),
            {"code": "c", "latitude": f"lat_s{leg}",
             "longitude": f"lon_s{leg}"})
        end_coords = rename(rel_ops.project(
            coords, ["code", "latitude", "longitude"]),
            {"code": "c", "latitude": f"lat_e{leg}",
             "longitude": f"lon_e{leg}"})
        journeys = join(journeys, start_coords, [f"s{leg}"], ["c"],
                        drop_right_keys=True)
        journeys = join(journeys, end_coords, [f"e{leg}"], ["c"],
                        drop_right_keys=True)
        distance = station_distance_km(
            journeys.column(f"lat_s{leg}").tail,
            journeys.column(f"lon_s{leg}").tail,
            journeys.column(f"lat_e{leg}").tail,
            journeys.column(f"lon_e{leg}").tail)
        distances.append(distance)
        total = total + journeys.column(f"d{leg}").as_float()
    data = {"journey_id": BAT(DataType.INT,
                              np.arange(journeys.nrows, dtype=np.int64))}
    for leg, distance in enumerate(distances, start=1):
        data[f"dist{leg}"] = BAT(DataType.DBL, distance)
    data["total_duration"] = BAT(DataType.DBL, total)
    return Relation.from_columns(data)


def _design_names(dataset: JourneysDataset) -> list[str]:
    return [f"dist{leg}" for leg in range(1, dataset.n_legs + 1)]


def _mlr_inputs(prepared: Relation,
                names: list[str]) -> tuple[Relation, Relation]:
    """Design relation A = [1, dist1..distK] and target V, keyed by
    journey_id."""
    n = prepared.nrows
    columns = {"journey_id": prepared.column("journey_id"),
               "const": BAT(DataType.DBL, np.ones(n))}
    for name in names:
        columns[name] = prepared.column(name)
    a = Relation.from_columns(columns)
    v = Relation.from_columns({
        "journey_id": prepared.column("journey_id"),
        "y": prepared.column("total_duration")})
    return a, v


def _rma_mlr(prepared: Relation, names: list[str],
             config: RmaConfig) -> np.ndarray:
    a, v = _mlr_inputs(prepared, names)
    xtx = execute_rma("cpd", a, "journey_id", a, "journey_id",
                      config=config)
    xty = execute_rma("cpd", a, "journey_id", v, "journey_id",
                      config=config)
    xtx_inv = execute_rma("inv", xtx, "C", config=config)
    beta = execute_rma("mmu", xtx_inv, "C", xty, "C", config=config)
    return beta.column("y").tail.copy()


def _rma_mlr_matrix(prepared: Relation, names: list[str],
                    config: RmaConfig) -> np.ndarray:
    """The same MLR as one matrix expression (``(A'A)^-1 A'y``)."""
    from repro.api import connect

    db = connect(config=config)
    a, v = _mlr_inputs(prepared, names)
    design = db.matrix(a, by="journey_id")
    beta = (design.cpd(design).inv()
            @ design.cpd(v, by="journey_id")).collect()
    return beta.column("y").tail.copy()


def run_rma(dataset: JourneysDataset, backend: str = "mkl",
            matrix: bool = False) -> WorkloadResult:
    times = PhaseTimes()
    config = RmaConfig(policy=BackendPolicy(prefer=backend),
                       validate_keys=False)
    with times.measure("prep"):
        prepared = engine_prepare(dataset)
    with times.measure("matrix"):
        mlr = _rma_mlr_matrix if matrix else _rma_mlr
        beta = mlr(prepared, _design_names(dataset), config)
    label = f"RMA+{backend.upper()}" + ("+API" if matrix else "")
    return WorkloadResult(label, times, beta,
                          {"journeys": prepared.nrows})


def run_aida(dataset: JourneysDataset) -> WorkloadResult:
    times = PhaseTimes()
    with times.measure("prep"):
        prepared = engine_prepare(dataset)
        table = AidaTable(prepared)
        arrays = table.to_python()  # all numeric: pointer transfer
    with times.measure("matrix"):
        names = _design_names(dataset)
        x = np.column_stack([np.ones(prepared.nrows)]
                            + [arrays[n] for n in names])
        y = arrays["total_duration"].astype(np.float64)
        beta = np.linalg.solve(x.T @ x, x.T @ y)
        AidaTable.from_python({"coef": beta}, table.stats)
    return WorkloadResult("AIDA", times, beta,
                          {"zero_copy": table.stats.zero_copy_columns})


def run_r(dataset: JourneysDataset) -> WorkloadResult:
    times = PhaseTimes()
    trips = RFrame.from_relation(dataset.trips)
    stations = RFrame.from_relation(dataset.stations)
    with times.measure("prep"):
        grouped = trips.aggregate(
            ["start_station", "end_station"],
            {"n": ("count", "*"), "avg_duration": ("mean", "duration")})
        pairs = grouped.subset(grouped["n"] >= dataset.min_count)
        journeys = RFrame({"s1": pairs["start_station"],
                           "e1": pairs["end_station"],
                           "d1": pairs["avg_duration"]})
        for leg in range(2, dataset.n_legs + 1):
            next_leg = RFrame({f"s{leg}": pairs["start_station"],
                               f"e{leg}": pairs["end_station"],
                               f"d{leg}": pairs["avg_duration"]})
            journeys = journeys.with_column(f"s{leg}",
                                            journeys[f"e{leg - 1}"]) \
                .merge(next_leg, [f"s{leg}"])
        total = np.zeros(len(journeys))
        distances = []
        for leg in range(1, dataset.n_legs + 1):
            s_frame = RFrame({f"s{leg}": stations["code"],
                              f"lat_s{leg}": stations["latitude"],
                              f"lon_s{leg}": stations["longitude"]})
            e_frame = RFrame({f"e{leg}": stations["code"],
                              f"lat_e{leg}": stations["latitude"],
                              f"lon_e{leg}": stations["longitude"]})
            journeys = journeys.merge(s_frame, [f"s{leg}"])
            journeys = journeys.merge(e_frame, [f"e{leg}"])
            distances.append(station_distance_km(
                journeys[f"lat_s{leg}"], journeys[f"lon_s{leg}"],
                journeys[f"lat_e{leg}"], journeys[f"lon_e{leg}"]))
            total = total + journeys[f"d{leg}"]
        for leg, distance in enumerate(distances, start=1):
            journeys = journeys.with_column(f"dist{leg}", distance)
        journeys = journeys.with_column("total_duration", total)
        journeys = journeys.with_column("icept", np.ones(len(journeys)))
    with times.measure("matrix"):
        names = ["icept"] + _design_names(dataset)
        x = as_matrix(journeys, names)
        y = journeys["total_duration"].astype(np.float64)
        beta = np.linalg.solve(x.T @ x, x.T @ y)
    return WorkloadResult("R", times, beta, {"journeys": len(journeys)})


def run_madlib(dataset: JourneysDataset) -> WorkloadResult:
    times = PhaseTimes()
    db = MadlibDatabase.from_relations(trips=dataset.trips,
                                       stations=dataset.stations)
    with times.measure("prep"):
        start_i = db.column_index("trips", "start_station")
        end_i = db.column_index("trips", "end_station")
        duration_i = db.column_index("trips", "duration")
        sums: dict[tuple, list[float]] = {}
        for row in db.rows("trips"):
            key = (row[start_i], row[end_i])
            entry = sums.setdefault(key, [0.0, 0.0])
            entry[0] += 1
            entry[1] += row[duration_i]
        pairs = [(s, e, c[1] / c[0]) for (s, e), c in sums.items()
                 if c[0] >= dataset.min_count]
        coords = {row[0]: (row[2], row[3]) for row in db.rows("stations")}
        # Chain joins row by row.
        journeys: list[tuple[tuple, float]] = [
            (((s, e),), d) for s, e, d in pairs]
        by_start: dict[float, list[tuple]] = {}
        for s, e, d in pairs:
            by_start.setdefault(s, []).append((s, e, d))
        for _ in range(dataset.n_legs - 1):
            chained = []
            for legs, total in journeys:
                last_end = legs[-1][1]
                for s, e, d in by_start.get(last_end, ()):
                    chained.append((legs + ((s, e),), total + d))
            journeys = chained
        rows_x: list[list[float]] = []
        rows_y: list[float] = []
        for legs, total in journeys:
            features = [1.0]
            for s, e in legs:
                (slat, slon), (elat, elon) = coords[s], coords[e]
                features.append(float(
                    station_distance_km(slat, slon, elat, elon)))
            rows_x.append(features)
            rows_y.append(total)
    with times.measure("matrix"):
        beta = np.array(linregr_train(rows_x, rows_y))
    return WorkloadResult("MADlib", times, beta,
                          {"journeys": len(rows_x)})


def run_journeys(dataset: JourneysDataset, systems: tuple[str, ...] =
                 ("rma-mkl", "rma-bat", "aida", "r", "madlib")) \
        -> list[WorkloadResult]:
    runners = {
        "rma-mkl": lambda: run_rma(dataset, "mkl"),
        "rma-bat": lambda: run_rma(dataset, "bat"),
        "rma-api": lambda: run_rma(dataset, "mkl", matrix=True),
        "aida": lambda: run_aida(dataset),
        "r": lambda: run_r(dataset),
        "madlib": lambda: run_madlib(dataset),
    }
    return [runners[s]() for s in systems]
