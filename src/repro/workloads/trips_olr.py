"""Workload 1 — Trips: ordinary linear regression (paper Fig. 15).

Data preparation (relational): select trips in a year range, keep trips
whose (start, end) station pair occurs at least ``min_count`` times, join
the stations table twice to obtain coordinates, and compute the distance.
Matrix part: OLS of duration on distance — the paper's formulation
``MMU(INV(CPD(A,A)), CPD(A,V))`` with A = [1, distance].

System-specific notes:

* **RMA+** runs the relational part on the engine and the matrix part as
  relational matrix operations (`cpd`/`inv`/`mmu`), with the backend chosen
  by the policy (MKL here; the BAT variant is the Fig. 15b ablation);
* **AIDA** runs the same relational part on the engine, then moves the
  working table to Python.  Numeric columns transfer by pointer; the
  date/time/member columns must be converted element-wise — the cost that
  separates AIDA from RMA+ in Fig. 15a;
* **R** loads from CSV (dark bar), preps with data.table-style operations
  (single-core python-loop merges), converts to matrix, then solves;
* **MADlib** is a row store with a pure-python ``linregr_train`` UDF.
"""

from __future__ import annotations

import datetime as _dt
import os
import tempfile
from dataclasses import dataclass

import numpy as np

import repro.relational.ops as rel_ops
from repro.baselines.aida import AidaTable
from repro.baselines.madlib import MadlibDatabase, linregr_train
from repro.baselines.rlike import RFrame, as_matrix, read_csv_r
from repro.bat.bat import BAT, DataType, date_to_int
from repro.core import RmaConfig
from repro.core.ops import execute_rma
from repro.data.bixi import station_distance_km
from repro.linalg.policy import BackendPolicy
from repro.relational import AggregateSpec, group_by, join, rename, write_csv
from repro.relational.relation import Relation
from repro.workloads.common import PhaseTimes, WorkloadResult

MIN_PAIR_COUNT = 50


@dataclass
class TripsDataset:
    trips: Relation
    stations: Relation
    year_low: int
    year_high: int
    min_count: int = MIN_PAIR_COUNT

    @property
    def date_low(self) -> int:
        return date_to_int(_dt.date(self.year_low, 1, 1))

    @property
    def date_high(self) -> int:
        return date_to_int(_dt.date(self.year_high, 12, 31))


# -- shared engine-side preparation (used by RMA+ and AIDA) --------------------

def engine_prepare(dataset: TripsDataset) -> Relation:
    """Relational part on the column engine; returns
    (trip_id, start_date, start_time, is_member, distance, duration)."""
    trips = dataset.trips
    dates = trips.column("start_date").tail
    mask = (dates >= dataset.date_low) & (dates <= dataset.date_high)
    selected = rel_ops.select_mask(trips, mask)

    pairs = group_by(selected, ["start_station", "end_station"],
                     [AggregateSpec("count", "*", "n")])
    frequent = rel_ops.select_mask(pairs,
                                   pairs.column("n").tail
                                   >= dataset.min_count)
    frequent = rel_ops.project(frequent, ["start_station", "end_station"])
    frequent = rename(frequent, {"start_station": "fs", "end_station": "fe"})
    kept = join(selected, frequent, ["start_station", "end_station"],
                ["fs", "fe"])

    start_coords = rename(dataset.stations,
                          {"code": "sc", "name": "sn",
                           "latitude": "slat", "longitude": "slon"})
    end_coords = rename(dataset.stations,
                        {"code": "ec", "name": "en",
                         "latitude": "elat", "longitude": "elon"})
    kept = join(kept, start_coords, ["start_station"], ["sc"],
                drop_right_keys=True)
    kept = join(kept, end_coords, ["end_station"], ["ec"],
                drop_right_keys=True)

    distance = station_distance_km(kept.column("slat").tail,
                                   kept.column("slon").tail,
                                   kept.column("elat").tail,
                                   kept.column("elon").tail)
    kept = rel_ops.extend(kept, "distance", BAT(DataType.DBL, distance))
    return rel_ops.project(kept, ["trip_id", "start_date", "start_time",
                                  "is_member", "distance", "duration"])


def _ols_inputs(prepared: Relation) -> tuple[Relation, Relation]:
    """Design relation A = [1, distance] and target V keyed by trip_id."""
    n = prepared.nrows
    # Attribute order (const, distance) matches the sorted order of the
    # context attribute C that cpd produces, so the row labels of the
    # chained inv/mmu stay aligned with the coefficients (see the note on
    # square-matrix chains in README.md).
    a = Relation.from_columns({
        "trip_id": prepared.column("trip_id"),
        "const": BAT(DataType.DBL, np.ones(n)),
        "distance": prepared.column("distance").cast(DataType.DBL)})
    v = Relation.from_columns({
        "trip_id": prepared.column("trip_id"),
        "duration": prepared.column("duration").cast(DataType.DBL)})
    return a, v


def _rma_ols(prepared: Relation, config: RmaConfig) -> np.ndarray:
    """beta = MMU(INV(CPD(A,A)), CPD(A,V)) as relational matrix ops."""
    a, v = _ols_inputs(prepared)
    xtx = execute_rma("cpd", a, "trip_id", a, "trip_id", config=config)
    xty = execute_rma("cpd", a, "trip_id", v, "trip_id", config=config)
    xtx_inv = execute_rma("inv", xtx, "C", config=config)
    beta = execute_rma("mmu", xtx_inv, "C", xty, "C", config=config)
    return beta.column("duration").tail.copy()


def _rma_ols_lazy(prepared: Relation, config: RmaConfig) -> np.ndarray:
    """The same OLS pipeline built on the shared plan layer.

    One plan covers the whole ``MMU(INV(CPD(A,A)), CPD(A,V))`` chain, so
    the executor sees all four operations at once: the order caches of the
    intermediate relations stay warm across the chain, and repeated
    subplans would be deduplicated (CSE).  Bit-identical to
    :func:`_rma_ols` — the workload equivalence test asserts it.
    """
    from repro.plan.lazy import scan

    a, v = _ols_inputs(prepared)
    design = scan(a, name="a")
    xtx = design.rma("cpd", by="trip_id", other=design, other_by="trip_id")
    xty = design.rma("cpd", by="trip_id", other=scan(v, name="v"),
                     other_by="trip_id")
    beta = (xtx.rma("inv", by="C")
            .rma("mmu", by="C", other=xty, other_by="C")
            .collect(config=config))
    return beta.column("duration").tail.copy()


def _rma_ols_matrix(prepared: Relation, config: RmaConfig) -> np.ndarray:
    """The same OLS as one matrix expression on the session API.

    ``beta = (A'A)^-1 A'v`` reads as linear algebra —
    ``(a.cpd(a).inv() @ a.cpd(v))`` — and compiles into the exact plan
    :func:`_rma_ols_lazy` builds, so it inherits warm intermediate order
    caches and the session's plan/result caches.  Bit-identical to both
    other styles (asserted by the equivalence tests).
    """
    from repro.api import connect

    db = connect(config=config)
    a, v = _ols_inputs(prepared)
    design = db.matrix(a, by="trip_id")
    beta = (design.cpd(design).inv()
            @ design.cpd(v, by="trip_id")).collect()
    return beta.column("duration").tail.copy()


def run_rma(dataset: TripsDataset, backend: str = "mkl",
            validate_keys: bool = False,
            lazy: bool = False, matrix: bool = False) -> WorkloadResult:
    """RMA+ with the given kernel backend ('mkl' or 'bat').

    ``lazy=True`` runs the matrix part through the lazy pipeline builder
    (:mod:`repro.plan.lazy`); ``matrix=True`` through the session-scoped
    matrix-expression API (:mod:`repro.api`).  Both build the same shared
    plan instead of eager per-operation execution.
    """
    times = PhaseTimes()
    config = RmaConfig(policy=BackendPolicy(prefer=backend),
                       validate_keys=validate_keys)
    with times.measure("prep"):
        prepared = engine_prepare(dataset)
    with times.measure("matrix"):
        ols = _rma_ols_matrix if matrix else (
            _rma_ols_lazy if lazy else _rma_ols)
        beta = ols(prepared, config)
    label = f"RMA+{backend.upper()}" + (
        "+API" if matrix else "+PLAN" if lazy else "")
    return WorkloadResult(label, times, beta, {"rows": prepared.nrows})


def run_aida(dataset: TripsDataset) -> WorkloadResult:
    times = PhaseTimes()
    with times.measure("prep"):
        prepared = engine_prepare(dataset)
        table = AidaTable(prepared)
        # Move the working table to Python.  distance/duration transfer by
        # pointer; start_date/start_time/is_member must be converted.
        arrays = table.to_python(["trip_id", "start_date", "start_time",
                                  "is_member", "distance", "duration"])
    with times.measure("matrix"):
        x = np.column_stack([np.ones(len(arrays["distance"])),
                             arrays["distance"]])
        y = arrays["duration"].astype(np.float64)
        beta = np.linalg.solve(x.T @ x, x.T @ y)
        # Result goes back to the engine for further relational use.
        AidaTable.from_python({"coef": beta}, table.stats)
    return WorkloadResult("AIDA", times, beta,
                          {"converted": table.stats.converted_columns})


def _write_csvs(dataset: TripsDataset, directory: str) -> tuple[str, str]:
    trips_path = os.path.join(directory, "trips.csv")
    stations_path = os.path.join(directory, "stations.csv")
    write_csv(dataset.trips, trips_path)
    write_csv(dataset.stations, stations_path)
    return trips_path, stations_path


def run_r(dataset: TripsDataset,
          csv_dir: str | None = None) -> WorkloadResult:
    """R: CSV load + data.table prep + as.matrix + solve."""
    times = PhaseTimes()
    own_dir = None
    if csv_dir is None:
        own_dir = tempfile.TemporaryDirectory()
        csv_dir = own_dir.name
        trips_path, stations_path = _write_csvs(dataset, csv_dir)
    else:
        trips_path = os.path.join(csv_dir, "trips.csv")
        stations_path = os.path.join(csv_dir, "stations.csv")
        if not os.path.exists(trips_path):
            trips_path, stations_path = _write_csvs(dataset, csv_dir)
    try:
        with times.measure("load"):
            trips = read_csv_r(trips_path)
            stations = read_csv_r(stations_path)
        with times.measure("prep"):
            # Dates arrive as strings; R would parse them (row-at-a-time).
            dates = np.array(
                [_dt.date.fromisoformat(d).toordinal() - 719163
                 for d in trips["start_date"]], dtype=np.float64)
            trips = trips.with_column("date_num", dates)
            mask = ((dates >= dataset.date_low)
                    & (dates <= dataset.date_high))
            selected = trips.subset(mask)
            counts = selected.aggregate(
                ["start_station", "end_station"], {"n": ("count", "*")})
            frequent = counts.subset(counts["n"] >= dataset.min_count)
            kept = selected.merge(frequent.select(
                ["start_station", "end_station"]),
                ["start_station", "end_station"])
            s1 = RFrame({"start_station": stations["code"],
                         "slat": stations["latitude"],
                         "slon": stations["longitude"]})
            s2 = RFrame({"end_station": stations["code"],
                         "elat": stations["latitude"],
                         "elon": stations["longitude"]})
            kept = kept.merge(s1, ["start_station"])
            kept = kept.merge(s2, ["end_station"])
            distance = station_distance_km(kept["slat"], kept["slon"],
                                           kept["elat"], kept["elon"])
            kept = kept.with_column("distance", distance)
        with times.measure("matrix"):
            design = as_matrix(kept.with_column(
                "icept", np.ones(len(kept))), ["icept", "distance"])
            y = kept["duration"].astype(np.float64)
            beta = np.linalg.solve(design.T @ design, design.T @ y)
    finally:
        if own_dir is not None:
            own_dir.cleanup()
    return WorkloadResult("R", times, beta, {"rows": len(kept)})


def run_madlib(dataset: TripsDataset) -> WorkloadResult:
    times = PhaseTimes()
    db = MadlibDatabase.from_relations(trips=dataset.trips,
                                       stations=dataset.stations)
    with times.measure("prep"):
        date_i = db.column_index("trips", "start_date")
        low = _dt.date(dataset.year_low, 1, 1)
        high = _dt.date(dataset.year_high, 12, 31)
        selected = db.select(
            "trips", lambda row: low <= row[date_i] <= high)
        db.create("selected", db.schemas["trips"], selected)
        start_i = db.column_index("trips", "start_station")
        end_i = db.column_index("trips", "end_station")
        counts = db.group_count("selected",
                                lambda row: (row[start_i], row[end_i]))
        kept = [row for row in selected
                if counts[(row[start_i], row[end_i])] >= dataset.min_count]
        db.create("kept", db.schemas["trips"], kept)
        joined = db.join("kept", "stations", "start_station", "code")
        db.create("j1", db.schemas["trips"]
                  + ["code", "name", "slat", "slon"], joined)
        joined = db.join("j1", "stations", "end_station", "code")
        duration_i = db.column_index("trips", "duration")
        slat_i = len(db.schemas["trips"]) + 2
        rows_x: list[list[float]] = []
        rows_y: list[float] = []
        for row in joined:
            slat, slon = row[slat_i], row[slat_i + 1]
            elat, elon = row[-2], row[-1]
            distance = float(station_distance_km(slat, slon, elat, elon))
            rows_x.append([1.0, distance])
            rows_y.append(float(row[duration_i]))
    with times.measure("matrix"):
        beta = np.array(linregr_train(rows_x, rows_y))
    return WorkloadResult("MADlib", times, beta, {"rows": len(rows_x)})


def run_trips(dataset: TripsDataset, systems: tuple[str, ...] =
              ("rma-mkl", "rma-bat", "aida", "r", "madlib")) \
        -> list[WorkloadResult]:
    runners = {
        "rma-mkl": lambda: run_rma(dataset, "mkl"),
        "rma-bat": lambda: run_rma(dataset, "bat"),
        "rma-plan": lambda: run_rma(dataset, "mkl", lazy=True),
        "rma-api": lambda: run_rma(dataset, "mkl", matrix=True),
        "aida": lambda: run_aida(dataset),
        "r": lambda: run_r(dataset),
        "madlib": lambda: run_madlib(dataset),
    }
    return [runners[s]() for s in systems]
