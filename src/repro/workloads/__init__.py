"""The paper's four mixed relational/matrix workloads (§8.6).

Each module implements one workload for every system (RMA+ with both
backends, R, AIDA, MADlib) with identical semantics, returns per-phase
timings, and exposes a numeric signature so tests can assert that all
systems compute the same answer.
"""

from repro.workloads.common import PhaseTimes, WorkloadResult
from repro.workloads.trips_olr import TripsDataset, run_trips
from repro.workloads.journeys_mlr import JourneysDataset, run_journeys
from repro.workloads.conferences_cov import (
    ConferencesDataset,
    run_conferences,
)
from repro.workloads.trip_count import TripCountDataset, run_trip_count

__all__ = [
    "PhaseTimes",
    "WorkloadResult",
    "TripsDataset",
    "run_trips",
    "JourneysDataset",
    "run_journeys",
    "ConferencesDataset",
    "run_conferences",
    "TripCountDataset",
    "run_trip_count",
]
