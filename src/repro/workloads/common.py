"""Shared workload plumbing: phase timing and result records."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any

import numpy as np


@dataclass
class PhaseTimes:
    """Per-phase wall-clock seconds, matching the paper's stacked bars:
    solid = data preparation (relational), dashed = matrix computation,
    dark = load (R's CSV ingest)."""

    load: float = 0.0
    prep: float = 0.0
    matrix: float = 0.0

    @property
    def total(self) -> float:
        return self.load + self.prep + self.matrix

    @contextmanager
    def measure(self, phase: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            setattr(self, phase, getattr(self, phase) + elapsed)


@dataclass
class WorkloadResult:
    """Outcome of one workload run on one system."""

    system: str
    times: PhaseTimes
    signature: Any = None
    detail: dict = field(default_factory=dict)

    def agrees_with(self, other: "WorkloadResult",
                    rtol: float = 1e-6, atol: float = 1e-8) -> bool:
        """Numeric agreement of signatures across systems."""
        a = np.asarray(self.signature, dtype=np.float64)
        b = np.asarray(other.signature, dtype=np.float64)
        if a.shape != b.shape:
            return False
        return bool(np.allclose(a, b, rtol=rtol, atol=atol))


def ols_design(distance: np.ndarray) -> np.ndarray:
    """Design matrix [1, distance] for the ordinary-least-squares workloads."""
    return np.column_stack([np.ones(len(distance)), distance])
