"""Declarative specification of the 19 matrix operations.

This table is the code form of the paper's Tables 1 and 2: for every
operation it records the arity, the *shape type* (which input dimension the
result rows/columns inherit), the dimension preconditions, and the sorting
class used by the §8.1 optimizations.  Both :mod:`repro.core` (context
morphing) and :mod:`repro.linalg` (kernels, backend policy) read it.

Shape-type symbols (paper Table 1):

* ``r1``/``r2`` — result dimension equals the row count of input 1/2;
* ``c1``/``c2`` — result dimension equals the column count of input 1/2;
* ``r*``/``c*`` — equals both inputs (which must agree);
* ``1``        — scalar dimension.

Deviation from the paper (documented in DESIGN.md): the paper's Table 1/2
lists ``vsv`` with shape type ``(r1,1)``, which is inconsistent with its own
definition of VSV as "the matrix V with the right singular vectors" (V is
``j1 x j1``, not ``i1 x 1``; the ``(r1,1)`` typing would also make the Fig. 14
benchmark of VSV on 500K x 50 relations impossible).  We resolve the
inconsistency by typing ``vsv`` like ``dsv``: shape type ``(c1,c1)``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class SortClass(enum.Enum):
    """How much sorting an operation needs (paper §8.1).

    * ``FULL``        — every argument must be sorted by its order schema.
    * ``INVARIANT``   — the base result does not depend on row order at all
                        (e.g. ``rnk``): skip sorting entirely.
    * ``EQUIVARIANT`` — permuting input rows permutes result rows the same
                        way (``OP(P a) = P OP(a)``, e.g. ``qqr``): skip
                        sorting; row origins keep the storage order.  For
                        binary operations this applies to the first argument
                        only; the second is sorted.
    * ``RELATIVE``    — only the *relative* order of the two arguments
                        matters (element-wise ops, ``cpd``, ``sol``): leave
                        the first argument in storage order and align the
                        second to it.
    """

    FULL = "full"
    INVARIANT = "invariant"
    EQUIVARIANT = "equivariant"
    RELATIVE = "relative"


@dataclass(frozen=True)
class OpSpec:
    """Static description of one matrix operation."""

    name: str
    arity: int
    shape_type: tuple[str, str]
    sort_class: SortClass = SortClass.FULL
    square: bool = False          # application part must be square
    tall: bool = False            # requires nrows >= ncols
    symmetric: bool = False       # requires a symmetric application part
    order_card_one: tuple[int, ...] = field(default=())
    # ^ which arguments (1-based) need |order schema| == 1 (column cast)
    same_shape: bool = False      # binary: application parts same shape
    inner_dims: bool = False      # binary: ncols(a) == nrows(b)
    same_rows: bool = False       # binary: nrows(a) == nrows(b)
    same_cols: bool = False       # binary: ncols(a) == ncols(b)
    linear: bool = False          # "linear" op for the backend policy (§8.6)
    scalar: bool = False          # unary op parameterized by a constant

    @property
    def unary(self) -> bool:
        return self.arity == 1


def _spec(*args, **kwargs) -> OpSpec:
    return OpSpec(*args, **kwargs)


OPS: dict[str, OpSpec] = {spec.name: spec for spec in [
    # -- element-wise (r*, c*) -------------------------------------------
    _spec("add", 2, ("r*", "c*"), SortClass.RELATIVE, same_shape=True,
          linear=True),
    _spec("sub", 2, ("r*", "c*"), SortClass.RELATIVE, same_shape=True,
          linear=True),
    _spec("emu", 2, ("r*", "c*"), SortClass.RELATIVE, same_shape=True,
          linear=True),
    # -- products ----------------------------------------------------------
    _spec("mmu", 2, ("r1", "c2"), SortClass.EQUIVARIANT, inner_dims=True),
    _spec("opd", 2, ("r1", "r2"), SortClass.EQUIVARIANT, same_cols=True,
          order_card_one=(2,)),
    _spec("cpd", 2, ("c1", "c2"), SortClass.RELATIVE, same_rows=True),
    _spec("sol", 2, ("c1", "c2"), SortClass.RELATIVE, same_rows=True,
          tall=True),
    # -- unary -------------------------------------------------------------
    _spec("tra", 1, ("c1", "r1"), SortClass.FULL, order_card_one=(1,)),
    _spec("inv", 1, ("r1", "c1"), SortClass.FULL, square=True),
    _spec("evc", 1, ("r1", "c1"), SortClass.FULL, square=True),
    _spec("evl", 1, ("r1", "1"), SortClass.FULL, square=True),
    _spec("chf", 1, ("r1", "c1"), SortClass.FULL, square=True,
          symmetric=True),
    _spec("qqr", 1, ("r1", "c1"), SortClass.EQUIVARIANT, tall=True),
    _spec("rqr", 1, ("c1", "c1"), SortClass.INVARIANT, tall=True),
    _spec("usv", 1, ("r1", "r1"), SortClass.EQUIVARIANT,
          order_card_one=(1,)),
    _spec("dsv", 1, ("c1", "c1"), SortClass.INVARIANT, tall=True),
    _spec("vsv", 1, ("c1", "c1"), SortClass.INVARIANT, tall=True),
    _spec("det", 1, ("1", "1"), SortClass.FULL, square=True),
    _spec("rnk", 1, ("1", "1"), SortClass.INVARIANT),
]}

OP_NAMES: tuple[str, ...] = tuple(OPS)

LINEAR_OPS: frozenset[str] = frozenset(
    name for name, spec in OPS.items() if spec.linear)

# -- scalar variants ----------------------------------------------------------
#
# Element-wise operations against a constant (R + c, R - c, R * c, R / c).
# They are
# not part of the paper's Table 2 (OPS stays the paper's 19 operations and is
# what the SQL grammar accepts), but they are first-class citizens of the
# kernel-program layer: a scalar step costs one ufunc inside a fused chain,
# where a full relational round trip would materialize an intermediate
# relation.  Shape type (r1, c1): rows keep the input's storage order (the
# order part is attached verbatim), columns keep the application schema.

SCALAR_OPS: dict[str, OpSpec] = {spec.name: spec for spec in [
    _spec("sadd", 1, ("r1", "c1"), SortClass.EQUIVARIANT, scalar=True),
    _spec("ssub", 1, ("r1", "c1"), SortClass.EQUIVARIANT, scalar=True),
    _spec("smul", 1, ("r1", "c1"), SortClass.EQUIVARIANT, scalar=True),
    _spec("sdiv", 1, ("r1", "c1"), SortClass.EQUIVARIANT, scalar=True),
]}

ELEMENTWISE_OPS: frozenset[str] = frozenset({"add", "sub", "emu"})
"""The relative-class element-wise operations (shape type (r*, c*))."""

FUSABLE_OPS: frozenset[str] = ELEMENTWISE_OPS | frozenset(SCALAR_OPS)
"""Operations the plan optimizer may collapse into one FusedRma node."""


def spec_of(name: str) -> OpSpec:
    """Look up an operation spec; raises ``KeyError`` with the known names."""
    key = name.lower()
    spec = OPS.get(key) or SCALAR_OPS.get(key)
    if spec is None:
        raise KeyError(
            f"unknown matrix operation {name!r}; known operations: "
            f"{', '.join(OP_NAMES + tuple(SCALAR_OPS))}")
    return spec
