"""Plan construction: SQL AST -> shared logical plan, plus node builders.

This is the front ends' half of the plan layer: ``build_select`` translates
a parsed ``SELECT`` statement (:mod:`repro.sql.ast`) into the shared IR of
:mod:`repro.plan.nodes`, and ``build_rma`` is the one validated constructor
of :class:`~repro.plan.nodes.Rma` nodes that every Python surface uses (the
lazy builder :mod:`repro.plan.lazy` and the matrix-expression API
:mod:`repro.api.matrix`).  It lives in the plan package — not in
``repro.sql`` — so the IR and everything that produces it have one home;
``repro.sql.logical`` re-exports these names for backwards compatibility.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import PlanError
from repro.opspec import spec_of
from repro.plan.nodes import (
    AGGREGATE_FUNCTIONS,
    AggregateSpecNode,
    Aggregate,
    Distinct,
    Filter,
    JoinPlan,
    Limit,
    Plan,
    Project,
    Rma,
    Scan,
    Sort,
    SubqueryScan,
    aggregate_calls,
    contains_aggregate,
    default_output_name,
    replace_expr,
)
from repro.sql import ast

# -- RMA node construction ------------------------------------------------------


def as_by(by: "str | Sequence[str] | None", op: str) -> tuple[str, ...]:
    """Normalize an order schema argument to a non-empty name tuple."""
    if by is None:
        raise PlanError(f"{op}: an order schema (by=...) is required")
    if isinstance(by, str):
        return (by,)
    names = tuple(by)
    if not names:
        raise PlanError(f"{op}: order schema must not be empty")
    return names


def build_rma(op: str, inputs: tuple[Plan, ...],
              bys: Sequence["str | Sequence[str]"],
              alias: Optional[str] = None,
              scalar: Optional[float] = None) -> Rma:
    """Validated :class:`~repro.plan.nodes.Rma` construction.

    Checks arity against the operation spec, normalizes the order schemas,
    and enforces the scalar-variant contract (``sadd``/``ssub``/``smul``
    require a constant, Table 2 operations reject one).  Shared by the
    lazy builder and the matrix-expression API so the two front ends can
    never drift in what they accept.
    """
    name = op.lower()
    spec = spec_of(name)
    if spec.scalar and scalar is None:
        raise PlanError(f"{name} requires a scalar value")
    if not spec.scalar and scalar is not None:
        raise PlanError(f"{name} does not accept a scalar value")
    if len(inputs) != spec.arity:
        kind = "binary" if spec.arity == 2 else "unary"
        raise PlanError(
            f"{name} is {kind}: got {len(inputs)} input(s)")
    if len(bys) != len(inputs):
        raise PlanError(
            f"{name}: {len(inputs)} input(s) but {len(bys)} order "
            "schema(s)")
    return Rma(name, tuple(inputs),
               tuple(as_by(by, name) for by in bys), alias,
               float(scalar) if scalar is not None else None)


# -- plan construction ----------------------------------------------------------


def build_table_expr(node: ast.TableExpr) -> Plan:
    if isinstance(node, ast.TableRef):
        return Scan(node.name, node.alias or node.name)
    if isinstance(node, ast.SubqueryRef):
        return SubqueryScan(build_select(node.query), node.alias)
    if isinstance(node, ast.RmaCall):
        inputs = tuple(build_table_expr(arg.table) for arg in node.args)
        by = tuple(arg.by for arg in node.args)
        return Rma(node.op, inputs, by, node.alias)
    if isinstance(node, ast.Join):
        return JoinPlan(node.kind, build_table_expr(node.left),
                        build_table_expr(node.right), node.condition)
    raise PlanError(f"unhandled table expression {node!r}")


def build_select(select: ast.Select) -> Plan:
    """Translate a SELECT AST into a logical plan."""
    if select.source is None:
        plan: Plan = Scan("_dual", "_dual")
    else:
        plan = build_table_expr(select.source)
    if select.where is not None:
        plan = Filter(plan, select.where)

    has_aggregates = (bool(select.group_by)
                      or any(contains_aggregate(i.expr)
                             for i in select.items)
                      or (select.having is not None
                          and contains_aggregate(select.having)))

    if has_aggregates:
        plan, items, having = _plan_aggregation(plan, select)
    else:
        items = select.items
        having = select.having
        if having is not None:
            raise PlanError("HAVING without aggregation or GROUP BY")

    # SQL clause order: ... GROUP BY -> HAVING -> SELECT -> DISTINCT ->
    # ORDER BY -> LIMIT.  ORDER BY may reference both select aliases and
    # source columns; Project keeps source columns as hidden bindings so the
    # Sort above it can resolve them.
    if having is not None:
        plan = Filter(plan, having)
    plan = Project(plan, tuple(items))
    if select.distinct:
        plan = Distinct(plan)
    if select.order_by:
        plan = Sort(plan, select.order_by)
    if select.limit is not None:
        plan = Limit(plan, select.limit, select.offset)
    return plan


def _plan_aggregation(plan: Plan, select: ast.Select) \
        -> tuple[Plan, tuple[ast.SelectItem, ...], Optional[ast.Expr]]:
    """Insert an Aggregate node and rewrite select items / HAVING.

    Aggregate calls become references to generated columns; group keys are
    available under generated names as well.
    """
    mapping: dict[ast.Expr, ast.Expr] = {}
    specs: list[AggregateSpecNode] = []
    seen: dict[ast.Expr, str] = {}

    sources = [item.expr for item in select.items]
    if select.having is not None:
        sources.append(select.having)
    counter = 0
    for source in sources:
        for call in aggregate_calls(source):
            if call in seen:
                continue
            counter += 1
            out_name = f"_agg{counter}"
            seen[call] = out_name
            func = AGGREGATE_FUNCTIONS[call.name]
            if len(call.args) != 1:
                raise PlanError(
                    f"{call.name} takes exactly one argument")
            arg = call.args[0]
            argument: ast.Expr | None
            if isinstance(arg, ast.Star):
                if call.name != "COUNT":
                    raise PlanError(f"{call.name}(*) is not valid")
                argument = None
            else:
                argument = arg
            specs.append(AggregateSpecNode(func, argument, call.distinct,
                                           out_name))
            mapping[call] = ast.ColumnRef(out_name)

    key_names = []
    key_exprs = list(select.group_by)
    for i, key in enumerate(key_exprs):
        name = default_output_name(key, i)
        key_name = f"_key{i}_{name}"
        key_names.append(key_name)
        mapping[key] = ast.ColumnRef(key_name)

    plan = Aggregate(plan, tuple(key_exprs), tuple(key_names), tuple(specs))

    new_items = []
    for index, item in enumerate(select.items):
        rewritten = replace_expr(item.expr, mapping)
        alias = item.alias or default_output_name(item.expr, index)
        new_items.append(ast.SelectItem(rewritten, alias))
    having = (replace_expr(select.having, mapping)
              if select.having is not None else None)
    return plan, tuple(new_items), having
