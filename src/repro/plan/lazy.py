"""Lazy pipeline builder: the Python front end of the shared plan layer.

Where :mod:`repro.core.algebra` executes each relational matrix operation
eagerly, this module builds a *plan* first and executes it on
:class:`repro.plan.physical.Executor` — the same engine the SQL session
uses — so whole pipelines get plan-level optimization: common RMA subplans
run once, order metadata flows into join-strategy choice, and derived
relations arrive with warm order caches.

>>> from repro.plan.lazy import scan, col
>>> pipe = (scan(rating, name="r")
...         .rma("tra", by="User")
...         .filter(col("Ann") > 0.5))
>>> result = pipe.collect()
>>> print(pipe.explain())

Binary operations take a second frame (or a bare relation):

>>> xtx = scan(a).rma("cpd", by="id", other=scan(a), other_by="id")
>>> beta = (xtx.rma("inv", by="C")
...         .rma("mmu", by="C", other=xty, other_by="C"))

``collect()`` is bit-identical to chaining the eager functions — the plan
executor calls the same ``execute_rma`` pipeline underneath (the test suite
asserts this for every Table 2 operation and the paper's workloads).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.bat.catalog import Catalog
from repro.core.config import RmaConfig, default_config
from repro.errors import PlanError
from repro.opspec import spec_of
from repro.plan import nodes
from repro.plan.build import build_rma
from repro.plan.cache import PlanCache
from repro.plan.explain import format_plan
from repro.plan.optimizer import optimize as optimize_plan
from repro.plan.physical import Executor, PhysicalInfo, plan_physical
from repro.relational.relation import Relation
from repro.sql import ast

def default_alias(relation: Relation) -> str:
    """A stable alias per relation *object*.

    Two ``scan(r)`` calls over the same relation build equal ``RelScan``
    nodes, so repeated subplans stay recognizable for CSE.  The id cannot
    collide between two live relations, and node equality compares the
    relation itself as well, so a recycled id is harmless.  Shared with
    the matrix-expression API (:meth:`repro.api.database.Database.matrix`
    builds the same leaves, so a relation scanned through either surface
    is one CSE candidate).
    """
    return f"_rel{id(relation):x}"


_default_alias = default_alias  # pre-PR 5 internal name, kept for callers


# -- expression DSL ------------------------------------------------------------

class Col:
    """A small expression wrapper so predicates read like Python.

    ``col("YoB") > 1966`` builds the same :mod:`repro.sql.ast` expression
    the SQL parser would for ``YoB > 1966``.  Comparison operators return
    new :class:`Col` objects (not booleans), so these wrappers must not be
    used as dict keys or in sets.
    """

    def __init__(self, expr: ast.Expr, alias: str | None = None):
        self.expr = expr
        self.out_name = alias

    def alias(self, name: str) -> "Col":
        """Name this expression in a ``select``."""
        return Col(self.expr, name)

    # comparisons -----------------------------------------------------------
    def _binary(self, op: str, other: Any) -> "Col":
        return Col(ast.BinaryOp(op, self.expr, as_expr(other)))

    def __eq__(self, other):  # type: ignore[override]
        return self._binary("=", other)

    def __ne__(self, other):  # type: ignore[override]
        return self._binary("<>", other)

    def __lt__(self, other):
        return self._binary("<", other)

    def __le__(self, other):
        return self._binary("<=", other)

    def __gt__(self, other):
        return self._binary(">", other)

    def __ge__(self, other):
        return self._binary(">=", other)

    __hash__ = None  # comparisons build expressions, not truth values

    # arithmetic ------------------------------------------------------------
    def __add__(self, other):
        return self._binary("+", other)

    def __radd__(self, other):
        return Col(ast.BinaryOp("+", as_expr(other), self.expr))

    def __sub__(self, other):
        return self._binary("-", other)

    def __rsub__(self, other):
        return Col(ast.BinaryOp("-", as_expr(other), self.expr))

    def __mul__(self, other):
        return self._binary("*", other)

    def __rmul__(self, other):
        return Col(ast.BinaryOp("*", as_expr(other), self.expr))

    def __truediv__(self, other):
        return self._binary("/", other)

    def __mod__(self, other):
        return self._binary("%", other)

    def __neg__(self):
        return Col(ast.UnaryOp("-", self.expr))

    # boolean connectives ----------------------------------------------------
    def __and__(self, other):
        return self._binary("AND", other)

    def __or__(self, other):
        return self._binary("OR", other)

    def __invert__(self):
        return Col(ast.UnaryOp("NOT", self.expr))

    # predicates -------------------------------------------------------------
    def is_null(self) -> "Col":
        return Col(ast.IsNull(self.expr))

    def is_not_null(self) -> "Col":
        return Col(ast.IsNull(self.expr, negated=True))

    def isin(self, *values: Any) -> "Col":
        return Col(ast.InList(self.expr,
                              tuple(as_expr(v) for v in values)))

    def between(self, low: Any, high: Any) -> "Col":
        return Col(ast.Between(self.expr, as_expr(low), as_expr(high)))

    def like(self, pattern: str) -> "Col":
        return Col(ast.BinaryOp("LIKE", self.expr, ast.Literal(pattern)))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Col({self.expr.to_sql()})"


def col(name: str, table: str | None = None) -> Col:
    """Reference a column, optionally qualified by a scan alias."""
    return Col(ast.ColumnRef(name, table))


def lit(value: Any) -> Col:
    """A literal value as an expression."""
    return Col(ast.Literal(value))


def as_expr(value: Any) -> ast.Expr:
    """Coerce a Col / ast.Expr / python scalar into an AST expression."""
    if isinstance(value, Col):
        return value.expr
    if isinstance(value, ast.Expr):
        return value
    return ast.Literal(value)


# -- the lazy frame -------------------------------------------------------------

class LazyFrame:
    """An unevaluated pipeline over relations.

    Frames are immutable: every method returns a new frame wrapping a new
    plan node.  Reusing a frame in two places of one pipeline produces
    *equal* subplans, which the executor recognizes and runs once (CSE).

    ``session`` optionally binds the frame to a
    :class:`repro.api.database.Database` (duck-typed: ``catalog``,
    ``config``, ``result_cache``): bound frames plan against the
    session's catalog — so ``Scan`` leaves of named tables resolve — and
    ``collect``/``explain`` default to the session's configuration and
    result cache.  ``Matrix.to_lazy()`` creates bound frames; ``scan()``
    pipelines stay session-free as before.  The binding survives chaining.
    """

    def __init__(self, plan: nodes.Plan, session=None):
        self._plan = plan
        self._session = session

    @property
    def plan(self) -> nodes.Plan:
        """The logical plan built so far (un-optimized)."""
        return self._plan

    def _wrap(self, plan: nodes.Plan) -> "LazyFrame":
        """A new frame over ``plan`` keeping this frame's session binding."""
        return LazyFrame(plan, session=self._session)

    # -- relational operators -------------------------------------------------

    def filter(self, predicate: Col | ast.Expr) -> "LazyFrame":
        return self._wrap(nodes.Filter(self._plan, as_expr(predicate)))

    def select(self, *items: str | Col | ast.Expr) -> "LazyFrame":
        """Project expressions; strings select columns by name."""
        select_items = []
        for item in items:
            if isinstance(item, str):
                select_items.append(
                    ast.SelectItem(ast.ColumnRef(item), None))
            elif isinstance(item, Col):
                select_items.append(ast.SelectItem(item.expr,
                                                   item.out_name))
            else:
                select_items.append(ast.SelectItem(item, None))
        return self._wrap(nodes.Project(self._plan, tuple(select_items)))

    def join(self, other: "LazyFrame | Relation",
             on: Col | ast.Expr, how: str = "inner") -> "LazyFrame":
        """Join on an expression; qualify refs with the scan aliases."""
        other_plan = _as_plan(other)
        return self._wrap(nodes.JoinPlan(how, self._plan, other_plan,
                                         as_expr(on)))

    def sort(self, *names: str, descending: bool = False) -> "LazyFrame":
        items = tuple(ast.OrderItem(ast.ColumnRef(n), descending)
                      for n in names)
        return self._wrap(nodes.Sort(self._plan, items))

    def limit(self, count: int, offset: int = 0) -> "LazyFrame":
        return self._wrap(nodes.Limit(self._plan, count, offset))

    def distinct(self) -> "LazyFrame":
        return self._wrap(nodes.Distinct(self._plan))

    # -- relational matrix operations ------------------------------------------

    def rma(self, op: str, by: str | Sequence[str],
            other: "LazyFrame | Relation | None" = None,
            other_by: str | Sequence[str] | None = None,
            alias: str | None = None,
            scalar: float | None = None) -> "LazyFrame":
        """Apply a Table 2 operation (or scalar variant) lazily.

        ``by`` (and ``other_by`` for binary operations) are order schemas,
        exactly as in :mod:`repro.core.algebra`; ``scalar`` is the constant
        of the scalar variants (``sadd``/``ssub``/``smul``).
        """
        name = op.lower()
        spec = spec_of(name)
        inputs: list[nodes.Plan] = [self._plan]
        bys: list = [by]
        if spec.arity == 2:
            if other is None:
                raise PlanError(
                    f"{name} is binary: supply other and other_by")
            inputs.append(as_plan(other))
            bys.append(other_by)
        elif other is not None or other_by is not None:
            raise PlanError(
                f"{name} is unary: other/other_by are not accepted")
        # Order-schema normalization and validation live in build_rma —
        # the one constructor both Python front ends share.
        return self._wrap(build_rma(name, tuple(inputs), bys, alias,
                                    scalar))

    # -- execution -------------------------------------------------------------

    def _resolved(self, config: RmaConfig | None,
                  cache: "PlanCache | None") \
            -> tuple[Catalog, RmaConfig | None, "PlanCache | None"]:
        """Catalog/config/cache after applying the session binding.

        Explicit arguments win; a bound session fills the gaps; unbound
        frames keep the historical defaults (fresh catalog, global
        config, no cache)."""
        if self._session is None:
            return Catalog(), config, cache
        return (self._session.catalog,
                config or self._session.config,
                cache if cache is not None else self._session.result_cache)

    def _planned(self, optimize: bool, config: RmaConfig | None,
                 catalog: Catalog) -> tuple[nodes.Plan, PhysicalInfo]:
        plan = self._plan
        if optimize:
            # Resolve the effective config exactly like the executor does,
            # so the global default's fuse_elementwise knob is honored.
            fuse = (config or default_config()).fuse_elementwise
            plan = optimize_plan(plan, catalog, keep_all=True, fuse=fuse)
        info = plan_physical(plan, catalog)
        return plan, info

    def collect(self, config: RmaConfig | None = None,
                optimize: bool = True, cse: bool = True,
                cache: PlanCache | None = None) -> Relation:
        """Optimize, physically plan and execute; returns the relation.

        ``cache`` is an optional session-scoped
        :class:`~repro.plan.cache.PlanCache` shared across ``collect``
        calls: repeated RMA/subquery subplans (scans compare by relation
        identity) skip re-execution entirely.  Session-bound frames
        (``Matrix.to_lazy()``) default ``config`` and ``cache`` to the
        session's and execute against its catalog.
        """
        catalog, config, cache = self._resolved(config, cache)
        plan, info = self._planned(optimize, config, catalog)
        executor = Executor(catalog, config, physical=info, cse=cse,
                            result_cache=cache)
        return executor.run(plan).to_plain_relation()

    def explain(self, optimize: bool = True,
                config: RmaConfig | None = None) -> str:
        """The optimized plan with physical annotations, as text."""
        catalog, config, _ = self._resolved(config, None)
        plan, info = self._planned(optimize, config, catalog)
        return format_plan(plan, info)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LazyFrame({type(self._plan).__name__})"


def as_plan(source: "LazyFrame | Relation") -> nodes.Plan:
    """The logical plan behind a frame (or a fresh scan of a relation)."""
    if isinstance(source, LazyFrame):
        return source._plan
    if isinstance(source, Relation):
        return nodes.RelScan(source, default_alias(source))
    raise PlanError(
        f"expected a LazyFrame or Relation, got {type(source).__name__}")


_as_plan = as_plan  # pre-PR 5 internal name, kept for callers


def scan(relation: Relation, name: str | None = None) -> LazyFrame:
    """Start a pipeline from an in-memory relation."""
    if not isinstance(relation, Relation):
        raise PlanError(
            f"scan expects a Relation, got {type(relation).__name__}")
    return LazyFrame(nodes.RelScan(relation,
                                   name or default_alias(relation)))
