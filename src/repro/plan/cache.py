"""Session-scoped plan/result cache with catalog-version invalidation.

PR 2's common-subexpression elimination memoizes repeated RMA/subquery
subplans *within one statement*; this module extends the memo across
statements.  A :class:`PlanCache` maps canonical plan nodes (alias-stripped,
structurally hashable — see :mod:`repro.plan.nodes`) to their result
relations.  Relations are immutable, so sharing a cached result across
statements is sound; the only thing that can go stale is the *catalog
binding* of a ``Scan`` leaf.

Every entry is therefore stamped with the **catalog version** of each table
its subplan scans (:meth:`repro.bat.catalog.Catalog.table_version`, a
monotone counter bumped on every ``CREATE``/``INSERT``/``register``/
``DROP``).  A lookup revalidates the stamps: any mutation of a scanned
table invalidates exactly the entries that read it, while entries over
untouched tables keep hitting.  ``RelScan`` leaves reference immutable
relation objects by identity and need no stamp.

Entries also record the :meth:`~repro.core.config.RmaConfig.cache_token`
they were computed under: results can depend on configuration (e.g. the
backend policy), so a session that swaps — or mutates — its config never
sees a result computed under different settings.

Both front ends use the cache: :class:`repro.sql.session.Session` owns one
per session, and the lazy builder accepts one via
``LazyFrame.collect(cache=...)``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.bat.catalog import Catalog
from repro.plan import nodes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relational.relation import Relation

Stamps = tuple[tuple[str, Optional[int]], ...]


def catalog_stamps(plan: nodes.Plan, catalog: Catalog) -> Stamps:
    """(table, version) pairs for every catalog table a plan scans.

    The walk is id-deduplicated so diamond-shaped lazy plans stay linear.
    Unknown tables stamp as ``None`` — creating them later changes the
    stamp, which is exactly the invalidation that case needs.
    """
    tables: set[str] = set()
    seen: set[int] = set()
    stack = [plan]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, nodes.Scan):
            tables.add(node.table.lower())
        stack.extend(node.children())
    return tuple((name, catalog.table_version(name))
                 for name in sorted(tables))


class LruDict(OrderedDict):
    """OrderedDict with LRU discipline: touch on hit, trim on store.

    The one home for the eviction pattern the session's parse/plan caches
    and :class:`PlanCache` share.
    """

    def __init__(self, max_entries: int):
        super().__init__()
        self.max_entries = max_entries

    def touch(self, key) -> None:
        self.move_to_end(key)

    def store(self, key, value) -> None:
        self[key] = value
        self.move_to_end(key)
        while len(self) > self.max_entries:
            self.popitem(last=False)


def _config_token(config):
    """The config's cache token (see :meth:`RmaConfig.cache_token`).

    Duck-typed configs without ``cache_token`` fall back to the object
    itself: storing it in the entry pins it alive, so the comparison is a
    true identity check — never a recycled ``id()`` of a collected
    object."""
    token = getattr(config, "cache_token", None)
    return token() if callable(token) else config


@dataclass
class _Entry:
    relation: "Relation"
    stamps: Stamps
    config_token: object
    catalog: Catalog | None  # pinned only when stamps reference tables


class PlanCache:
    """LRU cache of subplan results, keyed by canonical plan node."""

    def __init__(self, max_entries: int = 128):
        self._entries: LruDict = LruDict(max_entries)
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    @property
    def max_entries(self) -> int:
        return self._entries.max_entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, plan: nodes.Plan, catalog: Catalog,
            config: object) -> "Relation | None":
        """The cached result for a subplan, or None.

        Truly stale entries (catalog version mismatch on any scanned
        table) are evicted on sight; entries that are merely *not ours* —
        another catalog instance behind the stamps, or different config
        values — miss without eviction, so a cache shared across
        sessions/configs is last-writer-wins for colliding plan keys
        instead of thrashing on alternating lookups.
        """
        entry = self._entries.get(plan)
        if entry is None:
            self.misses += 1
            return None
        if ((entry.stamps and entry.catalog is not catalog)
                or entry.config_token != _config_token(config)):
            # Version stamps only identify tables *within* one catalog,
            # and results depend on config values — but such an entry is
            # not stale for its own catalog/config, so it is left in
            # place.
            self.misses += 1
            return None
        if not self._valid(entry, catalog):
            del self._entries[plan]
            self.invalidations += 1
            self.misses += 1
            return None
        self._entries.touch(plan)
        self.hits += 1
        return entry.relation

    def put(self, plan: nodes.Plan, catalog: Catalog, config: object,
            relation: "Relation") -> None:
        """Store a subplan result stamped with current table versions."""
        stamps = catalog_stamps(plan, catalog)
        self._entries.store(
            plan, _Entry(relation, stamps, _config_token(config),
                         catalog if stamps else None))

    def clear(self) -> None:
        self._entries.clear()

    @staticmethod
    def _valid(entry: _Entry, catalog: Catalog) -> bool:
        """Whether the stamped table versions still hold.  Entries without
        stamps (pure ``RelScan`` plans — relations compared by identity)
        are catalog-independent, which is what lets lazy
        ``collect(cache=...)`` calls share a cache across their per-call
        catalogs."""
        return all(catalog.table_version(name) == version
                   for name, version in entry.stamps)
