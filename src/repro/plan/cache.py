"""Session-scoped plan/result cache with catalog-version invalidation.

PR 2's common-subexpression elimination memoizes repeated RMA/subquery
subplans *within one statement*; this module extends the memo across
statements.  A :class:`PlanCache` maps canonical plan nodes (alias-stripped,
structurally hashable — see :mod:`repro.plan.nodes`) to their result
relations.  Relations are immutable, so sharing a cached result across
statements is sound; the only thing that can go stale is the *catalog
binding* of a ``Scan`` leaf.

Every entry is therefore stamped with the **catalog version** of each table
its subplan scans (:meth:`repro.bat.catalog.Catalog.table_version`, a
monotone counter bumped on every ``CREATE``/``INSERT``/``register``/
``DROP``).  A lookup revalidates the stamps: any mutation of a scanned
table invalidates exactly the entries that read it, while entries over
untouched tables keep hitting.  ``RelScan`` leaves reference immutable
relation objects by identity and need no stamp.

Entries also record the :meth:`~repro.core.config.RmaConfig.cache_token`
they were computed under: results can depend on configuration (e.g. the
backend policy), so a session that swaps — or mutates — its config never
sees a result computed under different settings.

Both front ends use the cache: :class:`repro.sql.session.Session` owns one
per session, and the lazy builder accepts one via
``LazyFrame.collect(cache=...)``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.bat.bat import DataType
from repro.bat.catalog import Catalog
from repro.plan import nodes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relational.relation import Relation

Stamps = tuple[tuple[str, Optional[int]], ...]


def catalog_stamps(plan: nodes.Plan, catalog: Catalog) -> Stamps:
    """(table, version) pairs for every catalog table a plan scans.

    The walk is id-deduplicated so diamond-shaped lazy plans stay linear.
    Unknown tables stamp as ``None`` — creating them later changes the
    stamp, which is exactly the invalidation that case needs.
    """
    tables: set[str] = set()
    seen: set[int] = set()
    stack = [plan]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, nodes.Scan):
            tables.add(node.table.lower())
        stack.extend(node.children())
    return tuple((name, catalog.table_version(name))
                 for name in sorted(tables))


class LruDict(OrderedDict):
    """OrderedDict with LRU discipline: touch on hit, trim on store.

    The one home for the eviction pattern the session's parse/plan caches
    and :class:`PlanCache` share.
    """

    def __init__(self, max_entries: int):
        super().__init__()
        self.max_entries = max_entries

    def touch(self, key) -> None:
        self.move_to_end(key)

    def store(self, key, value) -> None:
        self[key] = value
        self.move_to_end(key)
        while len(self) > self.max_entries:
            self.popitem(last=False)


def _config_token(config):
    """The config's cache token (see :meth:`RmaConfig.cache_token`).

    Duck-typed configs without ``cache_token`` fall back to the object
    itself: storing it in the entry pins it alive, so the comparison is a
    true identity check — never a recycled ``id()`` of a collected
    object."""
    token = getattr(config, "cache_token", None)
    return token() if callable(token) else config


_STR_PAYLOAD_SAMPLE = 64
"""Strings sampled per column when estimating STR storage bytes."""

_STR_OBJECT_OVERHEAD = 49
"""CPython's empty-``str`` footprint (the per-object heap cost)."""


def relation_bytes(relation: "Relation") -> int:
    """Estimated resident bytes of a relation's BATs (for cache budgets).

    Numeric/date tails are exact (``ndarray.nbytes``).  STR tails hold
    object pointers, so the python string payload is estimated from a
    deterministic strided sample of up to ``_STR_PAYLOAD_SAMPLE`` values —
    an O(1)-per-column estimate, cheap enough to run on every cache store.
    """
    total = 0
    for column in relation.columns:
        total += column.tail.nbytes
        if column.dtype is DataType.STR and len(column.tail):
            tail = column.tail
            step = max(1, len(tail) // _STR_PAYLOAD_SAMPLE)
            probe = tail[::step]
            payload = sum(_STR_OBJECT_OVERHEAD + len(v)
                          for v in probe if v is not None)
            total += int(payload * (len(tail) / max(len(probe), 1)))
    return total


DEFAULT_MAX_RESULT_BYTES = 256 << 20
"""Default byte budget of a session's result cache (256 MiB).

Sized to the workloads the paper benchmarks: a 1M-row, 10-column double
relation is ~80 MB, so the default keeps a few large intermediates while
the entry-count backstop still caps pathological many-small-entry
sessions."""


@dataclass
class _Entry:
    relation: "Relation"
    stamps: Stamps
    config_token: object
    catalog: Catalog | None  # pinned only when stamps reference tables
    bytes: int = 0


class PlanCache:
    """Cache of subplan results, keyed by canonical plan node.

    Eviction is LRU by **estimated result bytes** (``max_bytes``,
    computed from the cached relations' BAT sizes) with ``max_entries``
    kept as a backstop — a session caching a handful of million-row
    intermediates hits the byte budget long before the entry count, while
    many tiny results are still bounded.  All operations take the cache
    lock: with the morsel engine on, executors call ``get``/``put`` from
    pool worker threads.
    """

    def __init__(self, max_entries: int = 128,
                 max_bytes: int = DEFAULT_MAX_RESULT_BYTES):
        self._entries: "OrderedDict[nodes.Plan, _Entry]" = OrderedDict()
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def total_bytes(self) -> int:
        """Estimated bytes of all cached results."""
        return self._bytes

    def get(self, plan: nodes.Plan, catalog: Catalog,
            config: object) -> "Relation | None":
        """The cached result for a subplan, or None.

        Truly stale entries (catalog version mismatch on any scanned
        table) are evicted on sight; entries that are merely *not ours* —
        another catalog instance behind the stamps, or different config
        values — miss without eviction, so a cache shared across
        sessions/configs is last-writer-wins for colliding plan keys
        instead of thrashing on alternating lookups.
        """
        with self._lock:
            entry = self._entries.get(plan)
            if entry is None:
                self.misses += 1
                return None
            if ((entry.stamps and entry.catalog is not catalog)
                    or entry.config_token != _config_token(config)):
                # Version stamps only identify tables *within* one
                # catalog, and results depend on config values — but such
                # an entry is not stale for its own catalog/config, so it
                # is left in place.
                self.misses += 1
                return None
            if not self._valid(entry, catalog):
                self._drop(plan)
                self.invalidations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(plan)
            self.hits += 1
            return entry.relation

    def put(self, plan: nodes.Plan, catalog: Catalog, config: object,
            relation: "Relation") -> None:
        """Store a subplan result stamped with current table versions."""
        stamps = catalog_stamps(plan, catalog)
        entry = _Entry(relation, stamps, _config_token(config),
                       catalog if stamps else None,
                       bytes=relation_bytes(relation))
        with self._lock:
            if entry.bytes > self.max_bytes:
                # Too big to ever fit: admitting it would flush every
                # resident entry before evicting itself.  Drop only a
                # stale previous version of the same plan, keep the rest.
                self._drop(plan)
                return
            old = self._entries.pop(plan, None)
            if old is not None:
                self._bytes -= old.bytes
            self._entries[plan] = entry
            self._bytes += entry.bytes
            while self._entries and (
                    len(self._entries) > self.max_entries
                    or self._bytes > self.max_bytes):
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.bytes
                self.evictions += 1

    def _drop(self, plan: nodes.Plan) -> None:
        entry = self._entries.pop(plan, None)
        if entry is not None:
            self._bytes -= entry.bytes

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    @staticmethod
    def _valid(entry: _Entry, catalog: Catalog) -> bool:
        """Whether the stamped table versions still hold.  Entries without
        stamps (pure ``RelScan`` plans — relations compared by identity)
        are catalog-independent, which is what lets lazy
        ``collect(cache=...)`` calls share a cache across their per-call
        catalogs."""
        return all(catalog.table_version(name) == version
                   for name, version in entry.stamps)
