"""Shared logical plan IR — nodes and expression analysis.

Every front end (the SQL parser in :mod:`repro.sql` and the lazy builder in
:mod:`repro.plan.lazy`) compiles into the node types below; the optimizer
(:mod:`repro.plan.optimizer`), the physical planner and executor
(:mod:`repro.plan.physical`) and the plan printer (:mod:`repro.plan.explain`)
all operate on this one representation.

Expressions inside plan nodes (filter predicates, projection items, join
conditions) use the expression AST of :mod:`repro.sql.ast` — it is the shared
expression language, not a SQL-only artifact; ``repro.sql.ast`` is a leaf
module with no parser or session dependencies.

Nodes are frozen dataclasses, so plan subtrees are hashable and comparable by
value.  The physical layer exploits that for common-subexpression
elimination: two structurally identical RMA subplans are *equal*, and the
executor memoizes their results by node.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

from repro.errors import PlanError
from repro.linalg.kernels import KernelStep
from repro.sql import ast

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relational.relation import Relation

AGGREGATE_FUNCTIONS = {"AVG": "avg", "SUM": "sum", "COUNT": "count",
                       "MIN": "min", "MAX": "max", "VAR": "var",
                       "STDDEV": "std"}


class Plan:
    """Base class of logical plan nodes."""

    def children(self) -> tuple["Plan", ...]:
        return ()

    def __hash__(self) -> int:
        # Plans are DAGs in practice (lazy pipelines reuse subplan objects
        # on both sides of binary operations), so the generated dataclass
        # hash — which re-hashes every child on every call — would be
        # exponential in nesting depth.  Caching the hash per (immutable)
        # node makes hashing linear in *distinct* nodes; dict probes then
        # short-circuit on object identity before any deep __eq__.
        cached = getattr(self, "_plan_hash", None)
        if cached is None:
            cached = hash((type(self),) + tuple(
                getattr(self, f.name) for f in dataclasses.fields(self)))
            object.__setattr__(self, "_plan_hash", cached)
        return cached


def plan_node(cls):
    """Frozen dataclass whose structural __eq__ pairs with the cached
    DAG-safe __hash__ of :class:`Plan` (the generated hash would shadow
    it)."""
    cls = dataclass(frozen=True)(cls)
    cls.__hash__ = Plan.__hash__
    return cls


@plan_node
class Scan(Plan):
    """Scan of a named catalog table."""

    table: str
    alias: str


@plan_node
class RelScan(Plan):
    """Scan of an in-memory relation (the lazy builder's leaf).

    The relation is compared by identity (``Relation`` does not define value
    equality), so two scans of the same relation object are equal nodes and
    therefore CSE candidates, while scans of distinct objects are not.
    """

    relation: "Relation"
    alias: str


@plan_node
class SubqueryScan(Plan):
    plan: Plan
    alias: str

    def children(self):
        return (self.plan,)


@plan_node
class Rma(Plan):
    """A relational matrix operation node: op over one or two inputs.

    ``scalar`` carries the constant of the scalar variants
    (``sadd``/``ssub``/``smul``); it is ``None`` for Table 2 operations.
    """

    op: str
    inputs: tuple[Plan, ...]
    by: tuple[tuple[str, ...], ...]
    alias: Optional[str]
    scalar: Optional[float] = None

    def children(self):
        return self.inputs


@plan_node
class FusedRma(Plan):
    """A fused chain of relative-class element-wise RMA operations.

    Produced by the optimizer's fusion rule from nested ``Rma`` nodes whose
    order schemas are compatible (each parent orders its input by exactly
    the order part the child produces).  ``steps`` is the kernel program:
    slot ``i < len(inputs)`` is leaf ``i`` split by ``bys[i]``; slot
    ``len(inputs) + j`` is the result of step ``j``.  The executor runs the
    whole chain as one prepare/align/kernel/merge pass
    (:func:`repro.core.ops.execute_fused`), falling back to step-by-step
    execution when the fused preconditions fail at run time.
    """

    steps: tuple[KernelStep, ...]
    inputs: tuple[Plan, ...]
    bys: tuple[tuple[str, ...], ...]
    alias: Optional[str]

    def children(self):
        return self.inputs

    @property
    def member_ops(self) -> tuple[str, ...]:
        return tuple(step.op for step in self.steps)


@plan_node
class Filter(Plan):
    child: Plan
    predicate: ast.Expr

    def children(self):
        return (self.child,)


@plan_node
class JoinPlan(Plan):
    kind: str  # "inner", "left", "cross"
    left: Plan
    right: Plan
    condition: Optional[ast.Expr] = None

    def children(self):
        return (self.left, self.right)


@plan_node
class Project(Plan):
    """Evaluate expressions into named output columns."""

    child: Plan
    items: tuple[ast.SelectItem, ...]

    def children(self):
        return (self.child,)


@dataclass(frozen=True)
class AggregateSpecNode:
    func: str          # relational aggregate name ("sum", "avg", ...)
    argument: ast.Expr | None  # None for count(*)
    distinct: bool
    out_name: str


@plan_node
class Aggregate(Plan):
    child: Plan
    keys: tuple[ast.Expr, ...]
    key_names: tuple[str, ...]
    aggregates: tuple[AggregateSpecNode, ...]

    def children(self):
        return (self.child,)


@plan_node
class Distinct(Plan):
    child: Plan

    def children(self):
        return (self.child,)


@plan_node
class Sort(Plan):
    child: Plan
    items: tuple[ast.OrderItem, ...]

    def children(self):
        return (self.child,)


@plan_node
class Limit(Plan):
    child: Plan
    count: int
    offset: int = 0

    def children(self):
        return (self.child,)


@plan_node
class Prune(Plan):
    """Advisory projection: keep only the named columns (added by the
    optimizer below joins; unqualified names)."""

    child: Plan
    names: tuple[str, ...]

    def children(self):
        return (self.child,)


def walk_plan(plan: Plan) -> Iterator[Plan]:
    """Yield the node and all plan nodes below it (pre-order)."""
    yield plan
    for child in plan.children():
        yield from walk_plan(child)


def unfuse(plan: FusedRma) -> Plan:
    """Rebuild the nested ``Rma`` chain a ``FusedRma`` node was fused from.

    Interior aliases are not reconstructed (they are semantically inert —
    an ``Rma`` parent consumes its child through the plain relation), so
    the rebuilt chain is value-identical, not necessarily node-identical,
    to the pre-fusion plan.
    """
    slots: list[tuple[Plan, tuple[str, ...]]] = list(
        zip(plan.inputs, plan.bys))
    for step in plan.steps:
        left, left_by = slots[step.left]
        if step.right is None:
            node: Plan = Rma(step.op, (left,), (left_by,), None,
                             step.scalar)
            slots.append((node, left_by))
        else:
            right, right_by = slots[step.right]
            node = Rma(step.op, (left, right), (left_by, right_by), None)
            slots.append((node, left_by + right_by))
    root, _ = slots[-1]
    assert isinstance(root, Rma)
    return Rma(root.op, root.inputs, root.by, plan.alias, root.scalar)


# -- expression analysis -------------------------------------------------------

def walk_expr(expr: ast.Expr) -> Iterator[ast.Expr]:
    """Yield the expression and all sub-expressions."""
    yield expr
    if isinstance(expr, ast.BinaryOp):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, ast.UnaryOp):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, ast.FunctionCall):
        for arg in expr.args:
            yield from walk_expr(arg)
    elif isinstance(expr, ast.IsNull):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, ast.Between):
        yield from walk_expr(expr.operand)
        yield from walk_expr(expr.low)
        yield from walk_expr(expr.high)
    elif isinstance(expr, ast.InList):
        yield from walk_expr(expr.operand)
        for item in expr.items:
            yield from walk_expr(item)
    elif isinstance(expr, ast.CaseWhen):
        for cond, value in expr.branches:
            yield from walk_expr(cond)
            yield from walk_expr(value)
        if expr.otherwise is not None:
            yield from walk_expr(expr.otherwise)


def column_refs(expr: ast.Expr) -> list[ast.ColumnRef]:
    return [e for e in walk_expr(expr) if isinstance(e, ast.ColumnRef)]


def contains_aggregate(expr: ast.Expr) -> bool:
    return any(isinstance(e, ast.FunctionCall)
               and e.name in AGGREGATE_FUNCTIONS
               for e in walk_expr(expr))


def aggregate_calls(expr: ast.Expr) -> list[ast.FunctionCall]:
    return [e for e in walk_expr(expr)
            if isinstance(e, ast.FunctionCall)
            and e.name in AGGREGATE_FUNCTIONS]


def split_conjuncts(expr: ast.Expr) -> list[ast.Expr]:
    """Break a predicate into AND-connected conjuncts."""
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: list[ast.Expr]) -> Optional[ast.Expr]:
    if not conjuncts:
        return None
    expr = conjuncts[0]
    for part in conjuncts[1:]:
        expr = ast.BinaryOp("AND", expr, part)
    return expr


def replace_expr(expr: ast.Expr, mapping: dict[ast.Expr, ast.Expr]) \
        -> ast.Expr:
    """Structurally replace sub-expressions (used to rewrite aggregates)."""
    if expr in mapping:
        return mapping[expr]
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(expr.op, replace_expr(expr.left, mapping),
                            replace_expr(expr.right, mapping))
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, replace_expr(expr.operand, mapping))
    if isinstance(expr, ast.FunctionCall):
        return ast.FunctionCall(
            expr.name,
            tuple(replace_expr(a, mapping) for a in expr.args),
            expr.distinct)
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(replace_expr(expr.operand, mapping), expr.negated)
    if isinstance(expr, ast.Between):
        return ast.Between(replace_expr(expr.operand, mapping),
                           replace_expr(expr.low, mapping),
                           replace_expr(expr.high, mapping), expr.negated)
    if isinstance(expr, ast.InList):
        return ast.InList(replace_expr(expr.operand, mapping),
                          tuple(replace_expr(i, mapping)
                                for i in expr.items), expr.negated)
    if isinstance(expr, ast.CaseWhen):
        return ast.CaseWhen(
            tuple((replace_expr(c, mapping), replace_expr(v, mapping))
                  for c, v in expr.branches),
            replace_expr(expr.otherwise, mapping)
            if expr.otherwise is not None else None)
    return expr


def default_output_name(expr: ast.Expr, index: int) -> str:
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, ast.FunctionCall):
        return expr.name.lower()
    return f"col{index}"


def with_children(plan: Plan, children: tuple[Plan, ...]) -> Plan:
    """Clone a plan node with new children."""
    if isinstance(plan, SubqueryScan):
        return SubqueryScan(children[0], plan.alias)
    if isinstance(plan, Rma):
        return Rma(plan.op, children, plan.by, plan.alias, plan.scalar)
    if isinstance(plan, FusedRma):
        return FusedRma(plan.steps, children, plan.bys, plan.alias)
    if isinstance(plan, Filter):
        return Filter(children[0], plan.predicate)
    if isinstance(plan, JoinPlan):
        return JoinPlan(plan.kind, children[0], children[1], plan.condition)
    if isinstance(plan, Project):
        return Project(children[0], plan.items)
    if isinstance(plan, Aggregate):
        return Aggregate(children[0], plan.keys, plan.key_names,
                         plan.aggregates)
    if isinstance(plan, Distinct):
        return Distinct(children[0])
    if isinstance(plan, Sort):
        return Sort(children[0], plan.items)
    if isinstance(plan, Limit):
        return Limit(children[0], plan.count, plan.offset)
    if isinstance(plan, Prune):
        return Prune(children[0], plan.names)
    if children:
        raise PlanError(f"cannot rebuild plan node {type(plan).__name__}")
    return plan
