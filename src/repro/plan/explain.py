"""Pretty-printing of logical plans and their physical annotations.

``format_plan`` renders an indented operator tree, one node per line, with
the physical planner's annotations appended in brackets:

.. code-block:: text

    Project [User, Net]
      Filter (YoB > 1966)
        Join inner ON (u.User = r.User) [strategy=merge]
          Scan u AS u [order=(User)]
          Scan r AS r [order=(User)]

Used by the lazy API's ``.explain()`` and by the SQL ``EXPLAIN`` statement
(:meth:`repro.sql.session.Session.explain`).
"""

from __future__ import annotations

from repro.plan import nodes
from repro.plan.physical import PhysicalInfo, _cse_key


def describe_node(plan: nodes.Plan) -> str:
    """One-line description of a plan node (no children)."""
    if isinstance(plan, nodes.Scan):
        return f"Scan {plan.table} AS {plan.alias}"
    if isinstance(plan, nodes.RelScan):
        names = ", ".join(plan.relation.names)
        return (f"RelScan {plan.alias} ({names}; "
                f"{plan.relation.nrows} rows)")
    if isinstance(plan, nodes.SubqueryScan):
        return f"Subquery AS {plan.alias}"
    if isinstance(plan, nodes.Rma):
        parts = []
        for i, by in enumerate(plan.by):
            parts.append(f"arg{i + 1} BY ({', '.join(by)})")
        alias = f" AS {plan.alias}" if plan.alias else ""
        scalar = f" scalar={plan.scalar:g}" if plan.scalar is not None \
            else ""
        return f"Rma {plan.op.upper()} {', '.join(parts)}{alias}{scalar}"
    if isinstance(plan, nodes.FusedRma):
        ops = " -> ".join(
            step.op.upper()
            + (f"({step.scalar:g})" if step.scalar is not None else "")
            for step in plan.steps)
        parts = [f"arg{i + 1} BY ({', '.join(by)})"
                 for i, by in enumerate(plan.bys)]
        alias = f" AS {plan.alias}" if plan.alias else ""
        return (f"FusedRma [{ops}] {', '.join(parts)}{alias}")
    if isinstance(plan, nodes.Filter):
        return f"Filter {plan.predicate.to_sql()}"
    if isinstance(plan, nodes.JoinPlan):
        cond = (f" ON {plan.condition.to_sql()}"
                if plan.condition is not None else "")
        return f"Join {plan.kind}{cond}"
    if isinstance(plan, nodes.Project):
        items = ", ".join(i.to_sql() for i in plan.items)
        return f"Project [{items}]"
    if isinstance(plan, nodes.Aggregate):
        keys = ", ".join(k.to_sql() for k in plan.keys) or "-"
        aggs = ", ".join(f"{s.func}({s.argument.to_sql() if s.argument else '*'})"
                         for s in plan.aggregates) or "-"
        return f"Aggregate keys=[{keys}] aggs=[{aggs}]"
    if isinstance(plan, nodes.Distinct):
        return "Distinct"
    if isinstance(plan, nodes.Sort):
        items = ", ".join(i.to_sql() for i in plan.items)
        return f"Sort [{items}]"
    if isinstance(plan, nodes.Limit):
        offset = f" OFFSET {plan.offset}" if plan.offset else ""
        return f"Limit {plan.count}{offset}"
    if isinstance(plan, nodes.Prune):
        return f"Prune [{', '.join(plan.names)}]"
    return type(plan).__name__


def _annotations(plan: nodes.Plan, info: PhysicalInfo | None) -> str:
    if info is None:
        return ""
    parts = []
    if isinstance(plan, nodes.JoinPlan):
        strategy = info.join_strategy.get(plan)
        if strategy:
            parts.append(f"strategy={strategy}")
    ordering = info.ordering.get(plan)
    if ordering:
        parts.append(f"order=({', '.join(ordering)})")
    key = info.keys.get(plan)
    if key:
        parts.append(f"key=({', '.join(key)})")
    if isinstance(plan, (nodes.Rma, nodes.FusedRma, nodes.SubqueryScan)):
        count = info.shared.get(_cse_key(plan))
        if count:
            parts.append(f"shared x{count}")
    if not parts:
        return ""
    return " [" + ", ".join(parts) + "]"


def format_plan(plan: nodes.Plan,
                info: PhysicalInfo | None = None) -> str:
    """Render a plan (and optional physical annotations) as a tree."""
    return "\n".join(explain_lines(plan, info))


def explain_lines(plan: nodes.Plan,
                  info: PhysicalInfo | None = None) -> list[str]:
    """The EXPLAIN output as a list of lines (one relation row each)."""
    lines: list[str] = []

    def emit(node: nodes.Plan, depth: int) -> None:
        lines.append("  " * depth + describe_node(node)
                     + _annotations(node, info))
        for child in node.children():
            emit(child, depth + 1)

    emit(plan, 0)
    return lines
