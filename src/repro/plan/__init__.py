"""Shared logical/physical plan layer.

The paper's §8.6 edge over R comes from running matrix operations *inside*
a column store's query pipeline.  This package is that pipeline's plan
layer, shared by both front ends:

.. code-block:: text

    SQL text ──parse──> AST ──build_select──┐
                                            ├──> logical plan (plan.nodes)
    Python  ──repro.plan.lazy (LazyFrame) ──┘          │
                                                       ▼
                                         logical optimizer (plan.optimizer)
                                          pushdown / join rewrite / pruning
                                                       │
                                                       ▼
                                         physical planner (plan.physical)
                                       order & key metadata propagation,
                                       merge-vs-hash join choice, shared
                                       (CSE) subplan detection
                                                       │
                                                       ▼
                                          Executor (plan.physical) over the
                                          BAT engine -> Relation

Module map
==========

``nodes``
    The logical IR: frozen dataclass plan nodes (``Scan``, ``RelScan``,
    ``Rma``, ``Filter``, ``JoinPlan``, ``Project``, ``Aggregate``, ...)
    plus expression-analysis helpers.  Node equality is structural, which
    makes subplan sharing a dictionary lookup.

``optimizer``
    Semantics-preserving logical rewrites (predicate pushdown,
    cross-to-inner join conversion, projection pruning) — moved here from
    ``repro.sql`` so lazy pipelines get the same rewrites as SQL text.

``physical``
    The physical planner and the executor.  Optimizations that fire here:

    * **CSE** — structurally identical RMA/subquery subtrees execute once
      per statement; repeated subplans (``CPD(a,a)`` feeding both ``INV``
      and ``MMU``) hit the memo (``Executor.stats.cse_hits``).
    * **Join strategy** — equi-joins whose inputs are provably sorted by
      the join key (cached ``tsorted`` bits / FULL-sort RMA outputs) are
      marked ``merge`` and run without any argsort via
      :func:`repro.relational.joins.merge_join_positions`.
    * **Warm order caches** — ``Frame.to_plain_relation`` passes the
      original relation object through unmodified views, so the order
      caches seeded by ``merge_result`` (:mod:`repro.core.ops`) survive
      from one operation to the next instead of going cold on every
      derived relation.

``lazy``
    The Python builder front end: ``scan(rel).rma("mmu", ...).filter(...)
    .collect()``, with a small ``col``/``lit`` expression DSL.

``explain``
    Plan pretty-printer used by ``LazyFrame.explain()`` and the SQL
    ``EXPLAIN`` statement, including the physical annotations.

The SQL package (:mod:`repro.sql`) is now a thin front end: lexer, parser,
AST, ``build_select`` (AST -> shared plan) and the session; its
``logical``/``optimizer``/``executor`` modules re-export this package for
backwards compatibility.

Ablation: ``benchmarks/bench_ablation_plan.py`` measures CSE + warm-order
propagation on a repeated-subexpression workload (committed baseline in
``benchmarks/BENCH_plan.json``).
"""

from repro.plan import nodes
from repro.plan.explain import explain_lines, format_plan
from repro.plan.lazy import Col, LazyFrame, col, lit, scan
from repro.plan.optimizer import Optimizer, optimize
from repro.plan.physical import (
    Executor,
    Frame,
    PhysicalInfo,
    plan_physical,
)

__all__ = [
    "nodes",
    "scan", "col", "lit", "Col", "LazyFrame",
    "optimize", "Optimizer",
    "Executor", "Frame", "PhysicalInfo", "plan_physical",
    "format_plan", "explain_lines",
]
