"""Shared logical/physical plan layer.

The paper's §8.6 edge over R comes from running matrix operations *inside*
a column store's query pipeline.  This package is that pipeline's plan
layer, shared by both front ends:

.. code-block:: text

    SQL text ──parse──> AST ──build_select──┐
                                            ├──> logical plan (plan.nodes)
    Python  ──repro.plan.lazy (LazyFrame) ──┘          │
                                                       ▼
                                         logical optimizer (plan.optimizer)
                                          pushdown / join rewrite / pruning
                                                       │
                                                       ▼
                                         physical planner (plan.physical)
                                       order & key metadata propagation,
                                       merge-vs-hash join choice, shared
                                       (CSE) subplan detection
                                                       │
                                                       ▼
                                          Executor (plan.physical) over the
                                          BAT engine -> Relation

Module map
==========

``nodes``
    The logical IR: frozen dataclass plan nodes (``Scan``, ``RelScan``,
    ``Rma``, ``Filter``, ``JoinPlan``, ``Project``, ``Aggregate``, ...)
    plus expression-analysis helpers.  Node equality is structural, which
    makes subplan sharing a dictionary lookup.

``build``
    The SQL front end's compiler: parsed ``SELECT`` AST -> shared IR
    (``build_select``/``build_table_expr``).  Lives here — not in
    ``repro.sql`` — so the IR and everything producing it have one home.

``optimizer``
    Semantics-preserving logical rewrites (predicate pushdown,
    cross-to-inner join conversion, projection pruning, element-wise
    fusion) — moved here from ``repro.sql`` so lazy pipelines get the
    same rewrites as SQL text.  The fusion rule collapses chains of
    relative-class operations (``add``/``sub``/``emu`` and the scalar
    variants ``sadd``/``ssub``/``smul``) into one ``FusedRma`` node when
    each parent orders its input by exactly the order part the child
    produces; shared subtrees and order-schema boundaries stay unfused.

``physical``
    The physical planner and the executor.  Optimizations that fire here:

    * **CSE** — structurally identical RMA/subquery subtrees execute once
      per statement; repeated subplans (``CPD(a,a)`` feeding both ``INV``
      and ``MMU``) hit the memo (``Executor.stats.cse_hits``).
    * **Join strategy** — equi-joins whose inputs are provably sorted by
      the join key (cached ``tsorted`` bits / FULL-sort RMA outputs /
      lexicographically sorted composite keys) are marked ``merge`` and
      run without any argsort via
      :func:`repro.relational.joins.merge_join_positions`; runtime
      precondition re-checks fall back to the hash path.
    * **Fused execution** — ``FusedRma`` nodes run as one
      prepare/align/kernel-program/merge pass
      (:func:`repro.core.ops.execute_fused`): every leaf aligns into the
      first leaf's storage order with a single composed permutation, the
      kernel registry (:mod:`repro.linalg.kernels`) executes the chain as
      one program, and no intermediate relation is materialized.  Runtime
      precondition failures (duplicate keys, width mismatches) replay the
      chain step by step, bit-identically.
    * **Warm order caches** — ``Frame.to_plain_relation`` passes the
      original relation object through unmodified views, so the order
      caches seeded by ``merge_result`` (:mod:`repro.core.ops`) survive
      from one operation to the next instead of going cold on every
      derived relation.

``cache``
    The session-scoped plan/result cache: canonical subplan -> result
    relation, stamped with per-table catalog versions so
    ``CREATE``/``INSERT``/``register``/``DROP`` invalidate exactly the
    affected entries.  Owned by :class:`repro.sql.session.Session`
    (result + statement-plan caches) and shareable across lazy
    ``collect(cache=...)`` calls.

``lazy``
    The Python builder front end: ``scan(rel).rma("mmu", ...).filter(...)
    .collect()``, with a small ``col``/``lit`` expression DSL.

``explain``
    Plan pretty-printer used by ``LazyFrame.explain()`` and the SQL
    ``EXPLAIN`` statement, including the physical annotations (fused
    nodes print their member operations).

The SQL package (:mod:`repro.sql`) is now a thin front end: lexer, parser,
AST and the session; its ``logical``/``optimizer``/``executor`` modules
are pure re-exports of this package kept for backwards compatibility.

Ablations: ``benchmarks/bench_ablation_plan.py`` measures CSE +
warm-order propagation (baseline ``BENCH_plan.json``);
``benchmarks/bench_ablation_fusion.py`` measures element-wise fusion and
the session plan cache (baseline ``BENCH_fusion.json``).
"""

from repro.plan import nodes
from repro.plan.build import build_select, build_table_expr
from repro.plan.cache import PlanCache, catalog_stamps
from repro.plan.explain import explain_lines, format_plan
from repro.plan.lazy import Col, LazyFrame, col, lit, scan
from repro.plan.optimizer import Optimizer, optimize
from repro.plan.physical import (
    Executor,
    Frame,
    PhysicalInfo,
    plan_physical,
)

__all__ = [
    "nodes",
    "scan", "col", "lit", "Col", "LazyFrame",
    "build_select", "build_table_expr",
    "optimize", "Optimizer",
    "Executor", "Frame", "PhysicalInfo", "plan_physical",
    "PlanCache", "catalog_stamps",
    "format_plan", "explain_lines",
]
