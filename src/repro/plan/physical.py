"""Physical planning and execution of shared logical plans.

Two layers live here:

* :func:`plan_physical` — the physical planner.  It walks an (optimized)
  logical plan and derives *physical* information the executor exploits:

  - **order/key metadata**: which column prefix each node's output is
    sorted by, propagated through order-preserving operators (filters,
    limits, joins on their left side, projections of passthrough columns)
    and *established* by FULL-sort RMA nodes and ORDER BY;
  - **join strategy**: equi-joins whose two inputs are already sorted by
    the join key are marked ``merge`` and run without any argsort
    (:func:`repro.relational.joins.merge_join_positions`); everything else
    stays on the factorize-and-probe hash path;
  - **shared subplans** (CSE): structurally identical RMA/subquery
    subtrees are counted; the executor memoizes their result relations so
    a repeated subplan executes once per statement.

* :class:`Executor` — evaluates logical plans against a catalog, one
  method per node type, producing :class:`Frame` objects (a relation plus
  name-resolution bindings).  Both front ends run through it: the SQL
  session compiles AST -> plan and the lazy builder
  (:mod:`repro.plan.lazy`) constructs plans directly.

Because relations are immutable, the memoized CSE results share their
per-relation order caches across uses, and ``Frame.to_plain_relation``
returns the *original* relation object whenever the frame is an unmodified
view of it — derived relations produced by ``merge_result`` therefore keep
their seeded order caches all the way to the user (or the next operation).
"""

from __future__ import annotations

import itertools
import re
import threading
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

from repro.bat.bat import BAT, DataType
from repro.bat.catalog import Catalog
from repro.bat import kernels
from repro.bat.properties import properties_enabled
from repro.core.config import RmaConfig, default_config
from repro.core.algebra import rma_operation
from repro.core.context import FusionFallback
from repro.core.ops import execute_fused
from repro.engine.pool import in_worker, run_tasks
from repro.errors import BindError, CatalogError, PlanError
from repro.opspec import SortClass, spec_of
from repro.plan.cache import PlanCache
import repro.relational.aggregate as rel_aggregate
import repro.relational.joins as rel_join
import repro.relational.ops as rel_ops
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema
from repro.plan import nodes
from repro.plan.optimizer import Optimizer, ref_matches
from repro.sql import ast
from repro.sql.functions import SCALAR_FUNCTIONS


@dataclass(frozen=True)
class Binding:
    """Maps a user-visible (alias, column) pair to an internal column.

    ``hidden`` bindings are resolvable (so ORDER BY can reference source
    columns after projection) but are not part of the visible output.
    """

    alias: Optional[str]
    name: str
    internal: str
    hidden: bool = False


class Frame:
    """A relation with name bindings for expression resolution.

    Internal column names are globally unique within the frame so joins can
    concatenate schemas without clashes while user-visible names stay
    resolvable (qualified or unqualified).
    """

    _counter = itertools.count(1)  # itertools: atomic under the GIL, so
    # concurrently evaluated subplans never mint the same internal name

    def __init__(self, relation: Relation, bindings: list[Binding],
                 source: Relation | None = None):
        self.relation = relation
        self.bindings = bindings
        self.source = source

    @classmethod
    def _fresh(cls, hint: str) -> str:
        return f"{hint}#{next(cls._counter)}"

    @classmethod
    def from_relation(cls, relation: Relation,
                      alias: Optional[str]) -> "Frame":
        bindings = []
        internal_names = []
        for name in relation.names:
            internal = cls._fresh(name)
            bindings.append(Binding(alias, name, internal))
            internal_names.append(internal)
        schema = Schema(Attribute(internal, relation.schema.dtype(name))
                        for internal, name in zip(internal_names,
                                                  relation.names))
        return cls(Relation(schema, relation.columns), bindings,
                   source=relation)

    # -- resolution ----------------------------------------------------------

    def resolve(self, ref: ast.ColumnRef) -> str:
        def lookup(candidates: list[Binding]) -> list[Binding]:
            return [b for b in candidates
                    if b.name == ref.name
                    and (ref.table is None or b.alias == ref.table)]

        matches = lookup(self.visible_bindings())
        if not matches:
            matches = lookup([b for b in self.bindings if b.hidden])
        if not matches:
            known = sorted({b.name for b in self.bindings})
            raise BindError(
                f"unknown column {ref.to_sql()!r}; available: "
                f"{', '.join(known)}")
        if len(matches) > 1 and ref.table is None:
            aliases = sorted({str(b.alias) for b in matches})
            raise BindError(
                f"ambiguous column {ref.name!r} (in {', '.join(aliases)}); "
                "qualify it")
        return matches[0].internal

    def column(self, ref: ast.ColumnRef) -> BAT:
        return self.relation.column(self.resolve(ref))

    def visible_bindings(self) -> list[Binding]:
        return [b for b in self.bindings if not b.hidden]

    def star_bindings(self, table: Optional[str]) -> list[Binding]:
        if table is None:
            return self.visible_bindings()
        matches = [b for b in self.visible_bindings() if b.alias == table]
        if not matches:
            raise BindError(f"unknown table alias {table!r} in star")
        return matches

    def to_plain_relation(self) -> Relation:
        """Expose user-visible names (for RMA inputs and final output).

        When the frame is an unmodified view of its source relation the
        source object itself is returned, preserving its (possibly warm)
        order cache — the plan layer's cross-operation cache reuse depends
        on this passthrough.
        """
        visible = self.visible_bindings()
        if (self.source is not None
                and len(visible) == len(self.source.columns)
                and all(b.name == n
                        for b, n in zip(visible, self.source.names))
                and all(self.relation.column(b.internal) is col
                        for b, col in zip(visible, self.source.columns))):
            return self.source
        names = [b.name for b in visible]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise BindError(
                f"duplicate output columns {duplicates}; add aliases")
        schema = Schema(Attribute(b.name,
                                  self.relation.schema.dtype(b.internal))
                        for b in visible)
        columns = [self.relation.column(b.internal) for b in visible]
        return Relation(schema, columns)

    def select_positions(self, positions: np.ndarray) -> "Frame":
        relation = Relation(
            self.relation.schema,
            [col.fetch(positions) for col in self.relation.columns])
        return Frame(relation, self.bindings)


# -- expression evaluation -------------------------------------------------------

_LIKE_CACHE: dict[str, re.Pattern] = {}


def _like_pattern(pattern: str) -> re.Pattern:
    if pattern not in _LIKE_CACHE:
        regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
        _LIKE_CACHE[pattern] = re.compile(f"^{regex}$", re.IGNORECASE)
    return _LIKE_CACHE[pattern]


def _as_mask(value: Any, n: int) -> np.ndarray:
    if isinstance(value, BAT):
        if value.dtype is not DataType.BOOL:
            raise PlanError("predicate did not evaluate to a boolean")
        return value.tail.astype(bool)
    if isinstance(value, (bool, np.bool_)):
        return np.full(n, bool(value))
    raise PlanError(f"predicate evaluated to {type(value).__name__}")


def _broadcast(value: Any, n: int) -> BAT:
    if isinstance(value, BAT):
        return value
    return BAT.constant(value, n)


class ExpressionEvaluator:
    """Vectorized evaluation of AST expressions over a frame."""

    def __init__(self, frame: Frame):
        self.frame = frame
        self.n = frame.relation.nrows

    def eval(self, expr: ast.Expr) -> Any:
        """Returns a BAT (column result) or a python scalar."""
        method = getattr(self, f"_eval_{type(expr).__name__.lower()}", None)
        if method is None:
            raise PlanError(f"cannot evaluate expression {expr!r}")
        return method(expr)

    def mask(self, expr: ast.Expr) -> np.ndarray:
        return _as_mask(self.eval(expr), self.n)

    # -- node handlers ----------------------------------------------------------

    def _eval_literal(self, expr: ast.Literal) -> Any:
        return expr.value

    def _eval_columnref(self, expr: ast.ColumnRef) -> BAT:
        return self.frame.column(expr)

    def _eval_unaryop(self, expr: ast.UnaryOp) -> Any:
        value = self.eval(expr.operand)
        if expr.op == "NOT":
            mask = _as_mask(value, self.n)
            return BAT(DataType.BOOL, ~mask)
        if expr.op == "-":
            if isinstance(value, BAT):
                return kernels.neg(value)
            return -value
        return value

    def _eval_binaryop(self, expr: ast.BinaryOp) -> Any:
        op = expr.op
        if op in ("AND", "OR"):
            left = _as_mask(self.eval(expr.left), self.n)
            right = _as_mask(self.eval(expr.right), self.n)
            out = left & right if op == "AND" else left | right
            return BAT(DataType.BOOL, out)
        if op in ("LIKE", "NOT LIKE"):
            return self._eval_like(expr)
        left = self.eval(expr.left)
        right = self.eval(expr.right)
        if op in ("+", "-", "*", "/", "%"):
            if isinstance(left, BAT):
                return kernels.binop(op, left, right)
            if isinstance(right, BAT):
                return kernels.rbinop(op, left, right)
            if op == "/":
                return left / right
            if op == "%":
                return left % right
            return {"+": left + right, "-": left - right,
                    "*": left * right}[op]
        if op == "||":
            return self._concat(left, right)
        # comparisons
        if isinstance(left, BAT):
            mask = kernels.compare(op, left, right)
        elif isinstance(right, BAT):
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
            mask = kernels.compare(flipped, right, left)
        else:
            func = {"=": lambda a, b: a == b, "<>": lambda a, b: a != b,
                    "!=": lambda a, b: a != b, "<": lambda a, b: a < b,
                    "<=": lambda a, b: a <= b, ">": lambda a, b: a > b,
                    ">=": lambda a, b: a >= b}[op]
            return func(left, right)
        return BAT(DataType.BOOL, mask)

    def _concat(self, left: Any, right: Any) -> Any:
        if not isinstance(left, BAT) and not isinstance(right, BAT):
            return str(left) + str(right)
        left_bat = _broadcast(left, self.n).cast(DataType.STR)
        right_bat = _broadcast(right, self.n).cast(DataType.STR)
        values = np.array(
            [None if a is None or b is None else a + b
             for a, b in zip(left_bat.tail, right_bat.tail)], dtype=object)
        return BAT(DataType.STR, values)

    def _eval_like(self, expr: ast.BinaryOp) -> BAT:
        value = self.eval(expr.left)
        pattern = self.eval(expr.right)
        if isinstance(pattern, BAT):
            raise PlanError("LIKE pattern must be a constant")
        regex = _like_pattern(str(pattern))
        bat = _broadcast(value, self.n).cast(DataType.STR)
        mask = np.array([v is not None and bool(regex.match(v))
                         for v in bat.tail], dtype=bool)
        if expr.op == "NOT LIKE":
            mask = ~mask
        return BAT(DataType.BOOL, mask)

    def _eval_isnull(self, expr: ast.IsNull) -> BAT:
        value = self.eval(expr.operand)
        if isinstance(value, BAT):
            mask = value.is_nil()
        else:
            mask = np.full(self.n, value is None)
        if expr.negated:
            mask = ~mask
        return BAT(DataType.BOOL, mask)

    def _eval_between(self, expr: ast.Between) -> BAT:
        rewritten = ast.BinaryOp(
            "AND",
            ast.BinaryOp(">=", expr.operand, expr.low),
            ast.BinaryOp("<=", expr.operand, expr.high))
        mask = _as_mask(self.eval(rewritten), self.n)
        if expr.negated:
            mask = ~mask
        return BAT(DataType.BOOL, mask)

    def _eval_inlist(self, expr: ast.InList) -> BAT:
        mask = np.zeros(self.n, dtype=bool)
        operand = self.eval(expr.operand)
        for item in expr.items:
            value = self.eval(item)
            if isinstance(operand, BAT):
                mask |= kernels.compare("=", operand, value)
            else:
                mask |= np.full(self.n, operand == value)
        if expr.negated:
            mask = ~mask
        return BAT(DataType.BOOL, mask)

    def _eval_casewhen(self, expr: ast.CaseWhen) -> Any:
        conditions = [_as_mask(self.eval(c), self.n)
                      for c, _ in expr.branches]
        values = [self.eval(v) for _, v in expr.branches]
        otherwise = (self.eval(expr.otherwise)
                     if expr.otherwise is not None else None)
        # Pick a result type from the first columnar/non-null value.
        prototype = next((v for v in values + [otherwise]
                          if isinstance(v, BAT)), None)
        if prototype is not None:
            dtype = prototype.dtype
        else:
            from repro.bat.bat import infer_type
            scalars = [v for v in values + [otherwise] if v is not None]
            dtype = infer_type(scalars)
        result = (_broadcast(otherwise, self.n) if otherwise is not None
                  else BAT.constant(None, self.n, dtype))
        # Apply branches from last to first so the first match wins.
        for mask, value in reversed(list(zip(conditions, values))):
            value_bat = (_broadcast(value, self.n) if value is not None
                         else BAT.constant(None, self.n, dtype))
            result = kernels.ifthenelse(mask, value_bat, result)
        return result

    def _eval_functioncall(self, expr: ast.FunctionCall) -> Any:
        if expr.name in nodes.AGGREGATE_FUNCTIONS:
            raise PlanError(
                f"aggregate {expr.name} used outside of SELECT/HAVING "
                "with GROUP BY")
        func = SCALAR_FUNCTIONS.get(expr.name)
        if func is None:
            raise BindError(f"unknown function {expr.name}")
        args = [self.eval(a) for a in expr.args]
        return func(self, args)

    def _eval_star(self, expr: ast.Star) -> Any:
        raise PlanError("'*' is only valid in SELECT lists and COUNT(*)")


# -- physical planning ---------------------------------------------------------

@dataclass
class PhysicalInfo:
    """Physical annotations the planner derives for an optimized plan.

    All dicts are keyed by plan nodes; structurally identical subtrees
    collapse onto one entry (node equality is structural), which is exactly
    the sharing CSE needs.

    ``keys`` records *declared* key contracts: every r1/r* RMA requires its
    order schema to be a key (the paper's precondition), but the check runs
    only when ``RmaConfig.validate_keys`` is on — like MonetDB trusting
    declared constraints.  Consumers needing a *verified* key must check
    the relation (``OrderInfo.is_key``) at run time.
    """

    join_strategy: dict[nodes.JoinPlan, str] = field(default_factory=dict)
    ordering: dict[nodes.Plan, tuple[str, ...]] = field(default_factory=dict)
    keys: dict[nodes.Plan, tuple[str, ...]] = field(default_factory=dict)
    shared: dict[nodes.Plan, int] = field(default_factory=dict)


def plan_physical(plan: nodes.Plan, catalog: Catalog) -> PhysicalInfo:
    """Derive physical annotations (order metadata, join strategies, CSE)."""
    return _PhysicalPlanner(catalog).annotate(plan)


class _PhysicalPlanner:
    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self.info = PhysicalInfo()
        self._optimizer = Optimizer(catalog)  # for schema inference
        self._names: dict[nodes.Plan, Optional[set[tuple]]] = {}

    def annotate(self, plan: nodes.Plan) -> PhysicalInfo:
        self._order_of(plan)
        # Walk by reference, not structure: each *occurrence* of a node is
        # counted (that is what CSE sharing means), but an object reused in
        # several places — lazy pipelines share subplan objects — has its
        # subtree descended only once, keeping the walk linear even for
        # deeply diamond-shaped plans.
        visited: set[int] = set()
        stack = [plan]
        while stack:
            node = stack.pop()
            if isinstance(node, nodes.JoinPlan):
                self.info.join_strategy.setdefault(
                    node, self._choose_strategy(node))
            if isinstance(node, (nodes.Rma, nodes.FusedRma,
                                 nodes.SubqueryScan)):
                key = _cse_key(node)
                self.info.shared[key] = self.info.shared.get(key, 0) + 1
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.extend(node.children())
        self.info.shared = {k: c for k, c in self.info.shared.items()
                            if c > 1}
        return self.info

    # -- order/key metadata ---------------------------------------------------

    def _order_of(self, plan: nodes.Plan) -> tuple[str, ...]:
        cached = self.info.ordering.get(plan)
        if cached is not None:
            return cached
        ordering = self._compute_order(plan)
        self.info.ordering[plan] = ordering
        return ordering

    def _compute_order(self, plan: nodes.Plan) -> tuple[str, ...]:
        if isinstance(plan, (nodes.Scan, nodes.RelScan)):
            relation = self._leaf_relation(plan)
            if relation is None or not properties_enabled():
                return ()
            for name in relation.names:
                if relation.column(name).cached_prop("tsorted"):
                    return (name,)
            return ()
        if isinstance(plan, nodes.SubqueryScan):
            return self._order_of(plan.plan)
        if isinstance(plan, (nodes.Filter, nodes.Limit)):
            return self._order_of(plan.children()[0])
        if isinstance(plan, nodes.Prune):
            child = self._order_of(plan.child)
            kept = set(plan.names)
            prefix = []
            for name in child:
                if name not in kept:
                    break
                prefix.append(name)
            return tuple(prefix)
        if isinstance(plan, nodes.Sort):
            prefix = []
            for item in plan.items:
                if item.descending or not isinstance(item.expr,
                                                     ast.ColumnRef):
                    break
                prefix.append(item.expr.name)
            return tuple(prefix)
        if isinstance(plan, nodes.JoinPlan):
            # Both join paths emit left positions non-decreasing, so the
            # left input's order survives; the right side's does not.
            self._order_of(plan.right)
            return self._order_of(plan.left)
        if isinstance(plan, nodes.Project):
            child = self._order_of(plan.child)
            # Child orderings carry unqualified names, so a qualified
            # passthrough ref (b.x) is only a safe mapping when the child
            # has a single source — above a join, b.x may name the
            # *right* side's column while the ordering belongs to the left.
            qualified_ok = not _contains_join(plan.child)
            out_names = {}
            for index, item in enumerate(plan.items):
                if isinstance(item.expr, ast.ColumnRef) and (
                        item.expr.table is None or qualified_ok):
                    out = item.alias or nodes.default_output_name(
                        item.expr, index)
                    out_names.setdefault(item.expr.name, out)
            prefix = []
            for name in child:
                if name not in out_names:
                    break
                prefix.append(out_names[name])
            return tuple(prefix)
        if isinstance(plan, nodes.Rma):
            for child in plan.children():
                self._order_of(child)
            spec = spec_of(plan.op)
            x, _ = spec.shape_type
            if x == "r1" and spec.sort_class is SortClass.FULL:
                # FULL-sort operations physically order their result rows
                # by the order schema (the warm-cache seed in merge_result
                # records the same fact at run time).
                self.info.keys.setdefault(plan, tuple(plan.by[0]))
                return tuple(plan.by[0])
            if x in ("r1", "r*"):
                self.info.keys.setdefault(plan, tuple(plan.by[0]))
                # Storage order of the first input is preserved; keep the
                # prefix of its ordering that survives into the output.
                child = self._order_of(plan.inputs[0])
                visible = set(plan.by[0])
                if x == "r*":
                    visible |= set(plan.by[1])
                prefix = []
                for name in child:
                    if name not in visible:
                        break
                    prefix.append(name)
                return tuple(prefix)
            return ()
        if isinstance(plan, nodes.FusedRma):
            # Like the element-wise (r*) case collapsed over the chain:
            # the first leaf's storage order is preserved.
            for child in plan.children():
                self._order_of(child)
            self.info.keys.setdefault(plan, tuple(plan.bys[0]))
            child = self._order_of(plan.inputs[0])
            visible = {name for by in plan.bys for name in by}
            prefix = []
            for name in child:
                if name not in visible:
                    break
                prefix.append(name)
            return tuple(prefix)
        if isinstance(plan, nodes.Aggregate):
            self._order_of(plan.child)
            self.info.keys.setdefault(plan, tuple(plan.key_names))
            return ()
        for child in plan.children():
            self._order_of(child)
        return ()

    def _leaf_relation(self, plan: nodes.Plan) -> Relation | None:
        if isinstance(plan, nodes.RelScan):
            return plan.relation
        if isinstance(plan, nodes.Scan):
            try:
                return self.catalog.get(plan.table)
            except CatalogError:
                return None
        return None

    # -- join strategy --------------------------------------------------------

    def _output_names(self, plan: nodes.Plan) -> Optional[set[tuple]]:
        if plan not in self._names:
            self._names[plan] = self._optimizer.output_names(plan)
        return self._names[plan]

    def _choose_strategy(self, plan: nodes.JoinPlan) -> str:
        if plan.condition is None or plan.kind == "cross":
            return "hash"
        equi: list[tuple[str, str]] = []
        matches = ref_matches
        left_names = self._output_names(plan.left)
        right_names = self._output_names(plan.right)
        if left_names is None or right_names is None:
            return "hash"
        for conjunct in nodes.split_conjuncts(plan.condition):
            if not (isinstance(conjunct, ast.BinaryOp)
                    and conjunct.op == "="):
                continue
            if not (isinstance(conjunct.left, ast.ColumnRef)
                    and isinstance(conjunct.right, ast.ColumnRef)):
                return "hash"
            lref, rref = conjunct.left, conjunct.right
            if (matches(lref, left_names)
                    and matches(rref, right_names)):
                equi.append((lref.name, rref.name))
            elif (matches(rref, left_names)
                    and matches(lref, right_names)):
                equi.append((rref.name, lref.name))
            else:
                return "hash"
        if not equi:
            # No equality conjunct at all (pure theta join): the executor
            # runs cross + filter, so no merge strategy can apply.
            return "hash"
        # The runtime merge path requires same-dtype raw-comparable keys
        # (STR excluded); only predict merge when the leaf column dtypes
        # prove eligibility, so EXPLAIN never claims a strategy the
        # executor would reject.
        for lname, rname in equi:
            ldtype = self._side_key_dtype(plan.left, lname)
            rdtype = self._side_key_dtype(plan.right, rname)
            if (ldtype is None or ldtype is not rdtype
                    or ldtype not in rel_join.MERGE_TYPES):
                return "hash"
        if len(equi) == 1:
            lname, rname = equi[0]
            if (self._side_sorted_by(plan.left, lname)
                    and self._side_sorted_by(plan.right, rname)):
                return "merge"
            return "hash"
        # Composite keys: the executor probes the keys in conjunct order,
        # so both sides must be lexicographically sorted in exactly that
        # column order.  Derived ordering metadata rarely proves more than
        # a one-column prefix, so fall back to scanning the leaf columns
        # (forced, like the single-key sortedness probe: the O(n·k) scan
        # is worth it when it can save the factorize/argsort).
        lnames = tuple(l for l, _ in equi)
        rnames = tuple(r for _, r in equi)
        if (self._side_lex_sorted(plan.left, lnames)
                and self._side_lex_sorted(plan.right, rnames)):
            return "merge"
        return "hash"

    def _side_key_dtype(self, plan: nodes.Plan, name: str):
        # Walks the same order-preserving nodes as _probe_leaf so the
        # dtype gate never rejects a side the sortedness probes could
        # still prove (e.g. a Limit above a sorted scan in lazy plans).
        node = plan
        while isinstance(node, (nodes.Filter, nodes.Prune, nodes.Limit)):
            if isinstance(node, nodes.Prune) and name not in node.names:
                return None
            node = node.children()[0]
        relation = self._leaf_relation(node)
        if relation is None or name not in relation.schema:
            return None
        return relation.schema.dtype(name)

    def _side_sorted_by(self, plan: nodes.Plan, name: str) -> bool:
        ordering = self._order_of(plan)
        if ordering[:1] == (name,):
            return True
        # Fall back to the base scan's column: for join keys (only), the
        # O(n) sortedness check is worth forcing — it can save the argsort.
        relation = self._probe_leaf(plan, (name,))
        return relation is not None and relation.column(name).tsorted

    def _side_lex_sorted(self, plan: nodes.Plan,
                         names: tuple[str, ...]) -> bool:
        ordering = self._order_of(plan)
        if ordering[:len(names)] == names:
            return True
        relation = self._probe_leaf(plan, names)
        return (relation is not None
                and rel_join.relation_lex_sorted(relation, names))

    def _probe_leaf(self, plan: nodes.Plan,
                    names: tuple[str, ...]) -> Relation | None:
        """The base relation behind order-preserving nodes, if it still
        exposes all the given columns (sortedness of the base column
        survives Filter/Limit subsetting and Prune projection)."""
        if not properties_enabled():
            return None
        node = plan
        while isinstance(node, (nodes.Filter, nodes.Prune, nodes.Limit)):
            if isinstance(node, nodes.Prune) \
                    and any(name not in node.names for name in names):
                return None
            node = node.children()[0]
        relation = self._leaf_relation(node)
        if relation is None \
                or any(name not in relation.schema for name in names):
            return None
        return relation


def _contains_join(plan: nodes.Plan) -> bool:
    """Whether any JoinPlan occurs in the subtree (id-deduplicated walk,
    DAG-safe; descends into subqueries — their aliases rebind names but a
    join anywhere below still makes qualified-name mapping ambiguous)."""
    stack, seen = [plan], set()
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, nodes.JoinPlan):
            return True
        stack.extend(node.children())
    return False


def _cse_key(plan: nodes.Plan) -> nodes.Plan:
    """Normalize a shareable node for memoization (strip the top alias)."""
    if isinstance(plan, nodes.Rma):
        return nodes.Rma(plan.op, plan.inputs, plan.by, None, plan.scalar)
    if isinstance(plan, nodes.FusedRma):
        return nodes.FusedRma(plan.steps, plan.inputs, plan.bys, None)
    if isinstance(plan, nodes.SubqueryScan):
        return plan.plan
    return plan


# -- plan execution -----------------------------------------------------------------

@dataclass
class ExecStats:
    """Counters the tests and EXPLAIN ANALYZE-style tooling read."""

    cse_hits: int = 0
    cache_hits: int = 0
    fused_nodes: int = 0
    fusion_fallbacks: int = 0


class Executor:
    """Evaluates logical plans against a catalog.

    ``physical`` carries the planner's annotations (join strategies); when
    omitted every join uses the hash path.  ``cse`` toggles memoization of
    repeated RMA/subquery subplans within one statement (on by default; the
    plan-layer ablation benchmark turns it off for its baseline).
    ``result_cache`` is an optional *session-scoped*
    :class:`repro.plan.cache.PlanCache`: shareable subplan results found
    there skip execution entirely, and freshly computed ones are stored for
    later statements (stamped with catalog table versions, so catalog
    mutations invalidate exactly the affected entries).
    """

    def __init__(self, catalog: Catalog, config: RmaConfig | None = None,
                 physical: PhysicalInfo | None = None, cse: bool = True,
                 result_cache: "PlanCache | None" = None):
        self.catalog = catalog
        self.config = config or default_config()
        self.physical = physical or PhysicalInfo()
        self.cse = cse
        self.result_cache = result_cache
        self.stats = ExecStats()
        self._memo: dict[nodes.Plan, Relation] = {}
        # Guards the CSE memo and the stats counters: with the morsel
        # engine on, sibling subplans execute on pool workers.
        self._lock = threading.Lock()

    def run(self, plan: nodes.Plan) -> Frame:
        method = getattr(self, f"_run_{type(plan).__name__.lower()}")
        return method(plan)

    def _run_siblings(self, plans: "Sequence[nodes.Plan]") -> list[Frame]:
        """Evaluate independent subplan subtrees, concurrently when the
        morsel engine is on.

        Siblings sharing a CSE key (structurally identical up to alias)
        stay serial so the second occurrence hits the CSE memo instead of
        racing the first to compute the same subtree twice.  Shared
        subtrees *below* distinct siblings (the planner's CSE annotation
        knows them) are computed once up front, so the concurrent
        siblings find them in the memo rather than each recomputing the
        diamond.
        """
        if (len(plans) > 1 and self.config.parallel.active()
                and not in_worker()
                and len({_cse_key(p) for p in plans}) == len(plans)):
            self._prerun_shared(plans)
            return run_tasks([lambda p=p: self.run(p) for p in plans])
        return [self.run(p) for p in plans]

    def _prerun_shared(self, plans: "Sequence[nodes.Plan]") -> None:
        """Materialize CSE-shared subtrees that span several siblings."""
        if not self.cse or not self.physical.shared:
            return
        per_sibling: list[set] = []
        for plan in plans:
            keys = set()
            for node in nodes.walk_plan(plan):
                if isinstance(node, (nodes.Rma, nodes.FusedRma,
                                     nodes.SubqueryScan)):
                    key = _cse_key(node)
                    if key in self.physical.shared:
                        keys.add(key)
            per_sibling.append(keys)
        seen: set = set()
        spanning = []
        for i, keys in enumerate(per_sibling):
            for key in keys:
                if key not in seen and any(
                        key in other for other in per_sibling[i + 1:]):
                    spanning.append(key)
                seen.add(key)
        for key in spanning:
            if isinstance(key, (nodes.Rma, nodes.FusedRma)):
                # Normalized nodes are themselves runnable; running them
                # populates the memo under exactly this key.
                self.run(key)
            else:
                self._memoized_relation(
                    key, lambda k=key: self.run(k).to_plain_relation())

    def _sibling_relations(self, plans: "Sequence[nodes.Plan]") \
            -> list[Relation]:
        return [frame.to_plain_relation()
                for frame in self._run_siblings(plans)]

    def _bump(self, counter: str) -> None:
        with self._lock:
            setattr(self.stats, counter, getattr(self.stats, counter) + 1)

    def _memoized_relation(self, key: nodes.Plan, compute) -> Relation:
        """Per-statement CSE memo plus the session-scoped result cache."""
        if self.cse:
            with self._lock:
                relation = self._memo.get(key)
            if relation is not None:
                self._bump("cse_hits")
                return relation
        if self.result_cache is not None:
            relation = self.result_cache.get(key, self.catalog, self.config)
            if relation is not None:
                self._bump("cache_hits")
                if self.cse:
                    with self._lock:
                        self._memo[key] = relation
                return relation
        relation = compute()
        if self.cse:
            with self._lock:
                self._memo[key] = relation
        if self.result_cache is not None:
            self.result_cache.put(key, self.catalog, self.config, relation)
        return relation

    # -- leaves -------------------------------------------------------------------

    def _run_scan(self, plan: nodes.Scan) -> Frame:
        if plan.table == "_dual":
            relation = Relation.from_columns({"_one": [1]})
            return Frame.from_relation(relation, None)
        relation = self.catalog.get(plan.table)
        return Frame.from_relation(relation, plan.alias)

    def _run_relscan(self, plan: nodes.RelScan) -> Frame:
        return Frame.from_relation(plan.relation, plan.alias)

    def _run_subqueryscan(self, plan: nodes.SubqueryScan) -> Frame:
        relation = self._memoized_relation(
            plan.plan, lambda: self.run(plan.plan).to_plain_relation())
        return Frame.from_relation(relation, plan.alias)

    def _run_rma(self, plan: nodes.Rma) -> Frame:
        def compute() -> Relation:
            relations = self._sibling_relations(plan.inputs)
            if len(relations) == 1:
                return rma_operation(plan.op, relations[0],
                                     list(plan.by[0]),
                                     config=self.config,
                                     scalar=plan.scalar)
            return rma_operation(plan.op, relations[0],
                                 list(plan.by[0]), relations[1],
                                 list(plan.by[1]),
                                 config=self.config)

        relation = self._memoized_relation(_cse_key(plan), compute)
        return Frame.from_relation(relation, plan.alias)

    def _run_fusedrma(self, plan: nodes.FusedRma) -> Frame:
        relation = self._memoized_relation(
            _cse_key(plan), lambda: self._execute_fused(plan))
        return Frame.from_relation(relation, plan.alias)

    def _execute_fused(self, plan: nodes.FusedRma) -> Relation:
        relations = self._sibling_relations(plan.inputs)
        try:
            result = execute_fused(plan.steps, relations, plan.bys,
                                   self.config)
            self._bump("fused_nodes")
            return result
        except FusionFallback:
            self._bump("fusion_fallbacks")
            return self._replay_unfused(plan, relations)

    def _replay_unfused(self, plan: nodes.FusedRma,
                        relations: list[Relation]) -> Relation:
        """Run a fused chain step by step over the materialized leaves.

        This is exactly what executing the pre-fusion plan would do (the
        leaf subplans are already evaluated), so a runtime fallback is
        bit-identical to never having fused — including raised errors.
        """
        slots: list[tuple[Relation, tuple[str, ...]]] = list(
            zip(relations, plan.bys))
        for step in plan.steps:
            left, left_by = slots[step.left]
            if step.right is None:
                result = rma_operation(step.op, left, list(left_by),
                                       config=self.config,
                                       scalar=step.scalar)
                slots.append((result, left_by))
            else:
                right, right_by = slots[step.right]
                result = rma_operation(step.op, left, list(left_by),
                                       right, list(right_by),
                                       config=self.config)
                slots.append((result, left_by + right_by))
        return slots[-1][0]

    # -- unary nodes -----------------------------------------------------------------

    def _run_filter(self, plan: nodes.Filter) -> Frame:
        frame = self.run(plan.child)
        mask = ExpressionEvaluator(frame).mask(plan.predicate)
        positions = np.nonzero(mask)[0].astype(np.int64)
        return frame.select_positions(positions)

    def _run_prune(self, plan: nodes.Prune) -> Frame:
        frame = self.run(plan.child)
        keep = [b for b in frame.bindings if b.name in plan.names]
        if not keep or len(keep) == len(frame.bindings):
            return frame
        relation = Relation(
            frame.relation.schema.project([b.internal for b in keep]),
            [frame.relation.column(b.internal) for b in keep])
        return Frame(relation, keep)

    def _run_project(self, plan: nodes.Project) -> Frame:
        frame = self.run(plan.child)
        evaluator = ExpressionEvaluator(frame)
        names: list[str] = []
        columns: list[BAT] = []
        for index, item in enumerate(plan.items):
            if isinstance(item.expr, ast.Star):
                for binding in frame.star_bindings(item.expr.table):
                    names.append(binding.name)
                    columns.append(frame.relation.column(binding.internal))
                continue
            value = evaluator.eval(item.expr)
            names.append(item.alias
                         or nodes.default_output_name(item.expr, index))
            columns.append(_broadcast(value, frame.relation.nrows))
        bindings = []
        internals = []
        for name, column in zip(names, columns):
            internal = Frame._fresh(name)
            bindings.append(Binding(None, name, internal))
            internals.append(internal)
        schema = Schema(Attribute(i, c.dtype)
                        for i, c in zip(internals, columns))
        # Keep the child's columns as hidden bindings so ORDER BY above the
        # projection can still reference source columns.
        hidden = [Binding(b.alias, b.name, b.internal, hidden=True)
                  for b in frame.bindings]
        schema = schema.concat(frame.relation.schema)
        all_columns = columns + list(frame.relation.columns)
        return Frame(Relation(schema, all_columns), bindings + hidden)

    def _run_distinct(self, plan: nodes.Distinct) -> Frame:
        frame = self.run(plan.child)
        # DISTINCT applies to the visible output only; hidden (source)
        # columns are dropped — referencing them above DISTINCT is invalid.
        visible = frame.visible_bindings()
        relation = Relation(
            frame.relation.schema.project([b.internal for b in visible]),
            [frame.relation.column(b.internal) for b in visible])
        return Frame(rel_ops.distinct(relation), visible)

    def _run_sort(self, plan: nodes.Sort) -> Frame:
        frame = self.run(plan.child)
        evaluator = ExpressionEvaluator(frame)
        positions = np.arange(frame.relation.nrows, dtype=np.int64)
        for item in reversed(plan.items):
            value = evaluator.eval(item.expr)
            column = _broadcast(value, frame.relation.nrows)
            key = column.tail[positions]
            order = np.argsort(key, kind="stable")
            if item.descending:
                order = order[::-1]
            positions = positions[order]
        return frame.select_positions(positions)

    def _run_limit(self, plan: nodes.Limit) -> Frame:
        frame = self.run(plan.child)
        relation = rel_ops.limit(frame.relation, plan.count, plan.offset)
        return Frame(relation, frame.bindings)

    # -- aggregation --------------------------------------------------------------------

    def _run_aggregate(self, plan: nodes.Aggregate) -> Frame:
        frame = self.run(plan.child)
        evaluator = ExpressionEvaluator(frame)
        n = frame.relation.nrows

        data: dict[str, BAT] = {}
        key_bindings: list[tuple[str, ast.Expr]] = []
        for key_expr, key_name in zip(plan.keys, plan.key_names):
            data[key_name] = _broadcast(evaluator.eval(key_expr), n)
            key_bindings.append((key_name, key_expr))

        specs: list[rel_aggregate.AggregateSpec] = []
        distinct_specs: list[nodes.AggregateSpecNode] = []
        for spec in plan.aggregates:
            if spec.distinct:
                if spec.func != "count":
                    raise PlanError(
                        "DISTINCT is only supported for COUNT")
                distinct_specs.append(spec)
                continue
            if spec.argument is None:
                specs.append(rel_aggregate.AggregateSpec(
                    "count", "*", spec.out_name))
            else:
                arg_name = f"_arg_{spec.out_name}"
                data[arg_name] = _broadcast(evaluator.eval(spec.argument), n)
                specs.append(rel_aggregate.AggregateSpec(
                    spec.func, arg_name, spec.out_name))
        for spec in distinct_specs:
            arg_name = f"_arg_{spec.out_name}"
            data[arg_name] = _broadcast(evaluator.eval(spec.argument), n)

        work = Relation.from_columns(data) if data else frame.relation
        key_names = [name for name, _ in key_bindings]
        grouped = rel_aggregate.group_by(work, key_names, specs)

        if distinct_specs:
            grouped = self._attach_count_distinct(
                work, grouped, key_names, distinct_specs)

        bindings = []
        for name, expr in key_bindings:
            bindings.append(Binding(None, name, name))
            # Also expose the original column name so un-rewritten
            # references (e.g. qualified GROUP BY keys) still resolve.
            if isinstance(expr, ast.ColumnRef):
                bindings.append(Binding(expr.table, expr.name, name))
        for spec in plan.aggregates:
            bindings.append(Binding(None, spec.out_name, spec.out_name))
        return Frame(grouped, bindings)

    def _attach_count_distinct(self, work: Relation, grouped: Relation,
                               key_names: list[str],
                               specs: list[nodes.AggregateSpecNode]) \
            -> Relation:
        """COUNT(DISTINCT x): count unique (group, value) pairs per group."""
        if key_names:
            gids = rel_join.factorize(work.bats(key_names))
        else:
            gids = np.zeros(work.nrows, dtype=np.int64)
        uniques, inverse = np.unique(gids, return_inverse=True)
        ngroups = max(len(uniques), 1)
        for spec in specs:
            if work.nrows == 0:
                counts = np.zeros(ngroups, dtype=np.int64)
            else:
                values = work.column(f"_arg_{spec.out_name}")
                value_codes = rel_join.factorize([values])
                span = int(value_codes.max()) + 1
                pairs = inverse.astype(np.int64) * span + value_codes
                pair_gids = np.unique(pairs) // span
                counts = np.bincount(pair_gids, minlength=ngroups)
            if not key_names:
                column = BAT.from_values([int(counts[0])], DataType.INT)
            else:
                # grouped rows are in np.unique(gids) order, matching
                # counts' indexing.
                column = BAT(DataType.INT, counts.astype(np.int64))
            grouped = rel_ops.extend(grouped, spec.out_name, column)
        return grouped

    # -- joins ------------------------------------------------------------------------

    def _run_joinplan(self, plan: nodes.JoinPlan) -> Frame:
        left, right = self._run_siblings([plan.left, plan.right])
        if plan.kind == "cross" and plan.condition is None:
            relation = rel_ops.cross(left.relation, right.relation)
            return Frame(relation, left.bindings + right.bindings)
        equi, residual = self._split_join_condition(plan.condition, left,
                                                    right)
        if not equi:
            if plan.kind == "left":
                raise PlanError(
                    "LEFT JOIN requires at least one equality condition")
            frame = Frame(rel_ops.cross(left.relation, right.relation),
                          left.bindings + right.bindings)
            if plan.condition is not None:
                mask = ExpressionEvaluator(frame).mask(plan.condition)
                frame = frame.select_positions(
                    np.nonzero(mask)[0].astype(np.int64))
            return frame
        left_keys = [ExpressionEvaluator(left).eval(e) for e, _ in equi]
        right_keys = [ExpressionEvaluator(right).eval(e) for _, e in equi]
        left_keys = [_broadcast(k, left.relation.nrows) for k in left_keys]
        right_keys = [_broadcast(k, right.relation.nrows)
                      for k in right_keys]
        how = plan.kind if plan.kind != "cross" else "inner"
        strategy = self.physical.join_strategy.get(plan, "auto")
        if strategy == "merge":
            lpos, rpos = rel_join.merge_join_positions(left_keys,
                                                       right_keys, how=how)
        else:
            lpos, rpos = rel_join.join_positions(left_keys, right_keys,
                                                 how=how)
        left_frame = left.select_positions(lpos)
        if plan.kind == "left":
            safe = np.where(rpos < 0, 0, rpos)
            right_cols = []
            for col in right.relation.columns:
                fetched = col.fetch(safe)
                nil = BAT.constant(None, len(rpos), fetched.dtype) \
                    if fetched.dtype is not DataType.BOOL else fetched
                tail = np.where(rpos < 0, nil.tail, fetched.tail)
                if fetched.dtype is DataType.STR:
                    tail = tail.astype(object)
                right_cols.append(
                    BAT(fetched.dtype,
                        tail.astype(fetched.dtype.numpy_dtype)))
            right_rel = Relation(right.relation.schema, right_cols)
        else:
            right_rel = Relation(
                right.relation.schema,
                [col.fetch(rpos) for col in right.relation.columns])
        combined = Relation(
            left_frame.relation.schema.concat(right_rel.schema),
            list(left_frame.relation.columns) + list(right_rel.columns))
        frame = Frame(combined, left.bindings + right.bindings)
        if residual:
            predicate = nodes.conjoin(residual)
            mask = ExpressionEvaluator(frame).mask(predicate)
            frame = frame.select_positions(
                np.nonzero(mask)[0].astype(np.int64))
        return frame

    def _split_join_condition(self, condition: Optional[ast.Expr],
                              left: Frame, right: Frame):
        """Separate equi-join conjuncts (left expr, right expr) from the
        residual predicate."""
        if condition is None:
            return [], []
        equi: list[tuple[ast.Expr, ast.Expr]] = []
        residual: list[ast.Expr] = []
        for conjunct in nodes.split_conjuncts(condition):
            if (isinstance(conjunct, ast.BinaryOp)
                    and conjunct.op == "="):
                sides = self._classify_sides(conjunct, left, right)
                if sides is not None:
                    equi.append(sides)
                    continue
            residual.append(conjunct)
        return equi, residual

    def _classify_sides(self, eq: ast.BinaryOp, left: Frame,
                        right: Frame):
        def side_of(expr: ast.Expr) -> str | None:
            refs = nodes.column_refs(expr)
            if not refs:
                return None
            sides = set()
            for ref in refs:
                if self._resolvable(left, ref):
                    sides.add("left")
                elif self._resolvable(right, ref):
                    sides.add("right")
                else:
                    return "unknown"
            if len(sides) == 1:
                return sides.pop()
            return "both"

        left_side = side_of(eq.left)
        right_side = side_of(eq.right)
        if left_side == "left" and right_side == "right":
            return eq.left, eq.right
        if left_side == "right" and right_side == "left":
            return eq.right, eq.left
        return None

    @staticmethod
    def _resolvable(frame: Frame, ref: ast.ColumnRef) -> bool:
        try:
            frame.resolve(ref)
            return True
        except BindError:
            return False
