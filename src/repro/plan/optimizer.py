"""Rule-based logical optimizer over the shared plan IR.

Three rewrites, mirroring what MonetDB's pipeline gives the paper's mixed
workloads for free (and what R lacks, §8.6):

1. **Predicate pushdown** — WHERE conjuncts move below joins to the deepest
   input that can resolve all their columns;
2. **Cross-to-inner conversion and greedy join ordering** — comma-style
   FROM lists plus equality predicates become hash joins, ordered smallest
   estimated input first;
3. **Projection pruning** — scans keep only the columns the rest of the
   plan references;
4. **Element-wise fusion** — chains of relative-class RMA nodes
   (``add``/``sub``/``emu`` and the scalar variants) whose order schemas
   are compatible collapse into one :class:`~repro.plan.nodes.FusedRma`
   node, executed as a single prepare/align/kernel-program/merge pass with
   every intermediate relation elided.  A chain edge fuses only when the
   parent orders its input by exactly the order part the child produces
   and the child subplan is not shared elsewhere in the statement (shared
   subtrees stay separate nodes so CSE keeps executing them once).

Plans containing RMA operations with data-dependent output schemas
(``tra``/``usv``/``opd``) are left untouched below the RMA node — their
column names are only known at run time.

Common-subexpression elimination and join-strategy choice are *physical*
concerns and live in :mod:`repro.plan.physical`; this module only performs
semantics-preserving logical rewrites.
"""

from __future__ import annotations

from typing import Optional

from repro.bat.catalog import Catalog
from repro.errors import CatalogError
from repro.linalg.kernels import KernelStep
from repro.opspec import FUSABLE_OPS, OPS, spec_of
from repro.plan import nodes
from repro.plan.nodes import with_children
from repro.sql import ast

_DYNAMIC_SCHEMA_OPS = {name for name, spec in OPS.items()
                       if "r1" == spec.shape_type[1]
                       or "r2" == spec.shape_type[1]}


def ref_matches(ref: ast.ColumnRef, names: set[tuple]) -> bool:
    """Whether a (possibly qualified) column reference resolves in a set of
    (alias, name) pairs."""
    for alias, name in names:
        if name != ref.name:
            continue
        if ref.table is None or ref.table == alias:
            return True
    return False


def optimize(plan: nodes.Plan, catalog: Catalog,
             keep_all: bool = False, fuse: bool = True) -> nodes.Plan:
    """Apply all rewrite rules bottom-up.

    ``keep_all`` keeps the *root's* full output: SQL plans always end in a
    Project describing their visible output (so nothing beyond its
    references is needed from below), but lazy pipelines may end in any
    node — there every column the root produces is part of the result.
    Pruning below interior projections still fires either way; only when
    the root's output schema cannot be derived (dynamic-schema RMA) is
    pruning skipped entirely.

    ``fuse`` gates the element-wise fusion rewrite
    (``RmaConfig.fuse_elementwise`` plumbs it through from both front
    ends; the fusion ablation benchmark turns it off).
    """
    opt = Optimizer(catalog)
    plan = opt.rewrite(plan)
    if keep_all:
        names = opt.output_names(plan)
        needed = None if names is None else {n for _, n in names}
    else:
        needed = set()
    plan = opt.prune_columns(plan, needed)
    if fuse:
        plan = opt.fuse_elementwise(plan)
    return plan


class Optimizer:
    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    # -- schema inference -----------------------------------------------------

    def output_names(self, plan: nodes.Plan) -> Optional[set[tuple]]:
        """(alias, name) pairs a plan produces, or None when unknown."""
        if isinstance(plan, nodes.Scan):
            try:
                relation = self.catalog.get(plan.table)
            except CatalogError:
                return None
            return {(plan.alias, n) for n in relation.names}
        if isinstance(plan, nodes.RelScan):
            return {(plan.alias, n) for n in plan.relation.names}
        if isinstance(plan, nodes.SubqueryScan):
            inner = self.visible_names(plan.plan)
            if inner is None:
                return None
            return {(plan.alias, n) for _, n in inner}
        if isinstance(plan, nodes.Rma):
            return self.rma_output_names(plan)
        if isinstance(plan, nodes.FusedRma):
            return self.fused_output_names(plan)
        if isinstance(plan, nodes.JoinPlan):
            left = self.output_names(plan.left)
            right = self.output_names(plan.right)
            if left is None or right is None:
                return None
            return left | right
        if isinstance(plan, (nodes.Filter, nodes.Distinct, nodes.Sort,
                             nodes.Limit, nodes.Prune)):
            return self.output_names(plan.children()[0])
        if isinstance(plan, nodes.Project):
            names = set()
            for index, item in enumerate(plan.items):
                if isinstance(item.expr, ast.Star):
                    inner = self.output_names(plan.child)
                    if inner is None:
                        return None
                    if item.expr.table is None:
                        names |= {(None, n) for _, n in inner}
                    else:
                        names |= {(None, n) for a, n in inner
                                  if a == item.expr.table}
                    continue
                names.add((None, item.alias
                           or nodes.default_output_name(item.expr, index)))
            return names
        if isinstance(plan, nodes.Aggregate):
            names = {(None, k) for k in plan.key_names}
            for key in plan.keys:
                if isinstance(key, ast.ColumnRef):
                    names.add((key.table, key.name))
            names |= {(None, s.out_name) for s in plan.aggregates}
            return names
        return None

    def visible_names(self, plan: nodes.Plan) -> Optional[set[tuple]]:
        return self.output_names(plan)

    def fused_output_names(self, plan: nodes.FusedRma) \
            -> Optional[set[tuple]]:
        """Schema of a fused chain: all order parts plus the first leaf's
        application schema (shape type (r*, c*) collapsed over the chain)."""
        first = self.output_names(plan.inputs[0])
        if first is None:
            return None
        out = {(plan.alias, n) for by in plan.bys for n in by}
        first_by = set(plan.bys[0])
        out |= {(plan.alias, n) for _, n in first if n not in first_by}
        return out

    def rma_output_names(self, plan: nodes.Rma) -> Optional[set[tuple]]:
        spec = spec_of(plan.op)
        if spec.shape_type[1] in ("r1", "r2"):
            return None  # data-dependent column names (column cast)
        input_names = []
        for child in plan.inputs:
            names = self.output_names(child)
            if names is None:
                return None
            input_names.append({n for _, n in names})
        out: set[tuple] = set()
        x, y = spec.shape_type
        if x == "r1":
            out |= {(plan.alias, n) for n in plan.by[0]}
        elif x == "r*":
            out |= {(plan.alias, n) for n in plan.by[0] + plan.by[1]}
        elif x in ("c1", "1"):
            out.add((plan.alias, "C"))
        if y in ("c1", "c*"):
            out |= {(plan.alias, n) for n in input_names[0]
                    if n not in plan.by[0]}
        elif y == "c2":
            out |= {(plan.alias, n) for n in input_names[1]
                    if n not in plan.by[1]}
        elif y == "1":
            out.add((plan.alias, plan.op))
        return out

    # -- rule 1+2: pushdown and join rewriting -----------------------------------

    def rewrite(self, plan: nodes.Plan) -> nodes.Plan:
        if isinstance(plan, nodes.Filter):
            child = self.rewrite(plan.child)
            conjuncts = nodes.split_conjuncts(plan.predicate)
            child, remaining = self.push_conjuncts(child, conjuncts)
            predicate = nodes.conjoin(remaining)
            if predicate is None:
                return child
            return nodes.Filter(child, predicate)
        if isinstance(plan, nodes.JoinPlan):
            left = self.rewrite(plan.left)
            right = self.rewrite(plan.right)
            return nodes.JoinPlan(plan.kind, left, right, plan.condition)
        children = plan.children()
        if not children:
            return plan
        rewritten = tuple(self.rewrite(c) for c in children)
        return with_children(plan, rewritten)

    def push_conjuncts(self, plan: nodes.Plan,
                       conjuncts: list[ast.Expr]) \
            -> tuple[nodes.Plan, list[ast.Expr]]:
        """Push filter conjuncts as deep as possible; returns the rewritten
        plan and the conjuncts that could not be pushed."""
        if not conjuncts:
            return plan, []
        if isinstance(plan, nodes.JoinPlan) and plan.kind != "left":
            left_names = self.output_names(plan.left)
            right_names = self.output_names(plan.right)
            push_left: list[ast.Expr] = []
            push_right: list[ast.Expr] = []
            join_conds: list[ast.Expr] = []
            keep: list[ast.Expr] = []
            for conjunct in conjuncts:
                target = self._conjunct_target(conjunct, left_names,
                                               right_names)
                if target == "left":
                    push_left.append(conjunct)
                elif target == "right":
                    push_right.append(conjunct)
                elif target == "both" and self._is_equality(conjunct):
                    join_conds.append(conjunct)
                else:
                    keep.append(conjunct)
            left, rest_l = self.push_conjuncts(plan.left, push_left)
            right, rest_r = self.push_conjuncts(plan.right, push_right)
            keep = rest_l + rest_r + keep
            condition = plan.condition
            kind = plan.kind
            if join_conds:
                new_condition = nodes.conjoin(
                    ([condition] if condition is not None else [])
                    + join_conds)
                condition = new_condition
                if kind == "cross":
                    kind = "inner"
            return nodes.JoinPlan(kind, left, right, condition), keep
        if isinstance(plan, nodes.Filter):
            child, rest = self.push_conjuncts(
                plan.child, conjuncts
                + nodes.split_conjuncts(plan.predicate))
            predicate = nodes.conjoin(rest)
            if predicate is None:
                return child, []
            return nodes.Filter(child, predicate), []
        if isinstance(plan, (nodes.Scan, nodes.RelScan, nodes.SubqueryScan,
                             nodes.Rma)):
            names = self.output_names(plan)
            applicable = []
            rest = []
            for conjunct in conjuncts:
                if names is not None and self._covers(conjunct, names):
                    applicable.append(conjunct)
                else:
                    rest.append(conjunct)
            predicate = nodes.conjoin(applicable)
            if predicate is not None:
                return nodes.Filter(plan, predicate), rest
            return plan, rest
        return plan, conjuncts

    def _conjunct_target(self, conjunct: ast.Expr,
                         left_names: Optional[set[tuple]],
                         right_names: Optional[set[tuple]]) -> str:
        if left_names is None or right_names is None:
            return "unknown"
        refs = nodes.column_refs(conjunct)
        if not refs:
            return "unknown"
        sides = set()
        for ref in refs:
            in_left = self._matches(ref, left_names)
            in_right = self._matches(ref, right_names)
            if in_left and in_right:
                return "ambiguous"
            if in_left:
                sides.add("left")
            elif in_right:
                sides.add("right")
            else:
                return "unknown"
        if sides == {"left"}:
            return "left"
        if sides == {"right"}:
            return "right"
        return "both"

    @staticmethod
    def _matches(ref: ast.ColumnRef, names: set[tuple]) -> bool:
        return ref_matches(ref, names)

    def _covers(self, conjunct: ast.Expr, names: set[tuple]) -> bool:
        return all(self._matches(ref, names)
                   for ref in nodes.column_refs(conjunct))

    @staticmethod
    def _is_equality(conjunct: ast.Expr) -> bool:
        return isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="

    # -- rule 3: projection pruning ------------------------------------------------

    def prune_columns(self, plan: nodes.Plan,
                      needed: Optional[set[str]] = None) -> nodes.Plan:
        """Insert Prune nodes above scans keeping only referenced columns.

        ``needed`` is a set of unqualified column names required above;
        ``None`` means "everything" (e.g. below a SELECT * or an RMA input,
        whose application schema is the complement of the order schema).
        """
        if isinstance(plan, nodes.Project):
            names: Optional[set[str]] = set()
            for item in plan.items:
                if isinstance(item.expr, ast.Star):
                    names = None
                    break
                names.update(r.name for r in nodes.column_refs(item.expr))
            if names is not None and needed is not None:
                # Nodes above the projection (ORDER BY, HAVING) may still
                # reference source columns through hidden bindings.
                names |= needed
            elif needed is None:
                names = None
            return nodes.Project(
                self.prune_columns(plan.child, names), plan.items)
        if isinstance(plan, nodes.Filter):
            if needed is not None:
                needed = needed | {r.name for r in
                                   nodes.column_refs(plan.predicate)}
            return nodes.Filter(self.prune_columns(plan.child, needed),
                                plan.predicate)
        if isinstance(plan, nodes.JoinPlan):
            child_needed = None
            if needed is not None:
                child_needed = set(needed)
                if plan.condition is not None:
                    child_needed |= {r.name for r in
                                     nodes.column_refs(plan.condition)}
            return nodes.JoinPlan(
                plan.kind,
                self.prune_columns(plan.left, child_needed),
                self.prune_columns(plan.right, child_needed),
                plan.condition)
        if isinstance(plan, nodes.Aggregate):
            child_needed: Optional[set[str]] = set()
            for key in plan.keys:
                child_needed.update(r.name
                                    for r in nodes.column_refs(key))
            for spec in plan.aggregates:
                if spec.argument is not None:
                    child_needed.update(
                        r.name for r in nodes.column_refs(spec.argument))
            return nodes.Aggregate(
                self.prune_columns(plan.child, child_needed),
                plan.keys, plan.key_names, plan.aggregates)
        if isinstance(plan, (nodes.Scan, nodes.RelScan)):
            if needed is None:
                return plan
            return nodes.Prune(plan, tuple(sorted(needed)))
        if isinstance(plan, (nodes.Rma, nodes.FusedRma)):
            # RMA consumes its whole input (order + application schema).
            return nodes.with_children(
                plan,
                tuple(self.prune_columns(c, None) for c in plan.children()))
        if isinstance(plan, (nodes.Sort,)):
            if needed is not None:
                needed = needed | {
                    r.name for item in plan.items
                    for r in nodes.column_refs(item.expr)}
            return nodes.Sort(self.prune_columns(plan.child, needed),
                              plan.items)
        children = plan.children()
        if not children:
            return plan
        rewritten = tuple(self.prune_columns(c, needed) for c in children)
        return with_children(plan, rewritten)

    # -- rule 4: element-wise fusion ---------------------------------------------

    def fuse_elementwise(self, plan: nodes.Plan) -> nodes.Plan:
        """Collapse compatible element-wise RMA chains into FusedRma nodes."""
        counts = _reference_counts(plan)
        memo: dict[int, nodes.Plan] = {}
        return self._fuse(plan, counts, memo)

    def _fuse(self, plan: nodes.Plan, counts: dict[nodes.Plan, int],
              memo: dict[int, nodes.Plan]) -> nodes.Plan:
        cached = memo.get(id(plan))
        if cached is not None:
            return cached
        result = self._fuse_uncached(plan, counts, memo)
        memo[id(plan)] = result
        return result

    def _fuse_uncached(self, plan: nodes.Plan,
                       counts: dict[nodes.Plan, int],
                       memo: dict[int, nodes.Plan]) -> nodes.Plan:
        if isinstance(plan, nodes.Rma) and plan.op in FUSABLE_OPS:
            fused = self._try_fuse(plan, counts, memo)
            if fused is not None:
                return fused
        children = plan.children()
        if not children:
            return plan
        rewritten = tuple(self._fuse(c, counts, memo) for c in children)
        if all(new is old for new, old in zip(rewritten, children)):
            return plan
        return with_children(plan, rewritten)

    def _try_fuse(self, root: nodes.Rma, counts: dict[nodes.Plan, int],
                  memo: dict[int, nodes.Plan]) -> Optional[nodes.FusedRma]:
        """Collect the maximal fusable chain rooted at ``root``.

        A child edge joins the chain only when (a) the child is a fusable
        Rma with its scalar present where required, (b) the parent orders
        that input by exactly the order part the child produces (its
        concatenated order schemas — a permuted or partial order schema
        changes alignment semantics and is a fusion boundary), and (c) the
        child subplan is not referenced outside the chain: a child with
        more references than the chain root is shared with some *other*
        consumer (CSE executes it once; fusing it away would recompute it
        per chain), while a count equal to the root's just means the whole
        chain is duplicated — fusing every copy yields structurally equal
        ``FusedRma`` nodes that CSE still executes once.
        Returns None when fewer than two operations would fuse.
        """
        leaves: list[tuple[nodes.Plan, tuple[str, ...]]] = []
        steps: list[tuple[str, tuple, Optional[tuple],
                          Optional[float]]] = []
        root_count = counts.get(root, 1)

        def full_schema(node: nodes.Rma) -> tuple[str, ...]:
            if len(node.inputs) == 2:
                return node.by[0] + node.by[1]
            return node.by[0]

        def fusable(node: nodes.Plan,
                    expected_by: Optional[tuple[str, ...]]) -> bool:
            if not (isinstance(node, nodes.Rma)
                    and node.op in FUSABLE_OPS):
                return False
            if spec_of(node.op).scalar and node.scalar is None:
                return False
            if expected_by is None:  # the chain root
                return True
            return (counts.get(node, 0) <= root_count
                    and full_schema(node) == expected_by)

        def emit(node: nodes.Plan,
                 expected_by: Optional[tuple[str, ...]]) -> tuple:
            if not fusable(node, expected_by):
                leaves.append((node, expected_by))
                return ("leaf", len(leaves) - 1)
            assert isinstance(node, nodes.Rma)
            left_ref = emit(node.inputs[0], node.by[0])
            right_ref = None
            if len(node.inputs) == 2:
                right_ref = emit(node.inputs[1], node.by[1])
            steps.append((node.op, left_ref, right_ref, node.scalar))
            return ("step", len(steps) - 1)

        emit(root, None)
        if len(steps) < 2:
            return None
        n_leaves = len(leaves)

        def resolve(ref: tuple) -> int:
            kind, index = ref
            return index if kind == "leaf" else n_leaves + index

        kernel_steps = tuple(
            KernelStep(op, resolve(left),
                       resolve(right) if right is not None else None,
                       scalar)
            for op, left, right, scalar in steps)
        inputs = tuple(self._fuse(leaf, counts, memo) for leaf, _ in leaves)
        bys = tuple(by for _, by in leaves)
        return nodes.FusedRma(kernel_steps, inputs, bys, root.alias)


def _reference_counts(plan: nodes.Plan) -> dict[nodes.Plan, int]:
    """How often each (structurally equal) subplan is referenced.

    Each *occurrence* of a node is counted — that is what CSE sharing means
    — but an object reused in several places has its subtree descended only
    once, keeping the walk linear for diamond-shaped lazy plans (the same
    trick :class:`repro.plan.physical._PhysicalPlanner` uses)."""
    counts: dict[nodes.Plan, int] = {}
    seen: set[int] = set()
    stack = [plan]
    while stack:
        node = stack.pop()
        counts[node] = counts.get(node, 0) + 1
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.extend(node.children())
    return counts
