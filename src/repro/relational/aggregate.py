"""Grouped aggregation ϑ.

Groups are identified by factorizing the key columns into dense codes;
aggregates are computed with segmented numpy reductions (``bincount`` and
friends), never per-row python loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.bat.bat import BAT, DataType
from repro.errors import PlanError, RelationError
from repro.relational.joins import factorize
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema

SUPPORTED_AGGREGATES = ("count", "sum", "avg", "min", "max", "var", "std")


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate to compute: ``func(argument) AS alias``.

    ``argument`` is an attribute name, or ``"*"`` for ``count(*)``.
    """

    func: str
    argument: str
    alias: str

    def __post_init__(self):
        if self.func not in SUPPORTED_AGGREGATES:
            raise PlanError(f"unsupported aggregate {self.func!r}")
        if self.argument == "*" and self.func != "count":
            raise PlanError(f"{self.func}(*) is not valid")


def _group_codes(relation: Relation,
                 keys: Sequence[str]) -> tuple[np.ndarray, np.ndarray, int]:
    """(group id per row, first-row position per group, #groups)."""
    if not keys:
        n = relation.nrows
        return np.zeros(n, dtype=np.int64), np.zeros(1, dtype=np.int64), 1
    codes = factorize(relation.bats(keys))
    uniques, first, inverse = np.unique(codes, return_index=True,
                                        return_inverse=True)
    return inverse.astype(np.int64), first.astype(np.int64), len(uniques)


def _segmented(func: str, values: np.ndarray, gids: np.ndarray,
               ngroups: int) -> np.ndarray:
    """Segmented reduction of ``values`` by group id."""
    if func == "sum":
        return np.bincount(gids, weights=values, minlength=ngroups)
    if func == "count":
        return np.bincount(gids, minlength=ngroups).astype(np.float64)
    if func == "avg":
        sums = np.bincount(gids, weights=values, minlength=ngroups)
        counts = np.bincount(gids, minlength=ngroups)
        return sums / counts
    if func in ("min", "max"):
        fill = np.inf if func == "min" else -np.inf
        out = np.full(ngroups, fill, dtype=np.float64)
        ufunc = np.minimum if func == "min" else np.maximum
        ufunc.at(out, gids, values)
        return out
    if func in ("var", "std"):
        counts = np.bincount(gids, minlength=ngroups)
        sums = np.bincount(gids, weights=values, minlength=ngroups)
        sq = np.bincount(gids, weights=values * values, minlength=ngroups)
        means = sums / counts
        denominator = np.maximum(counts - 1, 1)
        var = (sq - counts * means * means) / denominator
        var = np.maximum(var, 0.0)
        return np.sqrt(var) if func == "std" else var
    raise PlanError(f"unsupported aggregate {func!r}")  # pragma: no cover


def group_by(relation: Relation, keys: Sequence[str],
             aggregates: Sequence[AggregateSpec]) -> Relation:
    """Grouped aggregation; with no keys, a single global group.

    Output schema: the key attributes (first-row representatives) followed by
    one attribute per aggregate.
    """
    gids, first, ngroups = _group_codes(relation, keys)
    if relation.nrows == 0 and not keys:
        # Global aggregate over empty input: count() is 0, others are null.
        columns, attrs = [], []
        for spec in aggregates:
            if spec.func == "count":
                columns.append(BAT.from_values([0], DataType.INT))
            else:
                columns.append(BAT.from_values([None], DataType.DBL))
            attrs.append(Attribute(spec.alias, columns[-1].dtype))
        return Relation(Schema(attrs), columns)

    attrs: list[Attribute] = []
    columns: list[BAT] = []
    for name in keys:
        source = relation.column(name)
        attrs.append(Attribute(name, source.dtype))
        columns.append(source.fetch(first))

    for spec in aggregates:
        if spec.argument == "*":
            values = np.ones(relation.nrows, dtype=np.float64)
            source_dtype = DataType.INT
        else:
            source = relation.column(spec.argument)
            if not source.dtype.is_numeric and spec.func not in ("count",
                                                                 "min",
                                                                 "max"):
                raise RelationError(
                    f"aggregate {spec.func} over non-numeric attribute "
                    f"{spec.argument!r}")
            if source.dtype.is_numeric:
                values = source.as_float()
                source_dtype = source.dtype
            elif spec.func == "count":
                values = (~source.is_nil()).astype(np.float64)
                source_dtype = DataType.INT
            else:
                # min/max over non-numeric: sort-based fallback.
                columns.append(_minmax_generic(source, gids, ngroups,
                                               spec.func))
                attrs.append(Attribute(spec.alias, source.dtype))
                continue
        func = spec.func
        if spec.func == "count" and spec.argument != "*":
            # COUNT(x) counts non-null values: sum a 0/1 mask.
            values = (~relation.column(spec.argument).is_nil()
                      ).astype(np.float64)
            func = "sum"
        out = _segmented(func, values, gids, ngroups)
        if spec.func == "count":
            bat = BAT(DataType.INT, out.astype(np.int64))
        elif spec.func in ("sum", "min", "max") \
                and source_dtype is DataType.INT:
            bat = BAT(DataType.INT, out.astype(np.int64))
        else:
            bat = BAT(DataType.DBL, out.astype(np.float64))
        attrs.append(Attribute(spec.alias, bat.dtype))
        columns.append(bat)

    return Relation(Schema(attrs), columns)


def _minmax_generic(source: BAT, gids: np.ndarray, ngroups: int,
                    func: str) -> BAT:
    """min/max for non-numeric columns via a value-ordered scan."""
    value_order = np.argsort(source.tail, kind="stable")
    sorted_gids = gids[value_order]
    out_positions = np.empty(ngroups, dtype=np.int64)
    if func == "min":
        seen = np.full(ngroups, -1, dtype=np.int64)
        for pos, gid in zip(value_order, sorted_gids):
            if seen[gid] < 0:
                seen[gid] = pos
        out_positions = seen
    else:
        for pos, gid in zip(value_order, sorted_gids):
            out_positions[gid] = pos
    return source.fetch(out_positions)
