"""Relational algebra over BATs.

Relations are schemas plus aligned BATs; the operators here (selection,
projection, join, aggregation, pivot, ...) are the relational half of the
mixed workloads.  The relational *matrix* operations live in
:mod:`repro.core`.
"""

from repro.relational.schema import Attribute, Schema
from repro.relational.relation import Relation
from repro.relational.ops import (
    cross,
    distinct,
    extend,
    limit,
    project,
    rename,
    select_mask,
    sort,
    union_all,
)
from repro.relational.joins import hash_join, join
from repro.relational.aggregate import AggregateSpec, group_by
from repro.relational.pivot import pivot
from repro.relational.csv_io import read_csv, write_csv

__all__ = [
    "Attribute",
    "Schema",
    "Relation",
    "select_mask",
    "project",
    "extend",
    "rename",
    "cross",
    "union_all",
    "distinct",
    "limit",
    "sort",
    "hash_join",
    "join",
    "group_by",
    "AggregateSpec",
    "pivot",
    "read_csv",
    "write_csv",
]
