"""Core relational algebra operators (selection, projection, ...).

All operators are pure functions from relations to relations, implemented as
BAT-level candidate propagation and fetchjoins — the MonetDB execution style.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bat.bat import BAT
from repro.bat.kernels import Candidates, mask_to_candidates
from repro.bat.sorting import order_by
from repro.errors import RelationError, SchemaError
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema


def select_mask(relation: Relation, mask: np.ndarray) -> Relation:
    """Selection σ by a boolean mask over the storage order."""
    if len(mask) != relation.nrows:
        raise RelationError(
            f"selection mask has {len(mask)} entries for "
            f"{relation.nrows} rows")
    candidates = mask_to_candidates(mask)
    return select_candidates(relation, candidates)


def select_candidates(relation: Relation,
                      candidates: Candidates) -> Relation:
    """Selection by an explicit candidate list (sorted positions)."""
    return Relation(relation.schema,
                    [col.fetch(candidates) for col in relation.columns])


def project(relation: Relation, names: Sequence[str]) -> Relation:
    """Projection π preserving the given attribute order.

    Like SQL (and like the paper's use of π), duplicates are *not*
    eliminated; use :func:`distinct` for set semantics.
    """
    schema = relation.schema.project(names)
    return Relation(schema, relation.bats(names))


def extend(relation: Relation, name: str, column: BAT) -> Relation:
    """Add a computed column (the workhorse behind SELECT expressions)."""
    if name in relation.schema:
        raise SchemaError(f"attribute {name!r} already exists")
    if relation.nrows != len(column) and len(relation.columns) > 0:
        raise RelationError(
            f"new column {name!r} has {len(column)} rows, relation has "
            f"{relation.nrows}")
    schema = relation.schema.concat(Schema([Attribute(name, column.dtype)]))
    return Relation(schema, list(relation.columns) + [column])


def rename(relation: Relation, mapping: dict[str, str]) -> Relation:
    """Rename ρ."""
    return Relation(relation.schema.rename(mapping), relation.columns)


def cross(left: Relation, right: Relation) -> Relation:
    """Cross product ×; attribute names must not clash."""
    overlap = set(left.names) & set(right.names)
    if overlap:
        raise SchemaError(
            f"cross product with overlapping attributes {sorted(overlap)}; "
            "rename first")
    nl, nr = left.nrows, right.nrows
    lpos = np.repeat(np.arange(nl, dtype=np.int64), nr)
    rpos = np.tile(np.arange(nr, dtype=np.int64), nl)
    columns = ([col.fetch(lpos) for col in left.columns] +
               [col.fetch(rpos) for col in right.columns])
    return Relation(left.schema.concat(right.schema), columns)


def union_all(left: Relation, right: Relation) -> Relation:
    """Bag union (UNION ALL); schemas must be union compatible."""
    if not left.schema.union_compatible(right.schema):
        raise SchemaError(
            f"union of incompatible schemas {left.schema!r} and "
            f"{right.schema!r}")
    columns = []
    for lcol, attr, rcol in zip(left.columns, left.schema, right.columns):
        if rcol.dtype is not lcol.dtype:
            rcol = rcol.cast(lcol.dtype)
        columns.append(lcol.append(rcol))
    return Relation(left.schema, columns)


def distinct(relation: Relation) -> Relation:
    """Duplicate elimination (set semantics)."""
    if relation.nrows == 0:
        return relation
    order = order_by(list(relation.columns))
    # In sorted order, a row is a duplicate iff it equals its predecessor on
    # *all* columns.
    duplicate = np.ones(relation.nrows, dtype=bool)
    duplicate[0] = False
    for col in relation.columns:
        sorted_tail = col.tail[order]
        if col.dtype.numpy_dtype == object:
            eq = np.array([sorted_tail[i] == sorted_tail[i - 1]
                           for i in range(1, relation.nrows)], dtype=bool)
        else:
            eq = sorted_tail[1:] == sorted_tail[:-1]
        duplicate[1:] &= np.asarray(eq, dtype=bool)
    candidates = np.sort(order[~duplicate])
    return select_candidates(relation, candidates)


def limit(relation: Relation, n: int, offset: int = 0) -> Relation:
    """LIMIT/OFFSET over the storage order."""
    return Relation(relation.schema,
                    [col.slice(offset, offset + n)
                     for col in relation.columns])


def sort(relation: Relation, names: Sequence[str],
         descending: Sequence[bool] | None = None) -> Relation:
    """ORDER BY: reorder storage by the given attributes."""
    if descending is None or not any(descending):
        return relation.sorted_by(names)
    positions = np.arange(relation.nrows, dtype=np.int64)
    for name, desc in reversed(list(zip(
            names, descending or [False] * len(names)))):
        key = relation.column(name).tail[positions]
        order = np.argsort(key, kind="stable")
        if desc:
            order = order[::-1]
        positions = positions[order]
    return Relation(relation.schema,
                    [col.fetch(positions) for col in relation.columns])
