"""Typed CSV input/output.

Used by the examples and by the "R" baseline's load step (Fig. 15 includes
CSV load time for R).  Types can be given explicitly or inferred from the
data; dates (``YYYY-MM-DD``) and times (``HH:MM[:SS]``) are recognized.
"""

from __future__ import annotations

import csv
import datetime as _dt
import io
from pathlib import Path
from typing import Any, Sequence

from repro.bat.bat import DataType
from repro.errors import CsvError
from repro.relational.relation import Relation


def _parse_date(text: str) -> _dt.date | None:
    try:
        return _dt.date.fromisoformat(text)
    except ValueError:
        return None


def _parse_time(text: str) -> _dt.time | None:
    parts = text.split(":")
    if len(parts) not in (2, 3):
        return None
    try:
        hour, minute = int(parts[0]), int(parts[1])
        second = int(parts[2]) if len(parts) == 3 else 0
        return _dt.time(hour, minute, second)
    except ValueError:
        return None


def infer_cell(text: str) -> Any:
    """Parse one CSV cell into the most specific python value."""
    if text == "" or text.lower() in ("null", "nan", "na"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    date = _parse_date(text)
    if date is not None:
        return date
    time = _parse_time(text)
    if time is not None:
        return time
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


def _coerce_column(values: list[Any]) -> list[Any]:
    """Promote mixed int/float columns to float, mixed other to str."""
    kinds = {type(v) for v in values if v is not None}
    if kinds <= {int}:
        return values
    if kinds <= {int, float}:
        return [None if v is None else float(v) for v in values]
    if len(kinds) > 1:
        return [None if v is None else str(v) for v in values]
    return values


def read_csv(source: str | Path | io.TextIOBase,
             types: dict[str, DataType] | None = None,
             delimiter: str = ",") -> Relation:
    """Read a CSV file (with header row) into a relation."""
    if isinstance(source, (str, Path)):
        with open(source, "r", newline="") as handle:
            return read_csv(handle, types, delimiter)
    reader = csv.reader(source, delimiter=delimiter)
    try:
        header = next(reader)
    except StopIteration:
        raise CsvError("empty CSV input (no header row)") from None
    header = [h.strip() for h in header]
    columns: list[list[Any]] = [[] for _ in header]
    for line_no, row in enumerate(reader, start=2):
        if len(row) != len(header):
            raise CsvError(
                f"row {line_no} has {len(row)} fields, header has "
                f"{len(header)}")
        for i, cell in enumerate(row):
            columns[i].append(infer_cell(cell.strip()))
    data = {}
    explicit = types or {}
    for name, values in zip(header, columns):
        if name not in explicit:
            values = _coerce_column(values)
        data[name] = values
    return Relation.from_columns(data, explicit)


def write_csv(relation: Relation, target: str | Path | io.TextIOBase,
              delimiter: str = ",") -> None:
    """Write a relation to CSV with a header row."""
    if isinstance(target, (str, Path)):
        with open(target, "w", newline="") as handle:
            write_csv(relation, handle, delimiter)
            return
    writer = csv.writer(target, delimiter=delimiter)
    writer.writerow(relation.names)
    for row in relation.to_rows():
        writer.writerow(["" if v is None else v for v in row])


def from_csv_text(text: str,
                  types: dict[str, DataType] | None = None) -> Relation:
    """Convenience: parse CSV from an in-memory string."""
    return read_csv(io.StringIO(text), types)
