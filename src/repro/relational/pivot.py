"""PIVOT: turn attribute values into attributes.

The paper's DBLP workload builds its publication table as "the result of SQL
PIVOT over a count-aggregate by conference and author" (§8.6(3)).  This is
that operator: the distinct values of the pivot column become new numeric
attributes, filled from the value column (missing combinations get a
default).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bat.bat import BAT, DataType
from repro.errors import RelationError
from repro.relational.joins import factorize
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema


def pivot(relation: Relation, index: Sequence[str], on: str, value: str,
          default: float = 0.0, aggregate: str = "sum") -> Relation:
    """Pivot ``relation`` so each distinct value of ``on`` becomes a column.

    ``index`` attributes identify the output rows, ``value`` supplies the
    cell values.  Duplicate (index, on) combinations are combined with
    ``aggregate`` ("sum" or "count").
    """
    if aggregate not in ("sum", "count"):
        raise RelationError(f"unsupported pivot aggregate {aggregate!r}")
    if relation.nrows == 0:
        raise RelationError("cannot pivot an empty relation")
    on_bat = relation.column(on)
    value_bat = relation.column(value)
    if not value_bat.dtype.is_numeric:
        raise RelationError(
            f"pivot value attribute {value!r} must be numeric")

    row_codes = factorize(relation.bats(index))
    row_uniques, row_first, row_inverse = np.unique(
        row_codes, return_index=True, return_inverse=True)
    nrows = len(row_uniques)

    col_values_sorted, col_inverse = np.unique(on_bat.tail,
                                               return_inverse=True)
    ncols = len(col_values_sorted)

    cell = row_inverse.astype(np.int64) * ncols + col_inverse.astype(np.int64)
    values = value_bat.as_float()
    if aggregate == "count":
        values = np.ones(len(values), dtype=np.float64)
    grid = np.full(nrows * ncols, default, dtype=np.float64)
    sums = np.bincount(cell, weights=values, minlength=nrows * ncols)
    touched = np.bincount(cell, minlength=nrows * ncols) > 0
    grid[touched] = sums[touched]
    grid = grid.reshape(nrows, ncols)

    attrs: list[Attribute] = []
    columns: list[BAT] = []
    for name in index:
        source = relation.column(name)
        attrs.append(Attribute(name, source.dtype))
        columns.append(source.fetch(row_first))
    for j in range(ncols):
        col_name = str(on_bat.decode_value(col_values_sorted[j]))
        attrs.append(Attribute(col_name, DataType.DBL))
        columns.append(BAT(DataType.DBL, grid[:, j].copy()))
    return Relation(Schema(attrs), columns)


def unpivot(relation: Relation, index: Sequence[str],
            value_columns: Sequence[str], var_name: str = "variable",
            value_name: str = "value") -> Relation:
    """Inverse of :func:`pivot`: melt value columns into (name, value) rows."""
    n = relation.nrows
    k = len(value_columns)
    if k == 0:
        raise RelationError("unpivot requires at least one value column")
    positions = np.repeat(np.arange(n, dtype=np.int64), k)
    attrs: list[Attribute] = []
    columns: list[BAT] = []
    for name in index:
        source = relation.column(name)
        attrs.append(Attribute(name, source.dtype))
        columns.append(source.fetch(positions))
    var_values = np.array(list(value_columns) * n, dtype=object)
    attrs.append(Attribute(var_name, DataType.STR))
    columns.append(BAT(DataType.STR, var_values))
    stacked = np.empty(n * k, dtype=np.float64)
    for j, name in enumerate(value_columns):
        stacked[j::k] = relation.column(name).as_float()
    attrs.append(Attribute(value_name, DataType.DBL))
    columns.append(BAT(DataType.DBL, stacked))
    return Relation(Schema(attrs), columns)
