"""Relations: a schema plus one aligned BAT per attribute."""

from __future__ import annotations

import threading
from typing import Any, Iterable, Sequence

import numpy as np

from repro.bat.bat import BAT, DataType, infer_type
from repro.bat.properties import properties_enabled
from repro.bat.sorting import (
    _key_shortcut,
    _require_orderable,
    check_key,
    order_by,
    rank_of,
)
from repro.errors import AlignmentError, RelationError, SchemaError
from repro.relational.schema import Attribute, Schema


class OrderInfo:
    """Cached order for one order-schema name tuple of a relation.

    Everything is derived lazily from the (immutable) key BATs: the sort
    ``positions``, the inverse permutation ``ranks`` (relative sorting,
    paper §8.1), whether the columns form a key (``is_key``), and — for
    composite keys probed by the merge-join planner — whether the columns
    are lexicographically sorted in storage order (``lex_sorted_memo``).
    Once a relation has computed an order it never computes it again — the
    paper's repeated-operation workloads hit the same order schema on
    every call.

    Lazy fields use double-checked locking (one re-entrant lock per
    info): under the morsel engine several workers can touch a cold cache
    at once, and the lock ensures the O(n log n) argsort and O(n·k) scans
    run exactly once instead of per worker, with no interleaved writes.
    The lock is re-entrant because ``is_key`` computes ``positions``.
    """

    __slots__ = ("_bats", "_positions", "_ranks", "_is_key", "_lex_sorted",
                 "_lock")

    def __init__(self, bats: Sequence[BAT]):
        self._bats = list(bats)
        self._positions: np.ndarray | None = None
        self._ranks: np.ndarray | None = None
        self._is_key: bool | None = None
        self._lex_sorted: bool | None = None
        self._lock = threading.RLock()

    @property
    def positions(self) -> np.ndarray:
        if self._positions is None:
            with self._lock:
                if self._positions is None:
                    self._positions = order_by(self._bats)
        return self._positions

    @property
    def ranks(self) -> np.ndarray:
        if self._ranks is None:
            with self._lock:
                if self._ranks is None:
                    self._ranks = rank_of(self.positions)
        return self._ranks

    def positions_with(self, parallel) -> np.ndarray:
        """``positions``, with the argsort itself morsel-parallel.

        ``parallel`` is a :class:`repro.core.config.ParallelConfig` (or
        None for serial); the chunk-sorted, stable-merged permutation is
        bit-identical to :func:`repro.bat.sorting.order_by`, so the
        cached array is shared with the plain property.

        The sort runs OUTSIDE ``_lock`` — it waits on the worker pool,
        and waiting on the pool while holding a lock other threads need
        deadlocks the pool; a racing duplicate sort is the cheaper
        failure mode.  The lock is taken only for the final
        first-writer-wins publication (an assignment, never a pool wait).
        """
        if self._positions is None:
            from repro.engine.parallel import parallel_order_by
            positions = parallel_order_by(self._bats, parallel)
            with self._lock:
                if self._positions is None:
                    self._positions = positions
        return self._positions

    def ranks_with(self, parallel) -> np.ndarray:
        """``ranks``, computing the inverse permutation per-morsel.

        Same discipline as :meth:`positions_with`: the pool-waiting work
        (the parallel argsort it delegates to, then the scatter) runs
        outside ``_lock``, and only the first-writer-wins publication
        takes it.
        """
        if self._ranks is None:
            from repro.engine.parallel import parallel_rank_of
            positions = self.positions_with(parallel)
            ranks = parallel_rank_of(positions, parallel)
            with self._lock:
                if self._ranks is None:
                    self._ranks = ranks
        return self._ranks

    @property
    def known_positions(self) -> np.ndarray | None:
        """The sort positions if already computed, else None (no compute)."""
        return self._positions

    @property
    def known_is_key(self) -> bool | None:
        """The key verdict if already known, else None (no compute)."""
        return self._is_key

    @property
    def is_key(self) -> bool:
        if self._is_key is None:
            with self._lock:
                if self._is_key is None:
                    self._is_key = self._compute_is_key()
        return self._is_key

    def _compute_is_key(self) -> bool:
        verdict = None
        if self._positions is None and properties_enabled():
            # Sort-free verdict from cached bits when possible; the
            # nil-string check keeps parity with the sorting path.
            verdict = _key_shortcut(self._bats)
            if verdict is not None:
                _require_orderable(self._bats)
        if verdict is None:
            # Undecided: compute (and keep) the order once, then the
            # check is a linear adjacent scan — never a second sort.
            verdict = check_key(self._bats, self.positions)
        return verdict

    def lex_sorted_memo(self, compute) -> bool:
        """Memoized lexicographic-sortedness verdict for these columns.

        ``compute`` (:func:`repro.relational.joins.lex_sorted`, passed in
        to avoid an import cycle) is invoked at most once per relation and
        attribute tuple — the ambiguous sorted-with-duplicates-major case
        pays its O(n·k) scan on the first probe only, like the single-key
        ``tsorted`` bit.
        """
        if self._lex_sorted is None:
            with self._lock:
                if self._lex_sorted is None:
                    self._lex_sorted = bool(compute(self._bats))
        return self._lex_sorted


class Relation:
    """An immutable relation stored column-wise.

    The logical model treats a relation as a set of tuples (paper §3.1); the
    physical representation is a list of aligned BATs, exactly as MonetDB
    stores tables.  Tuple order in storage carries no meaning — relational
    matrix operations derive their row order from order schemas.
    """

    __slots__ = ("schema", "columns", "_order_cache", "_order_lock")

    def __init__(self, schema: Schema, columns: Sequence[BAT]):
        if len(schema) != len(columns):
            raise SchemaError(
                f"schema has {len(schema)} attributes but {len(columns)} "
                "columns were supplied")
        n = None
        for attr, col in zip(schema, columns):
            if col.dtype is not attr.dtype:
                raise SchemaError(
                    f"column for attribute {attr.name!r} has type "
                    f"{col.dtype.value}, schema says {attr.dtype.value}")
            if n is None:
                n = len(col)
            elif len(col) != n:
                raise AlignmentError(
                    f"column {attr.name!r} has {len(col)} rows, "
                    f"expected {n}")
        self.schema = schema
        self.columns = tuple(columns)
        self._order_cache: dict[tuple[str, ...], OrderInfo] = {}
        self._order_lock = threading.Lock()

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_columns(cls, data: dict[str, Sequence[Any]] |
                     Iterable[tuple[str, Sequence[Any]]],
                     types: dict[str, DataType] | None = None) -> "Relation":
        """Build a relation from named value sequences (types inferred)."""
        if isinstance(data, dict):
            items = list(data.items())
        else:
            items = list(data)
        types = types or {}
        attrs: list[Attribute] = []
        bats: list[BAT] = []
        for name, values in items:
            if isinstance(values, BAT):
                bat = values
            elif isinstance(values, np.ndarray) and values.dtype != object:
                bat = BAT.from_array(values, types.get(name))
            else:
                bat = BAT.from_values(list(values), types.get(name))
            attrs.append(Attribute(name, bat.dtype))
            bats.append(bat)
        return cls(Schema(attrs), bats)

    @classmethod
    def from_rows(cls, names: Sequence[str], rows: Sequence[Sequence[Any]],
                  types: dict[str, DataType] | None = None) -> "Relation":
        """Build a relation from tuples (the paper's examples are given
        row-wise)."""
        columns = {name: [row[i] for row in rows]
                   for i, name in enumerate(names)}
        return cls.from_columns(columns, types)

    @classmethod
    def empty(cls, schema: Schema) -> "Relation":
        return cls(schema, [BAT(a.dtype,
                                np.empty(0, dtype=a.dtype.numpy_dtype))
                            for a in schema])

    # -- accessors ---------------------------------------------------------

    @property
    def nrows(self) -> int:
        if not self.columns:
            return 0
        return len(self.columns[0])

    def __len__(self) -> int:
        return self.nrows

    @property
    def names(self) -> list[str]:
        return self.schema.names

    def column(self, name: str) -> BAT:
        return self.columns[self.schema.index(name)]

    def bats(self, names: Iterable[str] | None = None) -> list[BAT]:
        """The BATs for the given attributes, in the given order."""
        if names is None:
            return list(self.columns)
        return [self.column(n) for n in names]

    def row(self, i: int) -> tuple:
        return tuple(col.python_value(i) for col in self.columns)

    def to_rows(self) -> list[tuple]:
        """Decode the relation into python row tuples."""
        decoded = [col.python_values() for col in self.columns]
        return [tuple(col[i] for col in decoded) for i in range(self.nrows)]

    def to_dict(self) -> dict[str, list]:
        return {name: col.python_values()
                for name, col in zip(self.names, self.columns)}

    # -- structure helpers -------------------------------------------------

    def replace_columns(self, **replacements: BAT) -> "Relation":
        """New relation with some columns swapped (types must agree)."""
        columns = list(self.columns)
        for name, bat in replacements.items():
            columns[self.schema.index(name)] = bat
        return Relation(self.schema, columns)

    def numeric_attribute_names(self) -> list[str]:
        return [a.name for a in self.schema if a.dtype.is_numeric]

    def order_info(self, names: Sequence[str]) -> OrderInfo:
        """The (cached) order of this relation under the given order schema.

        Relations are immutable, so the sort positions, ranks and key check
        for a name tuple are computed at most once per relation.  While the
        property layer is disabled (ablation) the cache is bypassed
        entirely and a fresh :class:`OrderInfo` is computed per call.
        """
        key = tuple(names)
        if not properties_enabled():
            return OrderInfo(self.bats(key))
        info = self._order_cache.get(key)
        if info is None:
            # Double-checked: concurrent cold lookups must converge on ONE
            # OrderInfo object, or its internal memoization (and lock)
            # could not prevent duplicated argsort work across workers.
            with self._order_lock:
                info = self._order_cache.get(key)
                if info is None:
                    info = OrderInfo(self.bats(key))
                    self._order_cache[key] = info
        return info

    def cached_order_info(self, names: Sequence[str]) -> OrderInfo | None:
        """The cached order for a name tuple, or None — never computes."""
        return self._order_cache.get(tuple(names))

    def seed_order(self, names: Sequence[str], *,
                   info: OrderInfo | None = None,
                   positions: np.ndarray | None = None,
                   is_key: bool | None = None) -> None:
        """Pre-populate the order cache with externally derived knowledge.

        Used by ``merge_result`` so derived relations start warm: a result
        built in order-schema order gets identity positions, a result in
        the input's storage order shares the input's :class:`OrderInfo`.
        Callers must be right (like ``BAT._seed_props``); existing entries
        are never overwritten, and the call is a no-op while the property
        layer is disabled, which keeps the ablation honest.
        """
        if not properties_enabled():
            return
        key = tuple(names)
        if key in self._order_cache:
            return
        if info is None:
            info = OrderInfo(self.bats(key))
            if positions is not None:
                positions = np.asarray(positions, dtype=np.int64)
                info._positions = positions
                if _is_identity(positions):
                    info._ranks = positions
            if is_key is not None:
                info._is_key = bool(is_key)
        with self._order_lock:
            self._order_cache.setdefault(key, info)

    def is_key(self, names: Sequence[str]) -> bool:
        """Whether the named attributes uniquely identify every tuple."""
        key = tuple(names)
        if properties_enabled() and key in self._order_cache:
            return self._order_cache[key].is_key
        return check_key(self.bats(names))

    def sorted_by(self, names: Sequence[str]) -> "Relation":
        """The relation with its storage order set to the sort by ``names``."""
        positions = self.order_info(names).positions
        columns = [col.fetch(positions, positions_key=True)
                   for col in self.columns]
        out = Relation(self.schema, columns)
        if names:
            first = out.column(names[0])
            # NaN sorts last under argsort but breaks the raw tsorted
            # contract, so DBL columns are only seeded when known nil-free.
            if first.dtype is not DataType.DBL \
                    or first.cached_prop("tnonil"):
                first._seed_props(tsorted=True)
        return out

    def sort_positions(self, names: Sequence[str]) -> np.ndarray:
        return self.order_info(names).positions

    # -- comparison helpers (tests) ----------------------------------------

    def same_rows(self, other: "Relation", tolerance: float = 1e-9) -> bool:
        """Set-equality of rows, with tolerance on float attributes."""
        if self.schema.names != other.schema.names:
            return False
        if self.nrows != other.nrows:
            return False
        def canonical(rel: Relation) -> list[tuple]:
            rows = []
            for row in rel.to_rows():
                rows.append(tuple(
                    round(v, 9) if isinstance(v, float) else v
                    for v in row))
            return sorted(rows, key=lambda r: tuple(str(x) for x in r))
        left, right = canonical(self), canonical(other)
        for lrow, rrow in zip(left, right):
            for lv, rv in zip(lrow, rrow):
                if isinstance(lv, float) and isinstance(rv, float):
                    if abs(lv - rv) > tolerance:
                        return False
                elif lv != rv:
                    return False
        return True

    # -- display -----------------------------------------------------------

    def __repr__(self) -> str:
        return (f"Relation({', '.join(self.names)}; "
                f"{self.nrows} rows)")

    def __str__(self) -> str:
        return self.pretty()

    def pretty(self, max_rows: int = 20) -> str:
        """Render an aligned ASCII table (used by examples and the REPL)."""
        header = self.names
        rows = self.to_rows()[:max_rows]
        def fmt(v: Any) -> str:
            if v is None:
                return "null"
            if isinstance(v, float):
                return f"{v:.4g}"
            return str(v)
        body = [[fmt(v) for v in row] for row in rows]
        widths = [max(len(h), *(len(r[i]) for r in body)) if body else len(h)
                  for i, h in enumerate(header)]
        lines = [" | ".join(h.ljust(w) for h, w in zip(header, widths))]
        lines.append("-+-".join("-" * w for w in widths))
        for row in body:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if self.nrows > max_rows:
            lines.append(f"... ({self.nrows} rows total)")
        return "\n".join(lines)


def _is_identity(positions: np.ndarray) -> bool:
    n = len(positions)
    return bool(n == 0 or (positions[0] == 0 and positions[-1] == n - 1
                           and np.array_equal(positions,
                                              np.arange(n, dtype=np.int64))))


def require_same_length(left: Relation, right: Relation,
                        operation: str) -> None:
    if left.nrows != right.nrows:
        raise RelationError(
            f"{operation} requires equal cardinalities, got "
            f"{left.nrows} and {right.nrows}")
