"""Vectorized equi-joins.

The join is the sorted-probe hash-join equivalent used by column stores:
keys are factorized into dense integer codes, the right side is sorted once,
and matches are found with two binary searches per left row — all as
whole-column numpy operations, no per-row python work.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bat.bat import BAT, DataType
from repro.bat.properties import properties_enabled
from repro.errors import RelationError, SchemaError
from repro.relational.relation import Relation
from repro.relational.schema import Schema


def factorize(bats: Sequence[BAT]) -> np.ndarray:
    """Combine one or more key columns into dense int64 codes.

    Equal rows get equal codes.  Columns are folded pairwise through
    ``np.unique`` so codes stay dense and cannot overflow.
    """
    if not bats:
        raise RelationError("factorize requires at least one column")
    codes: np.ndarray | None = None
    for bat in bats:
        _, col_codes = np.unique(bat.tail, return_inverse=True)
        col_codes = col_codes.astype(np.int64)
        if codes is None:
            codes = col_codes
        else:
            k = int(col_codes.max()) + 1 if len(col_codes) else 1
            combined = codes * k + col_codes
            _, codes = np.unique(combined, return_inverse=True)
            codes = codes.astype(np.int64)
    assert codes is not None
    return codes


def factorize_pair(left: Sequence[BAT],
                   right: Sequence[BAT]) -> tuple[np.ndarray, np.ndarray]:
    """Factorize two key lists into a *shared* code space.

    Joining requires codes that are comparable across the two inputs, so the
    key columns are concatenated before factorization and the codes split
    back afterwards.
    """
    if len(left) != len(right):
        raise RelationError("join key lists have different lengths")
    combined_bats = []
    for lcol, rcol in zip(left, right):
        lc, rc = lcol, rcol
        if lc.dtype is not rc.dtype:
            if lc.dtype.is_numeric and rc.dtype.is_numeric:
                lc, rc = lc.cast(DataType.DBL), rc.cast(DataType.DBL)
            else:
                raise RelationError(
                    f"cannot join keys of types {lc.dtype.value} and "
                    f"{rc.dtype.value}")
        combined_bats.append(lc.append(rc))
    codes = factorize(combined_bats)
    n_left = len(left[0])
    return codes[:n_left], codes[n_left:]


def join_positions(left_keys: Sequence[BAT], right_keys: Sequence[BAT],
                   how: str = "inner") -> tuple[np.ndarray, np.ndarray]:
    """Matching position pairs (lpos, rpos) for an equi-join.

    For ``how="left"`` unmatched left rows appear with rpos ``-1``.
    Duplicate keys on either side produce the full cross of matches.
    """
    if how not in ("inner", "left"):
        raise RelationError(f"unsupported join type {how!r}")
    lcodes, rcodes = factorize_pair(left_keys, right_keys)
    if properties_enabled() and _codes_sorted(rcodes):
        # Already-sorted right side (dimension tables with dense keys):
        # the identity permutation is the stable argsort.
        order_r = None
        sorted_r = rcodes
    else:
        order_r = np.argsort(rcodes, kind="stable")
        sorted_r = rcodes[order_r]
    lo = np.searchsorted(sorted_r, lcodes, side="left")
    hi = np.searchsorted(sorted_r, lcodes, side="right")
    return _expand_matches(lo, hi, order_r, how)


MERGE_TYPES = (DataType.INT, DataType.DBL, DataType.DATE, DataType.TIME,
               DataType.OID)
"""Key dtypes eligible for the sorted-merge join path (raw tails totally
ordered; STR is excluded because nil ``None`` breaks object comparisons).
The physical planner consults this to avoid predicting merge joins the
runtime would reject."""


def merge_join_positions(left_keys: Sequence[BAT],
                         right_keys: Sequence[BAT],
                         how: str = "inner") \
        -> tuple[np.ndarray, np.ndarray]:
    """Sorted merge path of the equi-join, selected by the physical planner.

    When both sides' key columns have the same raw-comparable types and are
    already sorted — one column whose cached ``tsorted`` bit is set (O(1)
    for base columns, O(n) once otherwise), or a composite key whose
    columns are lexicographically sorted (one O(n·k) scan,
    :func:`lex_sorted`) — matches come from two binary searches directly on
    the raw tails, skipping the factorization (which sorts each key column
    internally via ``np.unique``) and the right-side argsort of the hash
    path entirely.  Composite keys search over a structured-dtype view of
    the tails, whose comparison order is exactly the lexicographic order of
    the columns.

    The output position pairs are identical to :func:`join_positions`:
    codes are order-isomorphic to raw values column by column, so the group
    boundaries agree, and the sorted right side makes the stable argsort
    the identity.  Preconditions are re-verified here at run time; when
    they do not hold the call falls back to the hash path, so a planner
    mis-prediction costs nothing but the check.

    STR keys stay on the hash path (nil ordering of object tails is not
    total); DBL qualifies because its ``tsorted`` contract is nil-free and
    :func:`lex_sorted` rejects NaN-carrying composites.
    """
    if (properties_enabled() and left_keys
            and len(left_keys) == len(right_keys)
            and all(lc.dtype is rc.dtype and lc.dtype in MERGE_TYPES
                    for lc, rc in zip(left_keys, right_keys))
            and lex_sorted(left_keys) and lex_sorted(right_keys)):
        if how not in ("inner", "left"):
            raise RelationError(f"unsupported join type {how!r}")
        if len(left_keys) == 1:
            left_tail = left_keys[0].tail
            right_tail = right_keys[0].tail
        else:
            left_tail = _composite_tail(left_keys)
            right_tail = _composite_tail(right_keys)
        lo = np.searchsorted(right_tail, left_tail, side="left")
        hi = np.searchsorted(right_tail, left_tail, side="right")
        return _expand_matches(lo, hi, None, how)
    return join_positions(left_keys, right_keys, how)


def relation_lex_sorted(relation: Relation, names: Sequence[str]) -> bool:
    """:func:`lex_sorted` memoized per ``(relation, attribute tuple)``.

    The single-column case is already O(1) after the first probe (the
    cached ``tsorted`` bit), and the strict-major / all-sorted / unsorted
    composite shortcuts are too — but the ambiguous composite case
    (sorted major *with* duplicates) used to re-pay the O(n·k) scan on
    every multi-key merge-join probe.  The verdict now lives in the
    relation's order cache (:meth:`repro.relational.relation.OrderInfo.
    lex_sorted_memo`), keyed by the attribute tuple, so repeated probes —
    the planner re-plans every statement — cost one dict lookup.  While
    the property layer is disabled the memo is bypassed, keeping the
    ablations honest.
    """
    if not properties_enabled():
        return lex_sorted(relation.bats(names))
    return relation.order_info(names).lex_sorted_memo(lex_sorted)


def lex_sorted(bats: Sequence[BAT]) -> bool:
    """Whether the columns are lexicographically sorted in raw-tail order.

    For one column this is the cached ``tsorted`` bit (its contract already
    excludes NaN for DBL).  Composite keys try two property-only
    sufficient conditions first — a strictly increasing major column
    (``tsorted`` + ``tkey``: ties never reach the minor columns) or all
    columns sorted — so repeated probes over the same base columns are
    O(1) after the bits are cached (the same shortcuts
    :func:`repro.bat.sorting._already_ordered` uses).  Only the ambiguous
    case (sorted major with duplicates) pays the vectorized O(n·k) scan:
    a row pair is ordered iff the first differing column is increasing, so
    the scan tracks which adjacent pairs are still tied and rejects on any
    decrease among them.  DBL columns carrying NaN are rejected outright —
    NaN compares false both ways, which would corrupt the tie tracking
    (and binary search needs a total order).
    """
    if not bats:
        return False
    if len(bats) == 1:
        return bats[0].tsorted
    for bat in bats:
        # Checked before the shortcuts: even with a strictly increasing
        # major column, a NaN minor would break the composite binary
        # search's total order.  tnonil is a cached bit, so this stays
        # O(1) on repeated probes.
        if bat.dtype is DataType.DBL and not bat.tnonil:
            return False
    first = bats[0]
    if not first.tsorted:
        # A lex-sorted composite needs a sorted major column; the cached
        # bit makes repeated probes of unsorted data O(1).
        return False
    if first.tkey or all(b.tsorted for b in bats[1:]):
        return True
    n = len(bats[0])
    if n < 2:
        return True
    undecided = np.ones(n - 1, dtype=bool)
    for bat in bats:
        a, b = bat.tail[:-1], bat.tail[1:]
        if bool(np.any(undecided & (a > b))):
            return False
        undecided &= ~(a < b)
        if not undecided.any():
            return True
    return True


def _composite_tail(bats: Sequence[BAT]) -> np.ndarray:
    """Pack key columns into a structured array ordered lexicographically.

    numpy compares structured (void) scalars field by field in declaration
    order, which makes ``searchsorted`` over the packed array equivalent to
    a lexicographic multi-column binary search without materializing row
    tuples as python objects.
    """
    dtype = np.dtype([(f"k{i}", bat.tail.dtype)
                      for i, bat in enumerate(bats)])
    out = np.empty(len(bats[0]), dtype=dtype)
    for i, bat in enumerate(bats):
        out[f"k{i}"] = bat.tail
    return out


def _expand_matches(lo: np.ndarray, hi: np.ndarray,
                    order_r: np.ndarray | None,
                    how: str) -> tuple[np.ndarray, np.ndarray]:
    """Expand per-left-row match ranges [lo, hi) into position pairs.

    ``order_r`` maps sorted-right indexes back to storage positions; None
    means the right side is already in sorted order (identity).
    """
    counts = hi - lo
    if how == "left":
        out_counts = np.maximum(counts, 1)
    else:
        out_counts = counts
    total = int(out_counts.sum())
    lpos = np.repeat(np.arange(len(lo), dtype=np.int64), out_counts)
    starts = np.repeat(lo, out_counts)
    group_offsets = (np.arange(total, dtype=np.int64)
                     - np.repeat(np.cumsum(out_counts) - out_counts,
                                 out_counts))
    sorted_idx = starts + group_offsets
    if how == "left":
        matched = np.repeat(counts > 0, out_counts)
        rpos = np.full(total, -1, dtype=np.int64)
        hits = sorted_idx[matched]
        rpos[matched] = hits if order_r is None else order_r[hits]
    else:
        rpos = sorted_idx if order_r is None else order_r[sorted_idx]
    return lpos, rpos


def _codes_sorted(codes: np.ndarray) -> bool:
    """Whether the factorized codes are already non-decreasing.

    Decided by one O(n) scan of the codes themselves — cheaper than the
    O(n log n) argsort it can save.  The key BATs' cached ``tsorted`` bits
    are deliberately NOT consulted: :func:`factorize_pair` may cast mixed
    INT/DBL keys to DBL, which moves the INT nil sentinel from the smallest
    raw value to NaN, so pre-cast sortedness does not imply sorted codes.
    """
    return len(codes) < 2 or bool(np.all(codes[:-1] <= codes[1:]))


def hash_join(left: Relation, right: Relation,
              left_on: Sequence[str], right_on: Sequence[str],
              how: str = "inner") -> tuple[np.ndarray, np.ndarray]:
    """Equi-join returning matching storage positions for both inputs."""
    return join_positions(left.bats(left_on), right.bats(right_on), how)


def join(left: Relation, right: Relation, left_on: Sequence[str],
         right_on: Sequence[str], how: str = "inner",
         drop_right_keys: bool = False) -> Relation:
    """Equi-join producing a relation with all columns of both inputs.

    Column names must not clash (after optionally dropping the right key
    columns); rename beforehand if they do.
    """
    lpos, rpos = hash_join(left, right, left_on, right_on, how)
    right_names = [n for n in right.names
                   if not (drop_right_keys and n in right_on)]
    overlap = set(left.names) & set(right_names)
    if overlap:
        raise SchemaError(
            f"join would produce duplicate attributes {sorted(overlap)}; "
            "rename first")
    # lpos is non-decreasing by construction (repeat of an arange), so the
    # left columns keep their sortedness through the gather.
    columns = [col.fetch(lpos, positions_sorted=True)
               for col in left.columns]
    if how == "left":
        safe_rpos = np.where(rpos < 0, 0, rpos)
        for name in right_names:
            col = right.column(name).fetch(safe_rpos)
            # Null out unmatched rows.
            nil = BAT.constant(None, len(rpos), col.dtype) \
                if col.dtype is not DataType.BOOL else None
            if nil is not None:
                tail = np.where(rpos < 0, nil.tail, col.tail)
                if col.dtype is DataType.STR:
                    tail = tail.astype(object)
                col = BAT(col.dtype, tail.astype(col.dtype.numpy_dtype))
            columns.append(col)
    else:
        columns += [right.column(name).fetch(rpos) for name in right_names]
    schema = left.schema.concat(right.schema.project(right_names))
    return Relation(schema, columns)
