"""Relation schemas.

A schema is a finite *ordered* set of attribute names with types (paper
§3.1).  Order matters: the matrix constructor reads application columns in
schema order, and the relation constructor assigns base-result columns to
attribute names positionally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.bat.bat import DataType
from repro.errors import SchemaError


@dataclass(frozen=True)
class Attribute:
    """A named, typed attribute."""

    name: str
    dtype: DataType

    def __post_init__(self):
        if not self.name:
            raise SchemaError("attribute names must be non-empty")
        if not isinstance(self.dtype, DataType):
            raise SchemaError(
                f"attribute {self.name!r} has invalid type {self.dtype!r}")

    def renamed(self, name: str) -> "Attribute":
        return Attribute(name, self.dtype)

    def __str__(self) -> str:
        return f"{self.name} {self.dtype.value}"


class Schema:
    """An ordered set of attributes with unique names."""

    __slots__ = ("_attributes", "_index")

    def __init__(self, attributes: Iterable[Attribute]):
        attrs = tuple(attributes)
        index: dict[str, int] = {}
        for i, attr in enumerate(attrs):
            if not isinstance(attr, Attribute):
                raise SchemaError(f"expected Attribute, got {attr!r}")
            if attr.name in index:
                raise SchemaError(
                    f"duplicate attribute name {attr.name!r} in schema")
            index[attr.name] = i
        self._attributes = attrs
        self._index = index

    # -- constructors ------------------------------------------------------

    @classmethod
    def of(cls, *pairs: tuple[str, DataType]) -> "Schema":
        """Build a schema from (name, type) pairs."""
        return cls(Attribute(name, dtype) for name, dtype in pairs)

    # -- accessors ---------------------------------------------------------

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return self._attributes

    @property
    def names(self) -> list[str]:
        return [a.name for a in self._attributes]

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __getitem__(self, item: int | str) -> Attribute:
        if isinstance(item, str):
            return self._attributes[self.index(item)]
        return self._attributes[item]

    def index(self, name: str) -> int:
        if name not in self._index:
            raise SchemaError(
                f"unknown attribute {name!r}; schema is ({', '.join(self.names)})")
        return self._index[name]

    def dtype(self, name: str) -> DataType:
        return self[name].dtype

    # -- derivations -------------------------------------------------------

    def project(self, names: Iterable[str]) -> "Schema":
        """Sub-schema with the given attributes, in the *given* order."""
        return Schema(self[name] for name in names)

    def complement(self, names: Iterable[str]) -> list[str]:
        """Attribute names not in ``names``, in schema order.

        This is the paper's application schema: ``U-bar = R - U``.
        """
        excluded = set(names)
        unknown = excluded - set(self.names)
        if unknown:
            raise SchemaError(
                f"unknown attributes {sorted(unknown)}; "
                f"schema is ({', '.join(self.names)})")
        return [n for n in self.names if n not in excluded]

    def rename(self, mapping: dict[str, str]) -> "Schema":
        unknown = set(mapping) - set(self.names)
        if unknown:
            raise SchemaError(f"cannot rename unknown attributes "
                              f"{sorted(unknown)}")
        return Schema(
            attr.renamed(mapping.get(attr.name, attr.name))
            for attr in self._attributes)

    def concat(self, other: "Schema") -> "Schema":
        """Schema concatenation ``R ∘ S`` (names must stay unique)."""
        return Schema(self._attributes + other._attributes)

    def union_compatible(self, other: "Schema") -> bool:
        """Same arity and pairwise compatible types (names may differ)."""
        if len(self) != len(other):
            return False
        for a, b in zip(self._attributes, other._attributes):
            if a.dtype is b.dtype:
                continue
            if a.dtype.is_numeric and b.dtype.is_numeric:
                continue
            return False
        return True

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        inner = ", ".join(str(a) for a in self._attributes)
        return f"Schema({inner})"
