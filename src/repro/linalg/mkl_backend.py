"""The "MKL" delegation backend: numpy/LAPACK with explicit copies.

The paper delegates complex matrix operations to Intel MKL after copying
BATs into a contiguous array of doubles (§7.3).  numpy is itself a BLAS/
LAPACK binding, so it plays MKL's role here; what matters for the
experiments is the cost structure — copy in, fast dense kernel, copy out —
and all three phases are timed through :class:`TransformStats`.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.errors import LinAlgError, ShapeError, SingularMatrixError
from repro.linalg.matrix import Columns, check_dims
from repro.linalg.transform import TransformStats, from_dense, to_dense
from repro.opspec import spec_of


def _positive_diagonal_qr(q: np.ndarray,
                          r: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Normalize a QR factorization so R has a non-negative diagonal.

    QR is unique up to column signs; fixing diag(R) >= 0 makes the two
    backends produce identical factors (the Gram-Schmidt kernel produces a
    positive diagonal naturally).
    """
    signs = np.sign(np.diag(r))
    signs[signs == 0] = 1.0
    return q * signs, r * signs[:, None]


def _eigen(dense: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Eigenvalues/vectors sorted by decreasing magnitude (R's convention)."""
    if np.allclose(dense, dense.T, atol=1e-10):
        values, vectors = np.linalg.eigh(dense)
    else:
        values, vectors = np.linalg.eig(dense)
        if np.abs(values.imag).max(initial=0.0) > 1e-9 * max(
                1.0, np.abs(values.real).max(initial=0.0)):
            raise LinAlgError(
                "evc/evl: matrix has complex eigenvalues; relations store "
                "doubles — symmetrize the input or use SVD")
        values, vectors = values.real, vectors.real
    order = np.argsort(-np.abs(values), kind="stable")
    return values[order], vectors[:, order]


class MklBackend:
    """Dense LAPACK kernels behind an instrumented copy boundary."""

    name = "mkl"

    def __init__(self):
        self.stats = TransformStats()

    def supports(self, op: str) -> bool:
        spec_of(op)
        return True

    def compute(self, op: str, a: Columns,
                b: Columns | None = None) -> Columns:
        """Run one matrix operation; returns result columns."""
        spec = spec_of(op)
        check_dims(spec, a, b)
        da = to_dense(a, self.stats)
        db = to_dense(b, self.stats) if b is not None else None
        start = time.perf_counter()
        result = self._kernel(op, da, db)
        self.stats.kernel_seconds += time.perf_counter() - start
        self.stats.calls += 1
        return from_dense(result, self.stats)

    # -- kernels -----------------------------------------------------------

    def _kernel(self, op: str, a: np.ndarray,
                b: np.ndarray | None) -> np.ndarray:
        if op == "add":
            return a + b
        if op == "sub":
            return a - b
        if op == "emu":
            return a * b
        if op == "mmu":
            return a @ b
        if op == "opd":
            return a @ b.T
        if op == "cpd":
            # The paper uses cblas_dsyrk for the symmetric case; BLAS picks
            # the same fast path for a.T @ a.
            return a.T @ b
        if op == "tra":
            return a.T.copy()
        if op == "sol":
            solution, *_ = np.linalg.lstsq(a, b, rcond=None)
            return solution
        if op == "inv":
            try:
                return np.linalg.inv(a)
            except np.linalg.LinAlgError as exc:
                raise SingularMatrixError(f"inv: {exc}") from exc
        if op == "det":
            return np.array([[np.linalg.det(a)]])
        if op == "rnk":
            return np.array([[float(np.linalg.matrix_rank(a))]])
        if op == "qqr":
            q, r = np.linalg.qr(a, mode="reduced")
            q, _ = _positive_diagonal_qr(q, r)
            return q
        if op == "rqr":
            q, r = np.linalg.qr(a, mode="reduced")
            _, r = _positive_diagonal_qr(q, r)
            return r
        if op == "evl":
            values, _ = _eigen(a)
            return values.reshape(-1, 1)
        if op == "evc":
            _, vectors = _eigen(a)
            return vectors
        if op == "chf":
            if not np.allclose(a, a.T, atol=1e-8):
                raise ShapeError("chf requires a symmetric matrix")
            try:
                lower = np.linalg.cholesky(a)
            except np.linalg.LinAlgError as exc:
                raise SingularMatrixError(f"chf: {exc}") from exc
            # R's chol() returns the upper factor U with U'U = A.
            return lower.T.copy()
        if op == "usv":
            u, _, _ = np.linalg.svd(a, full_matrices=True)
            return u
        if op == "dsv":
            _, s, _ = np.linalg.svd(a, full_matrices=False)
            return np.diag(s)
        if op == "vsv":
            _, _, vt = np.linalg.svd(a, full_matrices=False)
            return vt.T.copy()
        raise LinAlgError(f"unhandled operation {op!r}")  # pragma: no cover


def compute_dense(op: str, a: Sequence[Sequence[float]],
                  b: Sequence[Sequence[float]] | None = None) -> np.ndarray:
    """Reference helper for tests: run a kernel on dense array inputs."""
    backend = MklBackend()
    from repro.linalg.matrix import as_columns, columns_to_dense
    cols_a = as_columns(np.asarray(a, dtype=np.float64))
    cols_b = (as_columns(np.asarray(b, dtype=np.float64))
              if b is not None else None)
    return columns_to_dense(backend.compute(op, cols_a, cols_b))
