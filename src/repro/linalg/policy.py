"""Backend choice policy (paper §7.3, §8.6).

The query engine is free to run a matrix operation directly on BATs or to
copy the data into a contiguous array and delegate to MKL.  The paper's
policy, reproduced here:

* *linear* operations (``add``, ``sub``, ``emu``) run on BATs — the copy
  overhead cannot be amortized (Fig. 18b);
* complex operations are delegated to MKL (Figs. 15b/16b/17b);
* when the dense matrices would not fit in memory, fall back to the BAT
  implementation, which relies on the engine's memory management
  (Table 6's 100Mx70 row).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BackendError
from repro.linalg.bat_backend import BatBackend
from repro.linalg.mkl_backend import MklBackend
from repro.opspec import LINEAR_OPS, spec_of

DEFAULT_MEMORY_LIMIT = 4 << 30  # 4 GiB of dense doubles


@dataclass
class BackendPolicy:
    """Chooses the kernel backend per operation.

    ``prefer`` is one of ``"auto"`` (the paper's policy), ``"bat"`` or
    ``"mkl"`` (forced, used by the ablation benchmarks).
    """

    prefer: str = "auto"
    memory_limit_bytes: int = DEFAULT_MEMORY_LIMIT
    bat: BatBackend = field(default_factory=BatBackend)
    mkl: MklBackend = field(default_factory=MklBackend)

    def __post_init__(self):
        if self.prefer not in ("auto", "bat", "mkl"):
            raise BackendError(
                f"unknown backend preference {self.prefer!r}; "
                "expected 'auto', 'bat' or 'mkl'")

    def dense_bytes(self, op: str, shape_a: tuple[int, int],
                    shape_b: tuple[int, int] | None = None) -> int:
        """Bytes of contiguous doubles the MKL path would allocate."""
        a_cells = shape_a[0] * shape_a[1]
        total = a_cells
        largest = a_cells
        if shape_b is not None:
            b_cells = shape_b[0] * shape_b[1]
            total += b_cells
            largest = max(largest, b_cells)
        # Result allocation: bounded by the larger input for every operation
        # except usv, whose full U is nrows x nrows.
        if op == "usv":
            total += shape_a[0] * shape_a[0]
        else:
            total += largest
        return total * 8

    def choose(self, op: str, shape_a: tuple[int, int],
               shape_b: tuple[int, int] | None = None):
        """Return the backend instance that should run ``op``."""
        spec_of(op)  # validate the name early
        if self.prefer == "bat":
            return self.bat
        if self.prefer == "mkl":
            return self.mkl
        if op in LINEAR_OPS:
            return self.bat
        if self.dense_bytes(op, shape_a, shape_b) > self.memory_limit_bytes:
            return self.bat
        return self.mkl

    def reset_stats(self) -> None:
        self.mkl.stats.reset()
