"""No-copy kernel algorithms over column lists (the paper's BAT path).

These kernels never materialize a contiguous matrix: they compute with
whole-column vector operations plus scalar ``sel`` accesses, which is the
reduction style the paper describes for MonetDB (Alg. 2 is the inversion
below).  The rule of thumb from §7.3 applies: "design algorithms that access
entire columns and minimize accesses to single elements".

Conventions shared with the MKL backend:

* QR factors are normalized to a non-negative diagonal of R;
* eigenvalues are sorted by decreasing magnitude (R's convention);
* ``chf`` returns the upper Cholesky factor (R's ``chol``);
* SVD singular values are sorted in decreasing order.

The eigen kernels require a symmetric matrix (cyclic Jacobi); general
eigenproblems must go to the MKL backend.  This mirrors the paper's setup
where complex operations are delegated anyway.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import (
    ConvergenceError,
    LinAlgError,
    SingularMatrixError,
    UnsupportedByBackendError,
)
from repro.linalg.matrix import (
    Columns,
    check_dims,
    check_symmetric,
    ncols,
    nrows,
)
from repro.opspec import spec_of

_PIVOT_TOLERANCE = 1e-12
_JACOBI_SWEEPS = 100
_SVD_SWEEPS = 100


def _copy(columns: Columns) -> list[np.ndarray]:
    return [np.array(col, dtype=np.float64, copy=True) for col in columns]


def _identity_columns(n: int) -> list[np.ndarray]:
    cols = []
    for j in range(n):
        col = np.zeros(n, dtype=np.float64)
        col[j] = 1.0
        cols.append(col)
    return cols


class BatBackend:
    """Column-at-a-time kernels computing directly on BAT tails."""

    name = "bat"

    def supports(self, op: str) -> bool:
        spec_of(op)
        return True

    def compute(self, op: str, a: Columns,
                b: Columns | None = None) -> Columns:
        spec = spec_of(op)
        check_dims(spec, a, b)
        kernel = getattr(self, f"_{op}")
        if spec.arity == 2:
            return kernel(a, b)
        return kernel(a)

    # -- element-wise ------------------------------------------------------

    def _add(self, a: Columns, b: Columns) -> Columns:
        """Element-wise add, routing sparse columns through the
        nonzero-index path (MonetDB's compression effect, Table 5)."""
        from repro.bat.compression import (
            SPARSE_DENSITY_THRESHOLD,
            estimate_density,
            sparse_add,
        )
        out = []
        for x, y in zip(a, b):
            if (estimate_density(x) < SPARSE_DENSITY_THRESHOLD
                    and estimate_density(y) < SPARSE_DENSITY_THRESHOLD):
                out.append(sparse_add(x, y))
            else:
                out.append(x + y)
        return out

    def _sub(self, a: Columns, b: Columns) -> Columns:
        return [x - y for x, y in zip(a, b)]

    def _emu(self, a: Columns, b: Columns) -> Columns:
        return [x * y for x, y in zip(a, b)]

    # -- products ----------------------------------------------------------

    def _mmu(self, a: Columns, b: Columns) -> Columns:
        """Matrix multiplication: result column j is a linear combination of
        a's columns, weighted by b's column j (one AXPY per term)."""
        n = nrows(a)
        out = []
        for bj in b:
            acc = np.zeros(n, dtype=np.float64)
            for k, ak in enumerate(a):
                weight = bj[k]
                if weight != 0.0:
                    acc += ak * weight
            out.append(acc)
        return out

    def _opd(self, a: Columns, b: Columns) -> Columns:
        """Outer product A @ B.T: result column j is a combination of a's
        columns weighted by row j of b."""
        n = nrows(a)
        rows_b = nrows(b)
        out = []
        for j in range(rows_b):
            acc = np.zeros(n, dtype=np.float64)
            for k, ak in enumerate(a):
                weight = b[k][j]
                if weight != 0.0:
                    acc += ak * weight
            out.append(acc)
        return out

    def _cpd(self, a: Columns, b: Columns) -> Columns:
        """Cross product A.T @ B: one whole-column dot per result cell.

        When both arguments are the same columns the result is symmetric and
        only the upper triangle is computed (the paper's dsyrk analogue).
        """
        ka, kb = ncols(a), ncols(b)
        symmetric = a is b or all(x is y for x, y in zip(a, b)) and ka == kb
        out = [np.empty(ka, dtype=np.float64) for _ in range(kb)]
        if symmetric:
            for q in range(kb):
                for p in range(q + 1):
                    value = float(a[p] @ b[q])
                    out[q][p] = value
                    out[p][q] = value
        else:
            for q in range(kb):
                col = out[q]
                for p in range(ka):
                    col[p] = float(a[p] @ b[q])
        return out

    # -- transpose ---------------------------------------------------------

    def _tra(self, a: Columns) -> Columns:
        """Transpose via one bulk stride-copy per result column."""
        stacked = np.stack(a, axis=0)  # shape (k, n): row c is column c of A
        return [np.ascontiguousarray(stacked[:, m])
                for m in range(stacked.shape[1])]

    # -- inversion & determinant (paper Alg. 2) -----------------------------

    def _inv(self, a: Columns) -> Columns:
        """Gauss-Jordan elimination with column operations (paper Alg. 2),
        extended with column pivoting for numerical stability."""
        n = ncols(a)
        work = _copy(a)
        result = _identity_columns(n)
        scale = max(float(np.abs(col).max()) for col in work) or 1.0
        for i in range(n):
            pivot_j = max(range(i, n), key=lambda j: abs(work[j][i]))
            v1 = work[pivot_j][i]
            if abs(v1) <= _PIVOT_TOLERANCE * scale:
                raise SingularMatrixError(
                    "inv: matrix is singular (zero pivot)")
            if pivot_j != i:
                work[i], work[pivot_j] = work[pivot_j], work[i]
                result[i], result[pivot_j] = result[pivot_j], result[i]
            v1 = work[i][i]
            work[i] = work[i] / v1
            result[i] = result[i] / v1
            for j in range(n):
                if j == i:
                    continue
                v2 = work[j][i]
                if v2 != 0.0:
                    work[j] = work[j] - work[i] * v2
                    result[j] = result[j] - result[i] * v2
        return result

    def _det(self, a: Columns) -> Columns:
        """Determinant as the product of Gauss-Jordan pivots."""
        n = ncols(a)
        work = _copy(a)
        scale = max(float(np.abs(col).max()) for col in work) or 1.0
        det = 1.0
        for i in range(n):
            pivot_j = max(range(i, n), key=lambda j: abs(work[j][i]))
            v1 = work[pivot_j][i]
            if abs(v1) <= _PIVOT_TOLERANCE * scale:
                return [np.array([0.0])]
            if pivot_j != i:
                work[i], work[pivot_j] = work[pivot_j], work[i]
                det = -det
            v1 = work[i][i]
            det *= v1
            work[i] = work[i] / v1
            for j in range(i + 1, n):
                v2 = work[j][i]
                if v2 != 0.0:
                    work[j] = work[j] - work[i] * v2
        return [np.array([det])]

    # -- QR (modified Gram-Schmidt, paper §8.3) ------------------------------

    def _gram_schmidt(self, a: Columns) -> tuple[list[np.ndarray],
                                                 list[np.ndarray]]:
        """Modified Gram-Schmidt; returns (Q columns, R columns)."""
        k = ncols(a)
        q: list[np.ndarray] = []
        r = [np.zeros(k, dtype=np.float64) for _ in range(k)]
        scale = max(float(np.linalg.norm(col)) for col in a) or 1.0
        for j in range(k):
            v = np.array(a[j], dtype=np.float64, copy=True)
            for i in range(j):
                rij = float(q[i] @ v)
                r[j][i] = rij
                v -= rij * q[i]
            rjj = float(np.linalg.norm(v))
            if rjj <= 1e-12 * scale:
                raise LinAlgError(
                    "qr: matrix is rank deficient; Gram-Schmidt requires "
                    "linearly independent columns")
            r[j][j] = rjj
            q.append(v / rjj)
        return q, r

    def _qqr(self, a: Columns) -> Columns:
        q, _ = self._gram_schmidt(a)
        return q

    def _rqr(self, a: Columns) -> Columns:
        _, r = self._gram_schmidt(a)
        return r

    def _rnk(self, a: Columns) -> Columns:
        """Rank via Gram-Schmidt with column skipping (wide inputs are
        transposed first: rank(A) = rank(A^T))."""
        work = a if nrows(a) >= ncols(a) else self._tra(a)
        scale = max(float(np.linalg.norm(col)) for col in work) or 1.0
        tolerance = 1e-10 * scale * max(nrows(work), ncols(work))
        q: list[np.ndarray] = []
        rank = 0
        for col in work:
            v = np.array(col, dtype=np.float64, copy=True)
            for qi in q:
                v -= float(qi @ v) * qi
            norm = float(np.linalg.norm(v))
            if norm > tolerance:
                q.append(v / norm)
                rank += 1
        return [np.array([float(rank)])]

    # -- least squares -------------------------------------------------------

    def _sol(self, a: Columns, b: Columns) -> Columns:
        """Least-squares solve via QR: R x = Q^T b by back substitution."""
        q, r = self._gram_schmidt(a)
        k = len(q)
        out = []
        for bcol in b:
            y = np.array([float(qi @ bcol) for qi in q])
            x = np.zeros(k, dtype=np.float64)
            for i in range(k - 1, -1, -1):
                acc = y[i]
                for j in range(i + 1, k):
                    acc -= r[j][i] * x[j]
                x[i] = acc / r[i][i]
            out.append(x)
        return out

    # -- Cholesky ------------------------------------------------------------

    def _chf(self, a: Columns) -> Columns:
        """Left-looking column Cholesky; returns the upper factor U with
        U'U = A (matching R's chol)."""
        check_symmetric("chf", a)
        n = ncols(a)
        lower: list[np.ndarray] = []
        for j in range(n):
            v = np.array(a[j], dtype=np.float64, copy=True)
            for k in range(j):
                ljk = lower[k][j]
                if ljk != 0.0:
                    v -= lower[k] * ljk
            d = v[j]
            if d <= 0.0:
                raise SingularMatrixError(
                    "chf: matrix is not positive definite")
            col = v / math.sqrt(d)
            col[:j] = 0.0
            lower.append(col)
        return self._tra(lower)

    # -- symmetric eigendecomposition (cyclic Jacobi) -------------------------

    def _jacobi(self, a: Columns) -> tuple[np.ndarray, list[np.ndarray]]:
        check_symmetric("evc/evl", a)
        n = ncols(a)
        work = _copy(a)
        vectors = _identity_columns(n)
        scale = max(float(np.abs(col).max()) for col in work) or 1.0
        for _ in range(_JACOBI_SWEEPS):
            off = 0.0
            for p in range(n - 1):
                for q in range(p + 1, n):
                    apq = work[q][p]
                    if abs(apq) <= 1e-14 * scale:
                        continue
                    off = max(off, abs(apq))
                    app, aqq = work[p][p], work[q][q]
                    tau = (aqq - app) / (2.0 * apq)
                    t = math.copysign(1.0,
                                      tau) / (abs(tau) +
                                              math.sqrt(1.0 + tau * tau))
                    c = 1.0 / math.sqrt(1.0 + t * t)
                    s = t * c
                    # Column rotation (vectorized whole-column update).
                    colp = work[p] * c - work[q] * s
                    colq = work[p] * s + work[q] * c
                    work[p], work[q] = colp, colq
                    # Restore symmetry: rows p and q mirror columns p and q.
                    for j in range(n):
                        if j == p or j == q:
                            continue
                        work[j][p] = work[p][j]
                        work[j][q] = work[q][j]
                    app_new = c * c * app - 2 * c * s * apq + s * s * aqq
                    aqq_new = s * s * app + 2 * c * s * apq + c * c * aqq
                    work[p][p] = app_new
                    work[q][q] = aqq_new
                    work[p][q] = 0.0
                    work[q][p] = 0.0
                    vp = vectors[p] * c - vectors[q] * s
                    vq = vectors[p] * s + vectors[q] * c
                    vectors[p], vectors[q] = vp, vq
            if off <= 1e-13 * scale:
                values = np.array([work[j][j] for j in range(n)])
                order = np.argsort(-np.abs(values), kind="stable")
                return values[order], [vectors[j] for j in order]
        raise ConvergenceError("evc/evl: Jacobi iteration did not converge")

    def _evl(self, a: Columns) -> Columns:
        values, _ = self._jacobi(a)
        return [values]

    def _evc(self, a: Columns) -> Columns:
        _, vectors = self._jacobi(a)
        return vectors

    # -- SVD (one-sided Jacobi / Hestenes) ------------------------------------

    def _hestenes(self, a: Columns) -> tuple[list[np.ndarray], np.ndarray,
                                             list[np.ndarray]]:
        """One-sided Jacobi SVD: orthogonalize column pairs with plane
        rotations (pure column operations).  Returns (U columns with norm
        sigma, sigma, V columns), sorted by decreasing sigma."""
        k = ncols(a)
        u = _copy(a)
        v = _identity_columns(k)
        norm_scale = max(float(np.linalg.norm(col)) for col in a) or 1.0
        for _ in range(_SVD_SWEEPS):
            rotated = False
            for p in range(k - 1):
                for q in range(p + 1, k):
                    alpha = float(u[p] @ u[p])
                    beta = float(u[q] @ u[q])
                    gamma = float(u[p] @ u[q])
                    if abs(gamma) <= 1e-14 * norm_scale * norm_scale:
                        continue
                    if abs(gamma) <= 1e-13 * math.sqrt(alpha * beta):
                        continue
                    rotated = True
                    zeta = (beta - alpha) / (2.0 * gamma)
                    t = math.copysign(1.0, zeta) / (
                        abs(zeta) + math.sqrt(1.0 + zeta * zeta))
                    c = 1.0 / math.sqrt(1.0 + t * t)
                    s = c * t
                    up = c * u[p] - s * u[q]
                    uq = s * u[p] + c * u[q]
                    u[p], u[q] = up, uq
                    vp = c * v[p] - s * v[q]
                    vq = s * v[p] + c * v[q]
                    v[p], v[q] = vp, vq
            if not rotated:
                break
        else:
            raise ConvergenceError(
                "svd: one-sided Jacobi did not converge")
        sigma = np.array([float(np.linalg.norm(col)) for col in u])
        order = np.argsort(-sigma, kind="stable")
        return ([u[j] for j in order], sigma[order], [v[j] for j in order])

    def _dsv(self, a: Columns) -> Columns:
        _, sigma, _ = self._hestenes(a)
        k = len(sigma)
        out = []
        for j in range(k):
            col = np.zeros(k, dtype=np.float64)
            col[j] = sigma[j]
            out.append(col)
        return out

    def _vsv(self, a: Columns) -> Columns:
        _, _, v = self._hestenes(a)
        return v

    def _usv(self, a: Columns) -> Columns:
        """Full left singular vectors (n x n): economy U from the Hestenes
        sweep, completed to an orthonormal basis with Gram-Schmidt."""
        n = nrows(a)
        if n > 4096:
            raise UnsupportedByBackendError(
                f"usv on {n} rows would materialize an {n}x{n} result; "
                "use the MKL backend or reduce the input")
        u_scaled, sigma, _ = self._hestenes(a)
        tolerance = 1e-12 * (sigma[0] if len(sigma) else 1.0)
        basis: list[np.ndarray] = []
        for col, s in zip(u_scaled, sigma):
            if s > tolerance:
                basis.append(col / s)
        # Complete the basis against unit probes.
        probe = 0
        while len(basis) < n and probe < n:
            v = np.zeros(n, dtype=np.float64)
            v[probe] = 1.0
            for existing in basis:
                v -= float(existing @ v) * existing
            norm = float(np.linalg.norm(v))
            if norm > 1e-10:
                basis.append(v / norm)
            probe += 1
        if len(basis) < n:
            raise LinAlgError("usv: failed to complete orthonormal basis")
        return basis
