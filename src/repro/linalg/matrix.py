"""Column-list matrix representation and shared validation.

``Columns`` is the kernel-level matrix type: a list of aligned float64
arrays, one per matrix column.  This is a zero-copy view of the BATs of an
application part, so the BAT backend can compute on relation storage
directly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.opspec import OpSpec

Columns = list
"""Type alias: ``list[np.ndarray]`` of aligned float64 columns."""


def nrows(columns: Sequence[np.ndarray]) -> int:
    """Number of matrix rows (0 for an empty column list)."""
    return len(columns[0]) if columns else 0


def ncols(columns: Sequence[np.ndarray]) -> int:
    """Number of matrix columns."""
    return len(columns)


def as_columns(values) -> Columns:
    """Coerce a 2-D array / nested list into a column list."""
    dense = np.asarray(values, dtype=np.float64)
    if dense.ndim == 1:
        dense = dense.reshape(-1, 1)
    if dense.ndim != 2:
        raise ShapeError(f"expected a matrix, got {dense.ndim} dimensions")
    return [np.ascontiguousarray(dense[:, j]) for j in range(dense.shape[1])]


def columns_to_dense(columns: Sequence[np.ndarray]) -> np.ndarray:
    """Materialize columns into a dense (n, k) array (test/diagnostic aid)."""
    if not columns:
        return np.empty((0, 0))
    return np.column_stack(columns)


def columns_allclose(a: Sequence[np.ndarray], b: Sequence[np.ndarray],
                     rtol: float = 1e-9, atol: float = 1e-9) -> bool:
    """Element-wise closeness of two column matrices."""
    if ncols(a) != ncols(b) or nrows(a) != nrows(b):
        return False
    return all(np.allclose(ca, cb, rtol=rtol, atol=atol)
               for ca, cb in zip(a, b))


def check_dims(spec: OpSpec, a: Sequence[np.ndarray],
               b: Sequence[np.ndarray] | None = None) -> None:
    """Enforce the dimension preconditions of an operation (paper Table 1)."""
    na, ka = nrows(a), ncols(a)
    if ka == 0:
        raise ShapeError(f"{spec.name}: empty application part")
    if na == 0:
        raise ShapeError(f"{spec.name}: matrix has no rows")
    if spec.square and na != ka:
        raise ShapeError(
            f"{spec.name} requires a square matrix, got {na}x{ka}")
    if spec.tall and na < ka:
        raise ShapeError(
            f"{spec.name} requires nrows >= ncols, got {na}x{ka}")
    if spec.arity == 2:
        if b is None:
            raise ShapeError(f"{spec.name} is binary; second matrix missing")
        nb, kb = nrows(b), ncols(b)
        if kb == 0 or nb == 0:
            raise ShapeError(f"{spec.name}: empty second matrix")
        if spec.same_shape and (na != nb or ka != kb):
            raise ShapeError(
                f"{spec.name} requires equal shapes, got {na}x{ka} "
                f"and {nb}x{kb}")
        if spec.inner_dims and ka != nb:
            raise ShapeError(
                f"{spec.name} requires ncols(a) == nrows(b), got "
                f"{na}x{ka} and {nb}x{kb}")
        if spec.same_rows and na != nb:
            raise ShapeError(
                f"{spec.name} requires equal row counts, got {na} and {nb}")
        if spec.same_cols and ka != kb:
            raise ShapeError(
                f"{spec.name} requires equal column counts, got {ka} "
                f"and {kb}")
    elif b is not None:
        raise ShapeError(f"{spec.name} is unary; got a second matrix")


def check_symmetric(name: str, columns: Sequence[np.ndarray],
                    tolerance: float = 1e-8) -> None:
    """Check symmetry of a square column matrix (for chf, Jacobi eigen)."""
    dense = columns_to_dense(columns)
    if not np.allclose(dense, dense.T, atol=tolerance,
                       rtol=tolerance):
        raise ShapeError(f"{name} requires a symmetric matrix")
