"""Instrumented transforms between column lists and dense arrays.

The MKL delegation path must copy BAT columns into one contiguous array of
doubles and copy results back (paper §7.3); Fig. 14 measures exactly this
overhead.  Every byte and second spent here is recorded in a
:class:`TransformStats` so benchmarks can report the transformation share.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


@dataclass
class TransformStats:
    """Accumulated cost of column <-> dense transformations."""

    copy_in_seconds: float = 0.0
    copy_out_seconds: float = 0.0
    kernel_seconds: float = 0.0
    bytes_in: int = 0
    bytes_out: int = 0
    calls: int = 0

    def reset(self) -> None:
        self.copy_in_seconds = 0.0
        self.copy_out_seconds = 0.0
        self.kernel_seconds = 0.0
        self.bytes_in = 0
        self.bytes_out = 0
        self.calls = 0

    @property
    def transform_seconds(self) -> float:
        return self.copy_in_seconds + self.copy_out_seconds

    @property
    def total_seconds(self) -> float:
        return self.transform_seconds + self.kernel_seconds

    def transform_share(self) -> float:
        """Fraction of total time spent copying (the Fig. 14 metric)."""
        total = self.total_seconds
        if total == 0.0:
            return 0.0
        return self.transform_seconds / total

    def merged(self, other: "TransformStats") -> "TransformStats":
        return TransformStats(
            self.copy_in_seconds + other.copy_in_seconds,
            self.copy_out_seconds + other.copy_out_seconds,
            self.kernel_seconds + other.kernel_seconds,
            self.bytes_in + other.bytes_in,
            self.bytes_out + other.bytes_out,
            self.calls + other.calls,
        )


def to_dense(columns: Sequence[np.ndarray],
             stats: TransformStats | None = None) -> np.ndarray:
    """Copy a column list into one contiguous (n, k) float64 array.

    This is the "copy BATs to an MKL compatible format" step; the copy is
    explicit and measured.
    """
    start = time.perf_counter()
    n = len(columns[0]) if columns else 0
    dense = np.empty((n, len(columns)), dtype=np.float64, order="F")
    for j, col in enumerate(columns):
        dense[:, j] = col
    if stats is not None:
        stats.copy_in_seconds += time.perf_counter() - start
        stats.bytes_in += dense.nbytes
    return dense


def from_dense(dense: np.ndarray,
               stats: TransformStats | None = None) -> list[np.ndarray]:
    """Copy a dense result back into per-column arrays (BAT tails)."""
    start = time.perf_counter()
    if dense.ndim == 0:
        columns = [np.array([float(dense)], dtype=np.float64)]
    elif dense.ndim == 1:
        columns = [np.array(dense, dtype=np.float64, copy=True)]
    else:
        columns = [np.ascontiguousarray(dense[:, j], dtype=np.float64)
                   for j in range(dense.shape[1])]
    if stats is not None:
        stats.copy_out_seconds += time.perf_counter() - start
        stats.bytes_out += sum(c.nbytes for c in columns)
    return columns
