"""Element-wise kernel registry and kernel programs.

This module is the *kernel stage* of the staged RMA execution pipeline
(prepare → kernel → merge, see :mod:`repro.core.ops`).  Instead of a single
operation, the kernel stage executes a :class:`KernelProgram`: a sequence of
:class:`KernelStep`\\ s over shared prepared inputs, where each step reads
its operands from numbered *slots* (prepared inputs first, then prior step
results) and appends its own result.  A plain RMA is the one-step program;
a fused element-wise chain (:class:`repro.plan.nodes.FusedRma`) is a
multi-step program over the chain's leaf inputs with every intermediate
relation elided.

The registry maps operation names to vectorized ndarray kernels:

* ``add``/``sub``/``emu`` dispatch through the backend policy exactly like
  the monolithic path did (BAT kernels for linear operations, including the
  sparse-column fast path), so fused and unfused execution are bit-identical
  — fusion elides *materialization*, never changes arithmetic;
* the scalar variants ``sadd``/``ssub``/``smul``/``sdiv`` are direct numpy
  ufuncs
  (no backend round trip — a scalar step inside a fused chain costs one
  whole-column operation);
* any other operation name falls back to the generic backend dispatcher,
  which is how the single-step programs of ``execute_rma`` run every
  Table 2 operation.

New kernels can be added with :func:`register_kernel`; the plan layer's
fusion rule only fuses operations listed in
:data:`repro.opspec.FUSABLE_OPS`.

**Morsel-parallel execution** (:func:`run_program_parallel`): programs
whose steps are all element-wise (exactly the fusable set) are
row-decomposable — every output element depends on one input row only —
so the program can run once per morsel over column *slices* and write
into preallocated result columns at the morsel's offsets (a
deterministic, chunk-ordered merge).  Bit-identity with
:func:`run_program` is preserved by making every data-dependent decision
on the *whole* columns before chunking: the backend choice uses the full
shapes, and ``add``'s sparse/dense routing samples the full input
columns, so each morsel applies the exact per-element function the serial
pass would.  Programs with any non-decomposable step (or an ``add`` over
an intermediate slot on the BAT backend, whose density sample would need
the materialized intermediate) fall back to the serial path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import RmaError
from repro.linalg.matrix import Columns
from repro.opspec import FUSABLE_OPS, spec_of

# A kernel takes (a_columns, b_columns | None, scalar | None, policy) and
# returns the result columns.  ``policy`` is the backend policy of the
# active RmaConfig (duck-typed to avoid an import cycle with repro.core).
Kernel = Callable[[Columns, Optional[Columns], Optional[float], object],
                  Columns]


@dataclass(frozen=True)
class KernelStep:
    """One step of a kernel program.

    ``left``/``right`` are slot indexes: slots ``0 .. n_inputs - 1`` hold
    the prepared inputs' application columns, slot ``n_inputs + j`` holds
    the result of step ``j``.  ``right`` is ``None`` for unary steps;
    ``scalar`` carries the constant of scalar variants.
    """

    op: str
    left: int
    right: int | None = None
    scalar: float | None = None


@dataclass(frozen=True)
class KernelProgram:
    """A sequence of element-wise kernel steps over shared inputs.

    The last step's result is the program's base result.  Programs are
    value-objects (hashable), so plan nodes can embed them.
    """

    n_inputs: int
    steps: tuple[KernelStep, ...]

    @classmethod
    def single(cls, op: str, binary: bool,
               scalar: float | None = None) -> "KernelProgram":
        """The one-step program executing a plain RMA operation."""
        return cls(2 if binary else 1,
                   (KernelStep(op, 0, 1 if binary else None, scalar),))


def _shape(columns: Columns) -> tuple[int, int]:
    return (len(columns[0]) if columns else 0, len(columns))


def _backend_kernel(op: str) -> Kernel:
    """Generic kernel: choose a backend by policy and run the operation.

    Mirrors the monolithic ``execute_rma`` dispatch, including the
    symmetric (dsyrk-style) fast path of ``cpd`` over identical columns.
    """

    def kernel(a: Columns, b: Columns | None, scalar: float | None,
               policy) -> Columns:
        if b is None:
            return policy.choose(op, _shape(a)).compute(op, a)
        if op == "cpd" and _same_columns(a, b):
            b = a
        return policy.choose(op, _shape(a), _shape(b)).compute(op, a, b)

    return kernel


def _same_columns(a: Columns, b: Columns) -> bool:
    return len(a) == len(b) and all(x is y for x, y in zip(a, b))


def _scalar_kernel(op: str, fn) -> Kernel:
    def kernel(a: Columns, b: Columns | None, scalar: float | None,
               policy) -> Columns:
        if scalar is None:
            raise RmaError(f"{op} requires a scalar value")
        value = float(scalar)
        return [fn(np.asarray(col, dtype=np.float64), value) for col in a]

    return kernel


KERNELS: dict[str, Kernel] = {
    "add": _backend_kernel("add"),
    "sub": _backend_kernel("sub"),
    "emu": _backend_kernel("emu"),
    "sadd": _scalar_kernel("sadd", lambda col, v: col + v),
    "ssub": _scalar_kernel("ssub", lambda col, v: col - v),
    "smul": _scalar_kernel("smul", lambda col, v: col * v),
    "sdiv": _scalar_kernel("sdiv", lambda col, v: col / v),
}
"""Registry: operation name -> vectorized ndarray kernel."""


def register_kernel(name: str, kernel: Kernel) -> None:
    """Register (or replace) a kernel under an operation name."""
    KERNELS[name.lower()] = kernel


def kernel_for(name: str) -> Kernel:
    """The registered kernel, or the generic backend dispatcher."""
    key = name.lower()
    kernel = KERNELS.get(key)
    if kernel is None:
        spec_of(key)  # raise early on unknown operations
        kernel = _backend_kernel(key)
        KERNELS[key] = kernel
    return kernel


def run_program(program: KernelProgram, inputs: Sequence[Columns],
                policy) -> Columns:
    """Execute a kernel program over prepared inputs; returns base columns.

    ``inputs`` must hold exactly ``program.n_inputs`` column lists, all in
    the same (already aligned) row order.
    """
    if len(inputs) != program.n_inputs:
        raise RmaError(
            f"kernel program expects {program.n_inputs} inputs, "
            f"got {len(inputs)}")
    if not program.steps:
        raise RmaError("kernel program has no steps")
    slots: list[Columns] = list(inputs)
    for step in program.steps:
        if not 0 <= step.left < len(slots):
            raise RmaError(f"kernel step reads unknown slot {step.left}")
        a = slots[step.left]
        b = None
        if step.right is not None:
            if not 0 <= step.right < len(slots):
                raise RmaError(
                    f"kernel step reads unknown slot {step.right}")
            b = slots[step.right]
        slots.append(kernel_for(step.op)(a, b, step.scalar, policy))
    return slots[-1]


# -- morsel-parallel execution ------------------------------------------------

_SCALAR_UFUNCS = {"sadd": np.add, "ssub": np.subtract,
                  "smul": np.multiply, "sdiv": np.divide}

# A chunk kernel maps the current slot list (column *slices*) to the
# step's result columns for that morsel.
_ChunkKernel = Callable[[list], Columns]


def _chunk_kernels(program: KernelProgram, inputs: Sequence[Columns],
                   policy) -> "tuple[list[_ChunkKernel], int] | None":
    """(per-step morsel kernels, result width), or None → run serial.

    Every data-dependent decision is taken here, over the *full* inputs,
    so the per-morsel functions are pure element maps and the chunked run
    is bit-identical to the serial one.
    """
    if not program.steps or len(inputs) != program.n_inputs:
        return None
    n = len(inputs[0][0]) if inputs and inputs[0] else 0
    widths = [len(cols) for cols in inputs]
    kernels: list[_ChunkKernel] = []
    for step in program.steps:
        op = step.op
        if op not in FUSABLE_OPS or not 0 <= step.left < len(widths):
            return None
        if op in _SCALAR_UFUNCS:
            if step.right is not None or step.scalar is None:
                return None
            ufunc = _SCALAR_UFUNCS[op]
            value = float(step.scalar)

            def kernel(slots, left=step.left, ufunc=ufunc,
                       value=value) -> Columns:
                return [ufunc(np.asarray(col, dtype=np.float64), value)
                        for col in slots[left]]

            kernels.append(kernel)
            widths.append(widths[step.left])
            continue
        # binary element-wise: add / sub / emu
        if step.right is None or not 0 <= step.right < len(widths):
            return None
        if op == "sub":
            def kernel(slots, left=step.left, right=step.right) -> Columns:
                return [x - y for x, y in zip(slots[left], slots[right])]
        elif op == "emu":
            def kernel(slots, left=step.left, right=step.right) -> Columns:
                return [x * y for x, y in zip(slots[left], slots[right])]
        elif op == "add":
            # Replicate the backend's sparse/dense routing globally.
            backend = policy.choose("add", (n, widths[step.left]),
                                    (n, widths[step.right]))
            if getattr(backend, "name", None) == "bat":
                if (step.left >= program.n_inputs
                        or step.right >= program.n_inputs):
                    # The density sample needs the full columns; an
                    # intermediate slot never materializes them.
                    return None
                from repro.bat.compression import (
                    SPARSE_DENSITY_THRESHOLD,
                    estimate_density,
                    sparse_add,
                )
                sparse_flags = tuple(
                    estimate_density(x) < SPARSE_DENSITY_THRESHOLD
                    and estimate_density(y) < SPARSE_DENSITY_THRESHOLD
                    for x, y in zip(inputs[step.left], inputs[step.right]))

                def kernel(slots, left=step.left, right=step.right,
                           flags=sparse_flags,
                           sparse_add=sparse_add) -> Columns:
                    return [sparse_add(x, y) if sparse else x + y
                            for x, y, sparse in zip(slots[left],
                                                    slots[right], flags)]
            else:
                def kernel(slots, left=step.left,
                           right=step.right) -> Columns:
                    return [x + y for x, y in zip(slots[left],
                                                  slots[right])]
        else:
            # A fusable binary op this planner has no chunk kernel for
            # (e.g. added later via register_kernel): run serial rather
            # than guess its semantics.
            return None
        kernels.append(kernel)
        widths.append(widths[step.left])
    return kernels, widths[-1]


def run_program_parallel(program: KernelProgram, inputs: Sequence[Columns],
                         policy, parallel) -> Columns:
    """Execute a kernel program morsel-parallel on the shared worker pool.

    Falls back to :func:`run_program` (same results, same errors) whenever
    the program is not row-decomposable, the input is too small to split
    under ``parallel.min_morsel_rows``, or the caller already runs on a
    pool worker.
    """
    from repro.engine.morsel import slice_columns
    from repro.engine.parallel import plan_morsels
    from repro.engine.pool import map_chunks

    if not inputs or not inputs[0]:
        return run_program(program, inputs, policy)
    n = len(inputs[0][0])
    morsels = plan_morsels(n, parallel)
    if morsels is None:
        return run_program(program, inputs, policy)
    planned = _chunk_kernels(program, inputs, policy)
    if planned is None:
        return run_program(program, inputs, policy)
    kernels, width_out = planned
    outs = [np.empty(n, dtype=np.float64) for _ in range(width_out)]

    def run(morsel) -> None:
        slots: list[Columns] = [slice_columns(cols, morsel)
                                for cols in inputs]
        for kernel in kernels:
            slots.append(kernel(slots))
        for out, col in zip(outs, slots[-1]):
            out[morsel.start:morsel.stop] = col

    map_chunks(run, morsels)
    return outs
