"""Matrix kernels over column lists, with two interchangeable backends.

A matrix is represented as a list of aligned float64 numpy columns — the
application part of a relation viewed column-wise, exactly as the BATs hold
it.  Two backends compute the base results:

* :class:`~repro.linalg.bat_backend.BatBackend` — no-copy algorithms written
  as whole-column operations (the paper's Alg. 2 style);
* :class:`~repro.linalg.mkl_backend.MklBackend` — copies columns to a
  contiguous dense array, delegates to numpy/LAPACK (the paper's MKL path),
  and copies the result back; all three phases are instrumented.

:class:`~repro.linalg.policy.BackendPolicy` chooses between them per
operation, as §7.3/§8.6 describe.
"""

from repro.linalg.matrix import Columns, ncols, nrows, columns_allclose
from repro.linalg.bat_backend import BatBackend
from repro.linalg.mkl_backend import MklBackend
from repro.linalg.transform import TransformStats, from_dense, to_dense
from repro.linalg.policy import BackendPolicy

__all__ = [
    "Columns",
    "nrows",
    "ncols",
    "columns_allclose",
    "BatBackend",
    "MklBackend",
    "TransformStats",
    "to_dense",
    "from_dense",
    "BackendPolicy",
]
