"""repro — relational matrix algebra (RMA) in a column store.

Reproduction of Dolmatova, Augsten, Böhlen: "A Relational Matrix Algebra
and its Implementation in a Column Store" (SIGMOD 2020).

Quickstart — one front door, three surfaces, one plan
-----------------------------------------------------

:func:`connect` opens a session-scoped :class:`Database`; everything users
write against it compiles into the same logical plan IR and runs on the
same executor, so every surface gets plan-level optimization (element-wise
kernel fusion, common-subexpression caching, order-aware planning, the
morsel-parallel engine):

>>> import repro
>>> rating = repro.Relation.from_rows(
...     ["User", "Balto", "Heat"],
...     [("Ann", 2.0, 1.0), ("Tom", 1.0, 1.0)])
>>> db = repro.connect()
>>> db.register("rating", rating)

1. **Matrix expressions** (the primary surface): lazy handles with
   operator overloading — ``@`` is matrix multiplication, ``+``/``-``/
   ``*`` are element-wise, scalars fuse into the chain, ``.T`` transposes,
   and every Table 2 operation is a method:

   >>> m = db.matrix("rating", by="User")
   >>> result = (m.inv() @ m).collect()
   >>> print((2.0 * m - m).explain())      # one fused kernel pass

2. **SQL** (the paper's §7.2 front end), sharing the same caches:

   >>> db.execute("SELECT * FROM INV(rating BY User)")

3. **Eager functions** — each call is a one-op expression, collected
   immediately on the same executor:

   >>> repro.rma.inv(rating, by="User")

All three produce bit-identical relations; the expression and SQL surfaces
additionally optimize whole chains.  ``Session`` (the pre-redesign SQL
entry point) remains as a deprecated alias of :class:`Database`.

Subpackages: :mod:`repro.api` (the expression API), :mod:`repro.bat`
(column store), :mod:`repro.relational` (relational algebra),
:mod:`repro.plan` (shared plan layer), :mod:`repro.linalg` (kernel
backends), :mod:`repro.core` (the RMA operations), :mod:`repro.sql` (SQL
front end), :mod:`repro.engine` (morsel-parallel engine),
:mod:`repro.baselines`, :mod:`repro.data`, :mod:`repro.workloads`,
:mod:`repro.bench`.
"""

from repro.api import Database, Matrix, connect
from repro import core as rma
from repro.core import RmaConfig
from repro.core.config import ParallelConfig
from repro.relational.relation import Relation
from repro.sql.session import Session  # deprecated alias of Database

__version__ = "2.0.0"

__all__ = [
    "connect",
    "Database",
    "Matrix",
    "Relation",
    "RmaConfig",
    "ParallelConfig",
    "rma",
    "Session",
    "__version__",
]
