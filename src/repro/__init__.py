"""repro — relational matrix algebra (RMA) in a column store.

Reproduction of Dolmatova, Augsten, Böhlen: "A Relational Matrix Algebra
and its Implementation in a Column Store" (SIGMOD 2020).

The three entry points most users need:

>>> from repro import Relation, Session, rma
>>> r = Relation.from_rows(["k", "x", "y"], [("a", 1.0, 2.0),
...                                          ("b", 3.0, 4.0)])
>>> Session()  # SQL front end with the RMA FROM-clause extension
Session(...)
>>> rma.tra(r, by="k").names
['C', 'a', 'b']

Subpackages: :mod:`repro.bat` (column store), :mod:`repro.relational`
(relational algebra), :mod:`repro.linalg` (kernel backends),
:mod:`repro.core` (the RMA operations), :mod:`repro.sql` (SQL),
:mod:`repro.baselines`, :mod:`repro.data`, :mod:`repro.workloads`,
:mod:`repro.bench`.
"""

from repro import core as rma
from repro.core import RmaConfig
from repro.relational.relation import Relation
from repro.sql.session import Session

__version__ = "1.0.0"

__all__ = ["Relation", "Session", "RmaConfig", "rma", "__version__"]
