"""Vectorized whole-column BAT operations.

These are the primitives relational and matrix operators are reduced to,
mirroring MonetDB's BAT calculus: element-wise arithmetic, comparisons that
produce candidate lists, and (left)fetchjoin for positional gathers.

A *candidate list* is a sorted ``int64`` numpy array of tail positions; it is
how MonetDB represents intermediate selections without materializing them.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.bat.bat import BAT, DataType, NIL_INT, align_check, _encode_value
from repro.bat.properties import properties_enabled
from repro.errors import BatError, TypeMismatchError

Candidates = np.ndarray
"""Sorted int64 array of selected tail positions."""


def all_candidates(n: int) -> Candidates:
    """Candidate list selecting every row of an n-row relation."""
    return np.arange(n, dtype=np.int64)


_ARITH_OPS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
    "%": np.mod,
}

_COMPARE_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "=": lambda a, b: a == b,
    "==": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _numeric_operands(a: BAT, b: BAT | int | float,
                      op: str) -> tuple[np.ndarray, np.ndarray, DataType]:
    """Coerce operands of an arithmetic op to aligned numpy arrays."""
    if not a.dtype.is_numeric:
        raise TypeMismatchError(
            f"arithmetic '{op}' requires numeric columns, got "
            f"{a.dtype.value}")
    if isinstance(b, BAT):
        if not b.dtype.is_numeric:
            raise TypeMismatchError(
                f"arithmetic '{op}' requires numeric columns, got "
                f"{b.dtype.value}")
        align_check(a, b)
        rb = b.tail
        result_int = (a.dtype is DataType.INT and b.dtype is DataType.INT)
    elif isinstance(b, (int, np.integer)) and not isinstance(b, bool):
        rb = np.int64(b)
        result_int = a.dtype is DataType.INT
    elif isinstance(b, (float, np.floating)):
        rb = np.float64(b)
        result_int = False
    else:
        raise TypeMismatchError(
            f"cannot apply '{op}' to a BAT and {type(b).__name__}")
    dtype = DataType.INT if (result_int and op not in ("/",)) else DataType.DBL
    ra = a.tail if dtype is DataType.INT else a.as_float()
    if isinstance(rb, np.ndarray) and dtype is DataType.DBL:
        rb = rb.astype(np.float64) if rb.dtype != np.float64 else rb
    return ra, rb, dtype


def binop(op: str, a: BAT, b: BAT | int | float) -> BAT:
    """Element-wise arithmetic between a BAT and a BAT or scalar."""
    func = _ARITH_OPS.get(op)
    if func is None:
        raise BatError(f"unknown arithmetic operator {op!r}")
    ra, rb, dtype = _numeric_operands(a, b, op)
    with np.errstate(divide="ignore", invalid="ignore"):
        out = func(ra, rb)
    if dtype is DataType.INT and out.dtype != np.int64:
        out = out.astype(np.int64)
    if dtype is DataType.DBL and out.dtype != np.float64:
        out = out.astype(np.float64)
    return BAT(dtype, out, a.hseqbase)


def rbinop(op: str, a: int | float, b: BAT) -> BAT:
    """Arithmetic with a scalar left operand (e.g. ``2 - column``)."""
    func = _ARITH_OPS.get(op)
    if func is None:
        raise BatError(f"unknown arithmetic operator {op!r}")
    if not b.dtype.is_numeric:
        raise TypeMismatchError(
            f"arithmetic '{op}' requires numeric columns, got "
            f"{b.dtype.value}")
    int_result = (isinstance(a, (int, np.integer))
                  and not isinstance(a, bool)
                  and b.dtype is DataType.INT and op != "/")
    dtype = DataType.INT if int_result else DataType.DBL
    rb = b.tail if dtype is DataType.INT else b.as_float()
    with np.errstate(divide="ignore", invalid="ignore"):
        out = func(a, rb)
    if out.dtype != dtype.numpy_dtype:
        out = out.astype(dtype.numpy_dtype)
    return BAT(dtype, out, b.hseqbase)


def neg(a: BAT) -> BAT:
    """Element-wise numeric negation."""
    if not a.dtype.is_numeric:
        raise TypeMismatchError(
            f"negation requires a numeric column, got {a.dtype.value}")
    return BAT(a.dtype, -a.tail, a.hseqbase)


def _comparable_operands(a: BAT, b: BAT | Any) -> tuple[Any, Any]:
    if isinstance(b, BAT):
        align_check(a, b)
        if a.dtype.is_numeric and b.dtype.is_numeric:
            return a.as_float(), b.as_float()
        if a.dtype is not b.dtype:
            raise TypeMismatchError(
                f"cannot compare {a.dtype.value} with {b.dtype.value}")
        return a.tail, b.tail
    # Scalar right operand: encode it with the BAT's own encoding.
    encoded = _encode_value(b, a.dtype)
    return a.tail, encoded


def compare(op: str, a: BAT, b: BAT | Any) -> np.ndarray:
    """Element-wise comparison producing a boolean mask."""
    func = _COMPARE_OPS.get(op)
    if func is None:
        raise BatError(f"unknown comparison operator {op!r}")
    ra, rb = _comparable_operands(a, b)
    out = func(ra, rb)
    return np.asarray(out, dtype=bool)


_RANGE_OPS = frozenset(("=", "==", "<", "<=", ">", ">="))


def thetaselect(a: BAT, op: str, value: Any,
                candidates: Candidates | None = None) -> Candidates:
    """Select positions where ``a <op> value`` holds (MonetDB thetaselect).

    If ``candidates`` is given, only those positions are considered and the
    result is a sub-list of it.  On a sorted column (``tsorted``) a range
    predicate is answered with two binary searches instead of a full scan —
    the first call pays the O(n) sortedness check, every later call is
    O(log n).
    """
    if (candidates is None and op in _RANGE_OPS and len(a) > 1
            and properties_enabled() and a.tsorted):
        result = _sorted_thetaselect(a, op, value)
        if result is not None:
            return result
    if candidates is not None:
        sub = a.fetch(candidates)
        mask = compare(op, sub, value)
        return candidates[mask]
    mask = compare(op, a, value)
    return np.nonzero(mask)[0].astype(np.int64)


def _sorted_thetaselect(a: BAT, op: str, value: Any) -> Candidates | None:
    """Binary-search selection over a sorted tail; None means fall back.

    Matches the scan semantics exactly: comparisons are on raw encoded
    values, so the INT nil sentinel (int64 min) participates as the smallest
    value, just as it does in :func:`compare`.  Nil search values (None, or
    NaN whose ordering ``searchsorted`` and ``compare`` disagree on) take
    the scan path.
    """
    encoded = _encode_value(value, a.dtype)
    if encoded is None or (isinstance(encoded, float)
                           and encoded != encoded):
        return None
    tail = a.tail
    n = len(tail)
    if op in ("=", "=="):
        lo = int(np.searchsorted(tail, encoded, side="left"))
        hi = int(np.searchsorted(tail, encoded, side="right"))
        return np.arange(lo, hi, dtype=np.int64)
    if op == "<":
        hi = int(np.searchsorted(tail, encoded, side="left"))
        return np.arange(0, hi, dtype=np.int64)
    if op == "<=":
        hi = int(np.searchsorted(tail, encoded, side="right"))
        return np.arange(0, hi, dtype=np.int64)
    if op == ">":
        lo = int(np.searchsorted(tail, encoded, side="right"))
        return np.arange(lo, n, dtype=np.int64)
    lo = int(np.searchsorted(tail, encoded, side="left"))
    return np.arange(lo, n, dtype=np.int64)


def mask_to_candidates(mask: np.ndarray,
                       candidates: Candidates | None = None) -> Candidates:
    """Convert a boolean mask (over rows or over candidates) to candidates."""
    positions = np.nonzero(np.asarray(mask, dtype=bool))[0].astype(np.int64)
    if candidates is None:
        return positions
    return candidates[positions]


def fetchjoin(a: BAT, positions: Candidates) -> BAT:
    """Leftfetchjoin: project BAT ``a`` through a positions array.

    This is the paper's ``X ↓ Y``: reorder/select the tail of ``a`` by the
    positions derived from another column's order.
    """
    return a.fetch(positions)


def materialize(a: BAT, candidates: Candidates | None) -> BAT:
    """Apply a candidate list (no-op when the candidate list is None)."""
    if candidates is None:
        return a
    return a.fetch(candidates)


def ifthenelse(mask: np.ndarray, then_bat: BAT, else_bat: BAT) -> BAT:
    """Element-wise conditional (used by CASE evaluation)."""
    align_check(then_bat, else_bat)
    if then_bat.dtype is not else_bat.dtype:
        if then_bat.dtype.is_numeric and else_bat.dtype.is_numeric:
            then_bat = then_bat.cast(DataType.DBL)
            else_bat = else_bat.cast(DataType.DBL)
        else:
            raise TypeMismatchError(
                "CASE branches have incompatible types "
                f"{then_bat.dtype.value} / {else_bat.dtype.value}")
    out = np.where(np.asarray(mask, dtype=bool), then_bat.tail,
                   else_bat.tail)
    if then_bat.dtype is DataType.STR:
        out = out.astype(object)
    return BAT(then_bat.dtype, out.astype(then_bat.dtype.numpy_dtype),
               then_bat.hseqbase)


def logical_and(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.logical_and(a, b)


def logical_or(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.logical_or(a, b)


def logical_not(a: np.ndarray) -> np.ndarray:
    return np.logical_not(a)


def scalar_udf(func: Callable[..., Any], *bats: BAT,
               dtype: DataType = DataType.DBL) -> BAT:
    """Apply a python scalar function element-wise (slow path, UDF-style).

    MonetDB would run a C UDF here; we keep it as the explicit slow path so
    benchmarks that include UDF work (MADlib-style) measure real overhead.
    """
    n = align_check(*bats)
    out = np.empty(n, dtype=dtype.numpy_dtype)
    columns = [b.tail for b in bats]
    for i in range(n):
        out[i] = func(*(col[i] for col in columns))
    return BAT(dtype, out, bats[0].hseqbase if bats else 0)


def math_unary(name: str, a: BAT) -> BAT:
    """Vectorized math function (sqrt, abs, exp, log, floor, ceil, ...)."""
    funcs = {
        "sqrt": np.sqrt, "abs": np.abs, "exp": np.exp, "log": np.log,
        "ln": np.log, "floor": np.floor, "ceil": np.ceil, "sin": np.sin,
        "cos": np.cos, "round": np.round,
    }
    func = funcs.get(name)
    if func is None:
        raise BatError(f"unknown math function {name!r}")
    values = a.as_float()
    with np.errstate(divide="ignore", invalid="ignore"):
        out = func(values)
    if name == "abs" and a.dtype is DataType.INT:
        return BAT(DataType.INT, out.astype(np.int64), a.hseqbase)
    return BAT(DataType.DBL, np.asarray(out, dtype=np.float64), a.hseqbase)


def power(a: BAT, exponent: float) -> BAT:
    values = a.as_float()
    return BAT(DataType.DBL, np.power(values, exponent), a.hseqbase)
