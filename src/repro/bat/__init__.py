"""Column-store substrate: BATs (binary association tables).

This package is the stand-in for the MonetDB kernel used by the paper.  A
:class:`~repro.bat.bat.BAT` is one column: a dense head of object identifiers
(OIDs) plus a typed tail of values.  Relational and matrix operators are
expressed as sequences of whole-column BAT operations (see
:mod:`repro.bat.kernels`), mirroring how MonetDB executes queries.

Physical properties and order caching
-------------------------------------

BATs are immutable, so facts about a column can never go stale.  Following
MonetDB's per-BAT property bits, every BAT lazily computes and caches four
physical properties:

* ``tsorted`` / ``trevsorted`` — tail is non-decreasing / non-increasing in
  raw encoding order (only set on nil-free DBL/STR columns, where NaN/None
  would break the total order);
* ``tkey`` — all tail values are distinct;
* ``tnonil`` — no nil entries.

Properties are derived for free where the algebra allows it: ``BAT.dense``
and ``BAT.constant`` seed them at construction, ``slice`` inherits all of
them, ``fetch`` through a sorted/unique positions array keeps order and key
bits, ``append`` of disjoint sorted runs stays sorted, and INT <-> DBL
casts keep order bits on nil-free columns.  The engine exploits them in
:func:`~repro.bat.sorting.order_by` (identity permutation for already-sorted
keys), :func:`~repro.bat.sorting.check_key` (cached-bit short-circuits and a
linear adjacent scan instead of a sort) and
:func:`~repro.bat.kernels.thetaselect` (binary search on sorted columns).

One level up, each :class:`~repro.relational.relation.Relation` memoizes the
sort permutation, inverse ranks and key-check verdict per order-schema name
tuple (``Relation.order_info``), and ``BAT.as_float`` caches the float64
view of INT columns — so repeated relational matrix operations over the
same relation sort, validate and cast once instead of per call.

The whole layer sits behind the switch in :mod:`repro.bat.properties`
(engine-level knob: ``RmaConfig.use_properties``); disabling it restores
compute-from-scratch behaviour for ablation measurements with bit-identical
results.
"""

from repro.bat.bat import BAT, DataType, NIL_INT
from repro.bat.kernels import (
    binop,
    compare,
    fetchjoin,
    materialize,
    thetaselect,
)
from repro.bat.properties import (
    properties_enabled,
    set_properties_enabled,
    use_properties,
)
from repro.bat.sorting import check_key, order_by
from repro.bat.catalog import Catalog

__all__ = [
    "BAT",
    "DataType",
    "NIL_INT",
    "binop",
    "compare",
    "fetchjoin",
    "materialize",
    "thetaselect",
    "order_by",
    "check_key",
    "Catalog",
    "properties_enabled",
    "set_properties_enabled",
    "use_properties",
]
