"""Column-store substrate: BATs (binary association tables).

This package is the stand-in for the MonetDB kernel used by the paper.  A
:class:`~repro.bat.bat.BAT` is one column: a dense head of object identifiers
(OIDs) plus a typed tail of values.  Relational and matrix operators are
expressed as sequences of whole-column BAT operations (see
:mod:`repro.bat.kernels`), mirroring how MonetDB executes queries.
"""

from repro.bat.bat import BAT, DataType, NIL_INT
from repro.bat.kernels import (
    binop,
    compare,
    fetchjoin,
    materialize,
    thetaselect,
)
from repro.bat.sorting import check_key, order_by
from repro.bat.catalog import Catalog

__all__ = [
    "BAT",
    "DataType",
    "NIL_INT",
    "binop",
    "compare",
    "fetchjoin",
    "materialize",
    "thetaselect",
    "order_by",
    "check_key",
    "Catalog",
]
