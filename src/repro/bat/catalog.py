"""Named-table catalog.

A minimal database catalog: case-insensitive table names mapped to relations.
The SQL session layer and the examples use it as "the database".

Every mutation bumps a monotone **catalog version** and stamps the affected
table with it.  Relations themselves are immutable — a table "changes" only
by being rebound to a new relation — so a table's version number uniquely
identifies its current contents.  The session-scoped plan/result cache
(:mod:`repro.plan.cache`) stamps cached subplan results with the versions
of the tables they scan and revalidates on lookup: any
``CREATE``/``INSERT``/``register``/``DROP`` invalidates exactly the entries
that read the mutated table.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import CatalogError


class Catalog:
    """Case-insensitive mapping from table names to relations."""

    def __init__(self):
        self._tables: dict[str, Any] = {}
        self._display_names: dict[str, str] = {}
        self._versions: dict[str, int] = {}
        self._version_counter = 0

    @staticmethod
    def _key(name: str) -> str:
        return name.lower()

    def create(self, name: str, relation: Any,
               replace: bool = False) -> None:
        """Register a relation under ``name``.

        Raises :class:`CatalogError` if the name is taken and ``replace`` is
        false.
        """
        key = self._key(name)
        if key in self._tables and not replace:
            raise CatalogError(f"table {name!r} already exists")
        self._tables[key] = relation
        self._display_names[key] = name
        self._version_counter += 1
        self._versions[key] = self._version_counter

    def drop(self, name: str, if_exists: bool = False) -> None:
        key = self._key(name)
        if key not in self._tables:
            if if_exists:
                return
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[key]
        del self._display_names[key]
        del self._versions[key]
        self._version_counter += 1

    @property
    def version(self) -> int:
        """Monotone counter, bumped by every catalog mutation."""
        return self._version_counter

    def table_version(self, name: str) -> int | None:
        """The version a table was last (re)bound at; None if absent."""
        return self._versions.get(self._key(name))

    def get(self, name: str) -> Any:
        key = self._key(name)
        if key not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        return self._tables[key]

    def __contains__(self, name: str) -> bool:
        return self._key(name) in self._tables

    def __iter__(self) -> Iterator[str]:
        return iter(self._display_names.values())

    def __len__(self) -> int:
        return len(self._tables)

    def names(self) -> list[str]:
        return sorted(self._display_names.values())
