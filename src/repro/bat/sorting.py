"""Order computation over BATs.

The order schema of a relational matrix operation imposes a tuple order that
is *computed* from the data (the paper stores no ordered structures).  This
module derives that order: a stable lexicographic argsort over a list of
BATs, plus the key check the order schema must satisfy.
"""

from __future__ import annotations

import numpy as np

from repro.bat.bat import BAT, DataType
from repro.bat.properties import properties_enabled
from repro.errors import BatError, KeyViolationError


def _sort_key_array(bat: BAT) -> np.ndarray:
    """Return an array usable as an argsort key for one BAT."""
    if bat.dtype is DataType.STR:
        # Object arrays argsort correctly (python str comparison), but nils
        # (None) are not orderable; surface that as an explicit error.
        if any(v is None for v in bat.tail):
            raise BatError("cannot order by a column containing nil strings")
        return bat.tail
    return bat.tail


def order_by(bats: list[BAT]) -> np.ndarray:
    """Stable lexicographic order positions for a list of key BATs.

    The first BAT is the major key.  Implemented as repeated stable argsort
    from the minor key to the major key (radix-style), which is how column
    stores compute multi-column orders without materializing row tuples.
    """
    if not bats:
        raise BatError("order_by requires at least one column")
    n = len(bats[0])
    for b in bats[1:]:
        if len(b) != n:
            raise BatError("order_by columns are misaligned")
    if properties_enabled() and _already_ordered(bats):
        return np.arange(n, dtype=np.int64)
    positions = np.arange(n, dtype=np.int64)
    for bat in reversed(bats):
        key = _sort_key_array(bat)[positions]
        order = np.argsort(key, kind="stable")
        positions = positions[order]
    return positions


def _require_orderable(bats: list[BAT]) -> None:
    """Raise the nil-string error the sort path would raise.

    Property short-circuits that skip :func:`_sort_key_array` must still
    surface its error, or enabling the layer would change behaviour.  The
    check is the column's (cached) ``tnonil`` bit, so it is paid once.
    """
    for bat in bats:
        if bat.dtype is DataType.STR and not bat.tnonil:
            raise BatError("cannot order by a column containing nil strings")


def _already_ordered(bats: list[BAT]) -> bool:
    """Whether storage order already is the stable lexicographic order.

    A single column gets a full (O(n), cached) sortedness check — cheaper
    than the O(n log n) argsort it avoids.  For multi-column orders only
    cached bits are consulted, so cold data pays nothing extra: the order is
    the identity when the major key is sorted and strictly increasing (the
    stable sort never reaches the minor keys), or when every column is
    sorted (rows are then lexicographically non-decreasing).
    """
    if len(bats) == 1:
        return bats[0].tsorted
    first = bats[0]
    if (first._props.get("tsorted") and first._props.get("tkey")) \
            or all(b._props.get("tsorted") for b in bats):
        _require_orderable(bats)
        return True
    return False


def rank_of(positions: np.ndarray) -> np.ndarray:
    """Inverse permutation: rank_of(order)[i] is the sorted rank of row i.

    Used by the *relative sorting* optimization for element-wise operations
    (paper §8.1): the first relation stays in storage order and the second
    relation is aligned to it via the composed permutation.
    """
    ranks = np.empty(len(positions), dtype=np.int64)
    ranks[positions] = np.arange(len(positions), dtype=np.int64)
    return ranks


def check_key(bats: list[BAT], order: np.ndarray | None = None) -> bool:
    """Check that the combined columns form a key (unique rows).

    If a precomputed order is supplied the check is a linear adjacent-equality
    scan; otherwise an order is computed first.
    """
    if not bats:
        return False
    n = len(bats[0])
    if n <= 1:
        return True
    if properties_enabled():
        verdict = _key_shortcut(bats)
        if verdict is not None:
            if order is None:
                # The sort below would have rejected nil strings; keep
                # that behaviour identical with the layer on.
                _require_orderable(bats)
            return verdict
    if order is None:
        order = order_by(bats)
    duplicate = np.ones(n - 1, dtype=bool)
    for bat in bats:
        key = bat.tail[order]
        # Object (STR) tails compare element-wise just like numeric ones;
        # None == None holds, so nil duplicates are still caught.
        eq = np.asarray(key[:-1] == key[1:], dtype=bool)
        duplicate &= eq
        if not duplicate.any():
            return True
    return not bool(duplicate.any())


def _key_shortcut(bats: list[BAT]) -> bool | None:
    """Key verdict from properties alone, without sorting; None undecided.

    A superset of a key is a key, so any column whose ``tkey`` bit is set
    settles the question.  For a single column the computed ``tkey`` is
    scan-equivalent except when it is False on a DBL nil column: np.unique
    collapses NaNs while the adjacent-equality scan keeps NaN != NaN, so
    that corner stays undecided.
    """
    for bat in bats:
        if bat._props.get("tkey"):
            return True
    if len(bats) == 1:
        bat = bats[0]
        if bat.tkey:
            return True
        if bat.dtype is not DataType.DBL or bat.tnonil:
            return False
    return None


def key_violation(names: list[str]) -> KeyViolationError:
    """The error raised when an order schema has duplicate tuples."""
    return KeyViolationError(
        f"order schema ({', '.join(names)}) does not form a key: "
        "duplicate tuples found")


def require_key(bats: list[BAT], names: list[str],
                order: np.ndarray | None = None) -> None:
    """Raise :class:`KeyViolationError` unless the columns form a key."""
    if not check_key(bats, order):
        raise key_violation(names)
