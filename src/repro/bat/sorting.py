"""Order computation over BATs.

The order schema of a relational matrix operation imposes a tuple order that
is *computed* from the data (the paper stores no ordered structures).  This
module derives that order: a stable lexicographic argsort over a list of
BATs, plus the key check the order schema must satisfy.
"""

from __future__ import annotations

import numpy as np

from repro.bat.bat import BAT, DataType
from repro.errors import BatError, KeyViolationError


def _sort_key_array(bat: BAT) -> np.ndarray:
    """Return an array usable as an argsort key for one BAT."""
    if bat.dtype is DataType.STR:
        # Object arrays argsort correctly (python str comparison), but nils
        # (None) are not orderable; surface that as an explicit error.
        if any(v is None for v in bat.tail):
            raise BatError("cannot order by a column containing nil strings")
        return bat.tail
    return bat.tail


def order_by(bats: list[BAT]) -> np.ndarray:
    """Stable lexicographic order positions for a list of key BATs.

    The first BAT is the major key.  Implemented as repeated stable argsort
    from the minor key to the major key (radix-style), which is how column
    stores compute multi-column orders without materializing row tuples.
    """
    if not bats:
        raise BatError("order_by requires at least one column")
    n = len(bats[0])
    for b in bats[1:]:
        if len(b) != n:
            raise BatError("order_by columns are misaligned")
    positions = np.arange(n, dtype=np.int64)
    for bat in reversed(bats):
        key = _sort_key_array(bat)[positions]
        order = np.argsort(key, kind="stable")
        positions = positions[order]
    return positions


def rank_of(positions: np.ndarray) -> np.ndarray:
    """Inverse permutation: rank_of(order)[i] is the sorted rank of row i.

    Used by the *relative sorting* optimization for element-wise operations
    (paper §8.1): the first relation stays in storage order and the second
    relation is aligned to it via the composed permutation.
    """
    ranks = np.empty(len(positions), dtype=np.int64)
    ranks[positions] = np.arange(len(positions), dtype=np.int64)
    return ranks


def check_key(bats: list[BAT], order: np.ndarray | None = None) -> bool:
    """Check that the combined columns form a key (unique rows).

    If a precomputed order is supplied the check is a linear adjacent-equality
    scan; otherwise an order is computed first.
    """
    if not bats:
        return False
    n = len(bats[0])
    if n <= 1:
        return True
    if order is None:
        order = order_by(bats)
    duplicate = np.ones(n - 1, dtype=bool)
    for bat in bats:
        key = bat.tail[order]
        if bat.dtype is DataType.STR:
            eq = np.array([key[i] == key[i + 1] for i in range(n - 1)],
                          dtype=bool)
        else:
            eq = key[:-1] == key[1:]
        duplicate &= eq
        if not duplicate.any():
            return True
    return not bool(duplicate.any())


def require_key(bats: list[BAT], names: list[str],
                order: np.ndarray | None = None) -> None:
    """Raise :class:`KeyViolationError` unless the columns form a key."""
    if not check_key(bats, order):
        raise KeyViolationError(
            f"order schema ({', '.join(names)}) does not form a key: "
            "duplicate tuples found")
