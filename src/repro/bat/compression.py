"""Sparse-aware column arithmetic and RLE compression.

The paper's Table 5 shows that MonetDB's built-in compression makes ``add``
over sparse relations up to ~2x faster than over dense relations.  We
reproduce the mechanism: columns with many zeros are processed through a
nonzero-index path whose cost is proportional to the number of nonzero
entries, and an RLE codec provides the storage-side counterpart.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bat.bat import BAT, DataType
from repro.errors import BatError

SPARSE_SAMPLE = 1024
"""How many elements to sample when estimating column density."""

SPARSE_DENSITY_THRESHOLD = 0.02
"""Estimated nonzero fraction below which the sparse add path is used.

MonetDB's storage-level compression makes sparse adds cheaper from ~10%
zeros onward (paper Table 5).  Substrate difference: numpy's dense add is
already memory-bandwidth optimal, so an index-based sparse path cannot
beat it except on essentially empty columns; the threshold is set so the
engine never regresses.  Table 5 is therefore a *deviating* result in this
reproduction — see EXPERIMENTS.md.
"""


def estimate_density(values: np.ndarray, sample: int = SPARSE_SAMPLE) -> float:
    """Estimate the nonzero fraction of a numeric array from a sample."""
    n = len(values)
    if n == 0:
        return 0.0
    if n <= sample:
        return float(np.count_nonzero(values)) / n
    # Deterministic strided sample: density estimation must not perturb
    # benchmark runs with RNG state.
    step = max(1, n // sample)
    probe = values[::step]
    return float(np.count_nonzero(probe)) / len(probe)


def sparse_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Add two arrays touching only nonzero positions.

    Cost is O(nnz(a) + nnz(b)) plus the zero-initialized result, which is the
    behaviour compressed storage gives MonetDB.
    """
    out = np.zeros(len(a), dtype=np.result_type(a.dtype, b.dtype))
    nz_a = np.nonzero(a)[0]
    nz_b = np.nonzero(b)[0]
    if len(nz_a):
        out[nz_a] = a[nz_a]
    if len(nz_b):
        out[nz_b] += b[nz_b]
    return out


def add_sparse_aware(a: BAT, b: BAT,
                     threshold: float = SPARSE_DENSITY_THRESHOLD) -> BAT:
    """Element-wise add that routes through the sparse path when profitable."""
    if not (a.dtype.is_numeric and b.dtype.is_numeric):
        raise BatError("sparse-aware add requires numeric columns")
    if len(a) != len(b):
        raise BatError("sparse-aware add requires aligned columns")
    va, vb = a.tail, b.tail
    if estimate_density(va) < threshold and estimate_density(vb) < threshold:
        out = sparse_add(va, vb)
    else:
        out = va + vb
    dtype = (DataType.INT if a.dtype is DataType.INT
             and b.dtype is DataType.INT else DataType.DBL)
    return BAT(dtype, out.astype(dtype.numpy_dtype), a.hseqbase)


@dataclass(frozen=True)
class RleColumn:
    """Run-length encoded numeric column.

    ``starts[i]`` is the first position of run ``i``; run ``i`` covers
    positions ``starts[i] .. starts[i+1]-1`` (the last run ends at ``n``)
    and holds the constant ``values[i]``.
    """

    starts: np.ndarray
    values: np.ndarray
    n: int

    @property
    def run_count(self) -> int:
        return len(self.starts)

    def compression_ratio(self) -> float:
        """Stored runs relative to plain storage (lower is better)."""
        if self.n == 0:
            return 1.0
        return (2 * self.run_count) / self.n


def rle_encode(values: np.ndarray) -> RleColumn:
    """Run-length encode a numeric array."""
    values = np.asarray(values)
    n = len(values)
    if n == 0:
        return RleColumn(np.empty(0, np.int64), values.copy(), 0)
    change = np.empty(n, dtype=bool)
    change[0] = True
    np.not_equal(values[1:], values[:-1], out=change[1:])
    starts = np.nonzero(change)[0].astype(np.int64)
    return RleColumn(starts, values[starts].copy(), n)


def rle_decode(column: RleColumn) -> np.ndarray:
    """Materialize an RLE column back into a plain array."""
    if column.n == 0:
        return column.values.copy()
    lengths = np.diff(np.append(column.starts, column.n))
    return np.repeat(column.values, lengths)


def rle_add_scalar(column: RleColumn, scalar: float) -> RleColumn:
    """Add a scalar without decompressing (runs are preserved)."""
    return RleColumn(column.starts.copy(), column.values + scalar, column.n)
