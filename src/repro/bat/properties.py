"""Process-wide switch for the BAT physical-property layer.

BATs and relations are immutable, so physical properties (``tsorted``,
``trevsorted``, ``tkey``, ``tnonil``), per-relation order permutations and
float views of integer columns can never go stale — they are computed on
first demand and cached on the instance, exactly like MonetDB's per-BAT
property bits and order indexes.

This module holds the single switch that enables the layer.  It exists so
the ablation benchmark (``benchmarks/bench_ablation_properties.py``) can
measure the engine with and without property tracking; with the switch off
every property is recomputed from scratch on each use, no cache is read or
written, and every short-circuit (identity permutations in
:func:`repro.bat.sorting.order_by`, binary search in
:func:`repro.bat.kernels.thetaselect`, the skipped right-side argsort in
:func:`repro.relational.joins.join_positions`) is disabled.  Results are
bit-identical either way — only the work performed differs.

The engine-level knob is :class:`repro.core.config.RmaConfig`'s
``use_properties`` flag, which gates the per-relation order cache used by
:mod:`repro.core.context`; this module-level switch gates the BAT-layer
behaviour underneath it.  Ablations toggle both (see the benchmark).
"""

from __future__ import annotations

from contextlib import contextmanager

_ENABLED = True


def properties_enabled() -> bool:
    """Whether property tracking, caching and short-circuits are active."""
    return _ENABLED


def set_properties_enabled(enabled: bool) -> bool:
    """Set the switch; returns the previous value."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


@contextmanager
def use_properties(enabled: bool):
    """Context manager scoping the switch (used by tests and ablations)."""
    previous = set_properties_enabled(enabled)
    try:
        yield
    finally:
        set_properties_enabled(previous)
