r"""The BAT (binary association table) column type.

MonetDB stores every relation column as a BAT: a two-column table whose head
holds object identifiers (OIDs) and whose tail holds the attribute values.
All tuples of a relation share OID values across its BATs, so a tuple is the
concatenation of the tail values with the same OID.

Our BATs use a *dense* head (``hseqbase .. hseqbase + n - 1``), which is what
MonetDB uses for base columns; the head is therefore implicit and only the
tail is materialized as a numpy array.  BATs are immutable: every operation
returns a new BAT, which keeps alignment reasoning trivial.

Logical types map onto physical numpy storage:

========  ==================  ====================================
logical   numpy tail           notes
========  ==================  ====================================
INT       int64                nil is ``NIL_INT`` (int64 min)
DBL       float64              nil is NaN
BOOL      bool\_
STR       object (str)         nil is ``None``; plays the role of
                               MonetDB's string heap
DATE      int64                proleptic-Gregorian ordinal (days)
TIME      int64                seconds since midnight
OID       int64                positions / object identifiers
========  ==================  ====================================
"""

from __future__ import annotations

import datetime as _dt
import enum
from typing import Any, Iterable, Sequence

import numpy as np

from repro.bat.properties import properties_enabled
from repro.errors import AlignmentError, BatError, TypeMismatchError

NIL_INT = np.iinfo(np.int64).min
"""Sentinel used as the nil (SQL NULL) value in INT/DATE/TIME tails."""


class DataType(enum.Enum):
    """Logical column types supported by the engine."""

    INT = "int"
    DBL = "double"
    BOOL = "boolean"
    STR = "string"
    DATE = "date"
    TIME = "time"
    OID = "oid"

    @property
    def numpy_dtype(self) -> np.dtype:
        return _NUMPY_DTYPES[self]

    @property
    def is_numeric(self) -> bool:
        """Whether values of this type may appear in an application schema."""
        return self in (DataType.INT, DataType.DBL)

    @property
    def is_orderable(self) -> bool:
        """Whether values of this type may appear in an order schema."""
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DataType.{self.name}"


_NUMPY_DTYPES = {
    DataType.INT: np.dtype(np.int64),
    DataType.DBL: np.dtype(np.float64),
    DataType.BOOL: np.dtype(np.bool_),
    DataType.STR: np.dtype(object),
    DataType.DATE: np.dtype(np.int64),
    DataType.TIME: np.dtype(np.int64),
    DataType.OID: np.dtype(np.int64),
}

_EPOCH = _dt.date(1970, 1, 1).toordinal()


def date_to_int(value: _dt.date) -> int:
    """Encode a date as days since 1970-01-01 (the DATE tail encoding)."""
    return value.toordinal() - _EPOCH


def int_to_date(value: int) -> _dt.date:
    """Decode a DATE tail value back into a :class:`datetime.date`."""
    return _dt.date.fromordinal(int(value) + _EPOCH)


def time_to_int(value: _dt.time) -> int:
    """Encode a time of day as seconds since midnight (the TIME encoding)."""
    return value.hour * 3600 + value.minute * 60 + value.second


def int_to_time(value: int) -> _dt.time:
    """Decode a TIME tail value back into a :class:`datetime.time`."""
    value = int(value)
    return _dt.time(value // 3600, (value % 3600) // 60, value % 60)


def infer_type(values: Iterable[Any]) -> DataType:
    """Infer the logical type of a sequence of python values.

    Used by relation literals and the CSV reader.  The first non-nil value
    decides; an all-nil column defaults to STR.
    """
    for v in values:
        if v is None:
            continue
        if isinstance(v, bool) or isinstance(v, np.bool_):
            return DataType.BOOL
        if isinstance(v, (int, np.integer)):
            return DataType.INT
        if isinstance(v, (float, np.floating)):
            return DataType.DBL
        if isinstance(v, _dt.datetime):
            raise BatError("datetime values are not supported; "
                           "use separate DATE and TIME columns")
        if isinstance(v, _dt.date):
            return DataType.DATE
        if isinstance(v, _dt.time):
            return DataType.TIME
        if isinstance(v, str):
            return DataType.STR
        raise BatError(f"cannot infer a column type for value {v!r} "
                       f"of type {type(v).__name__}")
    return DataType.STR


def _encode_value(value: Any, dtype: DataType) -> Any:
    """Encode one python value into its tail representation."""
    if value is None:
        if dtype is DataType.DBL:
            return np.nan
        if dtype in (DataType.INT, DataType.DATE, DataType.TIME):
            return NIL_INT
        if dtype is DataType.STR:
            return None
        raise BatError(f"type {dtype.value} has no nil representation")
    if dtype is DataType.DATE:
        if isinstance(value, _dt.date):
            return date_to_int(value)
        return int(value)
    if dtype is DataType.TIME:
        if isinstance(value, _dt.time):
            return time_to_int(value)
        return int(value)
    if dtype is DataType.STR:
        return str(value)
    if dtype is DataType.BOOL:
        return bool(value)
    if dtype is DataType.INT or dtype is DataType.OID:
        return int(value)
    if dtype is DataType.DBL:
        return float(value)
    raise BatError(f"unhandled type {dtype}")  # pragma: no cover


class BAT:
    """One immutable column: dense OID head plus a typed value tail.

    Physical properties (MonetDB's ``tsorted``/``trevsorted``/``tkey``/
    ``tnonil`` bits) are computed on first demand and cached in ``_props``;
    immutability makes the cache trivially sound.  Constructors and
    structural operations (:meth:`dense`, :meth:`constant`, :meth:`fetch`,
    :meth:`slice`, :meth:`append`, :meth:`cast`) derive properties for free
    where the algebra allows it instead of recomputing them.
    """

    __slots__ = ("dtype", "tail", "hseqbase", "_props", "_float_view")

    def __init__(self, dtype: DataType, tail: np.ndarray, hseqbase: int = 0):
        if not isinstance(dtype, DataType):
            raise TypeMismatchError(f"expected a DataType, got {dtype!r}")
        tail = np.asarray(tail)
        expected = dtype.numpy_dtype
        if tail.dtype != expected:
            raise TypeMismatchError(
                f"tail dtype {tail.dtype} does not match logical type "
                f"{dtype.value} (expected {expected})")
        if tail.ndim != 1:
            raise BatError(f"tail must be one-dimensional, got {tail.ndim}")
        self.dtype = dtype
        self.tail = tail
        self.hseqbase = int(hseqbase)
        self._props: dict[str, bool] = {}
        self._float_view: np.ndarray | None = None
        # Immutability guard: shared numpy buffers must not be written to.
        # This is what makes the property cache sound: a cached tsorted/tkey
        # bit can never be invalidated because the tail can never change.
        self.tail.setflags(write=False)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_values(cls, values: Sequence[Any],
                    dtype: DataType | None = None,
                    hseqbase: int = 0) -> "BAT":
        """Build a BAT from python values, inferring the type if needed."""
        values = list(values)
        if dtype is None:
            dtype = infer_type(values)
        encoded = [_encode_value(v, dtype) for v in values]
        tail = np.array(encoded, dtype=dtype.numpy_dtype)
        if len(values) == 0:
            tail = np.empty(0, dtype=dtype.numpy_dtype)
        return cls(dtype, tail, hseqbase)

    @classmethod
    def from_array(cls, array: np.ndarray, dtype: DataType | None = None,
                   hseqbase: int = 0) -> "BAT":
        """Wrap a numpy array as a BAT, casting to the canonical tail dtype."""
        array = np.asarray(array)
        if dtype is None:
            if np.issubdtype(array.dtype, np.bool_):
                dtype = DataType.BOOL
            elif np.issubdtype(array.dtype, np.integer):
                dtype = DataType.INT
            elif np.issubdtype(array.dtype, np.floating):
                dtype = DataType.DBL
            elif array.dtype == object:
                dtype = DataType.STR
            else:
                raise TypeMismatchError(
                    f"cannot wrap numpy dtype {array.dtype} as a BAT")
        target = dtype.numpy_dtype
        if array.dtype != target:
            array = array.astype(target)
        return cls(dtype, array, hseqbase)

    @classmethod
    def dense(cls, n: int, hseqbase: int = 0, start: int = 0) -> "BAT":
        """A dense OID BAT ``start .. start + n - 1`` (MonetDB void column)."""
        bat = cls(DataType.OID, np.arange(start, start + n, dtype=np.int64),
                  hseqbase)
        return bat._seed_props(tsorted=True, trevsorted=n <= 1,
                               tkey=True, tnonil=True)

    @classmethod
    def constant(cls, value: Any, n: int, dtype: DataType | None = None,
                 hseqbase: int = 0) -> "BAT":
        """A BAT with ``n`` copies of ``value``."""
        if dtype is None:
            dtype = infer_type([value])
        encoded = _encode_value(value, dtype)
        tail = np.empty(n, dtype=dtype.numpy_dtype)
        tail[:] = encoded
        bat = cls(dtype, tail, hseqbase)
        if value is None:
            return bat._seed_props(tnonil=n == 0, tkey=n <= 1)
        return bat._seed_props(tsorted=True, trevsorted=True,
                               tkey=n <= 1, tnonil=True)

    # -- physical properties -----------------------------------------------

    def _lazy_prop(self, name: str, compute) -> bool:
        """Lazily computed property bit, thread-safe by compute-then-CAS.

        Concurrent first touches may duplicate the (idempotent) scan, but
        ``setdefault`` publishes exactly one verdict atomically — no
        torn or interleaved cache writes.  Per-BAT locks were rejected:
        BATs are created on every fetch/slice, and a lock per instance
        would cost more than the rare duplicated scan.
        """
        if properties_enabled():
            cached = self._props.get(name)
            if cached is None:
                cached = self._props.setdefault(name, compute())
            return cached
        return compute()

    def _seed_props(self, **props: bool | None) -> "BAT":
        """Record known property values (internal; callers must be right).

        ``None`` values are skipped, so call sites can pass conditional
        derivations without branching.  No-op while the property layer is
        disabled, which is what makes the ablation honest.
        """
        if properties_enabled():
            for name, value in props.items():
                if value is not None:
                    self._props[name] = bool(value)
        return self

    def cached_prop(self, name: str) -> bool | None:
        """Peek at a property without triggering its computation."""
        if properties_enabled():
            return self._props.get(name)
        return None

    @property
    def tsorted(self) -> bool:
        """Tail is non-decreasing in raw encoding order.

        For DBL and STR the bit is only set on nil-free columns (NaN/None
        break the total order); for INT-family types the nil sentinel is the
        smallest value and participates in the order like any other.
        """
        return self._lazy_prop("tsorted",
                               lambda: self._compute_sorted(reverse=False))

    @property
    def trevsorted(self) -> bool:
        """Tail is non-increasing in raw encoding order."""
        return self._lazy_prop("trevsorted",
                               lambda: self._compute_sorted(reverse=True))

    @property
    def tkey(self) -> bool:
        """All tail values are distinct (nil duplicates also violate it)."""
        return self._lazy_prop("tkey", self._compute_key)

    @property
    def tnonil(self) -> bool:
        """No nil entries in the tail."""
        return self._lazy_prop("tnonil",
                               lambda: not bool(self.is_nil().any()))

    def _compute_sorted(self, reverse: bool) -> bool:
        if len(self.tail) <= 1:
            return True
        if self.dtype in (DataType.DBL, DataType.STR) and not self.tnonil:
            return False
        a, b = self.tail[:-1], self.tail[1:]
        cmp = (a >= b) if reverse else (a <= b)
        return bool(np.all(np.asarray(cmp, dtype=bool)))

    def _compute_key(self) -> bool:
        n = len(self.tail)
        if n <= 1:
            return True
        if self.tsorted or self.trevsorted:
            neq = self.tail[:-1] != self.tail[1:]
            return bool(np.all(np.asarray(neq, dtype=bool)))
        if self.dtype is DataType.STR:
            return len(set(self.tail)) == n
        return len(np.unique(self.tail)) == n

    # -- basic accessors ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.tail)

    @property
    def count(self) -> int:
        """Number of entries (MonetDB BATcount)."""
        return len(self.tail)

    def sel(self, i: int) -> Any:
        """Return the raw tail value at position ``i`` (paper's ``sel``).

        This is the single-element access the paper's kernel algorithms try
        to minimize; everything else should use whole-column operations.
        """
        if not 0 <= i < len(self.tail):
            raise BatError(f"sel position {i} out of range 0..{len(self) - 1}")
        value = self.tail[i]
        if isinstance(value, np.generic):
            return value.item()
        return value

    def python_value(self, i: int) -> Any:
        """Return the decoded python value at position ``i`` (nil -> None)."""
        raw = self.sel(i)
        return self.decode_value(raw)

    def decode_value(self, raw: Any) -> Any:
        """Decode one raw tail value into a python value."""
        if isinstance(raw, np.generic):
            raw = raw.item()
        if self.dtype is DataType.DBL:
            return None if raw != raw else raw  # NaN check
        if self.dtype in (DataType.INT, DataType.OID):
            return None if raw == NIL_INT else raw
        if self.dtype is DataType.DATE:
            return None if raw == NIL_INT else int_to_date(raw)
        if self.dtype is DataType.TIME:
            return None if raw == NIL_INT else int_to_time(raw)
        return raw

    def python_values(self) -> list[Any]:
        """Decode the whole tail into python values (for display / CSV).

        Numeric dtypes go through ``ndarray.tolist`` (one C call) and only
        pay a python pass when nils are actually present.
        """
        if self.dtype is DataType.DBL:
            values = self.tail.tolist()
            if np.isnan(self.tail).any():
                values = [None if v != v else v for v in values]
            return values
        if self.dtype in (DataType.INT, DataType.OID):
            values = self.tail.tolist()
            if len(values) and (self.tail == NIL_INT).any():
                values = [None if v == NIL_INT else v for v in values]
            return values
        if self.dtype is DataType.BOOL:
            return self.tail.tolist()
        if self.dtype is DataType.STR:
            return list(self.tail)
        return [self.decode_value(v) for v in self.tail.tolist()]

    def is_nil(self) -> np.ndarray:
        """Boolean mask of nil entries."""
        if self.dtype is DataType.DBL:
            return np.isnan(self.tail)
        if self.dtype in (DataType.INT, DataType.DATE, DataType.TIME,
                          DataType.OID):
            return self.tail == NIL_INT
        if self.dtype is DataType.STR:
            return np.array([v is None for v in self.tail], dtype=bool)
        return np.zeros(len(self), dtype=bool)

    # -- column operations (delegated to kernels) --------------------------

    def fetch(self, positions: np.ndarray,
              positions_sorted: bool | None = None,
              positions_key: bool | None = None) -> "BAT":
        """Leftfetchjoin: gather tail values at the given positions.

        ``positions_sorted``/``positions_key`` are caller-supplied hints
        (positions non-decreasing / free of duplicates); combined with this
        BAT's cached properties they let the result inherit ``tsorted`` /
        ``trevsorted`` / ``tkey`` without a rescan.  ``tnonil`` always
        survives a gather (the values are a subset).
        """
        positions = np.asarray(positions, dtype=np.int64)
        out = BAT(self.dtype, self.tail[positions], self.hseqbase)
        props = self._props
        if props:
            out._seed_props(
                tnonil=True if props.get("tnonil") else None,
                tsorted=(True if positions_sorted and props.get("tsorted")
                         else None),
                trevsorted=(True if positions_sorted
                            and props.get("trevsorted") else None),
                tkey=True if positions_key and props.get("tkey") else None)
        return out

    def slice(self, start: int, stop: int) -> "BAT":
        out = BAT(self.dtype, self.tail[start:stop], self.hseqbase)
        props = self._props
        if props:
            # Every property survives contiguous subsetting.
            out._seed_props(**{name: True for name in
                               ("tsorted", "trevsorted", "tkey", "tnonil")
                               if props.get(name)})
        return out

    def append(self, other: "BAT") -> "BAT":
        if other.dtype is not self.dtype:
            raise TypeMismatchError(
                f"cannot append {other.dtype.value} to {self.dtype.value}")
        out = BAT(self.dtype, np.concatenate([self.tail, other.tail]),
                  self.hseqbase)
        if len(self) == 0 or len(other) == 0:
            source = other if len(self) == 0 else self
            return out._seed_props(**{name: True for name in
                                      ("tsorted", "trevsorted", "tkey",
                                       "tnonil")
                                      if source._props.get(name)})
        sp, op = self._props, other._props
        seeds: dict[str, bool] = {}
        if sp.get("tnonil") and op.get("tnonil"):
            seeds["tnonil"] = True
        # Disjoint sorted runs: the concatenation stays sorted when the
        # boundary values agree with the direction, and stays a key when
        # both runs are strictly monotonic and the boundary is strict.
        try:
            if sp.get("tsorted") and op.get("tsorted") \
                    and bool(self.tail[-1] <= other.tail[0]):
                seeds["tsorted"] = True
                if sp.get("tkey") and op.get("tkey") \
                        and bool(self.tail[-1] < other.tail[0]):
                    seeds["tkey"] = True
            if sp.get("trevsorted") and op.get("trevsorted") \
                    and bool(self.tail[-1] >= other.tail[0]):
                seeds["trevsorted"] = True
                if sp.get("tkey") and op.get("tkey") \
                        and bool(self.tail[-1] > other.tail[0]):
                    seeds["tkey"] = True
        except TypeError:
            pass  # non-comparable boundary (nil strings): derive nothing
        return out._seed_props(**seeds)

    def cast(self, dtype: DataType) -> "BAT":
        """Cast to another logical type (INT <-> DBL, anything -> STR)."""
        if dtype is self.dtype:
            return self
        if dtype is DataType.STR:
            values = [None if v is None else str(v)
                      for v in self.python_values()]
            return BAT(DataType.STR, np.array(values, dtype=object),
                       self.hseqbase)
        if self.dtype is DataType.INT and dtype is DataType.DBL:
            tail = self.tail.astype(np.float64)
            tail[self.tail == NIL_INT] = np.nan
            return BAT(DataType.DBL, tail,
                       self.hseqbase)._seed_props(**self._numeric_cast_props())
        if self.dtype is DataType.DBL and dtype is DataType.INT:
            tail = np.where(np.isnan(self.tail), NIL_INT,
                            self.tail).astype(np.int64)
            return BAT(DataType.INT, tail,
                       self.hseqbase)._seed_props(**self._numeric_cast_props())
        if self.dtype is DataType.OID and dtype is DataType.INT:
            return BAT(DataType.INT, self.tail.copy(),
                       self.hseqbase)._seed_props(**self._props)
        if self.dtype is DataType.INT and dtype is DataType.OID:
            return BAT(DataType.OID, self.tail.copy(),
                       self.hseqbase)._seed_props(**self._props)
        raise TypeMismatchError(
            f"unsupported cast {self.dtype.value} -> {dtype.value}")

    def _numeric_cast_props(self) -> dict[str, bool | None]:
        """Properties an INT <-> DBL cast preserves.

        int64 -> float64 and truncation back are monotone non-decreasing but
        not injective (floats above 2**53, fractional values), so order bits
        carry over on nil-free columns while ``tkey`` never does.
        """
        props = self._props
        nonil = props.get("tnonil")
        return {
            "tnonil": nonil,
            "tsorted": True if props.get("tsorted") and nonil else None,
            "trevsorted": (True if props.get("trevsorted") and nonil
                           else None),
        }

    def as_float(self, astype=None) -> np.ndarray:
        """Return the tail as a float64 array (application-part view).

        For INT columns the cast result is cached (read-only) on the
        instance: repeated operations over the same relation pay the copy
        once.  Nil handling matches the uncached behaviour: the raw
        ``NIL_INT`` sentinel is cast verbatim, not mapped to NaN.

        ``astype`` optionally substitutes the int64→float64 cast with an
        equivalent implementation (the morsel engine passes a per-chunk
        cast); it must return a bit-identical float64 array.  The cache
        update is compute-then-publish: under concurrent first use two
        threads may both cast, but each publishes a correct immutable
        view, so any winner is sound.
        """
        if self.dtype is DataType.DBL:
            return self.tail
        if self.dtype is DataType.INT:
            cast = astype if astype is not None \
                else lambda tail: tail.astype(np.float64)
            if properties_enabled():
                view = self._float_view
                if view is None:
                    view = cast(self.tail)
                    view.setflags(write=False)
                    if self._float_view is None:
                        self._float_view = view
                    view = self._float_view
                return view
            return cast(self.tail)
        raise TypeMismatchError(
            f"column of type {self.dtype.value} is not numeric")

    # -- aggregates --------------------------------------------------------

    def sum(self) -> float | int:
        self._require_numeric("sum")
        return self.tail.sum().item()

    def min(self) -> Any:
        if len(self) == 0:
            raise BatError("min of an empty BAT")
        if self.dtype is DataType.STR:
            return min(v for v in self.tail)
        return self.decode_value(self.tail.min())

    def max(self) -> Any:
        if len(self) == 0:
            raise BatError("max of an empty BAT")
        if self.dtype is DataType.STR:
            return max(v for v in self.tail)
        return self.decode_value(self.tail.max())

    def avg(self) -> float:
        self._require_numeric("avg")
        if len(self) == 0:
            raise BatError("avg of an empty BAT")
        return float(self.tail.mean())

    def _require_numeric(self, op: str) -> None:
        if not self.dtype.is_numeric:
            raise TypeMismatchError(
                f"{op} requires a numeric BAT, got {self.dtype.value}")

    # -- key / uniqueness --------------------------------------------------

    def is_key(self) -> bool:
        """Whether all tail values are distinct (no nil duplicates either).

        Alias of :attr:`tkey`; kept for the kernel-facing vocabulary.
        """
        return self.tkey

    # -- dunder ------------------------------------------------------------

    def __iter__(self):
        return iter(self.python_values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BAT):
            return NotImplemented
        if self.dtype is not other.dtype or len(self) != len(other):
            return False
        if self.dtype is DataType.DBL:
            return bool(np.array_equal(self.tail, other.tail,
                                       equal_nan=True))
        return bool(np.array_equal(self.tail, other.tail))

    def __hash__(self):  # immutable, but hashing whole columns is a bug
        raise TypeError("BATs are not hashable")

    def __repr__(self) -> str:
        preview = ", ".join(repr(v) for v in self.python_values()[:6])
        suffix = ", ..." if len(self) > 6 else ""
        return (f"BAT({self.dtype.value}, n={len(self)}, "
                f"[{preview}{suffix}])")


def align_check(*bats: BAT) -> int:
    """Assert that all BATs have the same length; return that length."""
    if not bats:
        return 0
    n = len(bats[0])
    for b in bats[1:]:
        if len(b) != n:
            raise AlignmentError(
                f"misaligned BATs: lengths {[len(x) for x in bats]}")
    return n
