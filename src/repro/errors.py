"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while the
subclasses keep the failure domains (storage, relational, RMA, SQL, linear
algebra) apart.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class BatError(ReproError):
    """Error in the BAT (binary association table) storage layer."""


class TypeMismatchError(BatError):
    """An operation was applied to BATs of incompatible types."""


class AlignmentError(BatError):
    """BATs that must be aligned (same length / head) are not."""


class SchemaError(ReproError):
    """Invalid schema: duplicate attributes, unknown attributes, bad types."""


class RelationError(ReproError):
    """Error in a relational algebra operation."""


class KeyViolationError(RelationError):
    """An order schema (or declared key) does not uniquely identify tuples."""


class RmaError(ReproError):
    """Error in a relational matrix operation."""


class ShapeError(RmaError):
    """Matrix arguments have incompatible or unsupported shapes."""


class ApplicationSchemaError(RmaError):
    """The application schema is empty, non-numeric, or incompatible."""


class OrderSchemaError(RmaError):
    """The order schema is invalid (unknown attributes, not a key, ...)."""


class LinAlgError(ReproError):
    """Numerical failure inside a matrix kernel (singular matrix, ...)."""


class SingularMatrixError(LinAlgError):
    """A matrix that must be invertible / positive definite is not."""


class ConvergenceError(LinAlgError):
    """An iterative kernel (Jacobi eigen/SVD) failed to converge."""


class BackendError(ReproError):
    """A kernel backend cannot execute the requested operation."""


class UnsupportedByBackendError(BackendError):
    """The operation is valid but this backend has no kernel for it."""


class SqlError(ReproError):
    """Base class for SQL front-end errors."""


class SqlSyntaxError(SqlError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


class BindError(SqlError):
    """A name in the query could not be resolved (table, column, function)."""


class PlanError(SqlError):
    """The query is well-formed but cannot be planned (e.g. bad aggregate)."""


class CatalogError(ReproError):
    """Catalog failure: unknown or duplicate table name."""


class CsvError(ReproError):
    """Malformed CSV input."""
