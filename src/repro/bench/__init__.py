"""Benchmark harness: regenerates every table and figure of §8.

``python -m repro.bench <experiment> [--scale S]`` prints a paper-style
table for any of: fig13, table4, table5, table6, table7, fig14, fig15,
fig16, fig17, fig18, or ``all``.  The ``benchmarks/`` directory wraps the
same code in pytest-benchmark targets.
"""

from repro.bench.reporting import ExperimentResult
from repro.bench import harness

__all__ = ["ExperimentResult", "harness"]
