"""Result tables for the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


@dataclass
class ExperimentResult:
    """One experiment's output: a labeled table plus free-form notes.

    ``rows`` holds one entry per parameter point; each entry maps column
    name -> value (numbers are rendered with 3 significant digits).
    """

    experiment: str
    title: str
    headers: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        self.rows.append(values)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def column(self, name: str) -> list[Any]:
        return [row.get(name) for row in self.rows]

    @staticmethod
    def _fmt(value: Any) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            if value == 0.0:
                return "0"
            if abs(value) >= 100:
                return f"{value:.0f}"
            if abs(value) >= 1:
                return f"{value:.2f}"
            return f"{value:.4f}"
        return str(value)

    def render(self) -> str:
        body = [[self._fmt(row.get(h)) for h in self.headers]
                for row in self.rows]
        widths = [max(len(h), *(len(r[i]) for r in body)) if body
                  else len(h) for i, h in enumerate(self.headers)]
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.append("  ".join(h.rjust(w)
                               for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(c.rjust(w)
                                   for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
