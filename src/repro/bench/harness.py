"""The experiments of §8, one function per table/figure.

Sizes are the paper's divided by ``1/scale`` (default scale keeps every
experiment in laptop/CI range).  Absolute numbers differ from the paper's
Xeon/MonetDB setup by construction; the claims under reproduction are the
*shapes*: who wins, by what factor, and where behaviour changes.
"""

from __future__ import annotations

import gc
import time
from typing import Callable, Sequence

import numpy as np

import repro.relational.ops as rel_ops
from repro.baselines.rlike import RFrame, as_matrix, matrix_to_frame
from repro.baselines.scidb import SciDbArray
from repro.bench.reporting import ExperimentResult
from repro.core import RmaConfig
from repro.core.ops import execute_rma
from repro.data.bixi import (
    generate_numeric_trips,
    generate_stations,
    generate_trips,
)
from repro.data.dblp import generate_publications, generate_ranking
from repro.data.synthetic import (
    order_heavy_relation,
    order_names,
    sparse_pair,
    uniform_pair,
    uniform_relation,
)
from repro.errors import ReproError
from repro.linalg.mkl_backend import MklBackend
from repro.linalg.policy import BackendPolicy
from repro.relational import rename
from repro.workloads import (
    ConferencesDataset,
    JourneysDataset,
    TripsDataset,
    run_conferences,
    run_journeys,
    run_trip_count,
    run_trips,
)
from repro.workloads.trip_count import make_dataset as make_trip_counts


_WARMED_UP = False


def _global_warmup(seconds: float = 1.5) -> None:
    """Warm up before the first measurement.

    Two effects would otherwise inflate the first table row: CPU clocks
    ramping up from idle, and the allocator growing its arenas for the
    benchmark's ~100MB working sets.  A spin loop handles the former; a
    throwaway full-size RMA call handles the latter.
    """
    global _WARMED_UP
    if _WARMED_UP:
        return
    deadline = time.perf_counter() + seconds
    scratch = np.random.default_rng(0).normal(size=200_000)
    while time.perf_counter() < deadline:
        scratch = scratch * 1.0000001 + 0.1
    r, s = uniform_pair(500_000, 10, seed=99)
    for _ in range(3):
        execute_rma("add", r, "id1", s, "id2", config=_config())
    _WARMED_UP = True


def _timeit(func: Callable[[], object], repeat: int = 5) -> float:
    """Minimum of ``repeat`` runs after one warmup.

    The paper averages 3 runs on a quiet testbed; on shared CI hardware
    the minimum is the robust estimator of the true cost (everything
    above it is scheduler/allocator noise).
    """
    gc.collect()  # stabilize allocator layout across sweep points
    func()  # warmup: page-faults, allocator, numpy dispatch
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _config(optimize: bool = True, prefer: str = "auto",
            memory_limit: int | None = None) -> RmaConfig:
    policy = BackendPolicy(prefer=prefer)
    if memory_limit is not None:
        policy.memory_limit_bytes = memory_limit
    return RmaConfig(policy=policy, optimize_sorting=optimize,
                     validate_keys=False)


# -- Fig. 13: maintaining contextual information --------------------------------

def fig13(scale: float = 1.0, wide: bool = True) -> ExperimentResult:
    """Runtime of add/qqr vs. number of order attributes, with and without
    the sorting optimizations (Fig. 13a: many attrs / fewer rows; 13b:
    few attrs / more rows)."""
    if wide:
        n_rows = max(int(20_000 * scale), 500)
        sweep = [50, 100, 200, 400]
        label = "fig13a"
    else:
        n_rows = max(int(200_000 * scale), 2_000)
        sweep = [5, 10, 20, 40]
        label = "fig13b"
    result = ExperimentResult(
        label, f"context maintenance, {n_rows} tuples "
        "(seconds vs #order attributes)",
        ["#order attrs", "add", "add relative sorting",
         "qqr", "qqr w/o sorting"])
    for n_order in sweep:
        r = order_heavy_relation(n_rows, n_order, seed=9)
        s = rename(order_heavy_relation(n_rows, n_order, seed=9),
                   {name: f"s_{name}" for name in
                    order_names(order_heavy_relation(2, n_order))})
        r_by = order_names(r)
        s_by = [f"s_{name}" for name in r_by]
        add_full = _timeit(lambda: execute_rma(
            "add", r, r_by, s, s_by, config=_config(optimize=False)))
        add_relative = _timeit(lambda: execute_rma(
            "add", r, r_by, s, s_by, config=_config(optimize=True)))
        qqr_full = _timeit(lambda: execute_rma(
            "qqr", r, r_by, config=_config(optimize=False)))
        qqr_none = _timeit(lambda: execute_rma(
            "qqr", r, r_by, config=_config(optimize=True)))
        result.add_row(**{"#order attrs": n_order, "add": add_full,
                          "add relative sorting": add_relative,
                          "qqr": qqr_full, "qqr w/o sorting": qqr_none})
        del r, s
        gc.collect()
    result.note("paper: optimized variants clearly outperform the "
                "non-optimized ones; qqr w/o sorting is flat")
    return result


# -- Table 4: add over wide relations --------------------------------------------

def table4(scale: float = 1.0) -> ExperimentResult:
    n_rows = max(int(1000 * scale), 100)
    sweep = [100, 200, 400, 600, 800, 1000]
    result = ExperimentResult(
        "table4", f"add over wide relations ({n_rows} tuples)",
        ["#attrs", "seconds"])
    for n_attrs in sweep:
        r, s = uniform_pair(n_rows, n_attrs, seed=4)
        seconds = _timeit(lambda: execute_rma(
            "add", r, "id1", s, "id2", config=_config()))
        result.add_row(**{"#attrs": n_attrs, "seconds": seconds})
        del r, s
        gc.collect()
    result.note("paper Table 4: runtime grows superlinearly in #attrs but "
                "the engine handles thousands of columns")
    return result


# -- Table 5: add over sparse relations -------------------------------------------

def table5(scale: float = 1.0) -> ExperimentResult:
    n_rows = max(int(5_000_000 * scale / 10), 10_000)
    result = ExperimentResult(
        "table5", f"add over sparse relations ({n_rows} tuples, 10 attrs)",
        ["% zeros", "seconds"])
    for percent in range(0, 101, 10):
        r, s = sparse_pair(n_rows, 10, percent / 100.0, seed=5)
        seconds = _timeit(lambda: execute_rma(
            "add", r, "id1", s, "id2", config=_config()))
        result.add_row(**{"% zeros": percent, "seconds": seconds})
        # Free before the next build: reallocation on a clean heap keeps
        # array placement (and thus cache behaviour) comparable across
        # sweep points.
        del r, s
        gc.collect()
    rows = result.column("seconds")
    result.note(f"dense/empty ratio: {rows[0] / max(rows[-1], 1e-9):.2f} "
                "(paper: ~2.2x faster at 100% zeros)")
    result.note("substrate difference: numpy's dense add is bandwidth-"
                "optimal, so the sparse path engages only above ~88% "
                "zeros; MonetDB's storage compression helps earlier "
                "(see EXPERIMENTS.md)")
    return result


# -- Table 6: qqr, R vs RMA+ -------------------------------------------------------

def table6(scale: float = 1.0) -> ExperimentResult:
    """qqr scalability.  R is given a memory budget (it fails beyond it,
    as in the paper); RMA+ switches to the BAT implementation when the
    dense copy would not fit."""
    base = max(int(50_000 * scale), 2_000)
    grid_rows = [base, base * 4]
    grid_cols = [10, 40, 70]
    r_memory_cap = base * 4 * 40 * 8 * 4  # fails at the largest configs
    # RMA+ gets a budget that forces the BAT fallback at the largest size
    # (the paper's 100Mx70 row: MKL would not fit, BATs complete).
    rma_memory_cap = r_memory_cap // 2
    result = ExperimentResult(
        "table6", "qqr runtimes (seconds), R vs RMA+",
        ["tuples", "attrs", "R", "RMA+", "RMA+ backend"])
    for n_rows in grid_rows:
        for n_cols in grid_cols:
            relation = uniform_relation(n_rows, n_cols, seed=6)
            frame = RFrame.from_relation(relation)
            names = [f"x{j}" for j in range(n_cols)]
            dense_bytes = n_rows * n_cols * 8
            if dense_bytes * 3 > r_memory_cap:
                r_seconds = None  # R runs out of memory
            else:
                def r_run():
                    m = as_matrix(frame, names)
                    q, _ = np.linalg.qr(m)
                    return q
                r_seconds = _timeit(r_run)
            config = _config(memory_limit=rma_memory_cap)
            rma_seconds = _timeit(lambda: execute_rma(
                "qqr", relation, "id", config=config))
            backend = config.policy.choose(
                "qqr", (n_rows, n_cols)).name
            result.add_row(tuples=n_rows, attrs=n_cols,
                           **{"R": r_seconds, "RMA+": rma_seconds,
                              "RMA+ backend": backend})
    result.note("paper Table 6: RMA+ consistently faster; R fails above "
                "its memory budget ('-'); RMA+ switches to BATs and "
                "completes")
    return result


# -- Table 7: add + selection, RMA+ vs SciDB ---------------------------------------

def table7(scale: float = 1.0) -> ExperimentResult:
    sweep = [int(x * scale) for x in (100_000, 500_000, 1_000_000)]
    sweep = [max(n, 10_000) for n in sweep]
    result = ExperimentResult(
        "table7", "add followed by a selection: RMA+ vs SciDB (seconds)",
        ["tuples", "RMA+", "SciDB", "SciDB/RMA+"])
    for n_rows in sweep:
        r, s = uniform_pair(n_rows, 10, seed=7)

        def rma_run():
            out = execute_rma("add", r, "id1", s, "id2",
                              config=_config())
            mask = out.column("x0").tail > 10_000.0
            return rel_ops.select_mask(out, mask)

        array_r = SciDbArray.from_relation(r, "id1")
        array_s = SciDbArray.from_relation(s, "id2")

        def scidb_run():
            return array_r.add(array_s).filter("x0", ">", 10_000.0)

        rma_seconds = _timeit(rma_run)
        scidb_seconds = _timeit(scidb_run)
        result.add_row(tuples=n_rows, **{
            "RMA+": rma_seconds, "SciDB": scidb_seconds,
            "SciDB/RMA+": scidb_seconds / max(rma_seconds, 1e-9)})
        del r, s, array_r, array_s
        gc.collect()
    result.note("paper Table 7: RMA+ outperforms SciDB by more than an "
                "order of magnitude (array join vs direct add)")
    return result


# -- Fig. 14: data transformation share ---------------------------------------------

FIG14_OPS = ("add", "emu", "mmu", "qqr", "dsv", "vsv")


def fig14(scale: float = 1.0) -> ExperimentResult:
    """Share of time spent converting between storage formats, for R
    (data.table <-> matrix) and RMA+ (BAT list <-> contiguous array)."""
    sweeps = [max(int(n * scale), 2_000)
              for n in (100_000, 300_000, 500_000)]
    headers = ["system", "rows"] + [op.upper() for op in FIG14_OPS]
    result = ExperimentResult(
        "fig14", "data transformation share (% of runtime), 50 columns",
        headers)
    n_cols = 50
    for n_rows in sweeps:
        relation = uniform_relation(n_rows, n_cols, seed=14)
        names = [f"x{j}" for j in range(n_cols)]
        frame = RFrame.from_relation(relation)

        def r_share(op: str) -> float:
            timings: dict = {}
            m = as_matrix(frame, names, timings)
            start = time.perf_counter()
            out = _numpy_op(op, m)
            kernel = time.perf_counter() - start
            if out.ndim == 1:
                out = out.reshape(-1, 1)
            matrix_to_frame(out, [f"c{i}" for i in range(out.shape[1])],
                            timings)
            transform = timings.get("to_matrix", 0.0) \
                + timings.get("to_frame", 0.0)
            return 100.0 * transform / (transform + kernel)

        row_r = {"system": "R (data.table+matrix)", "rows": n_rows}
        for op in FIG14_OPS:
            row_r[op.upper()] = r_share(op)
        result.add_row(**row_r)

        def rma_share(op: str) -> float:
            backend = MklBackend()
            app = [relation.column(n).tail for n in names]
            if op in ("add", "emu"):
                other = [np.array(c) for c in app]
                backend.compute(op, app, other)
            elif op == "mmu":
                square = [np.ascontiguousarray(c[:n_cols]) for c in app]
                backend.compute(op, app, square)
            else:
                backend.compute(op, app)
            return 100.0 * backend.stats.transform_share()

        row_m = {"system": "RMA+ (BATs+MKL)", "rows": n_rows}
        for op in FIG14_OPS:
            row_m[op.upper()] = rma_share(op)
        result.add_row(**row_m)
    result.note("paper Fig. 14: transformation dominates simple ops "
                "(ADD/EMU up to 92%) and is minor for complex ops "
                "(QQR/DSV/VSV)")
    return result


def _numpy_op(op: str, m: np.ndarray) -> np.ndarray:
    if op == "add":
        return m + m
    if op == "emu":
        return m * m
    if op == "mmu":
        return m @ m[: m.shape[1], :]
    if op == "qqr":
        return np.linalg.qr(m)[0]
    if op == "dsv":
        return np.diag(np.linalg.svd(m, compute_uv=False))
    if op == "vsv":
        return np.linalg.svd(m, full_matrices=False)[2].T
    raise ReproError(f"unknown fig14 op {op}")


# -- Figs. 15-18: the mixed workloads ------------------------------------------------

def _workload_table(experiment: str, title: str, results_by_param,
                    param_name: str) -> ExperimentResult:
    systems: list[str] = []
    for _, results in results_by_param:
        for r in results:
            if r.system not in systems:
                systems.append(r.system)
    headers = [param_name]
    for system in systems:
        headers += [f"{system} prep", f"{system} matrix",
                    f"{system} total"]
    table = ExperimentResult(experiment, title, headers)
    for param, results in results_by_param:
        row = {param_name: param}
        for r in results:
            row[f"{r.system} prep"] = r.times.prep + r.times.load
            row[f"{r.system} matrix"] = r.times.matrix
            row[f"{r.system} total"] = r.times.total
        table.add_row(**row)
    return table


def fig15(scale: float = 1.0,
          with_madlib: bool = True) -> ExperimentResult:
    """Trips OLS: year slices of growing size (paper: 3.1M..14.5M trips)."""
    stations = generate_stations(60, seed=1)
    n_total = max(int(140_000 * scale), 8_000)
    trips = generate_trips(n_total, stations, seed=2)
    slices = [(2014, 2014), (2014, 2015), (2014, 2016), (2014, 2017)]
    systems = ("rma-mkl", "rma-bat", "aida", "r")
    if with_madlib:
        systems += ("madlib",)
    rows = []
    for low, high in slices:
        dataset = TripsDataset(trips, stations, low, high,
                               min_count=max(int(50 * scale), 5))
        rows.append((f"{low}-{high}", run_trips(dataset, systems)))
    table = _workload_table(
        "fig15", f"Trips OLS ({n_total} synthetic trips; seconds)",
        rows, "years")
    table.note("paper Fig. 15: RMA+ & AIDA beat R and MADlib; RMA+ beats "
               "AIDA via non-numeric transfer cost; RMA+MKL beats RMA+BAT")
    return table


def fig16(scale: float = 1.0,
          with_madlib: bool = True) -> ExperimentResult:
    stations = generate_stations(50, seed=1)
    n_total = max(int(150_000 * scale), 10_000)
    trips = generate_numeric_trips(n_total, stations, seed=3)
    base_systems = ("rma-mkl", "rma-bat", "aida", "r")
    rows = []
    for legs in (1, 2, 3, 4, 5):
        # MADlib's pure-python chaining is combinatorial in the number of
        # legs; like the paper (which reports MADlib's largest numbers in
        # the text rather than the chart), cap it at 3 legs.
        systems = base_systems
        if with_madlib and legs <= 3:
            systems = base_systems + ("madlib",)
        dataset = JourneysDataset(trips, stations, n_legs=legs,
                                  min_count=max(int(60 * scale), 20))
        rows.append((legs, run_journeys(dataset, systems)))
    table = _workload_table(
        "fig16", f"Journeys MLR ({n_total} numeric trips; seconds)",
        rows, "#trips/journey")
    table.note("paper Fig. 16: numeric-only data, AIDA joins comparable "
               "to RMA+; MADlib slowest (row-wise distance computation)")
    return table


def fig17(scale: float = 1.0,
          with_madlib: bool = False) -> ExperimentResult:
    sizes = [(int(34_000 * scale), int(70 * max(scale, 0.25))),
             (int(55_000 * scale), int(130 * max(scale, 0.25))),
             (int(72_000 * scale), int(190 * max(scale, 0.25))),
             (int(88_000 * scale), int(220 * max(scale, 0.25)))]
    sizes = [(max(a, 2_000), max(c, 20)) for a, c in sizes]
    systems = ("rma-mkl", "rma-bat", "aida", "r")
    if with_madlib:
        systems += ("madlib",)
    rows = []
    for n_authors, n_confs in sizes:
        publications = generate_publications(n_authors, n_confs, seed=12)
        ranking = generate_ranking(n_confs, seed=11)
        dataset = ConferencesDataset(publications, ranking)
        rows.append((f"{n_authors}x{n_confs}",
                     run_conferences(dataset, systems)))
    table = _workload_table(
        "fig17", "Conference covariance (seconds)", rows, "size")
    table.note("paper Fig. 17: covariance dominates (>=90%); RMA+MKL "
               "fastest; RMA+BAT 24-70x slower than MKL; MADlib omitted "
               "from the chart (77..1814s in the paper)")
    return table


def fig18(scale: float = 1.0,
          with_madlib: bool = True) -> ExperimentResult:
    sweep = [int(n * scale) for n in (1_000_000, 5_000_000, 10_000_000,
                                      15_000_000)]
    sweep = [max(n // 10, 20_000) for n in sweep]
    systems = ("rma-bat", "rma-mkl", "aida", "r")
    if with_madlib:
        systems += ("madlib",)
    rows = []
    for n_riders in sweep:
        dataset = make_trip_counts(n_riders)
        rows.append((n_riders, run_trip_count(dataset, systems)))
    table = _workload_table(
        "fig18", "Trip count via add (seconds)", rows, "riders")
    table.note("paper Fig. 18: RMA+ (no-copy BAT add) beats AIDA and R; "
               "RMA+BAT beats RMA+MKL in all settings")
    return table


EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig13a": lambda scale=1.0: fig13(scale, wide=True),
    "fig13b": lambda scale=1.0: fig13(scale, wide=False),
    "table4": table4,
    "table5": table5,
    "table6": table6,
    "table7": table7,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
    "fig17": fig17,
    "fig18": fig18,
}


def run_experiment(name: str, scale: float = 1.0) -> ExperimentResult:
    if name not in EXPERIMENTS:
        raise ReproError(
            f"unknown experiment {name!r}; known: "
            f"{', '.join(EXPERIMENTS)}")
    _global_warmup()
    return EXPERIMENTS[name](scale=scale)


def run_all(scale: float = 1.0) -> list[ExperimentResult]:
    return [EXPERIMENTS[name](scale=scale) for name in EXPERIMENTS]
