"""CLI for the benchmark harness.

Examples::

    python -m repro.bench fig15
    python -m repro.bench all --scale 0.2
    python -m repro.bench table6 --scale 1.0 --output results.txt
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.harness import EXPERIMENTS, run_all, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all"],
                        help="which table/figure to regenerate")
    parser.add_argument("--scale", type=float, default=0.2,
                        help="size multiplier relative to the scaled-down "
                             "defaults (default 0.2 for quick runs)")
    parser.add_argument("--output", default=None,
                        help="append the rendered tables to this file")
    args = parser.parse_args(argv)

    if args.experiment == "all":
        results = run_all(scale=args.scale)
    else:
        results = [run_experiment(args.experiment, scale=args.scale)]

    text = "\n\n".join(r.render() for r in results)
    print(text)
    if args.output:
        with open(args.output, "a") as handle:
            handle.write(text + "\n\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
