"""Synthetic BIXI: Montreal public bike sharing trips and stations.

Schema follows the Kaggle BIXI dataset the paper uses (§8.6): trips carry
start/end dates, times, station codes, a duration and a membership flag;
stations carry a code, a name and coordinates.

The generator preserves the properties the workloads exercise:

* station popularity is skewed, so the "trips performed at least 50 times"
  filter separates frequent from rare station pairs;
* trip duration is linear in the station distance plus noise, so the OLS /
  MLR regressions recover a meaningful slope;
* trips carry non-numeric attributes (DATE, TIME, BOOL) — the data AIDA
  must convert when moving to Python (Fig. 15's differentiator).
"""

from __future__ import annotations

import datetime as _dt

import numpy as np

from repro.bat.bat import BAT, DataType
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema

MONTREAL_LATITUDE = 45.51
MONTREAL_LONGITUDE = -73.59

DURATION_INTERCEPT = 300.0   # seconds of overhead per trip
DURATION_PER_KM = 240.0      # seconds per kilometre
DURATION_NOISE = 60.0


def generate_stations(n_stations: int, seed: int = 1) -> Relation:
    """Stations: (code, name, latitude, longitude)."""
    rng = np.random.default_rng(seed)
    codes = np.arange(1000, 1000 + n_stations, dtype=np.int64)
    latitudes = MONTREAL_LATITUDE + rng.uniform(-0.08, 0.08, n_stations)
    longitudes = MONTREAL_LONGITUDE + rng.uniform(-0.10, 0.10, n_stations)
    names = np.array([f"Station {int(c)}" for c in codes], dtype=object)
    return Relation(
        Schema.of(("code", DataType.INT), ("name", DataType.STR),
                  ("latitude", DataType.DBL), ("longitude", DataType.DBL)),
        [BAT(DataType.INT, codes), BAT(DataType.STR, names),
         BAT(DataType.DBL, latitudes), BAT(DataType.DBL, longitudes)])


def station_distance_km(lat1, lon1, lat2, lon2) -> np.ndarray:
    """Equirectangular distance — adequate at city scale."""
    mean_lat = np.radians((np.asarray(lat1) + np.asarray(lat2)) / 2.0)
    dx = np.radians(np.asarray(lon2) - np.asarray(lon1)) * np.cos(mean_lat)
    dy = np.radians(np.asarray(lat2) - np.asarray(lat1))
    return 6371.0 * np.sqrt(dx * dx + dy * dy)


def generate_trips(n_trips: int, stations: Relation,
                   years: tuple[int, ...] = (2014, 2015, 2016, 2017),
                   seed: int = 2,
                   pair_skew: float = 1.3) -> Relation:
    """Trips: (trip_id, start_date, start_time, start_station,
    end_station, duration, is_member).

    Station pairs are drawn from a Zipf-like distribution (``pair_skew``),
    and the duration is linear in distance plus noise.
    """
    rng = np.random.default_rng(seed)
    n_stations = stations.nrows
    codes = stations.column("code").tail
    lats = stations.column("latitude").tail
    lons = stations.column("longitude").tail

    # Skewed choice of station pairs: rank stations by popularity.
    ranks = np.arange(1, n_stations + 1, dtype=np.float64)
    weights = 1.0 / np.power(ranks, pair_skew)
    weights /= weights.sum()
    start_idx = rng.choice(n_stations, size=n_trips, p=weights)
    end_idx = rng.choice(n_stations, size=n_trips, p=weights)
    same = start_idx == end_idx
    end_idx[same] = (end_idx[same] + 1) % n_stations

    distance = station_distance_km(lats[start_idx], lons[start_idx],
                                   lats[end_idx], lons[end_idx])
    duration = (DURATION_INTERCEPT + DURATION_PER_KM * distance
                + rng.normal(0.0, DURATION_NOISE, n_trips))
    duration = np.maximum(duration, 60.0).astype(np.int64)

    year = rng.choice(np.array(years), size=n_trips)
    day_of_year = rng.integers(90, 320, n_trips)  # BIXI season
    epoch = np.array([_dt.date(int(y), 1, 1).toordinal()
                      - _dt.date(1970, 1, 1).toordinal()
                      for y in years], dtype=np.int64)
    year_index = np.searchsorted(np.array(years), year)
    dates = epoch[year_index] + day_of_year

    seconds = rng.integers(6 * 3600, 23 * 3600, n_trips)
    member = rng.random(n_trips) < 0.8

    return Relation(
        Schema.of(("trip_id", DataType.INT), ("start_date", DataType.DATE),
                  ("start_time", DataType.TIME),
                  ("start_station", DataType.INT),
                  ("end_station", DataType.INT),
                  ("duration", DataType.INT),
                  ("is_member", DataType.BOOL)),
        [BAT(DataType.INT, np.arange(n_trips, dtype=np.int64)),
         BAT(DataType.DATE, dates.astype(np.int64)),
         BAT(DataType.TIME, seconds.astype(np.int64)),
         BAT(DataType.INT, codes[start_idx].astype(np.int64)),
         BAT(DataType.INT, codes[end_idx].astype(np.int64)),
         BAT(DataType.INT, duration),
         BAT(DataType.BOOL, member)])


def generate_numeric_trips(n_trips: int, stations: Relation,
                           seed: int = 3) -> Relation:
    """The journeys workload's purely numeric trip relation:
    (trip_id, start_station, end_station, duration)."""
    trips = generate_trips(n_trips, stations, seed=seed)
    from repro.relational.ops import project
    return project(trips, ["trip_id", "start_station", "end_station",
                           "duration"])
