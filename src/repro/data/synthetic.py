"""Uniform synthetic relations (paper §8: "synthetic datasets include
real-valued numeric attributes with uniformly distributed values between 0
and 10,000")."""

from __future__ import annotations

import numpy as np

from repro.bat.bat import BAT, DataType
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema

VALUE_LOW = 0.0
VALUE_HIGH = 10_000.0


def uniform_relation(n_rows: int, n_app_columns: int, key: str = "id",
                     seed: int = 7, prefix: str = "x",
                     low: float = VALUE_LOW,
                     high: float = VALUE_HIGH) -> Relation:
    """A relation with an integer key and uniform numeric columns."""
    rng = np.random.default_rng(seed)
    attributes = [Attribute(key, DataType.INT)]
    columns = [BAT(DataType.INT, np.arange(n_rows, dtype=np.int64))]
    for j in range(n_app_columns):
        attributes.append(Attribute(f"{prefix}{j}", DataType.DBL))
        columns.append(BAT(DataType.DBL,
                           rng.uniform(low, high, n_rows)))
    return Relation(Schema(attributes), columns)


def uniform_pair(n_rows: int, n_app_columns: int,
                 seed: int = 7) -> tuple[Relation, Relation]:
    """Two add-compatible relations with distinct key names."""
    return (uniform_relation(n_rows, n_app_columns, key="id1", seed=seed),
            uniform_relation(n_rows, n_app_columns, key="id2",
                             seed=seed + 1))


def sparse_pair(n_rows: int, n_app_columns: int, zero_share: float,
                seed: int = 8) -> tuple[Relation, Relation]:
    """Two relations whose values are zero with probability ``zero_share``
    (Table 5: non-zero values uniform in 1..5,000,000, zero positions
    random)."""
    rng = np.random.default_rng(seed)

    def build(key: str) -> Relation:
        attributes = [Attribute(key, DataType.INT)]
        columns = [BAT(DataType.INT, np.arange(n_rows, dtype=np.int64))]
        for j in range(n_app_columns):
            values = rng.uniform(1.0, 5_000_000.0, n_rows)
            zeros = rng.random(n_rows) < zero_share
            values[zeros] = 0.0
            attributes.append(Attribute(f"x{j}", DataType.DBL))
            columns.append(BAT(DataType.DBL, values))
        return Relation(Schema(attributes), columns)

    return build("id1"), build("id2")


def order_heavy_relation(n_rows: int, n_order_columns: int,
                         seed: int = 9, key_name: str = "k0") -> Relation:
    """The Fig. 13 shape: one application column, many order columns.

    The first order column is a shuffled unique key (so any order schema
    containing it is a key); the remaining order columns carry few distinct
    values, which is the worst case for lexicographic sorting (every column
    participates in the radix passes).
    """
    rng = np.random.default_rng(seed)
    attributes = [Attribute(key_name, DataType.INT)]
    columns = [BAT(DataType.INT, rng.permutation(n_rows).astype(np.int64))]
    for j in range(1, n_order_columns):
        attributes.append(Attribute(f"k{j}", DataType.INT))
        columns.append(BAT(DataType.INT,
                           rng.integers(0, 4, n_rows, dtype=np.int64)))
    attributes.append(Attribute("value", DataType.DBL))
    columns.append(BAT(DataType.DBL,
                       rng.uniform(VALUE_LOW, VALUE_HIGH, n_rows)))
    return Relation(Schema(attributes), columns)


def order_names(relation: Relation) -> list[str]:
    """The order schema of an :func:`order_heavy_relation` (all k columns)."""
    return [n for n in relation.names if n.startswith("k")]
