"""The paper's running example relations (Figs. 1, 2 and 5)."""

from __future__ import annotations

from repro.relational.relation import Relation


def weather_relation() -> Relation:
    """Relation r of Fig. 2: times with humidity and wind."""
    return Relation.from_rows(
        ["T", "H", "W"],
        [("5am", 1.0, 3.0), ("8am", 8.0, 5.0),
         ("7am", 6.0, 7.0), ("6am", 1.0, 4.0)])


def example_database() -> dict[str, Relation]:
    """The film-rating database of Fig. 5 (relations u, f, r)."""
    users = Relation.from_rows(
        ["User", "State", "YoB"],
        [("Ann", "CA", 1980), ("Tom", "FL", 1965), ("Jan", "CA", 1970)])
    films = Relation.from_rows(
        ["Title", "RelY", "Director"],
        [("Heat", 1995, "Lee"), ("Balto", 1995, "Lee"),
         ("Net", 1995, "Smith")])
    ratings = Relation.from_rows(
        ["User", "Balto", "Heat", "Net"],
        [("Ann", 2.0, 1.5, 0.5), ("Tom", 0.0, 0.0, 1.5),
         ("Jan", 1.0, 4.0, 1.0)])
    return {"user": users, "film": films, "rating": ratings}
