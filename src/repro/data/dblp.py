"""Synthetic DBLP: publication counts per author and conference, plus a
conference ranking (paper §8.6(3)).

``generate_publications`` directly produces the *pivoted* table the paper
describes ("the result of SQL PIVOT over a count-aggregate by conference and
author"): one row per author, one numeric attribute per conference.  The
long form and the pivot are also available for tests.

Structure preserved from the real data: author activity is heavy-tailed
(most authors have very few papers), per-conference popularity is skewed,
and the count matrix is sparse.
"""

from __future__ import annotations

import numpy as np

from repro.bat.bat import BAT, DataType
from repro.relational.pivot import pivot
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema

RATINGS = ("A++", "A+", "A", "B", "C")


def conference_names(n_conferences: int) -> list[str]:
    return [f"conf{i:04d}" for i in range(n_conferences)]


def generate_ranking(n_conferences: int, seed: int = 11) -> Relation:
    """ranking(conference, rating) with a small A++ tier."""
    rng = np.random.default_rng(seed)
    names = conference_names(n_conferences)
    probabilities = np.array([0.05, 0.1, 0.25, 0.35, 0.25])
    ratings = rng.choice(np.array(RATINGS, dtype=object),
                         size=n_conferences, p=probabilities)
    if not (ratings == "A++").any():
        ratings[0] = "A++"
    return Relation(
        Schema.of(("conference", DataType.STR), ("rating", DataType.STR)),
        [BAT(DataType.STR, np.array(names, dtype=object)),
         BAT(DataType.STR, ratings.astype(object))])


def generate_publications_long(n_authors: int, n_conferences: int,
                               seed: int = 12,
                               mean_confs_per_author: float = 3.0) \
        -> Relation:
    """Long form: (author, conference, publications)."""
    rng = np.random.default_rng(seed)
    # Heavy-tailed number of distinct conferences per author.
    confs_per_author = np.minimum(
        rng.zipf(1.8, n_authors), max(2, n_conferences // 2))
    confs_per_author = np.maximum(
        np.minimum(confs_per_author,
                   int(mean_confs_per_author * 4)), 1)
    total = int(confs_per_author.sum())
    authors = np.repeat(np.arange(n_authors, dtype=np.int64),
                        confs_per_author)
    # Skewed conference popularity.
    ranks = np.arange(1, n_conferences + 1, dtype=np.float64)
    weights = 1.0 / ranks
    weights /= weights.sum()
    conf_idx = rng.choice(n_conferences, size=total, p=weights)
    counts = np.minimum(rng.zipf(2.2, total), 50).astype(np.int64)
    names = np.array(conference_names(n_conferences), dtype=object)
    return Relation(
        Schema.of(("author", DataType.INT), ("conference", DataType.STR),
                  ("publications", DataType.INT)),
        [BAT(DataType.INT, authors),
         BAT(DataType.STR, names[conf_idx]),
         BAT(DataType.INT, counts)])


def generate_publications(n_authors: int, n_conferences: int,
                          seed: int = 12) -> Relation:
    """The pivoted publication table: author + one column per conference.

    Built as a dense count grid directly (equivalent to pivoting the long
    form, but orders of magnitude faster to generate at scale).
    """
    rng = np.random.default_rng(seed)
    names = conference_names(n_conferences)
    # Sparse counts: each author publishes in a few conferences.
    grid = np.zeros((n_authors, n_conferences), dtype=np.float64)
    confs_per_author = np.maximum(
        np.minimum(rng.zipf(1.8, n_authors), n_conferences), 1)
    ranks = np.arange(1, n_conferences + 1, dtype=np.float64)
    weights = 1.0 / ranks
    weights /= weights.sum()
    total = int(confs_per_author.sum())
    rows = np.repeat(np.arange(n_authors), confs_per_author)
    cols = rng.choice(n_conferences, size=total, p=weights)
    values = np.minimum(rng.zipf(2.2, total), 50).astype(np.float64)
    np.add.at(grid, (rows, cols), values)

    attributes = [Attribute("author", DataType.INT)]
    columns = [BAT(DataType.INT, np.arange(n_authors, dtype=np.int64))]
    for j, name in enumerate(names):
        attributes.append(Attribute(name, DataType.DBL))
        columns.append(BAT(DataType.DBL,
                           np.ascontiguousarray(grid[:, j])))
    return Relation(Schema(attributes), columns)


def pivot_publications(long_form: Relation) -> Relation:
    """Pivot the long form (the paper's PIVOT step), for tests."""
    return pivot(long_form, ["author"], "conference", "publications")
