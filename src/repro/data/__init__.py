"""Seeded synthetic dataset generators.

The paper evaluates on BIXI (Montreal bike sharing), DBLP publication
counts, and uniform synthetic relations.  The real datasets are not
redistributable here, so these generators produce relations with the same
schemas, distributions and statistical structure (documented per module);
all are deterministic given a seed.
"""

from repro.data.bixi import generate_stations, generate_trips
from repro.data.dblp import generate_publications, generate_ranking
from repro.data.synthetic import (
    order_heavy_relation,
    sparse_pair,
    uniform_pair,
    uniform_relation,
)
from repro.data.paper_examples import example_database, weather_relation

__all__ = [
    "generate_stations",
    "generate_trips",
    "generate_publications",
    "generate_ranking",
    "uniform_relation",
    "uniform_pair",
    "sparse_pair",
    "order_heavy_relation",
    "example_database",
    "weather_relation",
]
