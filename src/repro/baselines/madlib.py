"""The MADlib baseline (Hellerstein et al., VLDB 2012).

MADlib is a UDF library over PostgreSQL: a row store whose matrix
operations run as single-threaded UDFs over tables in a special format —
"one attribute with a row id value and another array-valued attribute for
matrix rows" (§2).  Its performance profile in the paper (slowest system in
every figure, omitted from two charts) comes from exactly that: per-row
interpreted execution with no vectorization and no parallelism.  The row
store and UDFs below are honest pure-python implementations with the same
structure.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable, Sequence

from repro.errors import ReproError


class MadlibDatabase:
    """A miniature row-store: tables are lists of python tuples."""

    def __init__(self):
        self.tables: dict[str, list[tuple]] = {}
        self.schemas: dict[str, list[str]] = {}

    def create(self, name: str, columns: Sequence[str],
               rows: Iterable[Sequence[Any]]) -> None:
        self.schemas[name] = list(columns)
        self.tables[name] = [tuple(row) for row in rows]

    @classmethod
    def from_relations(cls, **relations) -> "MadlibDatabase":
        db = cls()
        for name, relation in relations.items():
            db.create(name, relation.names, relation.to_rows())
        return db

    def rows(self, name: str) -> list[tuple]:
        if name not in self.tables:
            raise ReproError(f"unknown table {name!r}")
        return self.tables[name]

    def column_index(self, table: str, column: str) -> int:
        return self.schemas[table].index(column)

    # -- row-at-a-time relational operators ----------------------------------

    def select(self, table: str,
               predicate: Callable[[tuple], bool]) -> list[tuple]:
        return [row for row in self.rows(table) if predicate(row)]

    def join(self, left: str, right: str, left_col: str,
             right_col: str) -> list[tuple]:
        li = self.column_index(left, left_col)
        ri = self.column_index(right, right_col)
        index: dict[Any, list[tuple]] = {}
        for row in self.rows(right):
            index.setdefault(row[ri], []).append(row)
        out = []
        for row in self.rows(left):
            for match in index.get(row[li], ()):
                out.append(row + match)
        return out

    def group_count(self, table: str,
                    key: Callable[[tuple], Any]) -> dict[Any, int]:
        counts: dict[Any, int] = {}
        for row in self.rows(table):
            k = key(row)
            counts[k] = counts.get(k, 0) + 1
        return counts

    # -- the MADlib matrix format ----------------------------------------------

    def create_matrix(self, name: str,
                      rows: Iterable[Sequence[float]]) -> None:
        """Store a matrix as (row_id, array) rows — MADlib's input format."""
        self.create(name, ["row_id", "row_vec"],
                    [(i, list(map(float, row)))
                     for i, row in enumerate(rows)])

    def matrix_rows(self, name: str) -> list[list[float]]:
        ordered = sorted(self.rows(name), key=lambda r: r[0])
        return [row[1] for row in ordered]


# -- UDF-style matrix operations (single-threaded, interpreted) ----------------

def matrix_add(a: list[list[float]], b: list[list[float]]) \
        -> list[list[float]]:
    """madlib.matrix_add: per-element python loop."""
    if len(a) != len(b):
        raise ReproError("matrix_add: row count mismatch")
    out = []
    for ra, rb in zip(a, b):
        if len(ra) != len(rb):
            raise ReproError("matrix_add: column count mismatch")
        out.append([x + y for x, y in zip(ra, rb)])
    return out


def matrix_mult(a: list[list[float]], b: list[list[float]]) \
        -> list[list[float]]:
    """madlib.matrix_mult: triple python loop."""
    if not a or not b or len(a[0]) != len(b):
        raise ReproError("matrix_mult: dimension mismatch")
    k = len(b)
    m = len(b[0])
    out = []
    for row in a:
        acc = [0.0] * m
        for p in range(k):
            v = row[p]
            if v != 0.0:
                brow = b[p]
                for j in range(m):
                    acc[j] += v * brow[j]
        out.append(acc)
    return out


def matrix_transpose(a: list[list[float]]) -> list[list[float]]:
    return [list(col) for col in zip(*a)]


def matrix_inverse(a: list[list[float]]) -> list[list[float]]:
    """Gauss-Jordan in pure python (what a C-less UDF costs)."""
    n = len(a)
    work = [list(map(float, row)) + [1.0 if i == j else 0.0
                                     for j in range(n)]
            for i, row in enumerate(a)]
    for i in range(n):
        pivot_row = max(range(i, n), key=lambda r: abs(work[r][i]))
        if abs(work[pivot_row][i]) < 1e-12:
            raise ReproError("matrix_inverse: singular matrix")
        work[i], work[pivot_row] = work[pivot_row], work[i]
        pivot = work[i][i]
        work[i] = [v / pivot for v in work[i]]
        for r in range(n):
            if r != i and work[r][i] != 0.0:
                factor = work[r][i]
                work[r] = [v - factor * w for v, w in zip(work[r],
                                                          work[i])]
    return [row[n:] for row in work]


def linregr_train(x: list[list[float]], y: list[float]) -> list[float]:
    """madlib.linregr_train: normal equations, accumulated row by row."""
    if len(x) != len(y):
        raise ReproError("linregr_train: X and y length mismatch")
    k = len(x[0])
    xtx = [[0.0] * k for _ in range(k)]
    xty = [0.0] * k
    for row, target in zip(x, y):
        for i in range(k):
            vi = row[i]
            if vi == 0.0:
                continue
            xty[i] += vi * target
            xtx_i = xtx[i]
            for j in range(k):
                xtx_i[j] += vi * row[j]
    inverse = matrix_inverse(xtx)
    return [sum(inverse[i][j] * xty[j] for j in range(k))
            for i in range(k)]


def covariance(x: list[list[float]]) -> list[list[float]]:
    """madlib-style covariance: means then centered cross products."""
    n = len(x)
    if n < 2:
        raise ReproError("covariance needs at least two rows")
    k = len(x[0])
    means = [0.0] * k
    for row in x:
        for j in range(k):
            means[j] += row[j]
    means = [m / n for m in means]
    cov = [[0.0] * k for _ in range(k)]
    for row in x:
        centered = [row[j] - means[j] for j in range(k)]
        for i in range(k):
            ci = centered[i]
            if ci == 0.0:
                continue
            cov_i = cov[i]
            for j in range(k):
                cov_i[j] += ci * centered[j]
    scale = 1.0 / (n - 1)
    return [[v * scale for v in row] for row in cov]
