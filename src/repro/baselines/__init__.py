"""Competitor-system simulations for the comparative experiments.

Each baseline rebuilds the *cost structure* of the system the paper
compares against (see DESIGN.md §2 for the substitution argument):

* :mod:`repro.baselines.rlike`  — R (data.table + matrix): fast BLAS-backed
  matrix kernels, but single-core pure-python joins, no optimizer, and an
  explicit frame-to-matrix conversion step;
* :mod:`repro.baselines.aida`   — AIDA: relational part on the engine,
  matrix part "in Python" with zero-copy handover for numeric columns and
  per-element conversion for non-numeric ones;
* :mod:`repro.baselines.madlib` — MADlib/PostgreSQL: a row store with
  single-threaded UDF matrix operations over (row_id, array) tables;
* :mod:`repro.baselines.scidb`  — SciDB: chunked arrays where element-wise
  operations must first run an *array join* to align cell coordinates.
"""

from repro.baselines.rlike.frame import RFrame
from repro.baselines.aida import AidaTable
from repro.baselines.madlib import MadlibDatabase
from repro.baselines.scidb import SciDbArray

__all__ = ["RFrame", "AidaTable", "MadlibDatabase", "SciDbArray"]
