"""The AIDA baseline (D'silva et al., VLDB 2018).

AIDA runs relational operations in MonetDB and matrix operations in Python
over NumPy arrays.  Its signature property (paper §8.6): *numeric* MonetDB
columns are handed to Python by pointer (zero copy), but non-numeric
columns (dates, times, strings) have incompatible storage formats and must
be converted element by element — which is why AIDA loses to RMA+ on the
trips workload (Fig. 15) but matches it on the numeric journeys workload
(Fig. 16).

``AidaTable`` wraps an engine relation; ``to_python`` performs the
transfer, ``from_python`` rebuilds a MonetDB-side table from Python arrays
(always a copy — "Data copying is still needed to pass MonetDB results to
NumPy since MonetDB does not guarantee that multiple columns are contiguous
in memory", §2).
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.bat.bat import BAT, DataType
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema


class TransferStats:
    """Bytes and seconds spent moving data between engine and Python."""

    def __init__(self):
        self.zero_copy_columns = 0
        self.converted_columns = 0
        self.seconds = 0.0

    def reset(self) -> None:
        self.__init__()


class AidaTable:
    """A TabularData-like handle over an engine relation."""

    def __init__(self, relation: Relation,
                 stats: TransferStats | None = None):
        self.relation = relation
        self.stats = stats or TransferStats()

    # -- relational side (runs in the engine, like AIDA's SQL pushdown) -----

    def filter(self, mask: np.ndarray) -> "AidaTable":
        import repro.relational.ops as rel_ops
        return AidaTable(rel_ops.select_mask(self.relation, mask),
                         self.stats)

    def project(self, names: Sequence[str]) -> "AidaTable":
        import repro.relational.ops as rel_ops
        return AidaTable(rel_ops.project(self.relation, names), self.stats)

    def join(self, other: "AidaTable", left_on: Sequence[str],
             right_on: Sequence[str]) -> "AidaTable":
        from repro.relational.joins import join
        return AidaTable(join(self.relation, other.relation,
                              list(left_on), list(right_on),
                              drop_right_keys=True), self.stats)

    # -- the Python boundary --------------------------------------------------

    def to_python(self, names: Sequence[str] | None = None) \
            -> dict[str, np.ndarray]:
        """Hand columns to Python.

        Numeric columns are passed by pointer (the returned array *is* the
        BAT tail).  Non-numeric columns are converted value by value into
        python objects, exactly the cost AIDA pays for dates/times/strings.
        """
        start = time.perf_counter()
        out: dict[str, np.ndarray] = {}
        for name in (names or self.relation.names):
            bat = self.relation.column(name)
            if bat.dtype.is_numeric:
                out[name] = bat.tail  # zero copy: shared buffer
                self.stats.zero_copy_columns += 1
            else:
                out[name] = np.array(bat.python_values(), dtype=object)
                self.stats.converted_columns += 1
        self.stats.seconds += time.perf_counter() - start
        return out

    @classmethod
    def from_python(cls, data: dict[str, np.ndarray],
                    stats: TransferStats | None = None) -> "AidaTable":
        """Materialize Python arrays as an engine table (always copies)."""
        stats = stats or TransferStats()
        start = time.perf_counter()
        attributes = []
        columns = []
        for name, values in data.items():
            values = np.asarray(values)
            if values.dtype == object:
                bat = BAT.from_values(list(values))
            elif np.issubdtype(values.dtype, np.integer):
                bat = BAT(DataType.INT, values.astype(np.int64))
            else:
                bat = BAT(DataType.DBL, values.astype(np.float64))
            attributes.append(Attribute(name, bat.dtype))
            columns.append(bat)
        stats.seconds += time.perf_counter() - start
        return cls(Relation(Schema(attributes), columns), stats)

    # -- convenience ----------------------------------------------------------

    @property
    def nrows(self) -> int:
        return self.relation.nrows

    def matrix(self, names: Sequence[str]) -> np.ndarray:
        """Numeric columns as a 2-D array for NumPy-side linear algebra.

        Stacking into the dense layout NumPy kernels require is a copy —
        AIDA's pointer sharing only covers 1-D column access.
        """
        arrays = self.to_python(names)
        return np.column_stack([arrays[n] for n in names])
