"""R's matrix type and the data.table <-> matrix conversions.

R cannot run complex matrix operations on data.tables: the data must be
converted to the ``matrix`` type first (and results converted back) — this
conversion is what Fig. 14a measures.  The matrix kernels themselves are
BLAS-backed in R, so numpy stands in for them directly.

Character matrices (``as_character_matrix``) exist because R *can* hold
mixed data in a matrix of strings; the paper's §8.5 measures how painfully
slow relational operations over them are (40s vs 2s for a BIXI join), which
:func:`character_matrix_join` reproduces structurally: every value is a
python string and every comparison re-parses it.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.baselines.rlike.frame import RFrame
from repro.errors import ReproError


def as_matrix(frame: RFrame, columns: Sequence[str] | None = None,
              timings: dict | None = None) -> np.ndarray:
    """``as.matrix(dt[, cols])``: copy columns into a dense matrix.

    R validates and coerces each column during the copy; the per-column
    astype + column_stack below performs the same two passes.
    """
    start = time.perf_counter()
    names = list(columns) if columns is not None else frame.names
    converted = []
    for name in names:
        values = frame[name]
        if values.dtype == object:
            raise ReproError(
                f"as.matrix over non-numeric column {name!r}; use a "
                "character matrix")
        converted.append(values.astype(np.float64))
    dense = np.column_stack(converted) if converted else np.empty((0, 0))
    if timings is not None:
        timings["to_matrix"] = timings.get("to_matrix", 0.0) \
            + time.perf_counter() - start
    return dense


def matrix_to_frame(matrix: np.ndarray, names: Sequence[str],
                    timings: dict | None = None) -> RFrame:
    """``as.data.table(m)``: copy a matrix back into frame columns."""
    start = time.perf_counter()
    if matrix.ndim == 1:
        matrix = matrix.reshape(-1, 1)
    columns = {name: np.ascontiguousarray(matrix[:, j])
               for j, name in enumerate(names)}
    frame = RFrame(columns)
    if timings is not None:
        timings["to_frame"] = timings.get("to_frame", 0.0) \
            + time.perf_counter() - start
    return frame


def as_character_matrix(frame: RFrame) -> np.ndarray:
    """A matrix of strings holding mixed data (R's only mixed-type matrix)."""
    columns = [np.array([str(v) for v in frame[name]], dtype=object)
               for name in frame.names]
    return np.column_stack(columns)


def character_matrix_join(left: np.ndarray, left_key: int,
                          right: np.ndarray, right_key: int) -> np.ndarray:
    """Join two character matrices on string-typed key columns.

    Every key is a python string and the output is rebuilt string by
    string — the §8.5 pathology.
    """
    index: dict[str, list[int]] = {}
    for j in range(right.shape[0]):
        index.setdefault(right[j, right_key], []).append(j)
    rows = []
    for i in range(left.shape[0]):
        for j in index.get(left[i, left_key], ()):
            rows.append(list(left[i, :])
                        + [right[j, c] for c in range(right.shape[1])
                           if c != right_key])
    if not rows:
        return np.empty((0, left.shape[1] + right.shape[1] - 1),
                        dtype=object)
    return np.array(rows, dtype=object)


# R's matrix kernels are BLAS calls; numpy is the same class of kernel.

def r_crossprod(matrix: np.ndarray) -> np.ndarray:
    """``crossprod(m)`` = t(m) %*% m."""
    return matrix.T @ matrix


def r_solve(a: np.ndarray, b: np.ndarray | None = None) -> np.ndarray:
    """``solve(a[, b])``."""
    if b is None:
        return np.linalg.inv(a)
    return np.linalg.solve(a, b)


def r_qr_q(matrix: np.ndarray) -> np.ndarray:
    """``qr.Q(qr(m))``."""
    q, _ = np.linalg.qr(matrix)
    return q


def r_svd(matrix: np.ndarray):
    """``svd(m)`` returning (d, u, v)."""
    u, d, vt = np.linalg.svd(matrix, full_matrices=False)
    return d, u, vt.T
