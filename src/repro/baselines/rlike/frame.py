"""A data.table-like frame, with R's performance profile.

What is fast in R stays fast here (vectorized filtering, grouped
aggregation — data.table's C kernels are modeled by numpy), and what is
slow in R stays slow (paper §8.6: "The join implementation of R does not
leverage multiple cores, and R lacks a query optimizer"): ``merge`` is a
single-core, row-at-a-time hash join, and operations are executed exactly
in the order written.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.errors import ReproError


class RFrame:
    """Ordered named columns (numpy arrays / object arrays)."""

    def __init__(self, columns: dict[str, np.ndarray]):
        self.columns: dict[str, np.ndarray] = {}
        n = None
        for name, values in columns.items():
            array = np.asarray(values)
            if n is None:
                n = len(array)
            elif len(array) != n:
                raise ReproError(
                    f"column {name!r} has {len(array)} entries, "
                    f"expected {n}")
            self.columns[name] = array
        self.n = n or 0

    # -- basics -------------------------------------------------------------

    @property
    def names(self) -> list[str]:
        return list(self.columns)

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, name: str) -> np.ndarray:
        return self.columns[name]

    def copy(self) -> "RFrame":
        return RFrame({k: v.copy() for k, v in self.columns.items()})

    @classmethod
    def from_relation(cls, relation) -> "RFrame":
        """Import from the engine (used to hand baselines the same data)."""
        columns = {}
        for name in relation.names:
            bat = relation.column(name)
            if bat.dtype.is_numeric:
                columns[name] = np.asarray(bat.tail, dtype=np.float64) \
                    if bat.dtype.value == "double" else bat.tail.copy()
            else:
                columns[name] = np.array(bat.python_values(), dtype=object)
        return cls(columns)

    # -- vectorized operations (fast in R) ------------------------------------

    def subset(self, mask: np.ndarray) -> "RFrame":
        """``dt[mask]`` — vectorized filtering."""
        return RFrame({k: v[mask] for k, v in self.columns.items()})

    def select(self, names: Sequence[str]) -> "RFrame":
        return RFrame({n: self.columns[n] for n in names})

    def with_column(self, name: str, values: np.ndarray) -> "RFrame":
        """``dt[, name := values]``."""
        out = dict(self.columns)
        out[name] = np.asarray(values)
        return RFrame(out)

    def order_by(self, name: str) -> "RFrame":
        positions = np.argsort(self.columns[name], kind="stable")
        return RFrame({k: v[positions] for k, v in self.columns.items()})

    def aggregate(self, by: Sequence[str],
                  aggregations: dict[str, tuple[str, str]]) -> "RFrame":
        """``dt[, .(out = fun(col)), by = keys]`` (data.table GForce).

        ``aggregations`` maps output name -> (function, column); functions:
        sum, mean, count, min, max.
        """
        codes = self._group_codes(by)
        uniques, first, inverse = np.unique(codes, return_index=True,
                                            return_inverse=True)
        ngroups = len(uniques)
        out: dict[str, np.ndarray] = {}
        for key in by:
            out[key] = self.columns[key][first]
        for out_name, (func, column) in aggregations.items():
            if func == "count":
                out[out_name] = np.bincount(inverse, minlength=ngroups)
                continue
            values = self.columns[column].astype(np.float64)
            if func == "sum":
                out[out_name] = np.bincount(inverse, weights=values,
                                            minlength=ngroups)
            elif func == "mean":
                sums = np.bincount(inverse, weights=values,
                                   minlength=ngroups)
                counts = np.bincount(inverse, minlength=ngroups)
                out[out_name] = sums / counts
            elif func in ("min", "max"):
                fill = np.inf if func == "min" else -np.inf
                acc = np.full(ngroups, fill)
                ufunc = np.minimum if func == "min" else np.maximum
                ufunc.at(acc, inverse, values)
                out[out_name] = acc
            else:
                raise ReproError(f"unsupported aggregate {func!r}")
        return RFrame(out)

    def _group_codes(self, by: Sequence[str]) -> np.ndarray:
        codes: np.ndarray | None = None
        for name in by:
            _, col_codes = np.unique(self.columns[name],
                                     return_inverse=True)
            if codes is None:
                codes = col_codes.astype(np.int64)
            else:
                k = int(col_codes.max()) + 1 if len(col_codes) else 1
                _, codes = np.unique(codes * k + col_codes,
                                     return_inverse=True)
                codes = codes.astype(np.int64)
        assert codes is not None
        return codes

    # -- the slow parts (also slow in R) ---------------------------------------

    def merge(self, other: "RFrame", by: Sequence[str],
              other_by: Sequence[str] | None = None,
              suffix: str = "_y") -> "RFrame":
        """``merge(x, y, by=...)`` — single-core row-at-a-time hash join.

        R's merge builds an index and probes it one row at a time on a
        single core; this python loop has the same profile.
        """
        other_by = list(other_by or by)
        by = list(by)
        index: dict[tuple, list[int]] = {}
        key_columns = [other.columns[k] for k in other_by]
        for j in range(other.n):
            key = tuple(col[j] for col in key_columns)
            index.setdefault(key, []).append(j)
        left_rows: list[int] = []
        right_rows: list[int] = []
        probe_columns = [self.columns[k] for k in by]
        for i in range(self.n):
            key = tuple(col[i] for col in probe_columns)
            for j in index.get(key, ()):
                left_rows.append(i)
                right_rows.append(j)
        lpos = np.array(left_rows, dtype=np.int64)
        rpos = np.array(right_rows, dtype=np.int64)
        out: dict[str, np.ndarray] = {}
        for name, values in self.columns.items():
            out[name] = values[lpos] if len(lpos) else values[:0]
        for name, values in other.columns.items():
            if name in other_by:
                continue
            target = name if name not in out else name + suffix
            out[target] = values[rpos] if len(rpos) else values[:0]
        return RFrame(out)

    def apply_rows(self, func: Callable[..., Any],
                   arguments: Sequence[str], out: str) -> "RFrame":
        """Row-wise apply() — not vectorized, as in R."""
        columns = [self.columns[a] for a in arguments]
        values = np.array([func(*(col[i] for col in columns))
                           for i in range(self.n)])
        return self.with_column(out, values)


def read_csv_r(path: str | Path) -> RFrame:
    """``read.csv`` — a row-at-a-time parser (R's loader is the dark bar of
    Fig. 15a)."""
    with open(path, "r", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        rows = [row for row in reader]
    columns: dict[str, np.ndarray] = {}
    for i, name in enumerate(header):
        raw = [row[i] for row in rows]
        parsed: list[Any] = []
        numeric = True
        for cell in raw:
            try:
                parsed.append(float(cell))
            except ValueError:
                numeric = False
                break
        if numeric:
            columns[name] = np.array(parsed, dtype=np.float64)
        else:
            columns[name] = np.array(raw, dtype=object)
    return RFrame(columns)
