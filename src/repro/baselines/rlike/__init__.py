"""The "R" baseline: data.table-like frames plus a matrix type."""

from repro.baselines.rlike.frame import RFrame, read_csv_r
from repro.baselines.rlike.matrix import (
    as_character_matrix,
    as_matrix,
    character_matrix_join,
    matrix_to_frame,
)

__all__ = ["RFrame", "read_csv_r", "as_matrix", "matrix_to_frame",
           "as_character_matrix", "character_matrix_join"]
