"""The SciDB baseline (Stonebraker et al., SSDBM 2011).

SciDB stores arrays in chunks addressed by cell coordinates.  Element-wise
operations over two arrays are not simple vector adds: SciDB evaluates an
*array join* that aligns the cell coordinates of both inputs before
combining values (paper §8.4: "SciDB must compute a so-called array join
over the input arrays in order to add their values" — the reason RMA+ beats
it by >10x in Table 7).

``SciDbArray`` keeps explicit per-chunk coordinate vectors, and ``add``
performs the real coordinate alignment (sort + searchsorted per chunk pair)
before adding — the structural cost the experiment measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError

DEFAULT_CHUNK = 4096


@dataclass
class Chunk:
    """One chunk: cell coordinates (sorted) and one value column per
    attribute."""

    coordinates: np.ndarray
    values: list[np.ndarray]


class SciDbArray:
    """A 1-D coordinate array with multiple attributes, chunked."""

    def __init__(self, chunks: list[Chunk], attribute_names: list[str],
                 chunk_size: int):
        self.chunks = chunks
        self.attribute_names = attribute_names
        self.chunk_size = chunk_size

    @classmethod
    def build(cls, coordinates: np.ndarray,
              attributes: dict[str, np.ndarray],
              chunk_size: int = DEFAULT_CHUNK) -> "SciDbArray":
        """Load cells into coordinate-ordered chunks (SciDB's loader)."""
        coordinates = np.asarray(coordinates, dtype=np.int64)
        order = np.argsort(coordinates, kind="stable")
        coordinates = coordinates[order]
        names = list(attributes)
        columns = [np.asarray(attributes[n], dtype=np.float64)[order]
                   for n in names]
        chunks = []
        for start in range(0, len(coordinates), chunk_size):
            stop = start + chunk_size
            chunks.append(Chunk(coordinates[start:stop],
                                [c[start:stop] for c in columns]))
        return cls(chunks, names, chunk_size)

    @classmethod
    def from_relation(cls, relation, key: str,
                      chunk_size: int = DEFAULT_CHUNK) -> "SciDbArray":
        coordinates = relation.column(key).tail
        attributes = {n: relation.column(n).as_float()
                      for n in relation.names if n != key}
        return cls.build(coordinates, attributes, chunk_size)

    @property
    def count(self) -> int:
        return sum(len(c.coordinates) for c in self.chunks)

    def materialize(self) -> tuple[np.ndarray, list[np.ndarray]]:
        coordinates = np.concatenate([c.coordinates for c in self.chunks])
        values = [np.concatenate([c.values[j] for c in self.chunks])
                  for j in range(len(self.attribute_names))]
        return coordinates, values

    # -- operations -----------------------------------------------------------

    def add(self, other: "SciDbArray") -> "SciDbArray":
        """Element-wise add via array join.

        SciDB's join operator is generic: it cannot assume the two inputs
        share coordinates or ordering, so for every overlapping chunk pair
        it materializes the joined cell set — re-sorting the combined
        coordinates, detecting matches, and gathering both sides — before
        the addition runs.  Cells missing on either side are dropped
        (inner array join).  This multi-pass alignment is the structural
        cost behind Table 7.
        """
        if self.attribute_names != other.attribute_names:
            raise ReproError("array add requires matching attributes")
        out_chunks: list[Chunk] = []
        other_starts = np.array([c.coordinates[0] if len(c.coordinates)
                                 else np.iinfo(np.int64).max
                                 for c in other.chunks])
        for chunk in self.chunks:
            if not len(chunk.coordinates):
                continue
            lo, hi = chunk.coordinates[0], chunk.coordinates[-1]
            first = max(0, int(np.searchsorted(other_starts, lo,
                                               side="right")) - 1)
            for j in range(first, len(other.chunks)):
                other_chunk = other.chunks[j]
                if not len(other_chunk.coordinates) \
                        or other_chunk.coordinates[0] > hi:
                    break
                joined = self._join_chunk(chunk, other_chunk)
                if joined is not None:
                    out_chunks.append(joined)
        return SciDbArray(out_chunks, self.attribute_names,
                          self.chunk_size)

    def _join_chunk(self, left: Chunk, right: Chunk) -> Chunk | None:
        """Coordinate alignment of one chunk pair via SciDB's iterator
        model: a cell-at-a-time zipper merge over the two chunks' cell
        coordinates.  SciDB's executor walks cells through operator
        iterators one at a time (the paper measures ~70us/cell end to
        end); our per-cell interpreted loop against the engine's
        vectorized columns preserves exactly that asymmetry.  Once matches
        are known, the per-attribute adds are bulk operations (SciDB
        applies the expression over the materialized joined chunk)."""
        lc = left.coordinates
        rc = right.coordinates
        left_pos: list[int] = []
        right_pos: list[int] = []
        i = j = 0
        n_left, n_right = len(lc), len(rc)
        while i < n_left and j < n_right:
            a, b = lc[i], rc[j]
            if a == b:
                left_pos.append(i)
                right_pos.append(j)
                i += 1
                j += 1
            elif a < b:
                i += 1
            else:
                j += 1
        if not left_pos:
            return None
        li = np.array(left_pos, dtype=np.int64)
        ri = np.array(right_pos, dtype=np.int64)
        values = [left.values[a][li] + right.values[a][ri]
                  for a in range(len(self.attribute_names))]
        return Chunk(left.coordinates[li], values)

    def filter(self, attribute: str, op: str, value: float) -> "SciDbArray":
        """AQL ``WHERE`` over one attribute (per-chunk scan)."""
        index = self.attribute_names.index(attribute)
        ops = {"<": np.less, "<=": np.less_equal, ">": np.greater,
               ">=": np.greater_equal, "=": np.equal}
        if op not in ops:
            raise ReproError(f"unsupported filter operator {op!r}")
        out = []
        for chunk in self.chunks:
            mask = ops[op](chunk.values[index], value)
            if mask.any():
                out.append(Chunk(chunk.coordinates[mask],
                                 [v[mask] for v in chunk.values]))
        return SciDbArray(out, self.attribute_names, self.chunk_size)

    def sum(self, attribute: str) -> float:
        index = self.attribute_names.index(attribute)
        return float(sum(chunk.values[index].sum()
                         for chunk in self.chunks))
