"""Fig. 18 — Trip count via matrix addition, all systems.

Claims: add is a linear operation, so RMA+ runs it as the no-copy BAT
implementation and beats AIDA (Python round trip) and R (data.table ->
matrix -> data.table); RMA+BAT beats RMA+MKL in all settings because the
copy to the MKL format cannot be amortized.
"""

import pytest

from repro.workloads.trip_count import (
    make_dataset,
    run_aida,
    run_madlib,
    run_r,
    run_rma,
)

N_RIDERS = 100_000


@pytest.fixture(scope="module")
def dataset():
    return make_dataset(N_RIDERS)


@pytest.mark.benchmark(group="fig18")
def test_tripcount_rma_bat(benchmark, dataset):
    benchmark.pedantic(lambda: run_rma(dataset, "bat"), rounds=5,
                       iterations=1, warmup_rounds=1)


@pytest.mark.benchmark(group="fig18")
def test_tripcount_rma_mkl(benchmark, dataset):
    benchmark.pedantic(lambda: run_rma(dataset, "mkl"), rounds=5,
                       iterations=1, warmup_rounds=1)


@pytest.mark.benchmark(group="fig18")
def test_tripcount_aida(benchmark, dataset):
    benchmark.pedantic(lambda: run_aida(dataset), rounds=5, iterations=1,
                       warmup_rounds=1)


@pytest.mark.benchmark(group="fig18")
def test_tripcount_r(benchmark, dataset):
    benchmark.pedantic(lambda: run_r(dataset), rounds=5, iterations=1,
                       warmup_rounds=1)


@pytest.mark.benchmark(group="fig18")
def test_tripcount_madlib(benchmark):
    small = make_dataset(10_000)
    benchmark.pedantic(lambda: run_madlib(small), rounds=2, iterations=1,
                       warmup_rounds=0)


def test_fig18_shape(dataset):
    """All systems agree; MADlib (row loops) is the slowest by far."""
    bat = run_rma(dataset, "bat")
    aida = run_aida(dataset)
    r = run_r(dataset)
    assert bat.agrees_with(aida, rtol=1e-9)
    assert bat.agrees_with(r, rtol=1e-9)
    small = make_dataset(20_000)
    fast = run_rma(small, "bat")
    slow = run_madlib(small)
    assert fast.agrees_with(slow, rtol=1e-9)
    assert slow.times.total > 3.0 * fast.times.total
