"""Ablation — kernel-fusion pipeline + session plan/result cache (ISSUE 3).

Two access patterns the execution-pipeline refactor optimizes:

* **Element-wise chain** (fusion): ``emu(sub(add(y1,y2), y3), y4)`` over
  100k-row relations with string keys, run in the paper's benchmark mode
  (``validate_keys=False`` — MonetDB trusts declared key constraints).
  Unfused, every step runs its own prepare→kernel→merge round trip: the
  derived relation's *combined* order schema cannot be seeded without a
  verified key, so each step re-lexsorts a growing string schema and
  materializes an intermediate relation.  The fused pipeline
  (``FusedRma`` → :func:`repro.core.ops.execute_fused`) verifies each
  leaf's key once (cached), aligns all leaves with one composed
  permutation each, runs the whole chain as a kernel program, and merges
  once — no intermediates, no derived-relation sorts.

* **Repeated statements** (plan cache): a session executes the same
  Gram-chain statement over and over.  Without the session cache every
  statement re-plans and re-executes from scratch; with it the parsed
  statement, the optimized plan and the RMA subplan results are all
  reused until a catalog mutation invalidates them.

Both modes produce bit-identical relations — the script asserts it.

Runs in two modes:

* ``pytest benchmarks/bench_ablation_fusion.py`` — pytest-benchmark
  timings at CI scale;
* ``python benchmarks/bench_ablation_fusion.py [--quick] [--output f]``
  — self-contained speedup report (``benchmarks/BENCH_fusion.json`` is
  the committed baseline).  ``--no-fusion`` / ``--no-plan-cache`` force
  the respective layer off in *both* measured configurations (the
  corresponding speedup collapses to ~1x), which isolates one layer when
  profiling.
"""

import argparse
import json
import sys
import time

import numpy as np

from repro.core import RmaConfig
from repro.data.synthetic import uniform_relation
from repro.linalg.policy import BackendPolicy
from repro.plan.lazy import scan
from repro.relational.relation import Relation
from repro.sql import Session

try:
    from benchmarks.bench_util import relations_identical
except ImportError:  # script mode: benchmarks/ itself is on sys.path
    from bench_util import relations_identical

N_CHAIN_ROWS = 100_000
N_CHAIN_COLS = 4
N_GRAM_ROWS = 40_000
N_GRAM_COLS = 32
CHAIN_REPEATS = 5
STATEMENT_REPEATS = 10

GRAM_SQL = ("SELECT * FROM MMU(INV(CPD(g BY id, g BY id) BY C) BY C, "
            "CPD(g BY id, g BY id) BY C)")


def _chain_config(fuse: bool) -> RmaConfig:
    # validate_keys off reproduces the paper's benchmark mode; the fused
    # pipeline still verifies leaf keys once (cached) as its runtime
    # precondition.
    return RmaConfig(policy=BackendPolicy(prefer="auto"),
                     validate_keys=False, fuse_elementwise=fuse)


def _chain_relation(n_rows: int, index: int, seed: int) -> Relation:
    """One chain leaf: a shuffled STR key (the paper's order schemas are
    identifiers, and string sorts dominate the unfused chain) plus uniform
    numeric columns."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n_rows)
    data: dict = {f"k{index}": [f"r{v:07d}" for v in perm]}
    for j in range(N_CHAIN_COLS):
        data[f"d{j}"] = rng.uniform(0.0, 10_000.0, n_rows)
    return Relation.from_columns(data)


def build_inputs(n_chain: int = N_CHAIN_ROWS, n_gram: int = N_GRAM_ROWS):
    leaves = [_chain_relation(n_chain, i, seed=50 + i) for i in range(4)]
    gram = uniform_relation(n_gram, N_GRAM_COLS, key="id", seed=51)
    return leaves, gram


def chain_pipeline(leaves: list[Relation]):
    """emu(sub(add(y1,y2), y3), y4): a 3-step element-wise chain."""
    pipe = scan(leaves[0]).rma("add", by="k0", other=scan(leaves[1]),
                               other_by="k1")
    pipe = pipe.rma("sub", by=("k0", "k1"), other=scan(leaves[2]),
                    other_by="k2")
    return pipe.rma("emu", by=("k0", "k1", "k2"), other=scan(leaves[3]),
                    other_by="k3")


def run_chain(fused: bool, leaves: list[Relation],
              repeats: int = CHAIN_REPEATS):
    """Time ``repeats`` executions of the chain; returns (seconds, result)."""
    config = _chain_config(fused)
    result = None
    start = time.perf_counter()
    for _ in range(repeats):
        result = chain_pipeline(leaves).collect(config=config)
    return time.perf_counter() - start, result


def run_statements(cached: bool, gram: Relation,
                   repeats: int = STATEMENT_REPEATS):
    """Time ``repeats`` executions of the same statement in one session."""
    config = RmaConfig(policy=BackendPolicy(prefer="mkl"),
                       validate_keys=False)
    session = Session(config=config, plan_cache=cached)
    session.register("g", gram)
    result = None
    start = time.perf_counter()
    for _ in range(repeats):
        result = session.execute(GRAM_SQL)
    return time.perf_counter() - start, result


def run_ablation(n_chain: int = N_CHAIN_ROWS, n_gram: int = N_GRAM_ROWS,
                 chain_repeats: int = CHAIN_REPEATS,
                 statement_repeats: int = STATEMENT_REPEATS,
                 no_fusion: bool = False,
                 no_plan_cache: bool = False) -> dict:
    leaves, gram = build_inputs(n_chain, n_gram)
    # Warm the shared leaf caches once per mode: base-relation sorts (the
    # PR 1 layer) stay on in both modes — the ablation isolates the fused
    # pipeline / the session cache alone.
    run_chain(False, leaves, 1)
    run_chain(not no_fusion, leaves, 1)
    chain_off, result_off = run_chain(False, leaves, chain_repeats)
    chain_on, result_on = run_chain(not no_fusion, leaves, chain_repeats)
    chain_identical = relations_identical(result_on, result_off)

    stmt_off, stmt_result_off = run_statements(False, gram,
                                               statement_repeats)
    stmt_on, stmt_result_on = run_statements(not no_plan_cache, gram,
                                             statement_repeats)
    stmt_identical = relations_identical(stmt_result_on, stmt_result_off)

    return {
        "fusion": {
            "scenario": f"{chain_repeats}x 3-step add/sub/emu chain over "
                        f"4 relations of {n_chain}x{N_CHAIN_COLS} "
                        "(STR keys, validate_keys=off)",
            "n_rows": n_chain,
            "repeats": chain_repeats,
            "seconds_off": chain_off,
            "seconds_on": chain_on,
            "speedup": chain_off / max(chain_on, 1e-12),
            "identical": chain_identical,
        },
        "plan_cache": {
            "scenario": f"{statement_repeats}x identical Gram-chain "
                        f"statement over {n_gram}x{N_GRAM_COLS} "
                        "in one session",
            "n_rows": n_gram,
            "repeats": statement_repeats,
            "seconds_off": stmt_off,
            "seconds_on": stmt_on,
            "speedup": stmt_off / max(stmt_on, 1e-12),
            "identical": stmt_identical,
        },
        "identical": chain_identical and stmt_identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Kernel-fusion + session plan-cache ablation")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke scale")
    parser.add_argument("--no-fusion", action="store_true",
                        help="force element-wise fusion off in both modes")
    parser.add_argument("--no-plan-cache", action="store_true",
                        help="force the session result cache off in both "
                             "modes")
    parser.add_argument("--output", default=None,
                        help="write the result as JSON to this file")
    args = parser.parse_args(argv)
    if args.quick:
        report = run_ablation(n_chain=20_000, n_gram=8_000,
                              chain_repeats=3, statement_repeats=5,
                              no_fusion=args.no_fusion,
                              no_plan_cache=args.no_plan_cache)
    else:
        report = run_ablation(no_fusion=args.no_fusion,
                              no_plan_cache=args.no_plan_cache)
    print(json.dumps(report, indent=2))
    if not report["identical"]:
        print("FAIL: results differ between optimized and baseline modes",
              file=sys.stderr)
        return 1
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
    return 0


# -- pytest-benchmark mode --------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - script mode without pytest
    pytest = None

if pytest is not None:
    @pytest.fixture(scope="module")
    def inputs():
        return build_inputs(15_000, 6_000)

    @pytest.mark.benchmark(group="ablation-fusion")
    @pytest.mark.parametrize("fused", [False, True],
                             ids=["fusion-off", "fusion-on"])
    def test_chain(benchmark, fused, inputs):
        leaves, _ = inputs
        benchmark(lambda: run_chain(fused, leaves, 1))

    @pytest.mark.benchmark(group="ablation-plan-cache")
    @pytest.mark.parametrize("cached", [False, True],
                             ids=["cache-off", "cache-on"])
    def test_statements(benchmark, cached, inputs):
        _, gram = inputs
        benchmark(lambda: run_statements(cached, gram, 3))

    def test_results_identical():
        report = run_ablation(n_chain=5_000, n_gram=3_000,
                              chain_repeats=2, statement_repeats=3)
        assert report["identical"]


if __name__ == "__main__":
    sys.exit(main())
