"""Fig. 13 — maintaining contextual information.

Cost of handling order parts as the order schema grows, with and without
the §8.1 sorting optimizations.  Claim: the optimized variants (relative
sorting for add, no sorting for qqr) clearly outperform the full-sort
variants, and qqr without sorting is flat in the number of order columns.
"""

import pytest

from conftest import make_config
from repro.core.ops import execute_rma
from repro.data.synthetic import order_heavy_relation, order_names
from repro.relational import rename

N_ROWS = 5_000
N_ORDER = 100


@pytest.fixture(scope="module")
def order_pair():
    r = order_heavy_relation(N_ROWS, N_ORDER, seed=9)
    by = order_names(r)
    s = rename(order_heavy_relation(N_ROWS, N_ORDER, seed=9),
               {name: f"s_{name}" for name in by})
    s_by = [f"s_{name}" for name in by]
    return r, by, s, s_by


@pytest.mark.benchmark(group="fig13-add")
def test_add_full_sorting(benchmark, order_pair):
    r, by, s, s_by = order_pair
    config = make_config(optimize=False)
    benchmark(lambda: execute_rma("add", r, by, s, s_by, config=config))


@pytest.mark.benchmark(group="fig13-add")
def test_add_relative_sorting(benchmark, order_pair):
    r, by, s, s_by = order_pair
    config = make_config(optimize=True)
    benchmark(lambda: execute_rma("add", r, by, s, s_by, config=config))


@pytest.mark.benchmark(group="fig13-qqr")
def test_qqr_full_sorting(benchmark, order_pair):
    r, by, _, _ = order_pair
    config = make_config(optimize=False)
    benchmark(lambda: execute_rma("qqr", r, by, config=config))


@pytest.mark.benchmark(group="fig13-qqr")
def test_qqr_without_sorting(benchmark, order_pair):
    r, by, _, _ = order_pair
    config = make_config(optimize=True)
    benchmark(lambda: execute_rma("qqr", r, by, config=config))


def test_shape_optimized_wins(order_pair):
    """Non-timing assertion of the Fig. 13 claim at this scale."""
    import time

    r, by, s, s_by = order_pair

    def best_of(func, n=3):
        func()
        times = []
        for _ in range(n):
            start = time.perf_counter()
            func()
            times.append(time.perf_counter() - start)
        return min(times)

    slow = best_of(lambda: execute_rma(
        "qqr", r, by, config=make_config(optimize=False)))
    fast = best_of(lambda: execute_rma(
        "qqr", r, by, config=make_config(optimize=True)))
    assert fast < slow, (fast, slow)
