"""Table 7 — add followed by a selection: RMA+ vs SciDB.

Claim: RMA+ adds pairs of relations directly while SciDB must run an array
join to align cell coordinates first; the gap grows with input size and
exceeds an order of magnitude at the paper's scale.
"""

import numpy as np
import pytest

import repro.relational.ops as rel_ops
from conftest import make_config
from repro.baselines.scidb import SciDbArray
from repro.core.ops import execute_rma
from repro.data.synthetic import uniform_pair

N_ROWS = 30_000


@pytest.fixture(scope="module")
def relation_pair():
    return uniform_pair(N_ROWS, 10, seed=7)


@pytest.fixture(scope="module")
def array_pair(relation_pair):
    r, s = relation_pair
    return (SciDbArray.from_relation(r, "id1"),
            SciDbArray.from_relation(s, "id2"))


@pytest.mark.benchmark(group="table7")
def test_add_select_rma(benchmark, relation_pair):
    r, s = relation_pair
    config = make_config()

    def run():
        out = execute_rma("add", r, "id1", s, "id2", config=config)
        mask = out.column("x0").tail > 10_000.0
        return rel_ops.select_mask(out, mask)

    benchmark(run)


@pytest.mark.benchmark(group="table7")
def test_add_select_scidb(benchmark, array_pair):
    a, b = array_pair
    benchmark(lambda: a.add(b).filter("x0", ">", 10_000.0))


def test_results_agree(relation_pair, array_pair):
    r, s = relation_pair
    out = execute_rma("add", r, "id1", s, "id2", config=make_config())
    engine_sum = out.column("x0").tail.sum()
    a, b = array_pair
    scidb_sum = a.add(b).sum("x0")
    assert np.isclose(engine_sum, scidb_sum)
