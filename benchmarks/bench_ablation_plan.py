"""Ablation — shared plan layer: CSE + warm order propagation (ISSUE 2).

Two access patterns the plan layer optimizes, run as lazy pipelines:

* **Repeated subexpression** (CSE): the conditioning-check chain
  ``MMU(MMU(INV(CPD(a,a)), CPD(a,a)), INV(CPD(a,a)))`` contains the
  expensive Gram product ``CPD(a,a)`` three times and its inverse twice.
  With CSE the executor memoizes structurally identical subplans, so each
  runs once; the baseline recomputes every occurrence.

* **Chained element-wise operations over derived relations** (warm order):
  ``add(add(add(y1,y2), y3), y4)`` — every intermediate result used to
  start with a cold order cache, so each chained ``add`` re-sorted and
  re-validated ~100k derived rows.  ``merge_result`` now seeds the result's
  order cache (identity / shared / combined-schema permutations), making
  the chained sorts free; the baseline disables the seeding
  (``RmaConfig.seed_result_orders=False``).

Both modes produce bit-identical relations — the script asserts it.

Runs in two modes:

* ``pytest benchmarks/bench_ablation_plan.py`` — pytest-benchmark timings
  at CI scale;
* ``python benchmarks/bench_ablation_plan.py [--quick] [--output f]`` —
  self-contained speedup report (``benchmarks/BENCH_plan.json`` is the
  committed baseline).
"""

import argparse
import json
import sys
import time

import numpy as np

from repro.core import RmaConfig
from repro.data.synthetic import uniform_relation
from repro.linalg.policy import BackendPolicy
from repro.plan.lazy import scan
from repro.relational.relation import Relation

try:
    from benchmarks.bench_util import relations_identical
except ImportError:  # script mode: benchmarks/ itself is on sys.path
    from bench_util import relations_identical

N_GRAM_ROWS = 40_000
N_GRAM_COLS = 32
N_CHAIN_ROWS = 100_000
N_CHAIN_COLS = 4
REPEATS = 5


def _config(optimized: bool) -> RmaConfig:
    # validate_keys on: re-validating derived relations is part of what the
    # warm order cache amortizes.  Element-wise fusion (PR 3) is pinned off
    # in both modes — this ablation isolates CSE + order seeding alone;
    # bench_ablation_fusion.py measures the fused pipeline.
    return RmaConfig(policy=BackendPolicy(prefer="mkl"),
                     validate_keys=True,
                     seed_result_orders=optimized,
                     fuse_elementwise=False)


def _shuffled(relation: Relation, seed: int) -> Relation:
    rng = np.random.default_rng(seed)
    perm = rng.permutation(relation.nrows).astype(np.int64)
    return Relation(relation.schema,
                    [c.fetch(perm) for c in relation.columns])


def _chain_relation(n_rows: int, index: int, seed: int) -> Relation:
    """One chain input: a shuffled STR key (the paper's order schemas are
    identifiers, and string sorts are what the warm cache saves) plus
    uniform numeric columns."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n_rows)
    data: dict = {f"k{index}": [f"r{v:07d}" for v in perm]}
    for j in range(N_CHAIN_COLS):
        data[f"d{j}"] = rng.uniform(0.0, 10_000.0, n_rows)
    return Relation.from_columns(data)


def build_inputs(n_gram: int = N_GRAM_ROWS, n_chain: int = N_CHAIN_ROWS):
    gram = _shuffled(uniform_relation(n_gram, N_GRAM_COLS, key="id",
                                      seed=31), seed=32)
    years = [_chain_relation(n_chain, i, seed=40 + i) for i in range(4)]
    return gram, years


def gram_pipeline(gram: Relation):
    """MMU(MMU(INV(CPD(a,a)), CPD(a,a)), INV(CPD(a,a))) — one root,
    CPD(a,a) x3 and INV x2 as repeated subplans."""
    a = scan(gram, name="a")
    xtx = a.rma("cpd", by="id", other=a, other_by="id")
    inv_xtx = xtx.rma("inv", by="C")
    inner = inv_xtx.rma("mmu", by="C", other=xtx, other_by="C")
    return inner.rma("mmu", by="C", other=inv_xtx, other_by="C")


def chain_pipeline(years: list[Relation]):
    """add(add(add(y1,y2), y3), y4): each step consumes a derived relation
    and orders it by its full (grown) order schema."""
    pipe = scan(years[0]).rma("add", by="k0", other=scan(years[1]),
                              other_by="k1")
    pipe = pipe.rma("add", by=("k0", "k1"), other=scan(years[2]),
                    other_by="k2")
    return pipe.rma("add", by=("k0", "k1", "k2"), other=scan(years[3]),
                    other_by="k3")


def run_scenario(optimized: bool, gram: Relation, years: list[Relation],
                 repeats: int = REPEATS):
    """Time ``repeats`` executions of both pipelines; returns
    (seconds, (gram result, chain result))."""
    config = _config(optimized)
    results = None
    start = time.perf_counter()
    for _ in range(repeats):
        gram_result = gram_pipeline(gram).collect(config=config,
                                                  cse=optimized)
        chain_result = chain_pipeline(years).collect(config=config,
                                                     cse=optimized)
        results = (gram_result, chain_result)
    elapsed = time.perf_counter() - start
    return elapsed, results


def run_ablation(n_gram: int = N_GRAM_ROWS, n_chain: int = N_CHAIN_ROWS,
                 repeats: int = REPEATS) -> dict:
    gram, years = build_inputs(n_gram, n_chain)
    # Warm both paths once: base-relation order caches (the PR 1 layer) are
    # shared and deliberately stay on in both modes — the ablation isolates
    # the plan layer (CSE + derived-relation seeding) alone.
    run_scenario(True, gram, years, 1)
    run_scenario(False, gram, years, 1)
    seconds_off, results_off = run_scenario(False, gram, years, repeats)
    seconds_on, results_on = run_scenario(True, gram, years, repeats)
    identical = all(relations_identical(on, off)
                    for on, off in zip(results_on, results_off))
    return {
        "scenario": f"{repeats}x (3xCPD/2xINV repeated-subplan chain over "
                    f"{n_gram}x{N_GRAM_COLS} + 3-step add chain over "
                    f"{n_chain}x{N_CHAIN_COLS}, validate_keys=on)",
        "n_gram_rows": n_gram,
        "n_chain_rows": n_chain,
        "repeats": repeats,
        "seconds_off": seconds_off,
        "seconds_on": seconds_on,
        "speedup": seconds_off / max(seconds_on, 1e-12),
        "identical": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Plan-layer (CSE + warm order) ablation")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke scale")
    parser.add_argument("--output", default=None,
                        help="write the result as JSON to this file")
    args = parser.parse_args(argv)
    if args.quick:
        report = run_ablation(n_gram=10_000, n_chain=20_000, repeats=3)
    else:
        report = run_ablation()
    print(json.dumps(report, indent=2))
    if not report["identical"]:
        print("FAIL: results differ between plan optimizations on/off",
              file=sys.stderr)
        return 1
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
    return 0


# -- pytest-benchmark mode --------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - script mode without pytest
    pytest = None

if pytest is not None:
    @pytest.fixture(scope="module")
    def inputs():
        return build_inputs(8_000, 15_000)

    @pytest.mark.benchmark(group="ablation-plan")
    @pytest.mark.parametrize("optimized", [False, True],
                             ids=["plan-off", "plan-on"])
    def test_plan_pipelines(benchmark, optimized, inputs):
        gram, years = inputs
        benchmark(lambda: run_scenario(optimized, gram, years, 1))

    def test_results_identical():
        report = run_ablation(n_gram=5_000, n_chain=10_000, repeats=2)
        assert report["identical"]


if __name__ == "__main__":
    sys.exit(main())
