"""Shared fixtures for the benchmark suite.

Benchmarks run at CI scale (fractions of the harness sizes) so the whole
suite finishes in minutes; ``python -m repro.bench <exp> --scale 1.0``
produces the full paper-style tables.
"""

import pytest

from repro.core import RmaConfig
from repro.data.bixi import (
    generate_numeric_trips,
    generate_stations,
    generate_trips,
)
from repro.data.dblp import generate_publications, generate_ranking
from repro.data.synthetic import sparse_pair, uniform_pair, uniform_relation
from repro.linalg.policy import BackendPolicy


def make_config(prefer: str = "auto", optimize: bool = True) -> RmaConfig:
    return RmaConfig(policy=BackendPolicy(prefer=prefer),
                     optimize_sorting=optimize, validate_keys=False)


@pytest.fixture(scope="session")
def stations():
    return generate_stations(40, seed=1)


@pytest.fixture(scope="session")
def trips(stations):
    return generate_trips(40_000, stations, seed=2)


@pytest.fixture(scope="session")
def numeric_trips(stations):
    return generate_numeric_trips(40_000, stations, seed=3)


@pytest.fixture(scope="session")
def publications():
    return generate_publications(4_000, 40, seed=12)


@pytest.fixture(scope="session")
def ranking():
    return generate_ranking(40, seed=11)


@pytest.fixture(scope="session")
def pair_100k():
    return uniform_pair(100_000, 10, seed=7)


@pytest.fixture(scope="session")
def qqr_relation():
    return uniform_relation(20_000, 10, seed=6)
