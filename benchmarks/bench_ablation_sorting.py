"""Ablation — the §8.1 sorting classes, operation by operation.

Beyond Fig. 13's add/qqr, this measures every sorting class: invariant
operations (rnk/dsv) that skip sorting entirely, equivariant ones
(qqr/usv/mmu), relative alignment (add/cpd/sol), and full-sort operations
(inv/tra) where the optimization cannot apply.
"""

import pytest

from conftest import make_config
from repro.core.ops import execute_rma
from repro.data.synthetic import order_heavy_relation, order_names
from repro.relational import rename

N_ROWS = 20_000
N_ORDER = 20


@pytest.fixture(scope="module")
def relation():
    return order_heavy_relation(N_ROWS, N_ORDER, seed=9)


@pytest.fixture(scope="module")
def by(relation):
    return order_names(relation)


@pytest.mark.benchmark(group="ablation-sorting-invariant")
@pytest.mark.parametrize("optimize", [False, True],
                         ids=["full-sort", "no-sort"])
def test_rnk(benchmark, relation, by, optimize):
    config = make_config(optimize=optimize)
    benchmark(lambda: execute_rma("rnk", relation, by, config=config))


@pytest.mark.benchmark(group="ablation-sorting-invariant")
@pytest.mark.parametrize("optimize", [False, True],
                         ids=["full-sort", "no-sort"])
def test_dsv(benchmark, relation, by, optimize):
    config = make_config(optimize=optimize)
    benchmark(lambda: execute_rma("dsv", relation, by, config=config))


@pytest.mark.benchmark(group="ablation-sorting-relative")
@pytest.mark.parametrize("optimize", [False, True],
                         ids=["full-sort", "relative"])
def test_sub(benchmark, relation, by, optimize):
    other = rename(order_heavy_relation(N_ROWS, N_ORDER, seed=10),
                   {name: f"s_{name}" for name in by})
    other_by = [f"s_{name}" for name in by]
    config = make_config(optimize=optimize)
    benchmark(lambda: execute_rma("sub", relation, by, other, other_by,
                                  config=config))


@pytest.mark.benchmark(group="ablation-sorting-equivariant")
@pytest.mark.parametrize("optimize", [False, True],
                         ids=["full-sort", "no-sort"])
def test_usv_names_only_sort(benchmark, optimize):
    # usv requires |U| = 1; single order column, value sort only.
    relation = order_heavy_relation(300, 1, seed=9)
    config = make_config(optimize=optimize)
    benchmark(lambda: execute_rma("usv", relation, ["k0"],
                                  config=config))
