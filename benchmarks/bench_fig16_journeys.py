"""Fig. 16 — Journeys workload (multiple linear regression), all systems.

Claims: with purely numeric data AIDA's relational part is comparable to
RMA+ (pointer transfer is free); R pays for single-core merges; MADlib is
slowest, spending most of its relational time on row-wise distance
computation; RMA+MKL beats RMA+BAT on the matrix part.
"""

import pytest

from repro.workloads.journeys_mlr import (
    JourneysDataset,
    run_aida,
    run_madlib,
    run_r,
    run_rma,
)


@pytest.fixture(scope="module")
def dataset(numeric_trips, stations):
    return JourneysDataset(numeric_trips, stations, n_legs=3,
                           min_count=30)


@pytest.mark.benchmark(group="fig16")
def test_journeys_rma_mkl(benchmark, dataset):
    benchmark.pedantic(lambda: run_rma(dataset, "mkl"), rounds=3,
                       iterations=1, warmup_rounds=1)


@pytest.mark.benchmark(group="fig16")
def test_journeys_rma_bat(benchmark, dataset):
    benchmark.pedantic(lambda: run_rma(dataset, "bat"), rounds=3,
                       iterations=1, warmup_rounds=1)


@pytest.mark.benchmark(group="fig16")
def test_journeys_aida(benchmark, dataset):
    benchmark.pedantic(lambda: run_aida(dataset), rounds=3, iterations=1,
                       warmup_rounds=1)


@pytest.mark.benchmark(group="fig16")
def test_journeys_r(benchmark, dataset):
    benchmark.pedantic(lambda: run_r(dataset), rounds=3, iterations=1,
                       warmup_rounds=1)


@pytest.mark.benchmark(group="fig16")
def test_journeys_madlib(benchmark, numeric_trips, stations):
    small = JourneysDataset(numeric_trips, stations, n_legs=2,
                            min_count=40)
    benchmark.pedantic(lambda: run_madlib(small), rounds=2, iterations=1,
                       warmup_rounds=0)


def test_fig16_shape(dataset):
    """Numeric-only data: AIDA's prep is within ~2x of RMA+'s, and R's
    merge-based prep is slower than both."""
    rma = run_rma(dataset, "mkl")
    aida = run_aida(dataset)
    r = run_r(dataset)
    assert rma.agrees_with(aida, rtol=1e-5)
    assert rma.agrees_with(r, rtol=1e-4)
    assert aida.times.prep < 2.0 * rma.times.prep + 0.05
    assert r.times.prep > aida.times.prep
