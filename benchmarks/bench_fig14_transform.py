"""Fig. 14 — overhead of data transformation.

For the MKL delegation path, how much of the runtime is spent copying BATs
into contiguous arrays and back?  Claim: the transformation share dominates
simple operations (ADD/EMU up to ~92%) and is minor for complex ones
(QQR/DSV/VSV).
"""

import numpy as np
import pytest

from repro.baselines.rlike import RFrame, as_matrix, matrix_to_frame
from repro.data.synthetic import uniform_relation
from repro.linalg.mkl_backend import MklBackend
from repro.linalg.transform import from_dense, to_dense

N_ROWS = 50_000
N_COLS = 50


@pytest.fixture(scope="module")
def columns():
    relation = uniform_relation(N_ROWS, N_COLS, seed=14)
    return [relation.column(f"x{j}").tail for j in range(N_COLS)]


@pytest.mark.benchmark(group="fig14-transform")
def test_copy_roundtrip(benchmark, columns):
    benchmark(lambda: from_dense(to_dense(columns)))


@pytest.mark.benchmark(group="fig14-simple")
def test_add_via_mkl(benchmark, columns):
    backend = MklBackend()
    benchmark(lambda: backend.compute("add", columns, columns))


@pytest.mark.benchmark(group="fig14-complex")
def test_qqr_via_mkl(benchmark, columns):
    backend = MklBackend()
    benchmark(lambda: backend.compute("qqr", columns))


@pytest.mark.benchmark(group="fig14-complex")
def test_dsv_via_mkl(benchmark, columns):
    backend = MklBackend()
    benchmark(lambda: backend.compute("dsv", columns))


def test_shares_match_paper_shape(columns):
    """ADD's transform share must exceed QQR's (the Fig. 14 ordering)."""
    add_backend = MklBackend()
    for _ in range(3):
        add_backend.compute("add", columns, columns)
    qqr_backend = MklBackend()
    for _ in range(3):
        qqr_backend.compute("qqr", columns)
    add_share = add_backend.stats.transform_share()
    qqr_share = qqr_backend.stats.transform_share()
    assert add_share > qqr_share
    assert add_share > 0.5  # transformation dominates the simple op


def test_r_conversion_share(columns):
    """Same shape for R: data.table <-> matrix conversion dominates add."""
    frame = RFrame({f"x{j}": col for j, col in enumerate(columns)})
    names = list(frame.names)
    timings: dict = {}
    import time
    matrix = as_matrix(frame, names, timings)
    start = time.perf_counter()
    out = matrix + matrix
    kernel = time.perf_counter() - start
    matrix_to_frame(out, names, timings)
    transform = timings["to_matrix"] + timings["to_frame"]
    assert transform / (transform + kernel) > 0.5
