"""Fig. 15 — Trips workload (ordinary linear regression), all systems.

Claims: RMA+ and AIDA outperform R and MADlib; RMA+ beats AIDA because
AIDA must convert non-numeric columns (dates/times) when crossing into
Python; RMA+MKL beats RMA+BAT on this complex matrix part (Fig. 15b).
"""

import pytest

from repro.workloads.trips_olr import (
    TripsDataset,
    run_aida,
    run_madlib,
    run_r,
    run_rma,
)

MIN_COUNT = 10


@pytest.fixture(scope="module")
def dataset(trips, stations):
    return TripsDataset(trips, stations, 2014, 2015, min_count=MIN_COUNT)


@pytest.fixture(scope="module")
def small_dataset(trips, stations):
    import repro.relational.ops as rel_ops
    small = rel_ops.limit(trips, 8_000)
    return TripsDataset(small, stations, 2014, 2017, min_count=5)


@pytest.mark.benchmark(group="fig15")
def test_trips_rma_mkl(benchmark, dataset):
    benchmark.pedantic(lambda: run_rma(dataset, "mkl"), rounds=3,
                       iterations=1, warmup_rounds=1)


@pytest.mark.benchmark(group="fig15")
def test_trips_rma_bat(benchmark, dataset):
    benchmark.pedantic(lambda: run_rma(dataset, "bat"), rounds=3,
                       iterations=1, warmup_rounds=1)


@pytest.mark.benchmark(group="fig15")
def test_trips_aida(benchmark, dataset):
    benchmark.pedantic(lambda: run_aida(dataset), rounds=3, iterations=1,
                       warmup_rounds=1)


@pytest.mark.benchmark(group="fig15")
def test_trips_r(benchmark, dataset, tmp_path_factory):
    csv_dir = str(tmp_path_factory.mktemp("r_csvs"))
    benchmark.pedantic(lambda: run_r(dataset, csv_dir=csv_dir), rounds=3,
                       iterations=1, warmup_rounds=1)


@pytest.mark.benchmark(group="fig15")
def test_trips_madlib(benchmark, small_dataset):
    benchmark.pedantic(lambda: run_madlib(small_dataset), rounds=2,
                       iterations=1, warmup_rounds=0)


def test_fig15_shape(dataset):
    """RMA+ total < AIDA total (non-numeric transfer) and both beat R."""
    rma = run_rma(dataset, "mkl")
    aida = run_aida(dataset)
    r = run_r(dataset)
    assert rma.agrees_with(aida, rtol=1e-5)
    assert rma.agrees_with(r, rtol=1e-5)
    assert rma.times.total < aida.times.total
    assert aida.times.total < r.times.total
