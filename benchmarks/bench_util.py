"""Shared helpers for the ablation benchmark scripts."""

import numpy as np

from repro.bat.bat import DataType
from repro.relational.relation import Relation


def relations_identical(a: Relation, b: Relation) -> bool:
    """Bit-identity of two relations: names, dtypes and raw tails.

    This is the acceptance check of the ablations — optimizations must
    change the work performed, never the result (NaNs compare equal)."""
    if a.names != b.names:
        return False
    for name in a.names:
        ca, cb = a.column(name), b.column(name)
        if ca.dtype is not cb.dtype:
            return False
        if ca.dtype is DataType.DBL:
            if not np.array_equal(ca.tail, cb.tail, equal_nan=True):
                return False
        elif list(ca.tail) != list(cb.tail):
            return False
    return True
