"""Table 4 — add over wide relations (runtime vs #attributes)."""

import pytest

from conftest import make_config
from repro.core.ops import execute_rma
from repro.data.synthetic import uniform_pair

N_ROWS = 1_000


@pytest.mark.benchmark(group="table4")
@pytest.mark.parametrize("n_attrs", [100, 400, 800])
def test_add_wide(benchmark, n_attrs):
    r, s = uniform_pair(N_ROWS, n_attrs, seed=4)
    config = make_config()
    benchmark(lambda: execute_rma("add", r, "id1", s, "id2",
                                  config=config))


def test_wide_relation_is_handled():
    """Claim: the engine handles relations with thousands of attributes."""
    r, s = uniform_pair(200, 2_000, seed=4)
    out = execute_rma("add", r, "id1", s, "id2", config=make_config())
    assert len(out.names) == 2_002
    assert out.nrows == 200
