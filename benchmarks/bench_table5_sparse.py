"""Table 5 — add over sparse relations.

Paper claim: MonetDB's compression makes add up to ~2x faster as the zero
share grows.  Documented deviation (see EXPERIMENTS.md): on the numpy
substrate the dense add is already memory-bandwidth optimal, so the curve
is flat; the engine's sparse path is kept and benchmarked but engages only
on essentially empty columns.
"""

import pytest

from conftest import make_config
from repro.core.ops import execute_rma
from repro.data.synthetic import sparse_pair

N_ROWS = 100_000


@pytest.mark.benchmark(group="table5")
@pytest.mark.parametrize("percent", [0, 50, 90, 100])
def test_add_sparse(benchmark, percent):
    r, s = sparse_pair(N_ROWS, 10, percent / 100.0, seed=5)
    config = make_config()
    benchmark(lambda: execute_rma("add", r, "id1", s, "id2",
                                  config=config))


@pytest.mark.benchmark(group="table5-kernel")
def test_sparse_kernel_dense_input(benchmark):
    import numpy as np
    from repro.bat.compression import sparse_add
    rng = np.random.default_rng(0)
    a, b = rng.uniform(1, 100, N_ROWS), rng.uniform(1, 100, N_ROWS)
    benchmark(lambda: sparse_add(a, b))


@pytest.mark.benchmark(group="table5-kernel")
def test_sparse_kernel_empty_input(benchmark):
    import numpy as np
    a = np.zeros(N_ROWS)
    from repro.bat.compression import sparse_add
    benchmark(lambda: sparse_add(a, a))
