"""Ablation — the cost of key validation.

The order schema of a relational matrix operation must form a key (paper
footnote 2).  The library validates this by default (`validate_keys=True`);
the paper's MonetDB implementation relies on declared constraints instead.
This ablation measures what the safety check costs per operation class, and
justifies why the benchmark harness disables it (as the paper effectively
does).
"""

import pytest

from conftest import make_config
from repro.core import RmaConfig
from repro.core.ops import execute_rma
from repro.data.synthetic import uniform_pair, uniform_relation
from repro.linalg.policy import BackendPolicy

N_ROWS = 50_000


def config_with_validation(validate: bool) -> RmaConfig:
    return RmaConfig(policy=BackendPolicy(), optimize_sorting=True,
                     validate_keys=validate)


@pytest.fixture(scope="module")
def relation():
    return uniform_relation(N_ROWS, 10, seed=6)


@pytest.fixture(scope="module")
def pair():
    return uniform_pair(N_ROWS, 10, seed=7)


@pytest.mark.benchmark(group="ablation-validation-qqr")
@pytest.mark.parametrize("validate", [True, False],
                         ids=["validated", "unchecked"])
def test_qqr_key_validation(benchmark, relation, validate):
    config = config_with_validation(validate)
    benchmark(lambda: execute_rma("qqr", relation, "id", config=config))


@pytest.mark.benchmark(group="ablation-validation-add")
@pytest.mark.parametrize("validate", [True, False],
                         ids=["validated", "unchecked"])
def test_add_key_validation(benchmark, pair, validate):
    r, s = pair
    config = config_with_validation(validate)
    benchmark(lambda: execute_rma("add", r, "id1", s, "id2",
                                  config=config))


@pytest.mark.benchmark(group="ablation-validation-rnk")
@pytest.mark.parametrize("validate", [True, False],
                         ids=["validated", "unchecked"])
def test_rnk_exempt_from_validation(benchmark, relation, validate):
    # rnk is order-invariant: the key requirement does not apply, so both
    # variants should measure the same.
    config = config_with_validation(validate)
    benchmark(lambda: execute_rma("rnk", relation, "id", config=config))


def test_validation_catches_duplicates(relation):
    from repro.errors import KeyViolationError
    from repro.relational import Relation
    import numpy as np
    bad = Relation.from_columns({
        "id": np.zeros(10, dtype=np.int64),
        "x": np.arange(10, dtype=np.float64),
        "y": np.ones(10)})
    with pytest.raises(KeyViolationError):
        execute_rma("qqr", bad, "id",
                    config=config_with_validation(True))
    # unchecked mode computes anyway (the paper's constraint-trusting mode)
    out = execute_rma("qqr", bad, "id",
                      config=config_with_validation(False))
    assert out.nrows == 10
