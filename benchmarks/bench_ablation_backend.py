"""Ablation — BAT vs MKL backend per operation (§7.3 policy evidence).

For linear operations the copy to the MKL format dominates (BAT wins);
for complex operations the dense kernel wins despite the copy.  These
measurements justify the BackendPolicy defaults.
"""

import pytest

from conftest import make_config
from repro.core.ops import execute_rma
from repro.data.synthetic import uniform_pair, uniform_relation

N_ROWS = 50_000
N_COLS = 20


@pytest.fixture(scope="module")
def relation():
    return uniform_relation(N_ROWS, N_COLS, seed=6)


@pytest.fixture(scope="module")
def pair():
    return uniform_pair(N_ROWS, N_COLS, seed=7)


@pytest.mark.benchmark(group="ablation-backend-add")
@pytest.mark.parametrize("backend", ["bat", "mkl"])
def test_add(benchmark, pair, backend):
    r, s = pair
    config = make_config(prefer=backend)
    benchmark(lambda: execute_rma("add", r, "id1", s, "id2",
                                  config=config))


@pytest.mark.benchmark(group="ablation-backend-qqr")
@pytest.mark.parametrize("backend", ["bat", "mkl"])
def test_qqr(benchmark, relation, backend):
    config = make_config(prefer=backend)
    benchmark(lambda: execute_rma("qqr", relation, "id", config=config))


@pytest.mark.benchmark(group="ablation-backend-cpd")
@pytest.mark.parametrize("backend", ["bat", "mkl"])
def test_cpd_symmetric(benchmark, relation, backend):
    config = make_config(prefer=backend)
    benchmark(lambda: execute_rma("cpd", relation, "id", relation, "id",
                                  config=config))


@pytest.mark.benchmark(group="ablation-backend-mmu")
@pytest.mark.parametrize("backend", ["bat", "mkl"])
def test_mmu(benchmark, relation, backend):
    square = uniform_relation(N_COLS, N_COLS, seed=8, key="id2")
    config = make_config(prefer=backend)
    benchmark(lambda: execute_rma("mmu", relation, "id", square, "id2",
                                  config=config))


def test_policy_matches_measurements(pair, relation):
    """The auto policy must send add to BAT and qqr to MKL."""
    config = make_config(prefer="auto")
    assert config.policy.choose("add", (N_ROWS, N_COLS)).name == "bat"
    assert config.policy.choose("qqr", (N_ROWS, N_COLS)).name == "mkl"
