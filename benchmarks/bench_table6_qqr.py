"""Table 6 — qqr scalability: RMA+ vs R.

Claims: RMA+ (delegating to MKL) is consistently faster than R (which must
convert data.table -> matrix first); when the dense copy would exceed the
memory budget RMA+ falls back to the BAT Gram-Schmidt implementation and
still completes (the paper's 100Mx70 case, where R fails).
"""

import numpy as np
import pytest

from conftest import make_config
from repro.baselines.rlike import RFrame, as_matrix
from repro.core.ops import execute_rma


@pytest.mark.benchmark(group="table6")
def test_qqr_rma_mkl(benchmark, qqr_relation):
    config = make_config(prefer="mkl")
    benchmark(lambda: execute_rma("qqr", qqr_relation, "id",
                                  config=config))


@pytest.mark.benchmark(group="table6")
def test_qqr_rma_bat(benchmark, qqr_relation):
    config = make_config(prefer="bat")
    benchmark(lambda: execute_rma("qqr", qqr_relation, "id",
                                  config=config))


@pytest.mark.benchmark(group="table6")
def test_qqr_r(benchmark, qqr_relation):
    frame = RFrame.from_relation(qqr_relation)
    names = [n for n in qqr_relation.names if n != "id"]

    def r_qqr():
        matrix = as_matrix(frame, names)
        q, _ = np.linalg.qr(matrix)
        return q

    benchmark(r_qqr)


def test_memory_fallback_switches_backend(qqr_relation):
    config = make_config()
    config.policy.memory_limit_bytes = 1024  # force the BAT path
    backend = config.policy.choose("qqr", (qqr_relation.nrows, 10))
    assert backend.name == "bat"
    out = execute_rma("qqr", qqr_relation, "id", config=config)
    assert out.nrows == qqr_relation.nrows
