"""Ablation — morsel-driven parallel execution engine (ISSUE 4).

Two access patterns the worker-pool engine targets, measured with the
engine off (serial reference) and on (``ParallelConfig(enabled=True)``,
one worker per CPU):

* **Element-wise chain** (kernel + align parallelism): a fused 3-step
  ``emu(sub(add(y1,y2), y3), y4)`` chain over four ≥1M-row relations.
  Per repeat the engine performs three composed-permutation aligns (the
  fused prepare) and a 3-step kernel program over 4 columns — all
  row-decomposable, so morsels spread across the pool and a
  deterministic chunk-ordered merge reassembles bit-identical columns.

* **Gram/mmu preparation** (prepare-stage parallelism): the prepare
  stage of ``mmu`` and of the Gram-style ``cpd`` over *fresh* INT
  relations each repeat — INT→float view materialization, key
  validation and the relative-sorting gather, run per-morsel and with
  the two arguments prepared concurrently.  Fresh relations per repeat
  keep the per-relation caches cold, which is exactly the first-touch
  cost a workload pays per new derived relation.

Both scenarios assert bit-identical relations between modes; the
parallel engine must never change a result, only its wall-clock.

Runs in two modes:

* ``pytest benchmarks/bench_ablation_parallel.py`` — pytest-benchmark
  timings at CI scale, plus an identity check;
* ``python benchmarks/bench_ablation_parallel.py [--smoke] [--output f]``
  — self-contained speedup report (``benchmarks/BENCH_parallel.json`` is
  the committed baseline).  The report records the machine's CPU count:
  speedups are only meaningful on multi-core runners (a single-CPU
  container reports ~1x by construction).
"""

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.core import RmaConfig
from repro.core.config import ParallelConfig
from repro.core.ops import execute_rma, prepare_stage
from repro.linalg.policy import BackendPolicy
from repro.opspec import spec_of
from repro.plan.lazy import scan
from repro.relational.relation import Relation

try:
    from benchmarks.bench_util import relations_identical
except ImportError:  # script mode: benchmarks/ itself is on sys.path
    from bench_util import relations_identical

N_CHAIN_ROWS = 1_000_000
N_CHAIN_COLS = 4
CHAIN_REPEATS = 3
N_PREP_ROWS = 1_000_000
N_PREP_COLS = 8
PREP_REPEATS = 3


MIN_MORSEL_ROWS = 0  # 0 = ParallelConfig default; --smoke shrinks it


def _parallel(parallel_on: bool, workers: int) -> ParallelConfig:
    parallel = ParallelConfig(enabled=parallel_on, workers=workers)
    if MIN_MORSEL_ROWS:
        parallel.min_morsel_rows = MIN_MORSEL_ROWS
    return parallel


def _config(parallel_on: bool, workers: int = 0) -> RmaConfig:
    # validate_keys off for the chain reproduces the paper's benchmark
    # mode; the fused pipeline still verifies leaf keys once (cached).
    return RmaConfig(policy=BackendPolicy(prefer="auto"),
                     validate_keys=False,
                     parallel=_parallel(parallel_on, workers))


def _chain_relation(n_rows: int, index: int, seed: int) -> Relation:
    """One chain leaf: a shuffled INT key plus uniform DBL columns."""
    rng = np.random.default_rng(seed)
    data: dict = {f"k{index}": rng.permutation(n_rows).astype(np.int64)}
    for j in range(N_CHAIN_COLS):
        data[f"d{j}"] = rng.uniform(0.0, 10_000.0, n_rows)
    return Relation.from_columns(data)


def _prep_relation(n_rows: int, n_cols: int, seed: int,
                   key: str = "id") -> Relation:
    """INT application columns force the float-view materialization the
    prepare stage parallelizes; the sorted INT key keeps validation on
    the O(n) adjacent-scan path so casts dominate."""
    rng = np.random.default_rng(seed)
    data: dict = {key: np.arange(n_rows, dtype=np.int64)}
    for j in range(n_cols):
        data[f"c{j}"] = rng.integers(0, 1_000, n_rows).astype(np.int64)
    return Relation.from_columns(data)


def build_chain_inputs(n_rows: int = N_CHAIN_ROWS) -> list[Relation]:
    return [_chain_relation(n_rows, i, seed=90 + i) for i in range(4)]


def chain_pipeline(leaves: list[Relation]):
    pipe = scan(leaves[0]).rma("add", by="k0", other=scan(leaves[1]),
                               other_by="k1")
    pipe = pipe.rma("sub", by=("k0", "k1"), other=scan(leaves[2]),
                    other_by="k2")
    return pipe.rma("emu", by=("k0", "k1", "k2"), other=scan(leaves[3]),
                    other_by="k3")


def run_chain(parallel_on: bool, leaves: list[Relation],
              repeats: int = CHAIN_REPEATS, workers: int = 0):
    config = _config(parallel_on, workers)
    result = None
    start = time.perf_counter()
    for _ in range(repeats):
        result = chain_pipeline(leaves).collect(config=config)
    return time.perf_counter() - start, result


def run_prepare(parallel_on: bool, n_rows: int = N_PREP_ROWS,
                repeats: int = PREP_REPEATS, workers: int = 0):
    """Time the mmu/cpd prepare stage over fresh (cold-cache) relations.

    Relation construction happens outside the timer; each repeat builds
    its inputs beforehand so every timed prepare pays the first-touch
    cost (casts + validation + gather) the way a derived relation would.
    """
    config = RmaConfig(policy=BackendPolicy(prefer="auto"),
                       validate_keys=True,
                       parallel=_parallel(parallel_on, workers))
    mmu_spec, cpd_spec = spec_of("mmu"), spec_of("cpd")
    rounds = []
    for i in range(repeats):
        r = _prep_relation(n_rows, N_PREP_COLS, seed=300 + i)
        w = _prep_relation(N_PREP_COLS, 4, seed=400 + i, key="w")
        s = _prep_relation(n_rows, N_PREP_COLS, seed=500 + i, key="id2")
        rounds.append((r, w, s))
    start = time.perf_counter()
    for r, w, s in rounds:
        prepare_stage(mmu_spec, r, "id", w, "w", config)
        prepare_stage(cpd_spec, r, "id", s, "id2", config)
    return time.perf_counter() - start


def prepare_identity(n_rows: int, workers: int = 0) -> bool:
    """Full mmu + cpd results agree bit-for-bit between modes."""
    r = _prep_relation(n_rows, N_PREP_COLS, seed=910)
    w = _prep_relation(N_PREP_COLS, 4, seed=911, key="w")
    s = _prep_relation(n_rows, N_PREP_COLS, seed=912, key="id2")
    identical = True
    for op, a, a_by, b, b_by in (("mmu", r, "id", w, "w"),
                                 ("cpd", r, "id", s, "id2")):
        off = execute_rma(op, a, a_by, b, b_by, config=_config(False))
        on = execute_rma(op, a, a_by, b, b_by,
                         config=_config(True, workers))
        identical = identical and relations_identical(off, on)
    return identical


def run_ablation(n_chain: int = N_CHAIN_ROWS, n_prep: int = N_PREP_ROWS,
                 chain_repeats: int = CHAIN_REPEATS,
                 prep_repeats: int = PREP_REPEATS,
                 workers: int = 0) -> dict:
    leaves = build_chain_inputs(n_chain)
    # Warm the per-relation caches once per mode so the chain scenario
    # isolates steady-state execution (aligns + kernels + merges), not
    # first-touch argsorts.  Measurements interleave the two modes and
    # take the best of ``repeats`` rounds: min-of-k per mode is robust
    # against allocator warmup and CPU-throttling spikes that would
    # otherwise bias whichever mode runs first.
    run_chain(False, leaves, 1)
    run_chain(True, leaves, 1, workers)
    chain_off_times, chain_on_times = [], []
    result_off = result_on = None
    for _ in range(chain_repeats):
        seconds, result_off = run_chain(False, leaves, 1)
        chain_off_times.append(seconds)
        seconds, result_on = run_chain(True, leaves, 1, workers)
        chain_on_times.append(seconds)
    chain_off, chain_on = min(chain_off_times), min(chain_on_times)
    chain_identical = relations_identical(result_on, result_off)

    # Warm process-level state (ufunc dispatch, allocator arenas for this
    # array size) once per mode; the measured rounds still use fresh
    # relations, so per-relation caches stay cold inside the timer.
    run_prepare(False, n_prep, 1)
    run_prepare(True, n_prep, 1, workers)
    prep_off_times, prep_on_times = [], []
    for _ in range(prep_repeats):
        prep_off_times.append(run_prepare(False, n_prep, 1))
        prep_on_times.append(run_prepare(True, n_prep, 1, workers))
    prep_off, prep_on = min(prep_off_times), min(prep_on_times)
    prep_identical = prepare_identity(min(n_prep, 200_000), workers)

    effective = ParallelConfig(enabled=True,
                               workers=workers).effective_workers()
    return {
        "cpus": os.cpu_count(),
        "workers": effective,
        "elementwise_chain": {
            "scenario": "fused 3-step add/sub/emu chain over 4 relations "
                        f"of {n_chain}x{N_CHAIN_COLS} (INT keys, "
                        f"validate_keys=off; best of {chain_repeats} "
                        "interleaved rounds)",
            "n_rows": n_chain,
            "repeats": chain_repeats,
            "seconds_off": chain_off,
            "seconds_on": chain_on,
            "speedup": chain_off / max(chain_on, 1e-12),
            "identical": chain_identical,
        },
        "gram_mmu_prepare": {
            "scenario": "cold mmu+cpd prepare stage over fresh "
                        f"{n_prep}x{N_PREP_COLS} INT relations "
                        f"(validate_keys=on; best of {prep_repeats} "
                        "interleaved rounds)",
            "n_rows": n_prep,
            "repeats": prep_repeats,
            "seconds_off": prep_off,
            "seconds_on": prep_on,
            "speedup": prep_off / max(prep_on, 1e-12),
            "identical": prep_identical,
        },
        "identical": chain_identical and prep_identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Morsel-driven parallel engine ablation")
    parser.add_argument("--smoke", action="store_true",
                        help="CI smoke scale")
    parser.add_argument("--workers", type=int, default=0,
                        help="worker threads (0 = one per CPU)")
    parser.add_argument("--output", default=None,
                        help="write the result as JSON to this file")
    args = parser.parse_args(argv)
    if args.smoke:
        global MIN_MORSEL_ROWS
        MIN_MORSEL_ROWS = 8_192  # engage chunking below the default floor
        report = run_ablation(n_chain=50_000, n_prep=50_000,
                              chain_repeats=2, prep_repeats=2,
                              workers=args.workers)
    else:
        report = run_ablation(workers=args.workers)
    print(json.dumps(report, indent=2))
    if not report["identical"]:
        print("FAIL: results differ between parallel and serial modes",
              file=sys.stderr)
        return 1
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
    return 0


# -- pytest-benchmark mode --------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - script mode without pytest
    pytest = None

if pytest is not None:
    @pytest.fixture(scope="module")
    def leaves():
        return build_chain_inputs(20_000)

    @pytest.mark.benchmark(group="ablation-parallel-chain")
    @pytest.mark.parametrize("parallel_on", [False, True],
                             ids=["parallel-off", "parallel-on"])
    def test_chain(benchmark, parallel_on, leaves):
        run_chain(parallel_on, leaves, 1)  # warm caches
        benchmark(lambda: run_chain(parallel_on, leaves, 1))

    @pytest.mark.benchmark(group="ablation-parallel-prepare")
    @pytest.mark.parametrize("parallel_on", [False, True],
                             ids=["parallel-off", "parallel-on"])
    def test_prepare(benchmark, parallel_on):
        benchmark(lambda: run_prepare(parallel_on, 20_000, 1))

    def test_results_identical():
        report = run_ablation(n_chain=10_000, n_prep=10_000,
                              chain_repeats=1, prep_repeats=1, workers=2)
        assert report["identical"]


if __name__ == "__main__":
    sys.exit(main())
