"""Micro-benchmarks of the column-engine primitives.

Not from the paper, but the substrate every experiment stands on: joins,
grouped aggregation, sorting, selection and the SQL pipeline.
"""

import numpy as np
import pytest

from repro.data.synthetic import uniform_relation
from repro.relational import AggregateSpec, group_by, join, rename
from repro.relational.relation import Relation
from repro.sql import Session

N_ROWS = 100_000


@pytest.fixture(scope="module")
def left():
    rng = np.random.default_rng(31)
    return Relation.from_columns({
        "k": rng.integers(0, N_ROWS // 4, N_ROWS),
        "v": rng.normal(size=N_ROWS)})


@pytest.fixture(scope="module")
def right():
    rng = np.random.default_rng(32)
    return Relation.from_columns({
        "j": rng.integers(0, N_ROWS // 4, N_ROWS // 10),
        "w": rng.normal(size=N_ROWS // 10)})


@pytest.mark.benchmark(group="engine-join")
def test_hash_join(benchmark, left, right):
    benchmark(lambda: join(left, right, ["k"], ["j"]))


@pytest.mark.benchmark(group="engine-aggregate")
def test_group_by(benchmark, left):
    benchmark(lambda: group_by(left, ["k"],
                               [AggregateSpec("sum", "v", "s"),
                                AggregateSpec("count", "*", "n")]))


@pytest.mark.benchmark(group="engine-sort")
def test_sort(benchmark, left):
    benchmark(lambda: left.sorted_by(["k"]))


@pytest.mark.benchmark(group="engine-select")
def test_selection(benchmark, left):
    import repro.relational.ops as rel_ops
    benchmark(lambda: rel_ops.select_mask(left,
                                          left.column("v").tail > 0.0))


@pytest.mark.benchmark(group="engine-sql")
def test_sql_pipeline(benchmark, left, right):
    session = Session()
    session.register("l", left)
    session.register("r", right)
    sql = ("SELECT l.k, SUM(v) AS sv, COUNT(*) AS n FROM l JOIN r "
           "ON l.k = r.j WHERE w > 0 GROUP BY l.k")
    benchmark(lambda: session.execute(sql))


@pytest.mark.benchmark(group="engine-sql")
def test_sql_rma_query(benchmark):
    session = Session()
    session.register("m", uniform_relation(5_000, 8, seed=33))
    sql = "SELECT * FROM QQR(m BY id)"
    benchmark(lambda: session.execute(sql))
