"""Fig. 17 — Conference covariance, all systems.

Claims: the covariance computation dominates every system's runtime
(>= 90%); RMA+ with the symmetric (dsyrk-style) MKL cross product is the
fastest; RMA+BAT is 24-70x slower than RMA+MKL on this operation; MADlib
is off the chart (measured separately at a reduced size).
"""

import pytest

from repro.workloads.conferences_cov import (
    ConferencesDataset,
    run_aida,
    run_madlib,
    run_r,
    run_rma,
)


@pytest.fixture(scope="module")
def dataset(publications, ranking):
    return ConferencesDataset(publications, ranking)


@pytest.mark.benchmark(group="fig17")
def test_conferences_rma_mkl(benchmark, dataset):
    benchmark.pedantic(lambda: run_rma(dataset, "mkl"), rounds=3,
                       iterations=1, warmup_rounds=1)


@pytest.mark.benchmark(group="fig17")
def test_conferences_rma_bat(benchmark, dataset):
    benchmark.pedantic(lambda: run_rma(dataset, "bat"), rounds=2,
                       iterations=1, warmup_rounds=0)


@pytest.mark.benchmark(group="fig17")
def test_conferences_aida(benchmark, dataset):
    benchmark.pedantic(lambda: run_aida(dataset), rounds=3, iterations=1,
                       warmup_rounds=1)


@pytest.mark.benchmark(group="fig17")
def test_conferences_r(benchmark, dataset):
    benchmark.pedantic(lambda: run_r(dataset), rounds=3, iterations=1,
                       warmup_rounds=1)


@pytest.mark.benchmark(group="fig17")
def test_conferences_madlib_reduced(benchmark):
    from repro.data.dblp import generate_publications, generate_ranking
    small = ConferencesDataset(generate_publications(800, 25, seed=12),
                               generate_ranking(25, seed=11))
    benchmark.pedantic(lambda: run_madlib(small), rounds=2, iterations=1,
                       warmup_rounds=0)


def test_fig17_shape(dataset):
    """Matrix phase dominates, and the BAT cross product is much slower
    than the MKL one (the paper's 24-70x gap at full scale)."""
    mkl = run_rma(dataset, "mkl")
    bat = run_rma(dataset, "bat")
    aida = run_aida(dataset)
    r = run_r(dataset)
    assert mkl.agrees_with(bat, rtol=1e-6)
    assert mkl.agrees_with(aida, rtol=1e-6)
    assert mkl.agrees_with(r, rtol=1e-6)
    assert mkl.times.matrix > 0.5 * mkl.times.total
    assert bat.times.matrix > 3.0 * mkl.times.matrix
