"""Ablation — BAT property tracking + per-relation order caching (ISSUE 1).

Repeated relational matrix operations over one (immutable) relation are the
paper's OLR/MLR access pattern: the same order schema is established on
every call.  With ``use_properties`` on, the relation's order cache makes
every call after the first skip the lexicographic argsort, the key
validation and the INT->float casts; with it off, each call recomputes all
three from scratch.  Results are bit-identical either way — the script
asserts it.

Runs in two modes:

* ``pytest benchmarks/bench_ablation_properties.py`` — pytest-benchmark
  timings at CI scale;
* ``python benchmarks/bench_ablation_properties.py [--quick] [--output f]``
  — self-contained speedup report (acceptance scale: 100k rows), optionally
  written as JSON (``benchmarks/BENCH_properties.json`` is the committed
  baseline);
* ``--chained`` — chained-operation mode: each ``add`` consumes the
  previous *derived* result, so the win comes from ``merge_result``
  seeding the result's order cache (ISSUE 2) rather than from the
  per-relation cache of the base inputs.
"""

import argparse
import json
import sys
import time

from repro.bat.properties import use_properties
from repro.core import RmaConfig
from repro.core.ops import execute_rma
from repro.data.synthetic import order_heavy_relation, order_names
from repro.linalg.policy import BackendPolicy
from repro.relational import rename

try:
    from benchmarks.bench_util import relations_identical
except ImportError:  # script mode: benchmarks/ itself is on sys.path
    from bench_util import relations_identical

N_ROWS = 100_000
N_ORDER = 4
REPEATS = 10


def _config(use_props: bool) -> RmaConfig:
    # validate_keys on: key validation is part of what the cache amortizes.
    return RmaConfig(policy=BackendPolicy(prefer="bat"),
                     optimize_sorting=True, validate_keys=True,
                     use_properties=use_props)


def _build_inputs(n_rows: int, n_order: int):
    r = order_heavy_relation(n_rows, n_order, seed=21)
    by = order_names(r)
    s = rename(order_heavy_relation(n_rows, n_order, seed=22),
               {name: f"s_{name}" for name in by})
    s_by = [f"s_{name}" for name in by]
    return r, by, s, s_by


def run_scenario(use_props: bool, n_rows: int = N_ROWS,
                 n_order: int = N_ORDER, repeats: int = REPEATS):
    """Time ``repeats`` add calls over one relation pair; return
    (seconds, last result relation)."""
    with use_properties(use_props):
        r, by, s, s_by = _build_inputs(n_rows, n_order)
        config = _config(use_props)
        result = None
        start = time.perf_counter()
        for _ in range(repeats):
            result = execute_rma("add", r, by, s, s_by, config=config)
        elapsed = time.perf_counter() - start
    return elapsed, result


def run_chained_scenario(use_props: bool, n_rows: int = N_ROWS,
                         n_order: int = N_ORDER, repeats: int = REPEATS):
    """Chained-operation mode: ``add`` results feed the next ``add``.

    Each step's first argument is the previous step's *derived* relation,
    ordered by its full (grown) order schema.  With the property layer on,
    ``merge_result`` pre-seeds the derived relation's order cache, so the
    chained sorts and key validations are free; with it off every step
    re-sorts the derived rows from scratch."""
    with use_properties(use_props):
        r = order_heavy_relation(n_rows, n_order, seed=21)
        by = order_names(r)
        config = _config(use_props)
        extras = [rename(order_heavy_relation(n_rows, n_order,
                                              seed=30 + i),
                         {name: f"e{i}_{name}" for name in by})
                  for i in range(repeats)]
        result = None
        start = time.perf_counter()
        current, current_by = r, list(by)
        for i, extra in enumerate(extras):
            extra_by = [f"e{i}_{name}" for name in by]
            result = execute_rma("add", current, current_by, extra,
                                 extra_by, config=config)
            current, current_by = result, current_by + extra_by
        elapsed = time.perf_counter() - start
    return elapsed, result


def run_chained_ablation(n_rows: int = N_ROWS, n_order: int = N_ORDER,
                         repeats: int = 4) -> dict:
    run_chained_scenario(True, max(n_rows // 10, 1_000), n_order, 2)
    run_chained_scenario(False, max(n_rows // 10, 1_000), n_order, 2)
    seconds_off, result_off = run_chained_scenario(False, n_rows, n_order,
                                                   repeats)
    seconds_on, result_on = run_chained_scenario(True, n_rows, n_order,
                                                 repeats)
    return {
        "scenario": f"{repeats}-step chained add over derived relations, "
                    f"{n_rows} rows, {n_order} base order attrs, "
                    "validate_keys=on",
        "n_rows": n_rows,
        "n_order": n_order,
        "repeats": repeats,
        "seconds_off": seconds_off,
        "seconds_on": seconds_on,
        "speedup": seconds_off / max(seconds_on, 1e-12),
        "identical": relations_identical(result_on, result_off),
    }


def run_ablation(n_rows: int = N_ROWS, n_order: int = N_ORDER,
                 repeats: int = REPEATS) -> dict:
    # Warmup both paths once so allocator/dispatch effects cancel out.
    run_scenario(True, max(n_rows // 10, 1_000), n_order, 2)
    run_scenario(False, max(n_rows // 10, 1_000), n_order, 2)
    seconds_off, result_off = run_scenario(False, n_rows, n_order, repeats)
    seconds_on, result_on = run_scenario(True, n_rows, n_order, repeats)
    return {
        "scenario": f"{repeats}x add over one relation pair, "
                    f"{n_rows} rows, {n_order} order attrs, "
                    "validate_keys=on",
        "n_rows": n_rows,
        "n_order": n_order,
        "repeats": repeats,
        "seconds_off": seconds_off,
        "seconds_on": seconds_on,
        "speedup": seconds_off / max(seconds_on, 1e-12),
        "identical": relations_identical(result_on, result_off),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Properties/order-cache ablation")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke scale (20k rows)")
    parser.add_argument("--chained", action="store_true",
                        help="chained-operation mode (derived relations)")
    parser.add_argument("--output", default=None,
                        help="write the result as JSON to this file")
    args = parser.parse_args(argv)
    n_rows = 20_000 if args.quick else N_ROWS
    if args.chained:
        report = run_chained_ablation(n_rows=n_rows)
    else:
        report = run_ablation(n_rows=n_rows)
    print(json.dumps(report, indent=2))
    if not report["identical"]:
        print("FAIL: results differ between use_properties on/off",
              file=sys.stderr)
        return 1
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
    return 0


# -- pytest-benchmark mode --------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - script mode without pytest
    pytest = None

if pytest is not None:
    @pytest.mark.benchmark(group="ablation-properties")
    @pytest.mark.parametrize("use_props", [False, True],
                             ids=["props-off", "props-on"])
    def test_repeated_add(benchmark, use_props):
        benchmark(lambda: run_scenario(use_props, n_rows=20_000, repeats=5))

    def test_results_identical():
        report = run_ablation(n_rows=20_000, repeats=3)
        assert report["identical"]


if __name__ == "__main__":
    sys.exit(main())
