"""Ablation — the API redesign's reach (ISSUE 5).

Before the redesign, eager-style user code (one ``rma.*`` call per
operation) bypassed everything the plan layer built: each step paid its own
prepare→kernel→merge round trip, materialized its intermediate relation,
and re-sorted the growing derived order schemas.  The matrix-expression API
writes the *same chain in the same eager-looking style* —

    (2.0 * m1 + m2 - m3) * m4

— but compiles it into one plan, so the optimizer collapses the whole
element-wise chain (scalar steps included) into a single ``FusedRma``
kernel pass, and the session caches plans and subplan results across
repeated evaluations.

Two measurements, both asserted bit-identical:

* **chain** — the N-step per-op eager loop (direct ``execute_rma``, the
  exact pre-redesign path) vs the same chain as one Matrix expression,
  collected on a fresh session per run (no result-cache amortization:
  this isolates what *compiling the chain at once* buys);
* **repeat** — the same expression evaluated repeatedly in one session:
  the statement-plan and subplan-result caches make later evaluations
  near-free, where the eager loop re-executes every step every time.

Runs in two modes:

* ``pytest benchmarks/bench_ablation_api.py`` — pytest-benchmark timings
  at CI scale;
* ``python benchmarks/bench_ablation_api.py [--quick] [--output f]`` —
  self-contained speedup report (``benchmarks/BENCH_api.json`` is the
  committed baseline).
"""

import argparse
import json
import sys
import time

import numpy as np

import repro
from repro.core import RmaConfig
from repro.core.ops import execute_rma
from repro.linalg.policy import BackendPolicy
from repro.relational.relation import Relation

try:
    from benchmarks.bench_util import relations_identical
except ImportError:  # script mode: benchmarks/ itself is on sys.path
    from bench_util import relations_identical

N_ROWS = 100_000
N_COLS = 4
CHAIN_REPEATS = 5
EXPR_REPEATS = 10


def _config() -> RmaConfig:
    # validate_keys off reproduces the paper's benchmark mode (MonetDB
    # trusts declared key constraints); the fused pipeline still verifies
    # leaf keys once (cached) as its runtime precondition.
    return RmaConfig(policy=BackendPolicy(prefer="auto"),
                     validate_keys=False)


def _leaf(n_rows: int, index: int, seed: int) -> Relation:
    """One chain leaf: a shuffled STR key plus uniform numeric columns."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n_rows)
    data: dict = {f"k{index}": [f"r{v:07d}" for v in perm]}
    for j in range(N_COLS):
        data[f"d{j}"] = rng.uniform(0.0, 10_000.0, n_rows)
    return Relation.from_columns(data)


def build_inputs(n_rows: int = N_ROWS) -> list[Relation]:
    return [_leaf(n_rows, i, seed=70 + i) for i in range(4)]


def run_eager_chain(leaves: list[Relation], repeats: int,
                    config: RmaConfig):
    """(2*y1 + y2 - y3) * y4, one eager call per step (pre-redesign)."""
    result = None
    start = time.perf_counter()
    for _ in range(repeats):
        step = execute_rma("smul", leaves[0], "k0", config=config,
                           scalar=2.0)
        step = execute_rma("add", step, "k0", leaves[1], "k1",
                           config=config)
        step = execute_rma("sub", step, ("k0", "k1"), leaves[2], "k2",
                           config=config)
        result = execute_rma("emu", step, ("k0", "k1", "k2"), leaves[3],
                             "k3", config=config)
    return time.perf_counter() - start, result


def _expression(db, leaves: list[Relation]):
    m1, m2, m3, m4 = (db.matrix(leaf, by=f"k{i}")
                      for i, leaf in enumerate(leaves))
    return (2.0 * m1 + m2 - m3) * m4


def run_expression_chain(leaves: list[Relation], repeats: int,
                         config: RmaConfig):
    """The same chain as one Matrix expression, fresh session per run.

    A fresh session means no result-cache amortization across repeats —
    the speedup is pure plan-at-once execution (one fused kernel pass, no
    intermediates).
    """
    result = None
    start = time.perf_counter()
    for _ in range(repeats):
        db = repro.connect(config=config)
        result = _expression(db, leaves).collect()
    return time.perf_counter() - start, result


def run_expression_repeated(leaves: list[Relation], repeats: int,
                            config: RmaConfig):
    """The same expression evaluated repeatedly in ONE session."""
    db = repro.connect(config=config)
    expr = _expression(db, leaves)
    result = None
    start = time.perf_counter()
    for _ in range(repeats):
        result = expr.collect()
    return time.perf_counter() - start, result


def run_ablation(n_rows: int = N_ROWS, chain_repeats: int = CHAIN_REPEATS,
                 expr_repeats: int = EXPR_REPEATS) -> dict:
    config = _config()
    leaves = build_inputs(n_rows)
    # Warm the per-relation leaf caches once for both modes: base-relation
    # sorts (the PR 1 layer) are shared state — the ablation isolates the
    # execution style, not cold caches.
    run_eager_chain(leaves, 1, config)
    run_expression_chain(leaves, 1, config)

    eager_s, eager_result = run_eager_chain(leaves, chain_repeats, config)
    expr_s, expr_result = run_expression_chain(leaves, chain_repeats,
                                               config)
    chain_identical = relations_identical(eager_result, expr_result)

    eager_rep_s, eager_rep_result = run_eager_chain(leaves, expr_repeats,
                                                    config)
    rep_s, rep_result = run_expression_repeated(leaves, expr_repeats,
                                                config)
    repeat_identical = relations_identical(eager_rep_result, rep_result)

    return {
        "chain": {
            "scenario": f"{chain_repeats}x 4-step scalar/element-wise "
                        f"chain over 4 relations of {n_rows}x{N_COLS} "
                        "(STR keys, validate_keys=off); eager per-op "
                        "loop vs one Matrix expression, fresh session",
            "n_rows": n_rows,
            "repeats": chain_repeats,
            "seconds_eager": eager_s,
            "seconds_expression": expr_s,
            "speedup": eager_s / max(expr_s, 1e-12),
            "identical": chain_identical,
        },
        "repeat": {
            "scenario": f"{expr_repeats}x the same expression in one "
                        "session (plan + result caches) vs the eager "
                        "loop re-executing",
            "n_rows": n_rows,
            "repeats": expr_repeats,
            "seconds_eager": eager_rep_s,
            "seconds_expression": rep_s,
            "speedup": eager_rep_s / max(rep_s, 1e-12),
            "identical": repeat_identical,
        },
        "identical": chain_identical and repeat_identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="API redesign ablation: eager per-op loop vs one "
                    "Matrix expression")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke scale")
    parser.add_argument("--output", default=None,
                        help="write the result as JSON to this file")
    args = parser.parse_args(argv)
    if args.quick:
        report = run_ablation(n_rows=20_000, chain_repeats=3,
                              expr_repeats=5)
    else:
        report = run_ablation()
    print(json.dumps(report, indent=2))
    if not report["identical"]:
        print("FAIL: expression results differ from the eager chain",
              file=sys.stderr)
        return 1
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
    return 0


# -- pytest-benchmark mode --------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - script mode without pytest
    pytest = None

if pytest is not None:
    @pytest.fixture(scope="module")
    def leaves():
        return build_inputs(15_000)

    @pytest.mark.benchmark(group="ablation-api")
    @pytest.mark.parametrize("style", ["eager-per-op", "expression"])
    def test_chain(benchmark, style, leaves):
        config = _config()
        if style == "eager-per-op":
            benchmark(lambda: run_eager_chain(leaves, 1, config))
        else:
            benchmark(lambda: run_expression_chain(leaves, 1, config))

    def test_results_identical():
        report = run_ablation(n_rows=5_000, chain_repeats=2,
                              expr_repeats=3)
        assert report["identical"]


if __name__ == "__main__":
    sys.exit(main())
