"""The paper's §5 application example, end to end.

Task: determine how similar each of director Lee's films is to any other
film, based on the ratings of California users.  The computation mixes
relational operations (selection, join, aggregation, rename) with
relational matrix operations (sub, tra, mmu) — the covariance pipeline
w1 ... w8 of Fig. 6 — entirely through the SQL front end of a
``repro.connect()`` database (the same session whose ``matrix()`` handles
compile into the same plans; see ``quickstart.py``).

Run with::

    python examples/film_similarity.py
"""

import repro
from repro.data import example_database


def main() -> None:
    db = example_database()
    session = repro.connect()
    session.register("u", db["user"])
    session.register("f", db["film"])
    session.register("r", db["rating"])

    # w1: ratings of California users.  (The paper abbreviates attribute
    # names to first letters in its figures; we keep the film titles so
    # the final join with the film table works on real values.)
    session.execute(
        "CREATE TABLE w1 AS "
        "SELECT u.User AS U, Balto, Heat, Net "
        "FROM u JOIN r ON u.User = r.User WHERE State = 'CA'")
    print("w1 (California ratings):")
    print(session.table("w1").pretty())

    # w2: expectations per film.
    session.execute(
        "CREATE TABLE w2 AS SELECT AVG(Balto) AS Balto, "
        "AVG(Heat) AS Heat, AVG(Net) AS Net FROM w1")

    # w3: centered ratings, via the relational matrix operation SUB.
    session.execute(
        "CREATE TABLE w3 AS SELECT U, Balto, Heat, Net FROM SUB(w1 BY U, "
        "(SELECT V, Balto, Heat, Net FROM (SELECT U AS V FROM w1) AS k "
        "CROSS JOIN w2) BY V)")
    print("\nw3 (centered):")
    print(session.table("w3").pretty())

    # w4: transpose; w5-w7: covariance via MMU and scaling.
    session.execute("CREATE TABLE w4 AS SELECT * FROM TRA(w3 BY U)")
    print("\nw4 = TRA(w3 BY U):")
    print(session.table("w4").pretty())

    session.execute(
        "CREATE TABLE w7 AS "
        "SELECT C, Balto/(M-1) AS Balto, Heat/(M-1) AS Heat, "
        "Net/(M-1) AS Net "
        "FROM MMU(w4 BY C, w3 BY U) AS w5 "
        "CROSS JOIN (SELECT COUNT(*) AS M FROM w1) AS t")
    print("\nw7 (covariance of ratings):")
    print(session.table("w7").pretty())

    # w8: join with films, keep Lee's films.
    w8 = session.execute(
        "SELECT f.Title AS T, Balto, Heat, Net "
        "FROM w7 JOIN f ON w7.C = f.Title "
        "WHERE f.Director = 'Lee' ORDER BY T")
    print("\nw8 (similarities of Lee's films):")
    print(w8.pretty())

    # Interpret the result as the paper does for its z1 tuple: which film
    # is least similar to Balto?  (The paper's Fig. 7 prints illustrative
    # values that do not match its own Fig. 5 data; for the actual data —
    # verified against numpy in tests/core/test_paper_examples.py — the
    # covariance of Balto is smallest with Heat.)
    balto = {name: value
             for name, value in zip(w8.names, w8.to_rows()[0])}
    others = {k: v for k, v in balto.items() if k in ("Heat", "Net")}
    least_similar = min(others, key=others.get)
    assert least_similar == "Heat", others
    print(f"\nLee's film Balto has the smallest covariance to film "
          f"{least_similar} ({others[least_similar]:+.2f}).")


if __name__ == "__main__":
    main()
