"""Origins and matrix consistency on the paper's weather relation (§6).

Shows how contextual information is inherited through chains of relational
matrix operations: the transpose chain of Fig. 10 (tra ∘ tra restores the
relation), origins for qqr/usv/rnk (Fig. 9), and the reducibility of every
result back to the plain matrix world (Def. 6.1).

Run with::

    python examples/weather_origins.py
"""

import numpy as np

import repro
from repro.core import (
    column_origin,
    matrix_constructor,
    rnk,
    row_origin,
    verify_origins,
)
from repro.data import weather_relation
from repro.relational import project


def main() -> None:
    weather = weather_relation()
    db = repro.connect()
    db.register("weather", weather)
    m = db.matrix("weather", by="T")
    print("r (Fig. 2):")
    print(weather.pretty())

    # -- Fig. 10: the transpose chain -----------------------------------
    # ``m.T`` orders by T and transposes; the result is keyed by the
    # context attribute C, so the second transpose chains without
    # re-stating an order schema.
    r1 = m.T.collect()
    print("\ntra_T(r):")
    print(r1.pretty())
    r2 = m.T.T.collect()
    print("\ntra_C(tra_T(r)):")
    print(r2.pretty())
    original = matrix_constructor(weather, ["T"], ["H", "W"])
    restored = matrix_constructor(r2, ["C"], ["H", "W"])
    assert np.allclose(original, restored)
    print("double transpose restores the data — no ordering information "
          "was lost between operations.")

    # -- Fig. 9: origins --------------------------------------------------
    p2 = m.usv().collect()
    print("\nusv_T(r) with row origin r.T and column origin ▽T:")
    print(p2.pretty())
    print("row origin:", row_origin("usv", weather, "T"))
    print("column origin:", column_origin("usv", weather, "T"))
    assert verify_origins("usv", p2, weather, "T")

    p3 = db.matrix("weather", by=["W", "T"]).qqr().collect()
    print("\nqqr_{W,T}(r) — a two-attribute order schema:")
    print(p3.pretty())
    assert verify_origins("qqr", p3, weather, ["W", "T"])

    p1 = rnk(project(weather, ["H", "W"]), by="H")
    print("\nrnk_H(π_H,W(r)) — shape type (1,1):")
    print(p1.pretty())
    assert verify_origins("rnk", p1, project(weather, ["H", "W"]), "H")

    print("\nall origins verified (Theorem 6.8).")


if __name__ == "__main__":
    main()
