"""Quickstart: the paper's introduction example.

A relation ``rating(User, Balto, Heat, Net)`` stores users and their film
ratings.  ``SELECT * FROM INV(rating BY User)`` orders the relation by
users and inverts the matrix formed by the ordered numerical columns — the
result is again a relation with the same schema, and every value keeps its
origins (the user in its row, the film in its column).

Run with::

    python examples/quickstart.py
"""

from repro.data import example_database
from repro.sql import Session


def main() -> None:
    db = example_database()
    session = Session()
    session.register("rating", db["rating"])

    print("rating:")
    print(db["rating"].pretty())

    print("\nSELECT * FROM INV(rating BY User):")
    inverted = session.execute("SELECT * FROM INV(rating BY User)")
    print(inverted.pretty())

    # Matrix consistency (paper Def. 6.3): multiplying back gives identity.
    print("\nMMU of the inverse with the original (identity expected):")
    session.register("inverted", inverted)
    identity = session.execute(
        "SELECT * FROM MMU(inverted BY User, rating BY User)")
    print(identity.pretty())

    # The functional algebra API is equivalent to the SQL surface:
    from repro.core import inv
    algebra_result = inv(db["rating"], by="User")
    assert algebra_result.same_rows(inverted)
    print("\nSQL and algebra results agree.")


if __name__ == "__main__":
    main()
