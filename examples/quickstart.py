"""Quickstart: the paper's introduction example — one front door.

A relation ``rating(User, Balto, Heat, Net)`` stores users and their film
ratings.  Ordering it by ``User`` makes it a matrix, so inverting it is one
expression — and the same computation can be written against any of the
three surfaces (matrix expressions, SQL, eager functions), all of which
compile into the same logical plan and run on the same executor.

Run with::

    python examples/quickstart.py
"""

import numpy as np

import repro
from repro.data import example_database


def main() -> None:
    db = repro.connect()
    data = example_database()
    db.register("rating", data["rating"])

    print("rating:")
    print(data["rating"].pretty())

    # Surface 1 — the matrix-expression API: lazy handles, operator
    # overloading, explicit collect.
    rating = db.matrix("rating", by="User")
    inverted = rating.inv().collect()
    print("\nrating.inv() — the INV(rating BY User) of the paper:")
    print(inverted.pretty())

    # Surface 2 — SQL with the RMA FROM-clause extension (§7.2).
    via_sql = db.execute("SELECT * FROM INV(rating BY User)")

    # Surface 3 — eager functions: one-op expressions, immediate collect.
    via_eager = repro.rma.inv(data["rating"], by="User")

    for name in inverted.names[1:]:
        assert np.array_equal(inverted.column(name).tail,
                              via_sql.column(name).tail)
        assert np.array_equal(inverted.column(name).tail,
                              via_eager.column(name).tail)
    print("\nmatrix expression, SQL and eager results agree (bit-identical).")

    # Matrix consistency (paper Def. 6.3): multiplying back gives identity.
    identity = (rating.inv() @ rating).collect()
    print("\nrating.inv() @ rating (identity expected):")
    print(identity.pretty())

    # The plan behind a chained expression: the session optimizes the
    # whole chain at once — element-wise steps fuse into one kernel pass,
    # repeated subexpressions execute once (`shared x2`).
    chain = 2.0 * rating.inv() @ rating + 1.0
    print("\nexplain(2.0 * rating.inv() @ rating + 1.0):")
    print(chain.explain())


if __name__ == "__main__":
    main()
