"""DBLP conference covariance (workload 3), with origins at work.

Computes the covariance between conferences from per-author publication
counts and joins the result with a ranking table — possible in one pipeline
only because the covariance *relation* keeps the conference names as
contextual information (attribute C), which plain matrix systems lose.

Run with::

    python examples/dblp_conferences.py
"""

import numpy as np

import repro
import repro.relational.ops as rel_ops
from repro.bat.bat import BAT, DataType
from repro.data.dblp import generate_publications, generate_ranking
from repro.relational import join
from repro.relational.relation import Relation


def main(n_authors: int = 5_000, n_conferences: int = 12) -> None:
    publications = generate_publications(n_authors, n_conferences, seed=12)
    ranking = generate_ranking(n_conferences, seed=11)
    names = [n for n in publications.names if n != "author"]

    print(f"{n_authors} authors x {n_conferences} conferences; "
          "ranking tiers:",
          sorted(set(ranking.column("rating").python_values())))

    # Center the counts (engine-side vectorized arithmetic).
    centered_columns = {"author": publications.column("author")}
    for name in names:
        values = publications.column(name).tail
        centered_columns[name] = BAT(DataType.DBL, values - values.mean())
    centered = Relation.from_columns(centered_columns)

    # Covariance as one matrix expression: the symmetric cross product
    # (same handle on both sides — the dsyrk-style path) scaled by
    # 1/(n-1); the scaling is a kernel-layer scalar step, so the context
    # attribute C stays attached through it.
    db = repro.connect()
    cm = db.matrix(centered, by="author")
    scale = 1.0 / (publications.nrows - 1)
    cov = (cm.cpd(cm) * scale).collect()
    print("\ncovariance relation (first rows) — C carries the names:")
    print(cov.pretty(max_rows=5))

    # Join with the ranking and keep the A++ rows: pure relational algebra
    # over the matrix result.
    joined = join(cov, ranking, ["C"], ["conference"],
                  drop_right_keys=True)
    mask = np.array([r == "A++"
                     for r in joined.column("rating").python_values()])
    a_plus = rel_ops.select_mask(joined, mask)
    print(f"\n{a_plus.nrows} A++ conferences;"
          " their covariance rows:")
    print(rel_ops.project(a_plus, ["C"] + names).pretty(max_rows=6))

    # Sanity: diagonal entries are variances (non-negative).
    for row in a_plus.to_rows():
        conference = row[0]
        variance = a_plus.column(conference).python_values()[0] \
            if conference in a_plus.names else None
        if variance is not None:
            assert variance >= 0.0
    print("\ndiagonal variances are non-negative — covariance matrix OK")


if __name__ == "__main__":
    main()
