"""BIXI trips: ordinary least squares inside the database (workload 1).

Mirrors §8.6(1): prepare trips relationally (filter by year, keep frequent
station pairs, join station coordinates, compute distances), then regress
duration on distance as one matrix expression —
``a.cpd(a).inv() @ a.cpd(v)``, the paper's ``MMU(INV(CPD(A,A)), CPD(A,V))``
— and compare the recovered coefficients with the generator's ground
truth.  The whole OLS chain is a single plan on the session executor.

Run with::

    python examples/bixi_regression.py [n_trips]
"""

import sys

import repro
from repro.bat.bat import BAT, DataType
from repro.data.bixi import (
    DURATION_INTERCEPT,
    DURATION_PER_KM,
    generate_stations,
    generate_trips,
)
from repro.relational.relation import Relation
from repro.workloads.trips_olr import TripsDataset, engine_prepare

import numpy as np


def main(n_trips: int = 60_000) -> None:
    stations = generate_stations(50, seed=1)
    trips = generate_trips(n_trips, stations, seed=2)
    dataset = TripsDataset(trips, stations, 2014, 2016, min_count=20)

    print(f"{n_trips} synthetic BIXI trips over "
          f"{stations.nrows} stations")
    prepared = engine_prepare(dataset)
    print(f"data preparation kept {prepared.nrows} trips of frequent "
          "station pairs\n")

    # Build the design relation A = (trip_id | 1, distance) and the
    # dependent relation V = (trip_id | duration).
    n = prepared.nrows
    # The design attributes are named so that the alphabetical order of
    # the C values produced by cpd (const < distance) matches the schema
    # order — that keeps the row labels of the chained INV/MMU aligned
    # with the coefficients.
    a = Relation.from_columns({
        "trip_id": prepared.column("trip_id"),
        "const": BAT(DataType.DBL, np.ones(n)),
        "distance": prepared.column("distance")})
    v = Relation.from_columns({
        "trip_id": prepared.column("trip_id"),
        "duration": prepared.column("duration").cast(DataType.DBL)})

    # OLS as one matrix expression on the session API.
    db = repro.connect()
    design = db.matrix(a, by="trip_id")
    xtx = design.cpd(design)
    print("CPD(A, A) — note the contextual attribute C:")
    print(xtx.collect().pretty())

    beta_expr = xtx.inv() @ design.cpd(v, by="trip_id")
    print("\nthe whole chain is one plan (CPD(A,A) runs once — "
          "the session caches the shared subplan):")
    print(beta_expr.explain())
    beta = beta_expr.collect()
    print("\nbeta = a.cpd(a).inv() @ a.cpd(v):")
    print(beta.pretty())

    rows = dict(zip(beta.column("C").python_values(),
                    beta.column("duration").python_values()))
    print(f"\nrecovered:   duration = {rows['const']:.1f} "
          f"+ {rows['distance']:.1f} * km")
    print(f"ground truth: duration = {DURATION_INTERCEPT:.1f} "
          f"+ {DURATION_PER_KM:.1f} * km")
    assert abs(rows["distance"] - DURATION_PER_KM) < 10.0
    assert abs(rows["const"] - DURATION_INTERCEPT) < 20.0


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 60_000)
