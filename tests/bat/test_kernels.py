"""Unit and property tests for vectorized BAT kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bat.bat import BAT, DataType
from repro.bat import kernels
from repro.errors import BatError, TypeMismatchError

floats = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)


class TestBinop:
    def test_add_int(self):
        out = kernels.binop("+", BAT.from_values([1, 2]),
                            BAT.from_values([10, 20]))
        assert out.dtype is DataType.INT
        assert list(out.tail) == [11, 22]

    def test_add_mixed_promotes(self):
        out = kernels.binop("+", BAT.from_values([1, 2]),
                            BAT.from_values([0.5, 0.5]))
        assert out.dtype is DataType.DBL

    def test_div_always_double(self):
        out = kernels.binop("/", BAT.from_values([3, 4]),
                            BAT.from_values([2, 2]))
        assert out.dtype is DataType.DBL
        assert list(out.tail) == [1.5, 2.0]

    def test_scalar_operand(self):
        out = kernels.binop("*", BAT.from_values([1, 2]), 3)
        assert list(out.tail) == [3, 6]

    def test_rbinop(self):
        out = kernels.rbinop("-", 10, BAT.from_values([1, 2]))
        assert list(out.tail) == [9, 8]

    def test_neg(self):
        assert list(kernels.neg(BAT.from_values([1, -2])).tail) == [-1, 2]

    def test_unknown_operator(self):
        with pytest.raises(BatError):
            kernels.binop("**", BAT.from_values([1]), 2)

    def test_string_arithmetic_rejected(self):
        with pytest.raises(TypeMismatchError):
            kernels.binop("+", BAT.from_values(["a"]), 1)

    @given(st.lists(floats, min_size=1, max_size=50), floats)
    @settings(max_examples=50, deadline=None)
    def test_matches_numpy(self, values, scalar):
        bat = BAT.from_values(values, DataType.DBL)
        out = kernels.binop("+", bat, scalar)
        assert np.allclose(out.tail, np.array(values) + scalar)


class TestCompare:
    def test_numeric_compare(self):
        mask = kernels.compare("<", BAT.from_values([1, 5, 3]), 3)
        assert list(mask) == [True, False, False]

    def test_string_compare(self):
        mask = kernels.compare("=", BAT.from_values(["a", "b"]), "b")
        assert list(mask) == [False, True]

    def test_cross_type_numeric(self):
        mask = kernels.compare(">=", BAT.from_values([1, 2]),
                               BAT.from_values([1.5, 1.5]))
        assert list(mask) == [False, True]

    def test_string_vs_int_rejected(self):
        with pytest.raises(TypeMismatchError):
            kernels.compare("=", BAT.from_values(["a"]),
                            BAT.from_values([1]))


class TestSelection:
    def test_thetaselect(self):
        cands = kernels.thetaselect(BAT.from_values([5, 1, 7, 3]), ">", 2)
        assert list(cands) == [0, 2, 3]

    def test_thetaselect_with_candidates(self):
        bat = BAT.from_values([5, 1, 7, 3])
        first = kernels.thetaselect(bat, ">", 2)
        second = kernels.thetaselect(bat, "<", 6, candidates=first)
        assert list(second) == [0, 3]

    def test_mask_to_candidates(self):
        out = kernels.mask_to_candidates(np.array([True, False, True]))
        assert list(out) == [0, 2]

    def test_mask_over_candidates(self):
        cands = np.array([1, 3], dtype=np.int64)
        out = kernels.mask_to_candidates(np.array([False, True]), cands)
        assert list(out) == [3]

    def test_materialize_none_is_noop(self):
        bat = BAT.from_values([1, 2])
        assert kernels.materialize(bat, None) is bat


class TestIfThenElse:
    def test_numeric(self):
        out = kernels.ifthenelse(np.array([True, False]),
                                 BAT.from_values([1.0, 1.0]),
                                 BAT.from_values([2.0, 2.0]))
        assert list(out.tail) == [1.0, 2.0]

    def test_string(self):
        out = kernels.ifthenelse(np.array([True, False]),
                                 BAT.from_values(["y", "y"]),
                                 BAT.from_values(["n", "n"]))
        assert out.python_values() == ["y", "n"]

    def test_mixed_numeric_promotes(self):
        out = kernels.ifthenelse(np.array([True, False]),
                                 BAT.from_values([1, 1]),
                                 BAT.from_values([0.5, 0.5]))
        assert out.dtype is DataType.DBL

    def test_incompatible_types_rejected(self):
        with pytest.raises(TypeMismatchError):
            kernels.ifthenelse(np.array([True]),
                               BAT.from_values(["a"]),
                               BAT.from_values([1]))


class TestMath:
    def test_sqrt(self):
        out = kernels.math_unary("sqrt", BAT.from_values([4.0, 9.0]))
        assert list(out.tail) == [2.0, 3.0]

    def test_abs_int_stays_int(self):
        out = kernels.math_unary("abs", BAT.from_values([-1, 2]))
        assert out.dtype is DataType.INT

    def test_power(self):
        out = kernels.power(BAT.from_values([2.0, 3.0]), 2)
        assert list(out.tail) == [4.0, 9.0]

    def test_unknown_function(self):
        with pytest.raises(BatError):
            kernels.math_unary("nope", BAT.from_values([1.0]))


class TestScalarUdf:
    def test_udf_slow_path(self):
        out = kernels.scalar_udf(lambda a, b: a * 10 + b,
                                 BAT.from_values([1.0, 2.0]),
                                 BAT.from_values([3.0, 4.0]))
        assert list(out.tail) == [13.0, 24.0]
