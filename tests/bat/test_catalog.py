"""Tests for the table catalog."""

import pytest

from repro.bat.catalog import Catalog
from repro.errors import CatalogError
from repro.relational import Relation


@pytest.fixture
def relation():
    return Relation.from_columns({"x": [1, 2]})


class TestCatalog:
    def test_create_and_get(self, relation):
        catalog = Catalog()
        catalog.create("trips", relation)
        assert catalog.get("trips") is relation

    def test_case_insensitive(self, relation):
        catalog = Catalog()
        catalog.create("Trips", relation)
        assert catalog.get("TRIPS") is relation
        assert "tRiPs" in catalog

    def test_duplicate_rejected(self, relation):
        catalog = Catalog()
        catalog.create("t", relation)
        with pytest.raises(CatalogError):
            catalog.create("T", relation)

    def test_replace(self, relation):
        catalog = Catalog()
        catalog.create("t", relation)
        other = Relation.from_columns({"y": [1]})
        catalog.create("t", other, replace=True)
        assert catalog.get("t") is other

    def test_drop(self, relation):
        catalog = Catalog()
        catalog.create("t", relation)
        catalog.drop("t")
        assert "t" not in catalog

    def test_drop_missing(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.drop("nope")

    def test_drop_if_exists(self):
        Catalog().drop("nope", if_exists=True)

    def test_get_missing(self):
        with pytest.raises(CatalogError):
            Catalog().get("nope")

    def test_names_sorted(self, relation):
        catalog = Catalog()
        catalog.create("b", relation)
        catalog.create("a", relation)
        assert catalog.names() == ["a", "b"]
        assert len(catalog) == 2
        assert set(iter(catalog)) == {"a", "b"}
