"""Unit tests for the BAT column type."""

import datetime as dt

import numpy as np
import pytest

from repro.bat.bat import (
    BAT,
    DataType,
    NIL_INT,
    align_check,
    date_to_int,
    infer_type,
    int_to_date,
    int_to_time,
    time_to_int,
)
from repro.errors import AlignmentError, BatError, TypeMismatchError


class TestConstruction:
    def test_from_values_infers_int(self):
        bat = BAT.from_values([1, 2, 3])
        assert bat.dtype is DataType.INT
        assert list(bat.tail) == [1, 2, 3]

    def test_from_values_infers_double(self):
        bat = BAT.from_values([1.5, 2.5])
        assert bat.dtype is DataType.DBL

    def test_from_values_infers_string(self):
        bat = BAT.from_values(["a", "b"])
        assert bat.dtype is DataType.STR

    def test_from_values_infers_bool(self):
        bat = BAT.from_values([True, False])
        assert bat.dtype is DataType.BOOL

    def test_from_values_infers_date(self):
        bat = BAT.from_values([dt.date(2014, 4, 15)])
        assert bat.dtype is DataType.DATE

    def test_from_values_infers_time(self):
        bat = BAT.from_values([dt.time(8, 30)])
        assert bat.dtype is DataType.TIME

    def test_all_none_defaults_to_string(self):
        assert infer_type([None, None]) is DataType.STR

    def test_empty_bat(self):
        bat = BAT.from_values([], DataType.INT)
        assert len(bat) == 0

    def test_from_array_int(self):
        bat = BAT.from_array(np.array([1, 2], dtype=np.int32))
        assert bat.dtype is DataType.INT
        assert bat.tail.dtype == np.int64

    def test_from_array_rejects_unknown(self):
        with pytest.raises(TypeMismatchError):
            BAT.from_array(np.array([1 + 2j]))

    def test_dense(self):
        bat = BAT.dense(4)
        assert list(bat.tail) == [0, 1, 2, 3]
        assert bat.dtype is DataType.OID

    def test_constant(self):
        bat = BAT.constant(7.5, 3)
        assert bat.dtype is DataType.DBL
        assert list(bat.tail) == [7.5, 7.5, 7.5]

    def test_tail_dtype_mismatch_rejected(self):
        with pytest.raises(TypeMismatchError):
            BAT(DataType.INT, np.array([1.0, 2.0]))

    def test_two_dimensional_tail_rejected(self):
        with pytest.raises(BatError):
            BAT(DataType.INT, np.zeros((2, 2), dtype=np.int64))

    def test_datetime_values_rejected(self):
        with pytest.raises(BatError):
            BAT.from_values([dt.datetime(2020, 1, 1, 8, 0)])

    def test_immutable_tail(self):
        bat = BAT.from_values([1, 2, 3])
        with pytest.raises(ValueError):
            bat.tail[0] = 9


class TestNil:
    def test_nil_int(self):
        bat = BAT.from_values([1, None, 3], DataType.INT)
        assert bat.tail[1] == NIL_INT
        assert bat.python_values() == [1, None, 3]
        assert list(bat.is_nil()) == [False, True, False]

    def test_nil_double_is_nan(self):
        bat = BAT.from_values([1.0, None], DataType.DBL)
        assert np.isnan(bat.tail[1])
        assert bat.python_values() == [1.0, None]

    def test_nil_string(self):
        bat = BAT.from_values(["a", None])
        assert bat.python_values() == ["a", None]
        assert list(bat.is_nil()) == [False, True]

    def test_bool_has_no_nil(self):
        with pytest.raises(BatError):
            BAT.from_values([True, None], DataType.BOOL)


class TestTemporal:
    def test_date_roundtrip(self):
        day = dt.date(2017, 11, 30)
        assert int_to_date(date_to_int(day)) == day

    def test_epoch(self):
        assert date_to_int(dt.date(1970, 1, 1)) == 0

    def test_time_roundtrip(self):
        moment = dt.time(13, 45, 12)
        assert int_to_time(time_to_int(moment)) == moment

    def test_date_column_decodes(self):
        bat = BAT.from_values([dt.date(2014, 1, 2), dt.date(2014, 1, 1)])
        assert bat.python_values() == [dt.date(2014, 1, 2),
                                       dt.date(2014, 1, 1)]
        assert bat.min() == dt.date(2014, 1, 1)


class TestAccess:
    def test_sel(self):
        bat = BAT.from_values([10, 20, 30])
        assert bat.sel(1) == 20
        assert isinstance(bat.sel(1), int)

    def test_sel_out_of_range(self):
        bat = BAT.from_values([1])
        with pytest.raises(BatError):
            bat.sel(5)

    def test_fetch(self):
        bat = BAT.from_values([10, 20, 30, 40])
        out = bat.fetch(np.array([3, 1]))
        assert list(out.tail) == [40, 20]

    def test_slice(self):
        bat = BAT.from_values([1, 2, 3, 4])
        assert list(bat.slice(1, 3).tail) == [2, 3]

    def test_append(self):
        a = BAT.from_values([1, 2])
        b = BAT.from_values([3])
        assert list(a.append(b).tail) == [1, 2, 3]

    def test_append_type_mismatch(self):
        with pytest.raises(TypeMismatchError):
            BAT.from_values([1]).append(BAT.from_values(["x"]))

    def test_iter_decodes(self):
        bat = BAT.from_values(["x", "y"])
        assert list(bat) == ["x", "y"]


class TestCast:
    def test_int_to_double(self):
        bat = BAT.from_values([1, None, 3]).cast(DataType.DBL)
        assert bat.dtype is DataType.DBL
        assert bat.python_values() == [1.0, None, 3.0]

    def test_double_to_int(self):
        bat = BAT.from_values([1.0, None]).cast(DataType.INT)
        assert bat.python_values() == [1, None]

    def test_to_string(self):
        bat = BAT.from_values([1, 2]).cast(DataType.STR)
        assert bat.python_values() == ["1", "2"]

    def test_identity_cast_returns_self(self):
        bat = BAT.from_values([1])
        assert bat.cast(DataType.INT) is bat

    def test_unsupported_cast(self):
        with pytest.raises(TypeMismatchError):
            BAT.from_values(["a"]).cast(DataType.INT)

    def test_as_float_rejects_strings(self):
        with pytest.raises(TypeMismatchError):
            BAT.from_values(["a"]).as_float()


class TestAggregates:
    def test_sum(self):
        assert BAT.from_values([1, 2, 3]).sum() == 6

    def test_avg(self):
        assert BAT.from_values([1.0, 3.0]).avg() == 2.0

    def test_min_max(self):
        bat = BAT.from_values([5, 1, 9])
        assert bat.min() == 1
        assert bat.max() == 9

    def test_min_max_strings(self):
        bat = BAT.from_values(["pear", "apple"])
        assert bat.min() == "apple"
        assert bat.max() == "pear"

    def test_sum_rejects_strings(self):
        with pytest.raises(TypeMismatchError):
            BAT.from_values(["a"]).sum()

    def test_empty_min_raises(self):
        with pytest.raises(BatError):
            BAT.from_values([], DataType.INT).min()


class TestKeyAndEquality:
    def test_is_key_true(self):
        assert BAT.from_values([3, 1, 2]).is_key()

    def test_is_key_false(self):
        assert not BAT.from_values([1, 1]).is_key()

    def test_is_key_strings(self):
        assert BAT.from_values(["a", "b"]).is_key()
        assert not BAT.from_values(["a", "a"]).is_key()

    def test_equality(self):
        assert BAT.from_values([1, 2]) == BAT.from_values([1, 2])
        assert BAT.from_values([1, 2]) != BAT.from_values([2, 1])

    def test_equality_with_nan(self):
        a = BAT.from_values([1.0, None])
        b = BAT.from_values([1.0, None])
        assert a == b

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(BAT.from_values([1]))


class TestAlignCheck:
    def test_aligned(self):
        assert align_check(BAT.from_values([1]), BAT.from_values([2])) == 1

    def test_misaligned(self):
        with pytest.raises(AlignmentError):
            align_check(BAT.from_values([1]), BAT.from_values([1, 2]))
