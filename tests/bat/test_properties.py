"""Tests for the BAT physical-property layer (tsorted/trevsorted/tkey/
tnonil), its free derivations, and on/off result equivalence."""

import datetime as dt

import numpy as np
import pytest

from repro.bat.bat import BAT, DataType, NIL_INT
from repro.bat.kernels import thetaselect
from repro.bat.properties import (
    properties_enabled,
    set_properties_enabled,
    use_properties,
)
from repro.bat.sorting import check_key, order_by
from repro.errors import BatError
from repro.relational.joins import join_positions
from repro.relational.relation import Relation


@pytest.fixture(autouse=True)
def _properties_on():
    """Each test starts from the default (enabled) state."""
    previous = set_properties_enabled(True)
    yield
    set_properties_enabled(previous)


# Per-dtype value sets: (sorted-unique, unsorted-with-duplicates, with-nils)
DTYPE_VALUES = {
    DataType.INT: ([1, 2, 5, 9], [5, 1, 5, 2], [3, None, 1, None]),
    DataType.DBL: ([0.5, 1.25, 2.0, 7.5], [2.0, 0.5, 2.0, 1.0],
                   [1.0, None, 2.0, None]),
    DataType.STR: (["a", "b", "c", "d"], ["c", "a", "c", "b"],
                   ["b", None, "a", None]),
    DataType.BOOL: ([False, False, True, True], [True, False, True, False],
                    None),
    DataType.DATE: ([dt.date(2020, 1, 1), dt.date(2020, 2, 1),
                     dt.date(2021, 1, 1), dt.date(2022, 6, 1)],
                    [dt.date(2021, 1, 1), dt.date(2020, 1, 1),
                     dt.date(2021, 1, 1), dt.date(2020, 2, 1)],
                    [dt.date(2020, 1, 1), None, dt.date(2021, 1, 1), None]),
    DataType.TIME: ([dt.time(1, 0), dt.time(2, 30), dt.time(8, 0),
                     dt.time(23, 59)],
                    [dt.time(8, 0), dt.time(1, 0), dt.time(8, 0),
                     dt.time(2, 30)],
                    [dt.time(1, 0), None, dt.time(8, 0), None]),
}

ORDERABLE = [DataType.INT, DataType.DBL, DataType.STR, DataType.DATE,
             DataType.TIME]


class TestComputedProperties:
    @pytest.mark.parametrize("dtype", list(DTYPE_VALUES))
    def test_sorted_unique_values(self, dtype):
        values, _, _ = DTYPE_VALUES[dtype]
        bat = BAT.from_values(values, dtype)
        assert bat.tsorted
        assert not bat.trevsorted
        assert bat.tnonil
        if dtype is DataType.BOOL:
            assert not bat.tkey  # duplicates by construction
        else:
            assert bat.tkey

    @pytest.mark.parametrize("dtype", list(DTYPE_VALUES))
    def test_unsorted_duplicates(self, dtype):
        _, values, _ = DTYPE_VALUES[dtype]
        bat = BAT.from_values(values, dtype)
        assert not bat.tsorted
        assert not bat.tkey
        assert bat.tnonil

    @pytest.mark.parametrize("dtype", ORDERABLE)
    def test_nils_detected(self, dtype):
        _, _, values = DTYPE_VALUES[dtype]
        bat = BAT.from_values(values, dtype)
        assert not bat.tnonil
        assert not bat.tkey  # two nils duplicate each other

    def test_nil_breaks_order_bits_for_dbl_and_str(self):
        assert not BAT.from_values([1.0, None, 2.0]).tsorted
        assert not BAT.from_values(["a", None, "b"]).tsorted

    def test_int_nil_sorts_first(self):
        # NIL_INT is int64 min: raw order with leading nil is still sorted.
        bat = BAT.from_values([None, 1, 2], DataType.INT)
        assert bat.tsorted
        assert not bat.tnonil

    def test_revsorted(self):
        bat = BAT.from_values([9, 5, 2, 1])
        assert bat.trevsorted
        assert not bat.tsorted
        assert bat.tkey

    def test_short_bats_trivially_sorted(self):
        for values in ([], [42]):
            bat = BAT.from_values(values, DataType.INT)
            assert bat.tsorted and bat.trevsorted and bat.tkey

    def test_properties_cached_on_instance(self):
        bat = BAT.from_values([3, 1, 2])
        assert bat.cached_prop("tsorted") is None
        assert not bat.tsorted
        assert bat.cached_prop("tsorted") is False

    def test_disabled_layer_never_caches(self):
        bat = BAT.from_values([1, 2, 3])
        with use_properties(False):
            assert bat.tsorted  # computed fresh
            assert bat._props == {}
        assert bat.cached_prop("tsorted") is None


class TestImmutabilityGuard:
    def test_tail_is_read_only(self):
        """Cache invalidation is impossible: the tail cannot be written."""
        bat = BAT.from_values([1, 2, 3])
        assert bat.tsorted
        with pytest.raises(ValueError):
            bat.tail[0] = 99

    def test_cached_float_view_is_read_only(self):
        bat = BAT.from_values([1, 2, 3])
        view = bat.as_float()
        assert view is bat.as_float()  # cached
        with pytest.raises(ValueError):
            view[0] = 99.0

    def test_float_view_not_cached_when_disabled(self):
        bat = BAT.from_values([1, 2, 3])
        with use_properties(False):
            a, b = bat.as_float(), bat.as_float()
            assert a is not b
            np.testing.assert_array_equal(a, b)


class TestDerivations:
    def test_dense_and_constant(self):
        dense = BAT.dense(5)
        assert dense.cached_prop("tsorted") and dense.cached_prop("tkey") \
            and dense.cached_prop("tnonil")
        const = BAT.constant(7, 4, DataType.INT)
        assert const.cached_prop("tsorted") \
            and const.cached_prop("trevsorted")
        assert const.cached_prop("tkey") is False
        nil_const = BAT.constant(None, 3, DataType.STR)
        assert nil_const.cached_prop("tnonil") is False

    def test_fetch_with_hints(self):
        bat = BAT.from_values([1, 3, 5, 7])
        assert bat.tsorted and bat.tkey and bat.tnonil
        out = bat.fetch(np.array([0, 2, 3]), positions_sorted=True,
                        positions_key=True)
        assert out.cached_prop("tsorted") is True
        assert out.cached_prop("tkey") is True
        assert out.cached_prop("tnonil") is True
        # Without hints only tnonil (subset-safe) survives.
        plain = bat.fetch(np.array([2, 0]))
        assert plain.cached_prop("tsorted") is None
        assert plain.cached_prop("tnonil") is True
        assert not plain.tsorted  # and the derived value is correct

    def test_slice_inherits(self):
        bat = BAT.from_values([1, 2, 3, 4])
        assert bat.tsorted and bat.tkey
        part = bat.slice(1, 3)
        assert part.cached_prop("tsorted") is True
        assert part.cached_prop("tkey") is True
        assert list(part.tail) == [2, 3]

    def test_append_disjoint_sorted_runs(self):
        a = BAT.from_values([1, 2, 3])
        b = BAT.from_values([4, 5, 6])
        assert a.tsorted and a.tkey and b.tsorted and b.tkey
        assert a.tnonil and b.tnonil  # populate the cache for derivation
        out = a.append(b)
        assert out.cached_prop("tsorted") is True
        assert out.cached_prop("tkey") is True
        assert out.cached_prop("tnonil") is True

    def test_append_overlapping_runs_not_key(self):
        a = BAT.from_values([1, 2, 3])
        b = BAT.from_values([3, 4])
        assert a.tkey and b.tkey
        out = a.append(b)
        assert out.cached_prop("tsorted") is True
        assert out.cached_prop("tkey") is None  # boundary not strict
        assert not out.tkey

    def test_append_unsorted_derives_nothing_wrong(self):
        a = BAT.from_values([5, 1])
        b = BAT.from_values([2, 9])
        assert not a.tsorted
        out = a.append(b)
        assert out.cached_prop("tsorted") is None
        assert not out.tsorted

    def test_cast_preserves_order_bits(self):
        bat = BAT.from_values([1, 2, 3])
        assert bat.tsorted and bat.tnonil and bat.tkey
        dbl = bat.cast(DataType.DBL)
        assert dbl.cached_prop("tsorted") is True
        assert dbl.cached_prop("tnonil") is True
        # int64 -> float64 is not injective above 2**53: tkey not derived.
        assert dbl.cached_prop("tkey") is None
        back = dbl.cast(DataType.INT)
        assert back.cached_prop("tsorted") is True

    def test_cast_with_nils_keeps_only_tnonil(self):
        bat = BAT.from_values([None, 1, 2], DataType.INT)
        assert bat.tsorted and not bat.tnonil
        dbl = bat.cast(DataType.DBL)
        # NIL_INT (smallest) becomes NaN (unordered): tsorted must not carry.
        assert dbl.cached_prop("tsorted") is None
        assert not dbl.tsorted
        assert dbl.cached_prop("tnonil") is False

    def test_truncating_cast_drops_key(self):
        bat = BAT.from_values([1.2, 1.5, 2.0])
        assert bat.tkey
        ints = bat.cast(DataType.INT)
        assert ints.cached_prop("tkey") is None
        assert not ints.tkey  # 1.2 and 1.5 both truncate to 1


def _bat_cases():
    cases = []
    for dtype in ORDERABLE:
        sorted_vals, unsorted_vals, nil_vals = DTYPE_VALUES[dtype]
        cases.append(pytest.param(dtype, sorted_vals,
                                  id=f"{dtype.name}-sorted"))
        cases.append(pytest.param(dtype, unsorted_vals,
                                  id=f"{dtype.name}-unsorted"))
        if dtype is not DataType.STR:
            cases.append(pytest.param(dtype, nil_vals,
                                      id=f"{dtype.name}-nils"))
    return cases


class TestOnOffEquivalence:
    """Engine primitives must be byte-identical with the layer on or off."""

    @pytest.mark.parametrize("dtype,values", _bat_cases())
    def test_order_by(self, dtype, values):
        with use_properties(True):
            on = order_by([BAT.from_values(values, dtype)])
        with use_properties(False):
            off = order_by([BAT.from_values(values, dtype)])
        np.testing.assert_array_equal(on, off)

    def test_order_by_nil_strings_raise_both_ways(self):
        for enabled in (True, False):
            with use_properties(enabled):
                with pytest.raises(BatError):
                    order_by([BAT.from_values(["a", None], DataType.STR)])

    def test_order_by_multi_column(self):
        a = [1, 1, 0, 2, 2]
        b = ["x", "a", "z", "m", "a"]
        with use_properties(True):
            on = order_by([BAT.from_values(a), BAT.from_values(b)])
        with use_properties(False):
            off = order_by([BAT.from_values(a), BAT.from_values(b)])
        np.testing.assert_array_equal(on, off)

    def test_order_by_sorted_major_key_short_circuits(self):
        major = BAT.from_values([1, 2, 3, 4])
        minor = BAT.from_values([9, 1, 7, 3])
        assert major.tkey and major.tsorted  # populate the cache
        with use_properties(False):
            expected = order_by([major, minor])
        np.testing.assert_array_equal(order_by([major, minor]), expected)

    @pytest.mark.parametrize("dtype,values", _bat_cases())
    def test_check_key(self, dtype, values):
        with use_properties(True):
            on = check_key([BAT.from_values(values, dtype)])
        with use_properties(False):
            off = check_key([BAT.from_values(values, dtype)])
        assert on == off

    @pytest.mark.parametrize("op", ["=", "<", "<=", ">", ">=", "<>"])
    @pytest.mark.parametrize("dtype,values", _bat_cases())
    def test_thetaselect(self, dtype, values, op):
        probe = next(v for v in values if v is not None)
        with use_properties(True):
            bat = BAT.from_values(values, dtype)
            assert bat.tsorted in (True, False)  # force property compute
            on = thetaselect(bat, op, probe)
        with use_properties(False):
            off = thetaselect(BAT.from_values(values, dtype), op, probe)
        np.testing.assert_array_equal(on, off)

    def test_thetaselect_nil_probe(self):
        values = [None, 1, 5, 9]
        with use_properties(True):
            on = thetaselect(BAT.from_values(values, DataType.INT), "=", None)
        with use_properties(False):
            off = thetaselect(BAT.from_values(values, DataType.INT), "=",
                              None)
        np.testing.assert_array_equal(on, off)

    def test_thetaselect_with_candidates(self):
        bat = BAT.from_values([1, 2, 3, 4, 5])
        cands = np.array([0, 2, 4], dtype=np.int64)
        with use_properties(True):
            on = thetaselect(bat, ">", 1, cands)
        with use_properties(False):
            off = thetaselect(bat, ">", 1, cands)
        np.testing.assert_array_equal(on, off)

    @pytest.mark.parametrize("how", ["inner", "left"])
    @pytest.mark.parametrize("right_sorted", [True, False],
                             ids=["right-sorted", "right-unsorted"])
    def test_join_positions(self, how, right_sorted):
        left = [BAT.from_values([4, 2, 2, 9, 0])]
        right_values = [0, 2, 4, 6] if right_sorted else [6, 2, 0, 2, 4]
        with use_properties(True):
            right = [BAT.from_values(right_values)]
            assert right[0].tsorted == right_sorted or not right_sorted
            on = join_positions(left, right, how)
        with use_properties(False):
            off = join_positions([BAT.from_values([4, 2, 2, 9, 0])],
                                 [BAT.from_values(right_values)], how)
        np.testing.assert_array_equal(on[0], off[0])
        np.testing.assert_array_equal(on[1], off[1])


class TestReviewRegressions:
    """Regressions for the soundness corners found in review."""

    def test_join_mixed_type_keys_with_nils(self):
        # factorize_pair casts INT keys to DBL when the other side is DBL:
        # the INT nil (smallest raw) becomes NaN (sorts last), so a cached
        # tsorted bit on the INT BAT must not certify the codes as sorted.
        right_bat = BAT.from_values([None, 1, 2], DataType.INT)
        assert right_bat.tsorted  # NIL_INT leads: raw-sorted
        left = [BAT.from_values([1.0, 2.0, None], DataType.DBL)]
        with use_properties(True):
            on = join_positions(left, [right_bat], "inner")
        with use_properties(False):
            off = join_positions(
                [BAT.from_values([1.0, 2.0, None], DataType.DBL)],
                [BAT.from_values([None, 1, 2], DataType.INT)], "inner")
        np.testing.assert_array_equal(on[0], off[0])
        np.testing.assert_array_equal(on[1], off[1])

    def test_sorted_by_does_not_misseed_nan_columns(self):
        rel = Relation.from_columns({"x": [2.0, None, 1.0]})
        out = rel.sorted_by(["x"])
        col = out.column("x")
        assert col.cached_prop("tsorted") is not True
        assert not col.tsorted  # trailing NaN breaks raw order
        with use_properties(True):
            on = thetaselect(col, ">", 0.5)
        with use_properties(False):
            off = thetaselect(BAT.from_values([1.0, 2.0, None]), ">", 0.5)
        np.testing.assert_array_equal(on, off)

    def test_order_by_shortcut_still_rejects_nil_strings(self):
        major = BAT.from_values([1, 2, 3])
        assert major.tsorted and major.tkey  # arm the shortcut
        minor = BAT.from_values(["a", None, "b"], DataType.STR)
        with pytest.raises(BatError):
            order_by([major, minor])

    def test_check_key_shortcut_still_rejects_nil_strings(self):
        for bats in ([BAT.from_values(["a", None, "b"], DataType.STR)],
                     [BAT.from_values([1, 2, 3]),
                      BAT.from_values(["a", None, "b"], DataType.STR)]):
            if bats[0].dtype is DataType.INT:
                assert bats[0].tkey  # arm the superset shortcut
            with pytest.raises(BatError):
                check_key(bats)

    def test_check_key_with_explicit_order_never_raises(self):
        # With a precomputed order the scan path handles nil strings in
        # both modes; parity means the shortcut must not raise here.
        bats = [BAT.from_values(["a", None, "a"], DataType.STR)]
        order = np.array([0, 2, 1], dtype=np.int64)
        with use_properties(True):
            on = check_key(bats, order)
        with use_properties(False):
            off = check_key(bats, order)
        assert on == off is False

    def test_cold_composite_key_sorts_once(self, monkeypatch):
        rel = Relation.from_columns({"a": [1, 1, 2, 2], "b": [1, 2, 1, 2],
                                     "v": [0.0, 1.0, 2.0, 3.0]})
        calls = {"n": 0}
        real_argsort = np.argsort

        def counting_argsort(*args, **kwargs):
            calls["n"] += 1
            return real_argsort(*args, **kwargs)

        monkeypatch.setattr(np, "argsort", counting_argsort)
        info = rel.order_info(["a", "b"])
        assert info.is_key
        info.positions
        # One stable argsort per key column, not two.
        assert calls["n"] == 2


class TestRelationOrderCache:
    def test_order_info_cached(self):
        rel = Relation.from_columns({"k": [3, 1, 2], "v": [1.0, 2.0, 3.0]})
        info = rel.order_info(["k"])
        assert rel.order_info(["k"]) is info
        np.testing.assert_array_equal(info.positions, [1, 2, 0])
        assert info.is_key
        np.testing.assert_array_equal(info.ranks[info.positions],
                                      np.arange(3))

    def test_order_info_bypassed_when_disabled(self):
        rel = Relation.from_columns({"k": [3, 1, 2], "v": [1.0, 2.0, 3.0]})
        with use_properties(False):
            a = rel.order_info(["k"])
            b = rel.order_info(["k"])
            assert a is not b
        assert rel._order_cache == {}

    def test_sorted_by_uses_cache_and_seeds(self):
        rel = Relation.from_columns({"k": [3, 1, 2], "v": [9.0, 8.0, 7.0]})
        out = rel.sorted_by(["k"])
        assert out.column("k").cached_prop("tsorted") is True
        assert out.to_rows() == [(1, 8.0), (2, 7.0), (3, 9.0)]

    def test_is_key_consults_cache(self):
        rel = Relation.from_columns({"k": [1, 1, 2], "v": [1.0, 2.0, 3.0]})
        rel.order_info(["k"]).is_key  # populate
        assert rel.is_key(["k"]) is False
        assert rel.is_key(["k", "v"]) is True
