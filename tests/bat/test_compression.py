"""Tests for sparse-aware arithmetic and RLE compression (Table 5 machinery)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bat.bat import BAT, DataType
from repro.bat.compression import (
    add_sparse_aware,
    estimate_density,
    rle_add_scalar,
    rle_decode,
    rle_encode,
    sparse_add,
)
from repro.errors import BatError

values = st.lists(
    st.one_of(st.just(0.0),
              st.floats(min_value=-100, max_value=100,
                        allow_nan=False, allow_infinity=False)),
    min_size=0, max_size=200)


class TestSparseAdd:
    @given(values, values)
    @settings(max_examples=80, deadline=None)
    def test_equals_dense_add(self, a, b):
        n = min(len(a), len(b))
        va = np.array(a[:n], dtype=np.float64)
        vb = np.array(b[:n], dtype=np.float64)
        assert np.allclose(sparse_add(va, vb), va + vb)

    def test_all_zero(self):
        out = sparse_add(np.zeros(10), np.zeros(10))
        assert not out.any()

    def test_bat_level_dispatch(self):
        a = BAT.from_values([0.0, 1.0, 0.0, 2.0])
        b = BAT.from_values([0.0, 0.0, 3.0, 4.0])
        out = add_sparse_aware(a, b)
        assert list(out.tail) == [0.0, 1.0, 3.0, 6.0]

    def test_int_preserved(self):
        a = BAT.from_values([0, 1])
        b = BAT.from_values([2, 0])
        out = add_sparse_aware(a, b)
        assert out.dtype is DataType.INT
        assert list(out.tail) == [2, 1]

    def test_misaligned_rejected(self):
        with pytest.raises(BatError):
            add_sparse_aware(BAT.from_values([1.0]),
                             BAT.from_values([1.0, 2.0]))

    def test_non_numeric_rejected(self):
        with pytest.raises(BatError):
            add_sparse_aware(BAT.from_values(["a"]), BAT.from_values(["b"]))


class TestDensityEstimate:
    def test_dense(self):
        assert estimate_density(np.ones(100)) == 1.0

    def test_sparse(self):
        assert estimate_density(np.zeros(100)) == 0.0

    def test_empty(self):
        assert estimate_density(np.array([])) == 0.0

    def test_sampled_estimate_close(self):
        rng = np.random.default_rng(0)
        data = (rng.random(100_000) < 0.3).astype(float)
        estimate = estimate_density(data)
        assert 0.2 < estimate < 0.4


class TestRle:
    @given(st.lists(st.integers(-3, 3), min_size=0, max_size=300))
    @settings(max_examples=80, deadline=None)
    def test_roundtrip(self, data):
        array = np.array(data, dtype=np.float64)
        assert np.array_equal(rle_decode(rle_encode(array)), array)

    def test_run_count(self):
        column = rle_encode(np.array([1.0, 1.0, 2.0, 2.0, 2.0, 1.0]))
        assert column.run_count == 3
        assert list(column.values) == [1.0, 2.0, 1.0]

    def test_compression_ratio_constant_column(self):
        column = rle_encode(np.zeros(1000))
        assert column.compression_ratio() < 0.01

    def test_add_scalar_without_decode(self):
        column = rle_encode(np.array([1.0, 1.0, 5.0]))
        shifted = rle_add_scalar(column, 2.0)
        assert np.array_equal(rle_decode(shifted),
                              np.array([3.0, 3.0, 7.0]))

    def test_empty(self):
        column = rle_encode(np.array([], dtype=np.float64))
        assert column.run_count == 0
        assert len(rle_decode(column)) == 0
