"""Tests for order computation (sorting, ranks, key checks)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bat.bat import BAT
from repro.bat.sorting import check_key, order_by, rank_of, require_key
from repro.errors import BatError, KeyViolationError


class TestOrderBy:
    def test_single_column(self):
        bat = BAT.from_values([3, 1, 2])
        assert list(order_by([bat])) == [1, 2, 0]

    def test_strings(self):
        bat = BAT.from_values(["8am", "5am", "7am"])
        assert list(order_by([bat])) == [1, 2, 0]

    def test_lexicographic_two_columns(self):
        a = BAT.from_values([1, 1, 0])
        b = BAT.from_values(["b", "a", "z"])
        # Major key a: row 2 first; then rows 1, 0 by b.
        assert list(order_by([a, b])) == [2, 1, 0]

    def test_stability(self):
        a = BAT.from_values([1, 1, 1])
        assert list(order_by([a])) == [0, 1, 2]

    def test_empty_list_rejected(self):
        with pytest.raises(BatError):
            order_by([])

    def test_misaligned_rejected(self):
        with pytest.raises(BatError):
            order_by([BAT.from_values([1]), BAT.from_values([1, 2])])

    def test_nil_strings_rejected(self):
        with pytest.raises(BatError):
            order_by([BAT.from_values(["a", None])])

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_matches_sorted(self, values):
        bat = BAT.from_values(values)
        positions = order_by([bat])
        assert [values[i] for i in positions] == sorted(values)


class TestRankOf:
    def test_inverse_permutation(self):
        positions = np.array([2, 0, 1], dtype=np.int64)
        ranks = rank_of(positions)
        assert list(ranks) == [1, 2, 0]

    @given(st.permutations(list(range(8))))
    @settings(max_examples=30, deadline=None)
    def test_rank_composition_is_identity(self, perm):
        positions = np.array(perm, dtype=np.int64)
        ranks = rank_of(positions)
        assert list(positions[ranks]) == list(range(len(perm)))


class TestCheckKey:
    def test_unique_single(self):
        assert check_key([BAT.from_values([3, 1, 2])])

    def test_duplicate_single(self):
        assert not check_key([BAT.from_values([1, 1])])

    def test_combined_key(self):
        a = BAT.from_values([1, 1, 2])
        b = BAT.from_values(["x", "y", "x"])
        assert check_key([a, b])
        assert not check_key([a, BAT.from_values(["x", "x", "y"])])

    def test_string_duplicates(self):
        assert not check_key([BAT.from_values(["a", "b", "a"])])

    def test_empty_relation_is_key(self):
        assert check_key([BAT.from_values([], None)])

    def test_require_key_raises(self):
        with pytest.raises(KeyViolationError):
            require_key([BAT.from_values([1, 1])], ["a"])

    @given(st.lists(st.integers(0, 5), min_size=2, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_matches_set_semantics(self, values):
        bat = BAT.from_values(values)
        assert check_key([bat]) == (len(set(values)) == len(values))
