"""Property-based tests: the SQL engine vs a brute-force python evaluator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import Relation
from repro.sql import Session

rows = st.lists(
    st.tuples(st.integers(0, 5), st.integers(-50, 50),
              st.sampled_from(["x", "y", "z"])),
    min_size=0, max_size=40)


from repro.bat.bat import DataType

TYPES = {"g": DataType.INT, "v": DataType.INT, "s": DataType.STR}


def make_session(data):
    rel = Relation.from_columns({
        "g": [r[0] for r in data],
        "v": [r[1] for r in data],
        "s": [r[2] for r in data]}, TYPES)
    session = Session()
    session.register("t", rel)
    return session


@given(rows, st.integers(-50, 50))
@settings(max_examples=50, deadline=None)
def test_filter_matches_python(data, threshold):
    session = make_session(data)
    out = session.execute(f"SELECT g, v FROM t WHERE v > {threshold}")
    expected = sorted((r[0], r[1]) for r in data if r[1] > threshold)
    assert sorted(out.to_rows()) == expected


@given(rows)
@settings(max_examples=50, deadline=None)
def test_group_sum_matches_python(data):
    session = make_session(data)
    out = session.execute(
        "SELECT g, SUM(v) AS s, COUNT(*) AS n FROM t GROUP BY g")
    expected: dict[int, list] = {}
    for g, v, _ in data:
        entry = expected.setdefault(g, [0, 0])
        entry[0] += v
        entry[1] += 1
    got = {r[0]: [r[1], r[2]] for r in out.to_rows()}
    assert got == expected


@given(rows, rows)
@settings(max_examples=40, deadline=None)
def test_join_matches_python(left, right):
    lrel = Relation.from_columns({"k": [r[0] for r in left],
                                  "v": [r[1] for r in left]},
                                 {"k": DataType.INT, "v": DataType.INT})
    rrel = Relation.from_columns({"j": [r[0] for r in right],
                                  "w": [r[1] for r in right]},
                                 {"j": DataType.INT, "w": DataType.INT})
    session = Session()
    session.register("l", lrel)
    session.register("r", rrel)
    out = session.execute(
        "SELECT k, v, w FROM l JOIN r ON l.k = r.j")
    expected = sorted((lk, lv, rw) for lk, lv, _ in left
                      for rk, rw, _ in right if lk == rk)
    assert sorted(out.to_rows()) == expected


@given(rows)
@settings(max_examples=40, deadline=None)
def test_order_limit_matches_python(data):
    session = make_session(data)
    out = session.execute("SELECT v FROM t ORDER BY v LIMIT 5")
    expected = [(v,) for v in sorted(r[1] for r in data)[:5]]
    assert out.to_rows() == expected


@given(rows)
@settings(max_examples=40, deadline=None)
def test_distinct_matches_python(data):
    session = make_session(data)
    out = session.execute("SELECT DISTINCT g, s FROM t")
    expected = sorted({(r[0], r[2]) for r in data})
    assert sorted(out.to_rows()) == expected


@given(rows)
@settings(max_examples=30, deadline=None)
def test_case_expression_matches_python(data):
    session = make_session(data)
    out = session.execute(
        "SELECT v, CASE WHEN v > 0 THEN 'pos' WHEN v < 0 THEN 'neg' "
        "ELSE 'zero' END AS sign FROM t")
    for v, sign in out.to_rows():
        expected = "pos" if v > 0 else ("neg" if v < 0 else "zero")
        assert sign == expected
