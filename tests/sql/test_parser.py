"""Parser tests, including the RMA FROM-clause extension and round trips."""

import datetime as dt

import pytest

from repro.errors import SqlSyntaxError
from repro.sql import ast
from repro.sql.parser import parse_sql


class TestSelectBasics:
    def test_star(self):
        stmt = parse_sql("SELECT * FROM t")
        assert isinstance(stmt.items[0].expr, ast.Star)
        assert stmt.source == ast.TableRef("t")

    def test_qualified_star(self):
        stmt = parse_sql("SELECT t.* FROM t")
        assert stmt.items[0].expr == ast.Star("t")

    def test_aliases(self):
        stmt = parse_sql("SELECT a AS x, b y FROM t AS u")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.source.alias == "u"

    def test_distinct(self):
        assert parse_sql("SELECT DISTINCT a FROM t").distinct

    def test_no_from(self):
        stmt = parse_sql("SELECT 1 + 2")
        assert stmt.source is None

    def test_where_group_having_order_limit(self):
        stmt = parse_sql(
            "SELECT a, COUNT(*) FROM t WHERE b > 1 GROUP BY a "
            "HAVING COUNT(*) > 2 ORDER BY a DESC LIMIT 10 OFFSET 5")
        assert stmt.where is not None
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].descending
        assert stmt.limit == 10 and stmt.offset == 5

    def test_trailing_semicolon(self):
        parse_sql("SELECT 1;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT 1 SELECT 2")


class TestExpressions:
    def expr(self, sql):
        return parse_sql(f"SELECT {sql}").items[0].expr

    def test_precedence(self):
        expr = self.expr("1 + 2 * 3")
        assert expr == ast.BinaryOp(
            "+", ast.Literal(1),
            ast.BinaryOp("*", ast.Literal(2), ast.Literal(3)))

    def test_parentheses(self):
        expr = self.expr("(1 + 2) * 3")
        assert expr.op == "*"

    def test_unary_minus(self):
        assert self.expr("-x") == ast.UnaryOp("-", ast.ColumnRef("x"))

    def test_comparison_chain_with_and_or(self):
        expr = self.expr("a > 1 AND b < 2 OR c = 3")
        assert expr.op == "OR"
        assert expr.left.op == "AND"

    def test_not(self):
        expr = self.expr("NOT a = 1")
        assert isinstance(expr, ast.UnaryOp) and expr.op == "NOT"

    def test_between(self):
        expr = self.expr("x BETWEEN 1 AND 5")
        assert isinstance(expr, ast.Between)

    def test_not_between(self):
        assert self.expr("x NOT BETWEEN 1 AND 5").negated

    def test_in_list(self):
        expr = self.expr("x IN (1, 2, 3)")
        assert isinstance(expr, ast.InList)
        assert len(expr.items) == 3

    def test_is_null(self):
        assert isinstance(self.expr("x IS NULL"), ast.IsNull)
        assert self.expr("x IS NOT NULL").negated

    def test_like(self):
        expr = self.expr("name LIKE 'A%'")
        assert expr.op == "LIKE"

    def test_date_literal(self):
        assert self.expr("DATE '2014-04-15'") == ast.Literal(
            dt.date(2014, 4, 15))

    def test_time_literal(self):
        assert self.expr("TIME '08:30:00'") == ast.Literal(dt.time(8, 30))

    def test_case_when(self):
        expr = self.expr("CASE WHEN x > 0 THEN 'pos' ELSE 'neg' END")
        assert isinstance(expr, ast.CaseWhen)
        assert expr.otherwise == ast.Literal("neg")

    def test_function_call(self):
        expr = self.expr("POWER(x, 2)")
        assert expr == ast.FunctionCall("POWER", (ast.ColumnRef("x"),
                                                  ast.Literal(2)))

    def test_count_star(self):
        expr = self.expr("COUNT(*)")
        assert isinstance(expr.args[0], ast.Star)

    def test_count_distinct(self):
        assert self.expr("COUNT(DISTINCT x)").distinct

    def test_string_concat(self):
        assert self.expr("a || b").op == "||"

    def test_qualified_column(self):
        assert self.expr("t.x") == ast.ColumnRef("x", "t")


class TestJoins:
    def test_inner_join(self):
        stmt = parse_sql("SELECT * FROM a JOIN b ON a.x = b.y")
        join = stmt.source
        assert isinstance(join, ast.Join)
        assert join.kind == "inner"
        assert join.condition is not None

    def test_left_join(self):
        stmt = parse_sql("SELECT * FROM a LEFT JOIN b ON a.x = b.y")
        assert stmt.source.kind == "left"

    def test_left_outer_join(self):
        stmt = parse_sql("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.y")
        assert stmt.source.kind == "left"

    def test_cross_join(self):
        stmt = parse_sql("SELECT * FROM a CROSS JOIN b")
        assert stmt.source.kind == "cross"

    def test_comma_join(self):
        stmt = parse_sql("SELECT * FROM a, b, c")
        outer = stmt.source
        assert outer.kind == "cross"
        assert outer.left.kind == "cross"

    def test_subquery(self):
        stmt = parse_sql("SELECT * FROM (SELECT a FROM t) AS s")
        assert isinstance(stmt.source, ast.SubqueryRef)
        assert stmt.source.alias == "s"

    def test_subquery_requires_alias(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT * FROM (SELECT a FROM t)")


class TestRmaCalls:
    def test_paper_example_inv(self):
        """SELECT * FROM INV(rating BY User) — the paper's §1 query."""
        stmt = parse_sql("SELECT * FROM INV(rating BY User)")
        call = stmt.source
        assert isinstance(call, ast.RmaCall)
        assert call.op == "inv"
        assert call.args[0] == ast.RmaArg(ast.TableRef("rating"), ("User",))

    def test_binary_mmu(self):
        stmt = parse_sql("SELECT * FROM MMU(r BY U, s BY V)")
        call = stmt.source
        assert call.op == "mmu"
        assert call.args[0].by == ("U",)
        assert call.args[1].by == ("V",)

    def test_multi_attribute_by(self):
        stmt = parse_sql("SELECT * FROM QQR(r BY a, b, c)")
        assert stmt.source.args[0].by == ("a", "b", "c")

    def test_parenthesized_by(self):
        stmt = parse_sql("SELECT * FROM ADD(r BY (a, b), s BY (c))")
        assert stmt.source.args[0].by == ("a", "b")
        assert stmt.source.args[1].by == ("c",)

    def test_bare_by_lists_in_binary_call(self):
        # ambiguous commas: `r BY a, b, s BY c` must split before `s BY`.
        stmt = parse_sql("SELECT * FROM ADD(r BY a, b, s BY c, d)")
        assert stmt.source.args[0] == ast.RmaArg(ast.TableRef("r"),
                                                 ("a", "b"))
        assert stmt.source.args[1] == ast.RmaArg(ast.TableRef("s"),
                                                 ("c", "d"))

    def test_nested_rma(self):
        stmt = parse_sql("SELECT * FROM MMU(TRA(w3 BY U) BY C, w3 BY U)")
        outer = stmt.source
        inner = outer.args[0].table
        assert isinstance(inner, ast.RmaCall)
        assert inner.op == "tra"

    def test_subquery_argument(self):
        stmt = parse_sql(
            "SELECT * FROM INV((SELECT a, b, c FROM t) BY a)")
        assert isinstance(stmt.source.args[0].table, ast.SubqueryRef)

    def test_alias(self):
        stmt = parse_sql("SELECT * FROM MMU(a BY x, b BY y) AS w5")
        assert stmt.source.alias == "w5"

    def test_paper_folded_query(self):
        """The §7.2 translation with CROSS JOIN and a scalar subquery."""
        stmt = parse_sql(
            "SELECT C, B/(M-1), H/(M-1), N/(M-1) "
            "FROM MMU(w4 BY C, w3 BY U) AS w5 "
            "CROSS JOIN (SELECT COUNT(*) AS M FROM w1) AS t")
        assert stmt.source.kind == "cross"
        assert isinstance(stmt.source.left, ast.RmaCall)

    def test_missing_by_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT * FROM INV(rating)")


class TestRoundTrip:
    QUERIES = [
        "SELECT * FROM t",
        "SELECT a AS x FROM t WHERE b > 1 ORDER BY a DESC LIMIT 3",
        "SELECT * FROM INV(rating BY User)",
        "SELECT * FROM MMU(w4 BY C, w3 BY U) AS w5",
        "SELECT a, COUNT(*) AS n FROM t GROUP BY a HAVING COUNT(*) > 1",
        "SELECT * FROM a LEFT JOIN b ON a.x = b.y",
        "SELECT CASE WHEN x > 0 THEN 1 ELSE 0 END AS sign FROM t",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_parse_render_parse(self, sql):
        first = parse_sql(sql)
        second = parse_sql(first.to_sql())
        assert first == second


class TestDdlDml:
    def test_create_table(self):
        stmt = parse_sql(
            "CREATE TABLE t (a INT, b DOUBLE, c VARCHAR(10), d DATE)")
        assert isinstance(stmt, ast.CreateTable)
        assert [c.type_name for c in stmt.columns] == [
            "INT", "DOUBLE", "VARCHAR", "DATE"]

    def test_create_table_as(self):
        stmt = parse_sql("CREATE TABLE t AS SELECT * FROM s")
        assert stmt.source is not None

    def test_drop(self):
        stmt = parse_sql("DROP TABLE IF EXISTS t")
        assert stmt.if_exists

    def test_insert(self):
        stmt = parse_sql("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(stmt, ast.InsertValues)
        assert len(stmt.rows) == 2
        assert stmt.columns == ("a", "b")
