"""Optimizer tests: rewrites must preserve semantics and fire when expected."""

import pytest

from repro.relational import Relation
from repro.sql import Session
from repro.sql import logical
from repro.sql.optimizer import optimize


@pytest.fixture
def session(users, films, ratings):
    s = Session()
    s.register("u", users)
    s.register("f", films)
    s.register("r", ratings)
    return s


def find_nodes(plan, kind):
    found = []
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, kind):
            found.append(node)
        stack.extend(node.children())
    return found


QUERIES = [
    "SELECT * FROM u WHERE YoB > 1966",
    "SELECT u.User, Net FROM u, r WHERE u.User = r.User",
    "SELECT u.User, Net FROM u, r WHERE u.User = r.User AND YoB > 1966",
    "SELECT State, COUNT(*) AS n FROM u GROUP BY State",
    "SELECT u.User FROM u JOIN r ON u.User = r.User WHERE Heat > 1",
    "SELECT * FROM u, f WHERE RelY = 1995 AND State = 'CA'",
    "SELECT a.User FROM u AS a, u AS b WHERE a.State = b.State "
    "AND a.User <> b.User",
    "SELECT C, Ann FROM TRA(r BY User) WHERE Ann > 0.5",
    "SELECT u.User FROM u WHERE State = 'CA' ORDER BY YoB DESC LIMIT 2",
]


class TestSemanticsPreserved:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_optimized_equals_unoptimized(self, sql, users, films,
                                          ratings):
        fast = Session()
        slow = Session(optimize_plans=False)
        for s in (fast, slow):
            s.register("u", users)
            s.register("f", films)
            s.register("r", ratings)
        assert fast.execute(sql).same_rows(slow.execute(sql)), sql


class TestRewrites:
    def test_cross_becomes_inner_join(self, session):
        plan = session.plan(
            "SELECT u.User, Net FROM u, r WHERE u.User = r.User")
        joins = find_nodes(plan, logical.JoinPlan)
        assert joins and joins[0].kind == "inner"
        assert joins[0].condition is not None

    def test_filter_pushed_below_join(self, session):
        plan = session.plan(
            "SELECT u.User, Net FROM u JOIN r ON u.User = r.User "
            "WHERE YoB > 1966")
        join = find_nodes(plan, logical.JoinPlan)[0]
        # The YoB filter must now sit on the u side, below the join.
        left_filters = find_nodes(join.left, logical.Filter)
        assert left_filters, "filter was not pushed below the join"

    def test_multi_conjunct_split(self, session):
        plan = session.plan(
            "SELECT u.User, Net FROM u, r "
            "WHERE u.User = r.User AND YoB > 1966 AND Heat > 0")
        join = find_nodes(plan, logical.JoinPlan)[0]
        assert find_nodes(join.left, logical.Filter)
        assert find_nodes(join.right, logical.Filter)

    def test_projection_pruned_at_scan(self, session):
        plan = session.plan("SELECT User FROM u WHERE YoB > 1966")
        prunes = find_nodes(plan, logical.Prune)
        assert prunes
        assert set(prunes[0].names) == {"User", "YoB"}

    def test_star_disables_pruning(self, session):
        plan = session.plan("SELECT * FROM u")
        assert not find_nodes(plan, logical.Prune)

    def test_rma_inputs_not_pruned(self, session):
        # RMA consumes order + application schema; pruning below it would
        # change the application schema and thus the semantics.
        plan = session.plan("SELECT C FROM TRA(r BY User)")
        rma = find_nodes(plan, logical.Rma)[0]
        assert not find_nodes(rma.inputs[0], logical.Prune)

    def test_left_join_not_converted(self, session):
        plan = session.plan(
            "SELECT u.User FROM u LEFT JOIN r ON u.User = r.User "
            "WHERE YoB > 1900")
        join = find_nodes(plan, logical.JoinPlan)[0]
        assert join.kind == "left"


class TestDynamicSchemas:
    def test_tra_output_names_unknown(self, session):
        # tra's result column names are data values: the optimizer must
        # not claim to know them.
        from repro.sql.optimizer import Optimizer
        opt = Optimizer(session.catalog)
        plan = logical.build_select(
            __import__("repro.sql.parser", fromlist=["parse_sql"])
            .parse_sql("SELECT * FROM TRA(r BY User)"))
        rma = find_nodes(plan, logical.Rma)[0]
        assert opt.output_names(rma) is None

    def test_inv_output_names_known(self, session):
        from repro.sql.optimizer import Optimizer
        from repro.sql.parser import parse_sql
        opt = Optimizer(session.catalog)
        plan = logical.build_select(
            parse_sql("SELECT * FROM INV(r BY User) AS i"))
        rma = find_nodes(plan, logical.Rma)[0]
        names = opt.output_names(rma)
        assert names == {("i", "User"), ("i", "Balto"), ("i", "Heat"),
                         ("i", "Net")}
