"""End-to-end SQL execution tests."""

import datetime as dt

import pytest

from repro.errors import BindError, PlanError
from repro.relational import Relation
from repro.sql import Session


@pytest.fixture
def session(users, films, ratings):
    s = Session()
    s.register("u", users)
    s.register("f", films)
    s.register("r", ratings)
    return s


class TestProjection:
    def test_select_star(self, session, users):
        assert session.execute("SELECT * FROM u").same_rows(users)

    def test_select_columns(self, session):
        out = session.execute("SELECT User, YoB FROM u")
        assert out.names == ["User", "YoB"]

    def test_expressions(self, session):
        out = session.execute(
            "SELECT User, 2026 - YoB AS age FROM u ORDER BY age")
        assert out.to_rows()[0] == ("Ann", 46)

    def test_constant_select(self, session):
        assert session.execute("SELECT 6 * 7 AS x").to_rows() == [(42,)]

    def test_case_expression(self, session):
        out = session.execute(
            "SELECT User, CASE WHEN YoB >= 1970 THEN 'young' "
            "ELSE 'old' END AS c FROM u ORDER BY User")
        assert out.to_rows() == [("Ann", "young"), ("Jan", "young"),
                                 ("Tom", "old")]

    def test_scalar_functions(self, session):
        out = session.execute("SELECT SQRT(ABS(-16)) AS x")
        assert out.to_rows() == [(4.0,)]

    def test_string_concat(self, session):
        out = session.execute(
            "SELECT User || '@' || State AS handle FROM u ORDER BY User")
        assert out.to_rows()[0] == ("Ann@CA",)

    def test_unknown_column(self, session):
        with pytest.raises(BindError):
            session.execute("SELECT nope FROM u")


class TestFilters:
    def test_comparison(self, session):
        out = session.execute("SELECT User FROM u WHERE YoB > 1966")
        assert sorted(v[0] for v in out.to_rows()) == ["Ann", "Jan"]

    def test_in_list(self, session):
        out = session.execute(
            "SELECT User FROM u WHERE State IN ('FL', 'TX')")
        assert out.to_rows() == [("Tom",)]

    def test_between(self, session):
        out = session.execute(
            "SELECT User FROM u WHERE YoB BETWEEN 1966 AND 1975")
        assert out.to_rows() == [("Jan",)]

    def test_like(self, session):
        out = session.execute("SELECT Title FROM f WHERE Title LIKE '%a%'")
        assert sorted(v[0] for v in out.to_rows()) == ["Balto", "Heat"]

    def test_null_handling(self):
        s = Session()
        s.register("t", Relation.from_columns({"x": [1, None, 3]}))
        assert s.execute(
            "SELECT x FROM t WHERE x IS NULL").to_rows() == [(None,)]
        assert len(s.execute(
            "SELECT x FROM t WHERE x IS NOT NULL").to_rows()) == 2


class TestJoins:
    def test_inner(self, session):
        out = session.execute(
            "SELECT u.User, Heat FROM u JOIN r ON u.User = r.User")
        assert dict(out.to_rows()) == {"Ann": 1.5, "Tom": 0.0, "Jan": 4.0}

    def test_left(self, session):
        session.register("extra", Relation.from_columns(
            {"name": ["Ann", "Zoe"], "v": [1, 2]}))
        out = session.execute(
            "SELECT name, State FROM extra LEFT JOIN u "
            "ON extra.name = u.User ORDER BY name")
        assert out.to_rows() == [("Ann", "CA"), ("Zoe", None)]

    def test_comma_join_with_predicate(self, session):
        out = session.execute(
            "SELECT u.User, Net FROM u, r "
            "WHERE u.User = r.User AND State = 'CA' ORDER BY Net")
        assert out.to_rows() == [("Ann", 0.5), ("Jan", 1.0)]

    def test_cross_join(self, session):
        out = session.execute("SELECT COUNT(*) AS n FROM u CROSS JOIN f")
        assert out.to_rows() == [(9,)]

    def test_non_equi_residual(self, session):
        out = session.execute(
            "SELECT u.User FROM u JOIN r ON u.User = r.User "
            "AND Heat > YoB - 1979")
        assert sorted(v[0] for v in out.to_rows()) == ["Ann", "Jan", "Tom"]

    def test_self_join_with_aliases(self, session):
        out = session.execute(
            "SELECT a.User, b.User AS other FROM u AS a JOIN u AS b "
            "ON a.State = b.State WHERE a.User <> b.User")
        assert sorted(out.to_rows()) == [("Ann", "Jan"), ("Jan", "Ann")]

    def test_ambiguous_column_rejected(self, session):
        with pytest.raises(BindError):
            session.execute(
                "SELECT User FROM u JOIN r ON u.User = r.User")


class TestAggregation:
    def test_global(self, session):
        out = session.execute(
            "SELECT COUNT(*) AS n, AVG(YoB) AS a, MIN(YoB) AS lo, "
            "MAX(YoB) AS hi FROM u")
        assert out.to_rows() == [(3, pytest.approx(1971.6667, abs=1e-3),
                                  1965, 1980)]

    def test_group_by(self, session):
        out = session.execute(
            "SELECT State, COUNT(*) AS n FROM u GROUP BY State "
            "ORDER BY State")
        assert out.to_rows() == [("CA", 2), ("FL", 1)]

    def test_having(self, session):
        out = session.execute(
            "SELECT State, COUNT(*) AS n FROM u GROUP BY State "
            "HAVING COUNT(*) > 1")
        assert out.to_rows() == [("CA", 2)]

    def test_aggregate_of_expression(self, session):
        out = session.execute("SELECT SUM(YoB - 1900) AS s FROM u")
        assert out.to_rows() == [(80 + 65 + 70,)]

    def test_expression_over_aggregate(self, session):
        out = session.execute(
            "SELECT MAX(YoB) - MIN(YoB) AS span FROM u")
        assert out.to_rows() == [(15,)]

    def test_count_distinct(self, session):
        out = session.execute("SELECT COUNT(DISTINCT State) AS n FROM u")
        assert out.to_rows() == [(2,)]

    def test_count_distinct_grouped(self):
        s = Session()
        s.register("t", Relation.from_columns(
            {"g": ["a", "a", "a", "b"], "x": [1, 1, 2, 5]}))
        out = s.execute(
            "SELECT g, COUNT(DISTINCT x) AS n FROM t GROUP BY g "
            "ORDER BY g")
        assert out.to_rows() == [("a", 2), ("b", 1)]

    def test_having_without_group_rejected(self, session):
        with pytest.raises(PlanError):
            session.execute("SELECT User FROM u HAVING User > 'A'")


class TestOrderingAndLimits:
    def test_order_by_multiple(self, session):
        out = session.execute(
            "SELECT State, User FROM u ORDER BY State, User DESC")
        assert out.to_rows() == [("CA", "Jan"), ("CA", "Ann"),
                                 ("FL", "Tom")]

    def test_order_by_expression(self, session):
        out = session.execute("SELECT User FROM u ORDER BY YoB * -1")
        assert out.to_rows()[0] == ("Ann",)

    def test_limit_offset(self, session):
        out = session.execute(
            "SELECT User FROM u ORDER BY User LIMIT 1 OFFSET 1")
        assert out.to_rows() == [("Jan",)]

    def test_distinct(self, session):
        out = session.execute("SELECT DISTINCT State FROM u")
        assert sorted(v[0] for v in out.to_rows()) == ["CA", "FL"]


class TestSubqueries:
    def test_from_subquery(self, session):
        out = session.execute(
            "SELECT n FROM (SELECT COUNT(*) AS n FROM u) AS t")
        assert out.to_rows() == [(3,)]

    def test_nested_subquery_with_join(self, session):
        out = session.execute(
            "SELECT s.User, f.Director FROM "
            "(SELECT User, Heat FROM r WHERE Heat > 1) AS s, f "
            "WHERE f.Title = 'Heat'")
        assert sorted(out.to_rows()) == [("Ann", "Lee"), ("Jan", "Lee")]


class TestDdl:
    def test_create_insert_select(self):
        s = Session()
        s.execute("CREATE TABLE t (a INT, b VARCHAR(5), d DATE)")
        s.execute("INSERT INTO t VALUES (1, 'x', DATE '2020-05-17')")
        s.execute("INSERT INTO t (b, a) VALUES ('y', 2)")
        out = s.execute("SELECT a, b, d FROM t ORDER BY a")
        assert out.to_rows() == [(1, "x", dt.date(2020, 5, 17)),
                                 (2, "y", None)]

    def test_create_as_select(self, session):
        session.execute("CREATE TABLE ca AS SELECT * FROM u "
                        "WHERE State = 'CA'")
        assert session.execute(
            "SELECT COUNT(*) AS n FROM ca").to_rows() == [(2,)]

    def test_drop(self, session):
        session.execute("CREATE TABLE tmp AS SELECT * FROM u")
        session.execute("DROP TABLE tmp")
        assert "tmp" not in session.catalog
        session.execute("DROP TABLE IF EXISTS tmp")
