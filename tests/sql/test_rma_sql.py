"""RMA operations through the SQL front end (paper §7.2)."""

import numpy as np
import pytest

from repro.relational import Relation
from repro.sql import Session


@pytest.fixture
def session(users, films, ratings, weather):
    s = Session()
    s.register("u", users)
    s.register("f", films)
    s.register("rating", ratings)
    s.register("weather", weather)
    return s


class TestUnaryRmaSql:
    def test_paper_intro_query(self, session):
        """SELECT * FROM INV(rating BY User) orders by users and inverts."""
        out = session.execute("SELECT * FROM INV(rating BY User)")
        assert out.names == ["User", "Balto", "Heat", "Net"]
        assert out.column("User").python_values() == ["Ann", "Jan", "Tom"]
        # Check INV against numpy on the sorted matrix.
        ordered = np.array([[2.0, 1.5, 0.5], [1.0, 4.0, 1.0],
                            [0.0, 0.0, 1.5]])
        expected = np.linalg.inv(ordered)
        got = np.column_stack([out.column(c).tail
                               for c in ["Balto", "Heat", "Net"]])
        assert np.allclose(got, expected)

    def test_tra(self, session):
        out = session.execute("SELECT * FROM TRA(weather BY T)")
        assert out.names == ["C", "5am", "6am", "7am", "8am"]

    def test_projection_over_rma(self, session):
        out = session.execute(
            "SELECT C, Ann FROM TRA(rating BY User) WHERE Ann > 0.6")
        assert sorted(out.to_rows()) == [("Balto", 2.0), ("Heat", 1.5)]

    def test_det_and_filter(self, session):
        out = session.execute(
            "SELECT det FROM DET((SELECT User, Balto, Heat, Net "
            "FROM rating) BY User)")
        ordered = np.array([[2.0, 1.5, 0.5], [1.0, 4.0, 1.0],
                            [0.0, 0.0, 1.5]])
        assert out.to_rows()[0][0] == pytest.approx(
            np.linalg.det(ordered))

    def test_rma_with_alias_and_join(self, session):
        out = session.execute(
            "SELECT w.C, f.Director FROM TRA(rating BY User) AS w "
            "JOIN f ON w.C = f.Title WHERE f.Director = 'Lee' "
            "ORDER BY w.C")
        assert out.to_rows() == [("Balto", "Lee"), ("Heat", "Lee")]


class TestBinaryRmaSql:
    def test_add(self, session, weather):
        other = Relation.from_rows(
            ["D", "H", "W"],
            [("d1", 1.0, 1.0), ("d2", 1.0, 1.0),
             ("d3", 1.0, 1.0), ("d4", 1.0, 1.0)])
        session.register("other", other)
        out = session.execute(
            "SELECT * FROM ADD(weather BY T, other BY D)")
        assert out.names == ["T", "D", "H", "W"]
        rows = {r[0]: r[2:] for r in out.to_rows()}
        assert rows["5am"] == (2.0, 4.0)

    def test_mmu_nested(self, session):
        """Covariance-style nesting: MMU(TRA(x) BY C, x BY key)."""
        out = session.execute(
            "SELECT * FROM MMU(TRA(rating BY User) BY C, rating BY User)")
        assert out.names == ["C", "Balto", "Heat", "Net"]
        data = np.array([[2.0, 1.5, 0.5], [0.0, 0.0, 1.5],
                         [1.0, 4.0, 1.0]])
        expected = data.T @ data
        got = np.column_stack([out.sorted_by(["C"]).column(c).tail
                               for c in ["Balto", "Heat", "Net"]])
        # rows of result sorted by C = Balto, Heat, Net (already sorted)
        assert np.allclose(got, expected)


class TestPaperSection72:
    def test_folded_covariance_query(self, session, users, ratings):
        """The full §7.2 SQL translation of w5/w6/w7."""
        s = session
        # Build w1 (CA users' ratings) and w3 (centered) via SQL.
        s.execute(
            "CREATE TABLE w1 AS SELECT u.User AS U, Balto AS B, "
            "Heat AS H, Net AS N FROM u JOIN rating "
            "ON u.User = rating.User WHERE State = 'CA'")
        s.execute(
            "CREATE TABLE means AS SELECT AVG(B) AS B, AVG(H) AS H, "
            "AVG(N) AS N FROM w1")
        s.execute(
            "CREATE TABLE w3 AS SELECT U, B, H, N FROM SUB(w1 BY U, "
            "(SELECT V, B, H, N FROM (SELECT U AS V FROM w1) AS k "
            "CROSS JOIN means) BY V)")
        s.execute("CREATE TABLE w4 AS SELECT * FROM TRA(w3 BY U)")
        out = s.execute(
            "SELECT C, B/(M-1) AS B, H/(M-1) AS H, N/(M-1) AS N "
            "FROM MMU(w4 BY C, w3 BY U) AS w5 "
            "CROSS JOIN (SELECT COUNT(*) AS M FROM w1) AS t")
        rows = {r[0]: r[1:] for r in out.to_rows()}
        assert rows["B"] == pytest.approx((0.5, -1.25, -0.25))
        assert rows["H"] == pytest.approx((-1.25, 3.125, 0.625))
        assert rows["N"] == pytest.approx((-0.25, 0.625, 0.125))
