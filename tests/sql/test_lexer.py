"""Tokenizer tests."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql.lexer import tokenize


def kinds(sql):
    return [(t.kind, t.value) for t in tokenize(sql)[:-1]]


class TestBasics:
    def test_keywords_uppercased(self):
        assert kinds("select from") == [("KEYWORD", "SELECT"),
                                        ("KEYWORD", "FROM")]

    def test_identifiers_keep_case(self):
        assert kinds("Trips") == [("IDENT", "Trips")]

    def test_numbers(self):
        assert kinds("1 2.5 1e3 2.5E-2") == [
            ("NUMBER", "1"), ("NUMBER", "2.5"), ("NUMBER", "1e3"),
            ("NUMBER", "2.5E-2")]

    def test_leading_dot_number(self):
        assert kinds(".5") == [("NUMBER", ".5")]

    def test_strings(self):
        assert kinds("'hello'") == [("STRING", "hello")]

    def test_string_escape(self):
        assert kinds("'it''s'") == [("STRING", "it's")]

    def test_quoted_identifier(self):
        assert kinds('"Group"') == [("IDENT", "Group")]

    def test_symbols(self):
        assert [v for _, v in kinds("<= >= <> != = ( ) , . ;")] == [
            "<=", ">=", "<>", "!=", "=", "(", ")", ",", ".", ";"]

    def test_comment_skipped(self):
        assert kinds("1 -- comment\n2") == [("NUMBER", "1"),
                                            ("NUMBER", "2")]

    def test_eof_token(self):
        assert tokenize("x")[-1].kind == "EOF"


class TestPositions:
    def test_line_and_column(self):
        tokens = tokenize("SELECT\n  x")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[1].column == 3


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(SqlSyntaxError):
            tokenize('"oops')

    def test_bad_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT @x")

    def test_error_carries_position(self):
        try:
            tokenize("SELECT\n @")
        except SqlSyntaxError as exc:
            assert exc.line == 2
        else:  # pragma: no cover
            pytest.fail("expected SqlSyntaxError")
