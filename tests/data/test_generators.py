"""Tests for the synthetic dataset generators."""

import datetime as dt

import numpy as np
import pytest

from repro.bat.bat import DataType
from repro.data.bixi import (
    DURATION_INTERCEPT,
    DURATION_PER_KM,
    generate_numeric_trips,
    generate_stations,
    generate_trips,
    station_distance_km,
)
from repro.data.dblp import (
    generate_publications,
    generate_publications_long,
    generate_ranking,
    pivot_publications,
)
from repro.data.synthetic import (
    order_heavy_relation,
    order_names,
    sparse_pair,
    uniform_pair,
    uniform_relation,
)


class TestBixi:
    def test_stations_schema(self):
        stations = generate_stations(20)
        assert stations.names == ["code", "name", "latitude", "longitude"]
        assert stations.nrows == 20
        assert stations.is_key(["code"])

    def test_stations_deterministic(self):
        a = generate_stations(10, seed=3)
        b = generate_stations(10, seed=3)
        assert a.same_rows(b)

    def test_trips_schema_types(self):
        stations = generate_stations(10)
        trips = generate_trips(500, stations)
        schema = trips.schema
        assert schema.dtype("start_date") is DataType.DATE
        assert schema.dtype("start_time") is DataType.TIME
        assert schema.dtype("is_member") is DataType.BOOL
        assert trips.is_key(["trip_id"])

    def test_trip_stations_exist(self):
        stations = generate_stations(10)
        trips = generate_trips(300, stations)
        codes = set(stations.column("code").python_values())
        assert set(trips.column("start_station").python_values()) <= codes
        assert set(trips.column("end_station").python_values()) <= codes

    def test_no_self_loops(self):
        stations = generate_stations(5)
        trips = generate_trips(200, stations)
        start = trips.column("start_station").tail
        end = trips.column("end_station").tail
        assert (start != end).all()

    def test_trips_within_years(self):
        stations = generate_stations(10)
        trips = generate_trips(300, stations, years=(2015, 2016))
        years = {d.year for d in trips.column("start_date").python_values()}
        assert years <= {2015, 2016}

    def test_duration_correlates_with_distance(self):
        """The regression signal the OLS workload recovers must exist."""
        stations = generate_stations(30)
        trips = generate_trips(5_000, stations)
        codes = stations.column("code").tail
        lat = dict(zip(codes, stations.column("latitude").tail))
        lon = dict(zip(codes, stations.column("longitude").tail))
        start = trips.column("start_station").tail
        end = trips.column("end_station").tail
        distance = station_distance_km(
            np.array([lat[c] for c in start]),
            np.array([lon[c] for c in start]),
            np.array([lat[c] for c in end]),
            np.array([lon[c] for c in end]))
        duration = trips.column("duration").tail.astype(float)
        slope, intercept = np.polyfit(distance, duration, 1)
        assert slope == pytest.approx(DURATION_PER_KM, rel=0.1)
        assert intercept == pytest.approx(DURATION_INTERCEPT, rel=0.2)

    def test_pair_skew(self):
        """Station pairs are skewed so the >=50 filter separates pairs."""
        stations = generate_stations(40)
        trips = generate_trips(20_000, stations)
        pairs = list(zip(trips.column("start_station").python_values(),
                         trips.column("end_station").python_values()))
        counts = {}
        for p in pairs:
            counts[p] = counts.get(p, 0) + 1
        values = sorted(counts.values(), reverse=True)
        assert values[0] > 20 * values[-1]

    def test_numeric_trips_projection(self):
        stations = generate_stations(10)
        numeric = generate_numeric_trips(100, stations)
        assert numeric.names == ["trip_id", "start_station",
                                 "end_station", "duration"]
        assert all(numeric.schema.dtype(n).is_numeric
                   for n in numeric.names)

    def test_distance_nonnegative(self):
        d = station_distance_km(45.5, -73.6, 45.6, -73.5)
        assert d > 0
        assert station_distance_km(45.5, -73.6, 45.5, -73.6) == 0.0


class TestDblp:
    def test_ranking_schema(self):
        ranking = generate_ranking(50)
        assert ranking.names == ["conference", "rating"]
        assert ranking.nrows == 50
        ratings = set(ranking.column("rating").python_values())
        assert ratings <= {"A++", "A+", "A", "B", "C"}
        assert "A++" in ratings  # the workload's filter must select rows

    def test_publications_wide(self):
        pubs = generate_publications(100, 8)
        assert pubs.names[0] == "author"
        assert len(pubs.names) == 9
        assert pubs.is_key(["author"])

    def test_publications_sparse_and_nonnegative(self):
        pubs = generate_publications(500, 20)
        total_cells = 500 * 20
        nonzero = sum(
            int(np.count_nonzero(pubs.column(n).tail))
            for n in pubs.names if n != "author")
        assert nonzero < total_cells * 0.5  # sparse
        assert all((pubs.column(n).tail >= 0).all()
                   for n in pubs.names if n != "author")

    def test_long_form_pivots_to_wide_shape(self):
        long_form = generate_publications_long(50, 6)
        wide = pivot_publications(long_form)
        assert wide.names[0] == "author"
        # every conference that appears becomes an attribute
        conferences = set(long_form.column("conference").python_values())
        assert conferences == set(wide.names[1:])

    def test_deterministic(self):
        a = generate_publications(50, 5, seed=12)
        b = generate_publications(50, 5, seed=12)
        assert a.same_rows(b)


class TestSynthetic:
    def test_uniform_relation(self):
        rel = uniform_relation(100, 5)
        assert rel.nrows == 100
        assert len(rel.names) == 6
        values = rel.column("x0").tail
        assert values.min() >= 0.0 and values.max() <= 10_000.0

    def test_uniform_pair_distinct_keys(self):
        r, s = uniform_pair(10, 2)
        assert r.names[0] == "id1" and s.names[0] == "id2"

    def test_sparse_pair_zero_share(self):
        r, _ = sparse_pair(10_000, 3, 0.5, seed=1)
        zero_fraction = 1 - (np.count_nonzero(r.column("x0").tail)
                             / 10_000)
        assert 0.45 < zero_fraction < 0.55

    def test_sparse_pair_extremes(self):
        dense, _ = sparse_pair(1_000, 2, 0.0)
        empty, _ = sparse_pair(1_000, 2, 1.0)
        assert np.count_nonzero(dense.column("x0").tail) == 1_000
        assert np.count_nonzero(empty.column("x0").tail) == 0

    def test_order_heavy_relation(self):
        rel = order_heavy_relation(200, 5)
        names = order_names(rel)
        assert names == ["k0", "k1", "k2", "k3", "k4"]
        assert rel.names[-1] == "value"
        assert rel.is_key(["k0"])  # first order column is unique
        assert rel.is_key(names)

    def test_order_heavy_single_column(self):
        rel = order_heavy_relation(50, 1)
        assert order_names(rel) == ["k0"]
