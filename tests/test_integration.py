"""End-to-end integration: SQL pipeline vs algebra pipeline vs numpy.

The same analysis written three ways must produce identical numbers — the
closure property that makes RMA usable as "just SQL".
"""

import numpy as np
import pytest

from repro.bat.bat import BAT, DataType
from repro.core import cpd, inv, mmu, tra
from repro.data.bixi import generate_stations, generate_trips
from repro.data.dblp import generate_publications
from repro.relational.relation import Relation
from repro.sql import Session


class TestSqlVsAlgebra:
    def test_covariance_three_ways(self):
        publications = generate_publications(300, 5, seed=12)
        names = [n for n in publications.names if n != "author"]
        n = publications.nrows

        # 1. numpy reference.
        dense = np.column_stack([publications.column(c).tail
                                 for c in names])
        centered = dense - dense.mean(axis=0)
        expected = centered.T @ centered / (n - 1)

        # 2. algebra API: tra + mmu (the paper's §5 pipeline).
        centered_rel = Relation.from_columns(
            {"author": publications.column("author"),
             **{c: BAT(DataType.DBL,
                       publications.column(c).tail
                       - publications.column(c).tail.mean())
                for c in names}})
        transposed = tra(centered_rel, by="author")
        cov_alg = mmu(transposed, "C", centered_rel, "author")
        got_alg = np.column_stack(
            [cov_alg.sorted_by(["C"]).column(c).tail for c in names])
        got_alg /= (n - 1)
        # rows sorted by C == alphabetical conference names == `names`
        assert np.allclose(got_alg, expected)

        # 3. cpd (symmetric fast path) matches too.
        cov_cpd = cpd(centered_rel, "author", centered_rel, "author")
        got_cpd = np.column_stack(
            [cov_cpd.sorted_by(["C"]).column(c).tail for c in names])
        assert np.allclose(got_cpd / (n - 1), expected)

        # 4. the SQL front end.
        session = Session()
        session.register("pubs", centered_rel)
        cov_sql = session.execute(
            "SELECT * FROM MMU(TRA(pubs BY author) BY C, pubs BY author)")
        got_sql = np.column_stack(
            [cov_sql.sorted_by(["C"]).column(c).tail for c in names])
        assert np.allclose(got_sql / (n - 1), expected)

    def test_sql_workload_matches_algebra_workload(self):
        """The trips OLS through SQL equals the workload-module result."""
        from repro.workloads.trips_olr import (
            TripsDataset,
            engine_prepare,
            run_rma,
        )
        stations = generate_stations(20, seed=1)
        trips = generate_trips(4_000, stations, seed=2)
        dataset = TripsDataset(trips, stations, 2014, 2017, min_count=5)
        expected = np.asarray(run_rma(dataset, "mkl").signature).ravel()

        prepared = engine_prepare(dataset)
        a = Relation.from_columns({
            "trip_id": prepared.column("trip_id"),
            "const": BAT(DataType.DBL, np.ones(prepared.nrows)),
            "distance": prepared.column("distance")})
        v = Relation.from_columns({
            "trip_id": prepared.column("trip_id"),
            "duration": prepared.column("duration").cast(DataType.DBL)})
        session = Session()
        session.register("a", a)
        session.register("v", v)
        session.execute("CREATE TABLE xtx AS SELECT * FROM "
                        "CPD(a BY trip_id, a BY trip_id)")
        session.execute("CREATE TABLE xty AS SELECT * FROM "
                        "CPD(a BY trip_id, v BY trip_id)")
        beta = session.execute(
            "SELECT * FROM MMU(INV(xtx BY C) BY C, xty BY C)")
        got = beta.column("duration").tail
        assert np.allclose(got, expected)

    def test_inverse_roundtrip_through_sql(self, ratings):
        session = Session()
        session.register("rating", ratings)
        session.execute("CREATE TABLE inv_r AS "
                        "SELECT * FROM INV(rating BY User)")
        identity = session.execute(
            "SELECT * FROM MMU(inv_r BY User, rating BY User)")
        got = np.column_stack(
            [identity.sorted_by(["User"]).column(c).tail
             for c in ["Balto", "Heat", "Net"]])
        assert np.allclose(got, np.eye(3), atol=1e-10)


class TestScaleSmoke:
    def test_moderate_scale_pipeline(self):
        """A 50k-row mixed pipeline runs end to end in one session."""
        stations = generate_stations(30, seed=1)
        trips = generate_trips(50_000, stations, seed=2)
        session = Session()
        session.register("trips", trips)
        session.register("stations", stations)
        out = session.execute(
            "SELECT s.name, COUNT(*) AS n, AVG(duration) AS avg_dur "
            "FROM trips JOIN stations AS s "
            "ON trips.start_station = s.code "
            "WHERE is_member = TRUE "
            "GROUP BY s.name HAVING COUNT(*) >= 10 "
            "ORDER BY n DESC LIMIT 5")
        assert 0 < out.nrows <= 5
        counts = [r[1] for r in out.to_rows()]
        assert counts == sorted(counts, reverse=True)
