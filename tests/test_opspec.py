"""The operation table must match the paper's Tables 1 and 2 exactly
(modulo the documented vsv deviation)."""

import pytest

from repro.opspec import LINEAR_OPS, OP_NAMES, OPS, SortClass, spec_of


class TestCompleteness:
    def test_all_19_operations(self):
        expected = {"emu", "mmu", "opd", "cpd", "add", "sub", "tra",
                    "sol", "inv", "evc", "evl", "qqr", "rqr", "dsv",
                    "usv", "vsv", "det", "rnk", "chf"}
        assert set(OP_NAMES) == expected
        assert len(OP_NAMES) == 19

    def test_lookup_case_insensitive(self):
        assert spec_of("INV") is OPS["inv"]

    def test_unknown_lists_known(self):
        with pytest.raises(KeyError, match="add"):
            spec_of("nope")


class TestShapeTypesMatchPaperTable2:
    CASES = {
        "usv": ("r1", "r1"),
        "opd": ("r1", "r2"),
        "inv": ("r1", "c1"), "evc": ("r1", "c1"), "chf": ("r1", "c1"),
        "qqr": ("r1", "c1"),
        "mmu": ("r1", "c2"),
        "evl": ("r1", "1"),
        "tra": ("c1", "r1"),
        "rqr": ("c1", "c1"), "dsv": ("c1", "c1"),
        "cpd": ("c1", "c2"), "sol": ("c1", "c2"),
        "emu": ("r*", "c*"), "add": ("r*", "c*"), "sub": ("r*", "c*"),
        "det": ("1", "1"), "rnk": ("1", "1"),
    }

    @pytest.mark.parametrize("op,shape", sorted(CASES.items()))
    def test_shape_type(self, op, shape):
        assert spec_of(op).shape_type == shape

    def test_vsv_documented_deviation(self):
        # Paper prints (r1,1); we type it (c1,c1) — see opspec docstring.
        assert spec_of("vsv").shape_type == ("c1", "c1")


class TestArity:
    def test_binary_ops(self):
        binary = {name for name, spec in OPS.items() if spec.arity == 2}
        assert binary == {"add", "sub", "emu", "mmu", "opd", "cpd", "sol"}

    def test_unary_flag(self):
        assert spec_of("tra").unary
        assert not spec_of("mmu").unary


class TestPreconditions:
    def test_square_ops(self):
        square = {name for name, spec in OPS.items() if spec.square}
        assert square == {"inv", "evc", "evl", "chf", "det"}

    def test_column_cast_requirements(self):
        # Operations whose result names come from ▽ need |U| = 1.
        assert spec_of("tra").order_card_one == (1,)
        assert spec_of("usv").order_card_one == (1,)
        assert spec_of("opd").order_card_one == (2,)

    def test_elementwise_same_shape(self):
        for op in ("add", "sub", "emu"):
            assert spec_of(op).same_shape

    def test_mmu_inner_dims(self):
        assert spec_of("mmu").inner_dims


class TestPolicyClassification:
    def test_linear_ops_exactly(self):
        # §8.6: "We execute linear operations (add, sub, emu) on BATs".
        assert LINEAR_OPS == {"add", "sub", "emu"}

    def test_sort_classes_cover_all_ops(self):
        assert all(isinstance(spec.sort_class, SortClass)
                   for spec in OPS.values())
