"""Shared fixtures: the paper's running examples."""

from __future__ import annotations

import numpy as np
import pytest

from repro.relational import Relation


@pytest.fixture
def weather():
    """Relation r of Fig. 2: (T, H, W) with T a key."""
    return Relation.from_rows(
        ["T", "H", "W"],
        [("5am", 1.0, 3.0), ("8am", 8.0, 5.0),
         ("7am", 6.0, 7.0), ("6am", 1.0, 4.0)])


@pytest.fixture
def users():
    """Relation u of Fig. 5 (users)."""
    return Relation.from_rows(
        ["User", "State", "YoB"],
        [("Ann", "CA", 1980), ("Tom", "FL", 1965), ("Jan", "CA", 1970)])


@pytest.fixture
def films():
    """Relation f of Fig. 5 (films)."""
    return Relation.from_rows(
        ["Title", "RelY", "Director"],
        [("Heat", 1995, "Lee"), ("Balto", 1995, "Lee"),
         ("Net", 1995, "Smith")])


@pytest.fixture
def ratings():
    """Relation r of Fig. 5 (ratings)."""
    return Relation.from_rows(
        ["User", "Balto", "Heat", "Net"],
        [("Ann", 2.0, 1.5, 0.5), ("Tom", 0.0, 0.0, 1.5),
         ("Jan", 1.0, 4.0, 1.0)])


@pytest.fixture
def rng():
    return np.random.default_rng(42)
