"""Smoke tests: every example script must run end to end.

The examples double as documentation; each contains its own assertions
(recovered coefficients, verified origins, expected schemas), so running
their mains is a meaningful integration check.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str] | None = None) -> None:
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_examples_directory_complete():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert {"quickstart.py", "film_similarity.py", "bixi_regression.py",
            "dblp_conferences.py", "weather_origins.py"} <= scripts


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "INV(rating BY User)" in out
    assert "agree" in out


def test_film_similarity(capsys):
    run_example("film_similarity.py")
    out = capsys.readouterr().out
    assert "covariance" in out
    assert "Balto" in out


def test_bixi_regression(capsys):
    run_example("bixi_regression.py", ["20000"])
    out = capsys.readouterr().out
    assert "recovered" in out and "ground truth" in out


def test_dblp_conferences(capsys):
    run_example("dblp_conferences.py")
    out = capsys.readouterr().out
    assert "A++" in out
    assert "covariance" in out


def test_weather_origins(capsys):
    run_example("weather_origins.py")
    out = capsys.readouterr().out
    assert "origins verified" in out
