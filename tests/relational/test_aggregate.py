"""Tests for grouped aggregation, including brute-force equivalence."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlanError, RelationError
from repro.relational import AggregateSpec, Relation, group_by


class TestSpecValidation:
    def test_unknown_function(self):
        with pytest.raises(PlanError):
            AggregateSpec("median", "x", "m")

    def test_star_only_for_count(self):
        with pytest.raises(PlanError):
            AggregateSpec("sum", "*", "s")


class TestGlobalAggregates:
    def test_count_star(self, users):
        out = group_by(users, [], [AggregateSpec("count", "*", "n")])
        assert out.to_rows() == [(3,)]

    def test_sum_avg(self, users):
        out = group_by(users, [], [AggregateSpec("sum", "YoB", "s"),
                                   AggregateSpec("avg", "YoB", "a")])
        assert out.to_rows() == [(1980 + 1965 + 1970,
                                  (1980 + 1965 + 1970) / 3)]

    def test_empty_input(self):
        rel = Relation.from_columns({"x": []})
        out = group_by(rel, [], [AggregateSpec("count", "*", "n"),
                                 AggregateSpec("sum", "x", "s")])
        assert out.to_rows() == [(0, None)]

    def test_min_max_int_stays_int(self, users):
        out = group_by(users, [], [AggregateSpec("min", "YoB", "lo"),
                                   AggregateSpec("max", "YoB", "hi")])
        assert out.to_rows() == [(1965, 1980)]


class TestGroupedAggregates:
    def test_group_by_state(self, users):
        out = group_by(users, ["State"],
                       [AggregateSpec("count", "*", "n"),
                        AggregateSpec("avg", "YoB", "avg_yob")])
        rows = {r[0]: (r[1], r[2]) for r in out.to_rows()}
        assert rows == {"CA": (2, 1975.0), "FL": (1, 1965.0)}

    def test_min_max_strings(self, users):
        out = group_by(users, ["State"],
                       [AggregateSpec("min", "User", "first"),
                        AggregateSpec("max", "User", "last")])
        rows = {r[0]: (r[1], r[2]) for r in out.to_rows()}
        assert rows == {"CA": ("Ann", "Jan"), "FL": ("Tom", "Tom")}

    def test_count_skips_nulls(self):
        rel = Relation.from_columns({"g": ["a", "a", "b"],
                                     "x": [1.0, None, 2.0]})
        out = group_by(rel, ["g"], [AggregateSpec("count", "x", "n")])
        rows = dict(out.to_rows())
        assert rows == {"a": 1, "b": 1}

    def test_var_std(self):
        rel = Relation.from_columns({"g": ["a"] * 4,
                                     "x": [1.0, 2.0, 3.0, 4.0]})
        out = group_by(rel, ["g"], [AggregateSpec("var", "x", "v"),
                                    AggregateSpec("std", "x", "s")])
        row = out.to_rows()[0]
        expected_var = 5.0 / 3.0
        assert row[1] == pytest.approx(expected_var)
        assert row[2] == pytest.approx(math.sqrt(expected_var))

    def test_sum_non_numeric_rejected(self, users):
        with pytest.raises(RelationError):
            group_by(users, [], [AggregateSpec("sum", "State", "s")])

    def test_multi_key_grouping(self):
        rel = Relation.from_columns({
            "a": [1, 1, 2, 1], "b": ["x", "x", "x", "y"],
            "v": [1.0, 2.0, 4.0, 8.0]})
        out = group_by(rel, ["a", "b"], [AggregateSpec("sum", "v", "s")])
        rows = {(r[0], r[1]): r[2] for r in out.to_rows()}
        assert rows == {(1, "x"): 3.0, (2, "x"): 4.0, (1, "y"): 8.0}


@given(st.lists(st.tuples(st.integers(0, 4),
                          st.floats(min_value=-100, max_value=100,
                                    allow_nan=False)),
                min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_grouped_sum_matches_brute_force(pairs):
    rel = Relation.from_columns({"g": [p[0] for p in pairs],
                                 "x": [p[1] for p in pairs]})
    out = group_by(rel, ["g"], [AggregateSpec("sum", "x", "s"),
                                AggregateSpec("count", "*", "n")])
    expected_sum: dict[int, float] = {}
    expected_count: dict[int, int] = {}
    for g, x in pairs:
        expected_sum[g] = expected_sum.get(g, 0.0) + x
        expected_count[g] = expected_count.get(g, 0) + 1
    rows = {r[0]: (r[1], r[2]) for r in out.to_rows()}
    assert set(rows) == set(expected_sum)
    for g in expected_sum:
        assert rows[g][0] == pytest.approx(expected_sum[g], abs=1e-6)
        assert rows[g][1] == expected_count[g]
