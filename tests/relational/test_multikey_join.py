"""Composite-key merge join: bit-identity with the hash path + fallbacks."""

import numpy as np
import pytest

from repro.bat.bat import BAT, DataType
from repro.bat.properties import use_properties
from repro.relational.joins import (
    join_positions,
    lex_sorted,
    merge_join_positions,
)


def lex_sorted_pair(n: int, seed: int, majors: int = 20,
                    minors: int = 5) -> list[BAT]:
    rng = np.random.default_rng(seed)
    major = np.sort(rng.integers(0, majors, n))
    minor = np.concatenate([
        np.sort(rng.integers(0, minors, int(np.sum(major == v))))
        for v in np.unique(major)]) if n else np.empty(0, dtype=np.int64)
    return [BAT(DataType.INT, major.astype(np.int64)),
            BAT(DataType.INT, minor.astype(np.int64))]


def assert_same(a, b):
    assert np.array_equal(a[0], b[0])
    assert np.array_equal(a[1], b[1])


class TestLexSorted:
    def test_single_column_uses_tsorted(self):
        sorted_col = BAT(DataType.INT, np.array([1, 2, 3], dtype=np.int64))
        assert lex_sorted([sorted_col])
        unsorted = BAT(DataType.INT, np.array([2, 1, 3], dtype=np.int64))
        assert not lex_sorted([unsorted])

    def test_composite_sorted(self):
        keys = lex_sorted_pair(100, seed=0)
        assert lex_sorted(keys)

    def test_composite_minor_violation(self):
        major = BAT(DataType.INT, np.array([0, 0, 1], dtype=np.int64))
        minor = BAT(DataType.INT, np.array([2, 1, 0], dtype=np.int64))
        assert not lex_sorted([major, minor])

    def test_unique_major_ignores_minor(self):
        # Strictly increasing major: ties never reach the minor column.
        major = BAT(DataType.INT, np.array([0, 1, 2], dtype=np.int64))
        minor = BAT(DataType.INT, np.array([9, 1, 5], dtype=np.int64))
        assert lex_sorted([major, minor])

    def test_dbl_nan_rejected(self):
        major = BAT(DataType.DBL, np.array([0.0, 1.0, np.nan]))
        minor = BAT(DataType.DBL, np.array([0.0, 1.0, 2.0]))
        assert not lex_sorted([major, minor])

    def test_empty_and_singleton(self):
        empty = BAT(DataType.INT, np.empty(0, dtype=np.int64))
        assert lex_sorted([empty, empty])
        one = BAT(DataType.INT, np.array([4], dtype=np.int64))
        assert lex_sorted([one, one])


class TestMultiKeyMerge:
    @pytest.mark.parametrize("how", ["inner", "left"])
    def test_matches_hash_path(self, how):
        left = lex_sorted_pair(300, seed=1)
        right = lex_sorted_pair(250, seed=2)
        assert_same(join_positions(left, right, how),
                    merge_join_positions(left, right, how))

    @pytest.mark.parametrize("how", ["inner", "left"])
    def test_disjoint_and_empty_sides(self, how):
        left = lex_sorted_pair(50, seed=3)
        empty = [BAT(DataType.INT, np.empty(0, dtype=np.int64)),
                 BAT(DataType.INT, np.empty(0, dtype=np.int64))]
        assert_same(join_positions(left, empty, how),
                    merge_join_positions(left, empty, how))

    def test_three_key_composite(self):
        rng = np.random.default_rng(4)
        n = 200

        def keys(seed):
            r = np.random.default_rng(seed)
            rows = sorted(tuple(r.integers(0, 4, 3)) for _ in range(n))
            cols = np.array(rows, dtype=np.int64)
            return [BAT(DataType.INT, np.ascontiguousarray(cols[:, i]))
                    for i in range(3)]

        left, right = keys(5), keys(6)
        assert lex_sorted(left) and lex_sorted(right)
        assert_same(join_positions(left, right, "inner"),
                    merge_join_positions(left, right, "inner"))

    def test_mixed_int_dbl_composite(self):
        major = np.array([0, 0, 1, 1], dtype=np.int64)
        left = [BAT(DataType.INT, major),
                BAT(DataType.DBL, np.array([0.5, 1.5, 0.0, 2.0]))]
        sorted_right = [BAT(DataType.INT, major),
                        BAT(DataType.DBL, np.array([1.5, 2.5, 0.0, 0.5]))]
        assert lex_sorted(left) and lex_sorted(sorted_right)
        assert_same(join_positions(left, sorted_right, "inner"),
                    merge_join_positions(left, sorted_right, "inner"))
        # Minor decreasing inside the second tie group: not lex sorted,
        # falls back to hash — results still match exactly.
        bad_right = [BAT(DataType.INT, major),
                     BAT(DataType.DBL, np.array([1.5, 2.5, 0.5, 0.0]))]
        assert not lex_sorted(bad_right)
        assert_same(join_positions(left, bad_right, "inner"),
                    merge_join_positions(left, bad_right, "inner"))

    def test_unsorted_falls_back_to_hash(self):
        left = lex_sorted_pair(100, seed=7)
        shuffled = [BAT(DataType.INT,
                        np.random.default_rng(8).permutation(80)
                        .astype(np.int64)),
                    BAT(DataType.INT,
                        np.random.default_rng(9).integers(0, 5, 80)
                        .astype(np.int64))]
        assert_same(join_positions(left, shuffled, "inner"),
                    merge_join_positions(left, shuffled, "inner"))

    def test_str_keys_stay_on_hash_path(self):
        left = [BAT(DataType.STR, np.array(["a", "b"], dtype=object)),
                BAT(DataType.INT, np.array([1, 2], dtype=np.int64))]
        right = [BAT(DataType.STR, np.array(["a", "b"], dtype=object)),
                 BAT(DataType.INT, np.array([1, 2], dtype=np.int64))]
        assert_same(join_positions(left, right, "inner"),
                    merge_join_positions(left, right, "inner"))

    def test_properties_disabled_uses_hash(self):
        left = lex_sorted_pair(60, seed=10)
        right = lex_sorted_pair(60, seed=11)
        with use_properties(False):
            assert_same(join_positions(left, right, "inner"),
                        merge_join_positions(left, right, "inner"))

    def test_duplicate_heavy_groups(self):
        # All-equal keys: the full cross product must match.
        left = [BAT(DataType.INT, np.zeros(4, dtype=np.int64)),
                BAT(DataType.INT, np.zeros(4, dtype=np.int64))]
        right = [BAT(DataType.INT, np.zeros(3, dtype=np.int64)),
                 BAT(DataType.INT, np.zeros(3, dtype=np.int64))]
        lpos, rpos = merge_join_positions(left, right, "inner")
        assert len(lpos) == 12
        assert_same(join_positions(left, right, "inner"), (lpos, rpos))
