"""Tests for the Relation type."""

import numpy as np
import pytest

from repro.bat.bat import BAT, DataType
from repro.errors import AlignmentError, SchemaError
from repro.relational import Relation
from repro.relational.schema import Attribute, Schema


class TestConstruction:
    def test_from_columns(self):
        rel = Relation.from_columns({"a": [1, 2], "b": ["x", "y"]})
        assert rel.names == ["a", "b"]
        assert rel.nrows == 2
        assert rel.schema.dtype("b") is DataType.STR

    def test_from_rows(self, weather):
        assert weather.nrows == 4
        assert weather.names == ["T", "H", "W"]

    def test_from_columns_with_numpy(self):
        rel = Relation.from_columns({"a": np.arange(3)})
        assert rel.column("a").dtype is DataType.INT

    def test_from_columns_with_bat(self):
        rel = Relation.from_columns({"a": BAT.from_values([1.5])})
        assert rel.schema.dtype("a") is DataType.DBL

    def test_explicit_types(self):
        rel = Relation.from_columns({"a": [1, 2]}, {"a": DataType.DBL})
        assert rel.schema.dtype("a") is DataType.DBL

    def test_empty(self):
        rel = Relation.empty(Schema.of(("a", DataType.INT)))
        assert rel.nrows == 0

    def test_misaligned_rejected(self):
        schema = Schema.of(("a", DataType.INT), ("b", DataType.INT))
        with pytest.raises(AlignmentError):
            Relation(schema, [BAT.from_values([1]),
                              BAT.from_values([1, 2])])

    def test_type_mismatch_rejected(self):
        schema = Schema.of(("a", DataType.STR))
        with pytest.raises(SchemaError):
            Relation(schema, [BAT.from_values([1])])

    def test_wrong_column_count_rejected(self):
        schema = Schema.of(("a", DataType.INT))
        with pytest.raises(SchemaError):
            Relation(schema, [])


class TestAccess:
    def test_column_and_row(self, weather):
        assert weather.column("H").python_values() == [1.0, 8.0, 6.0, 1.0]
        assert weather.row(1) == ("8am", 8.0, 5.0)

    def test_to_rows(self, users):
        rows = users.to_rows()
        assert ("Tom", "FL", 1965) in rows

    def test_to_dict(self, users):
        assert users.to_dict()["State"] == ["CA", "FL", "CA"]

    def test_bats_order(self, weather):
        bats = weather.bats(["W", "T"])
        assert bats[0].python_values()[0] == 3.0
        assert bats[1].python_values()[0] == "5am"

    def test_numeric_attribute_names(self, weather):
        assert weather.numeric_attribute_names() == ["H", "W"]


class TestStructure:
    def test_replace_columns(self, weather):
        doubled = weather.replace_columns(
            H=BAT.from_values([2.0, 16.0, 12.0, 2.0]))
        assert doubled.column("H").python_values()[1] == 16.0
        # original untouched
        assert weather.column("H").python_values()[1] == 8.0

    def test_is_key(self, weather):
        assert weather.is_key(["T"])
        assert not weather.is_key(["H"])
        assert weather.is_key(["H", "W"])

    def test_sorted_by(self, weather):
        ordered = weather.sorted_by(["T"])
        assert ordered.column("T").python_values() == [
            "5am", "6am", "7am", "8am"]
        assert ordered.column("H").python_values() == [1.0, 1.0, 6.0, 8.0]

    def test_sort_positions_example_3_1(self, weather):
        # Example 3.1: third tuple sorted by V... adapted: sorted by H the
        # third tuple (stable) is (7am, 6, 7) -> index 2 of storage.
        positions = weather.sort_positions(["H"])
        assert weather.row(int(positions[2])) == ("7am", 6.0, 7.0)


class TestComparison:
    def test_same_rows_ignores_order(self, users):
        shuffled = Relation.from_rows(
            ["User", "State", "YoB"],
            [("Jan", "CA", 1970), ("Ann", "CA", 1980),
             ("Tom", "FL", 1965)])
        assert users.same_rows(shuffled)

    def test_same_rows_detects_difference(self, users):
        other = Relation.from_rows(
            ["User", "State", "YoB"],
            [("Jan", "CA", 1970), ("Ann", "CA", 1980),
             ("Tom", "FL", 1900)])
        assert not users.same_rows(other)

    def test_same_rows_tolerates_float_noise(self):
        a = Relation.from_columns({"x": [1.0]})
        b = Relation.from_columns({"x": [1.0 + 1e-12]})
        assert a.same_rows(b)


class TestDisplay:
    def test_pretty_contains_values(self, users):
        text = users.pretty()
        assert "User" in text and "Ann" in text

    def test_pretty_truncates(self):
        rel = Relation.from_columns({"x": list(range(100))})
        assert "100 rows total" in rel.pretty(max_rows=5)

    def test_repr(self, users):
        assert "3 rows" in repr(users)
