"""Tests for schemas and attributes."""

import pytest

from repro.bat.bat import DataType
from repro.errors import SchemaError
from repro.relational.schema import Attribute, Schema


class TestAttribute:
    def test_basic(self):
        attr = Attribute("H", DataType.DBL)
        assert str(attr) == "H double"

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("", DataType.INT)

    def test_bad_type_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("x", "int")

    def test_renamed(self):
        attr = Attribute("a", DataType.INT).renamed("b")
        assert attr.name == "b"
        assert attr.dtype is DataType.INT


class TestSchema:
    def test_ordered_names(self):
        schema = Schema.of(("T", DataType.STR), ("H", DataType.INT))
        assert schema.names == ["T", "H"]
        assert len(schema) == 2

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of(("a", DataType.INT), ("a", DataType.INT))

    def test_index_and_lookup(self):
        schema = Schema.of(("a", DataType.INT), ("b", DataType.STR))
        assert schema.index("b") == 1
        assert schema["b"].dtype is DataType.STR
        assert schema[0].name == "a"
        assert "a" in schema and "z" not in schema

    def test_unknown_attribute(self):
        schema = Schema.of(("a", DataType.INT))
        with pytest.raises(SchemaError):
            schema.index("z")

    def test_project_keeps_given_order(self):
        schema = Schema.of(("a", DataType.INT), ("b", DataType.INT),
                           ("c", DataType.INT))
        assert schema.project(["c", "a"]).names == ["c", "a"]

    def test_complement_is_application_schema(self):
        # U-bar = R - U in schema order (paper §4).
        schema = Schema.of(("T", DataType.STR), ("H", DataType.DBL),
                           ("W", DataType.DBL))
        assert schema.complement(["T"]) == ["H", "W"]
        assert schema.complement(["W", "T"]) == ["H"]

    def test_complement_unknown_rejected(self):
        schema = Schema.of(("a", DataType.INT))
        with pytest.raises(SchemaError):
            schema.complement(["nope"])

    def test_rename(self):
        schema = Schema.of(("a", DataType.INT), ("b", DataType.INT))
        renamed = schema.rename({"a": "x"})
        assert renamed.names == ["x", "b"]

    def test_rename_unknown_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of(("a", DataType.INT)).rename({"z": "x"})

    def test_concat(self):
        left = Schema.of(("a", DataType.INT))
        right = Schema.of(("b", DataType.STR))
        assert left.concat(right).names == ["a", "b"]

    def test_concat_collision_rejected(self):
        left = Schema.of(("a", DataType.INT))
        with pytest.raises(SchemaError):
            left.concat(left)

    def test_union_compatible(self):
        a = Schema.of(("x", DataType.INT), ("y", DataType.DBL))
        b = Schema.of(("p", DataType.DBL), ("q", DataType.INT))
        c = Schema.of(("p", DataType.STR), ("q", DataType.INT))
        assert a.union_compatible(b)  # numeric types are compatible
        assert not a.union_compatible(c)
        assert not a.union_compatible(Schema.of(("x", DataType.INT)))

    def test_equality_and_hash(self):
        a = Schema.of(("x", DataType.INT))
        b = Schema.of(("x", DataType.INT))
        assert a == b
        assert hash(a) == hash(b)
        assert a != Schema.of(("y", DataType.INT))
