"""Tests for CSV input/output."""

import datetime as dt
import io

import pytest

from repro.bat.bat import DataType
from repro.errors import CsvError
from repro.relational import Relation, read_csv, write_csv
from repro.relational.csv_io import from_csv_text, infer_cell


class TestInferCell:
    def test_int(self):
        assert infer_cell("42") == 42

    def test_float(self):
        assert infer_cell("4.5") == 4.5

    def test_date(self):
        assert infer_cell("2014-04-15") == dt.date(2014, 4, 15)

    def test_time(self):
        assert infer_cell("08:30:15") == dt.time(8, 30, 15)

    def test_time_without_seconds(self):
        assert infer_cell("08:30") == dt.time(8, 30)

    def test_bool(self):
        assert infer_cell("true") is True
        assert infer_cell("False") is False

    def test_null(self):
        assert infer_cell("") is None
        assert infer_cell("NULL") is None

    def test_string(self):
        assert infer_cell("hello world") == "hello world"


class TestReadCsv:
    def test_basic(self):
        rel = from_csv_text("a,b\n1,x\n2,y\n")
        assert rel.names == ["a", "b"]
        assert rel.to_rows() == [(1, "x"), (2, "y")]
        assert rel.schema.dtype("a") is DataType.INT

    def test_mixed_int_float_promotes(self):
        rel = from_csv_text("a\n1\n2.5\n")
        assert rel.schema.dtype("a") is DataType.DBL

    def test_dates_and_times(self):
        rel = from_csv_text("d,t\n2014-04-15,08:30:00\n")
        assert rel.schema.dtype("d") is DataType.DATE
        assert rel.schema.dtype("t") is DataType.TIME
        assert rel.row(0) == (dt.date(2014, 4, 15), dt.time(8, 30))

    def test_explicit_types(self):
        rel = from_csv_text("a\n1\n", types={"a": DataType.STR})
        assert rel.schema.dtype("a") is DataType.STR
        assert rel.row(0) == ("1",)

    def test_nulls(self):
        rel = from_csv_text("a,b\n1,\n,x\n")
        assert rel.to_rows() == [(1, None), (None, "x")]

    def test_ragged_row_rejected(self):
        with pytest.raises(CsvError):
            from_csv_text("a,b\n1\n")

    def test_empty_input_rejected(self):
        with pytest.raises(CsvError):
            from_csv_text("")


class TestRoundTrip:
    def test_roundtrip(self, tmp_path):
        rel = Relation.from_rows(
            ["name", "score", "day"],
            [("ann", 1.5, dt.date(2020, 1, 1)),
             ("bob", 2.0, dt.date(2020, 1, 2))])
        path = tmp_path / "out.csv"
        write_csv(rel, path)
        back = read_csv(path)
        assert back.same_rows(rel)

    def test_roundtrip_stringio(self, users):
        buffer = io.StringIO()
        write_csv(users, buffer)
        buffer.seek(0)
        back = read_csv(buffer)
        assert back.same_rows(users)

    def test_null_roundtrip(self, tmp_path):
        rel = Relation.from_columns({"x": [1, None], "s": ["a", None]})
        path = tmp_path / "nulls.csv"
        write_csv(rel, path)
        assert read_csv(path).to_rows() == [(1, "a"), (None, None)]
