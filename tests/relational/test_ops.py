"""Tests for core relational operators."""

import numpy as np
import pytest

from repro.bat.bat import BAT
from repro.errors import RelationError, SchemaError
from repro.relational import (
    Relation,
    cross,
    distinct,
    extend,
    limit,
    project,
    rename,
    select_mask,
    sort,
    union_all,
)
from repro.relational.ops import select_candidates


class TestSelect:
    def test_mask(self, weather):
        out = select_mask(weather, np.array([False, True, True, False]))
        assert out.column("T").python_values() == ["8am", "7am"]

    def test_candidates(self, weather):
        out = select_candidates(weather, np.array([3, 0], dtype=np.int64))
        assert out.column("T").python_values() == ["6am", "5am"]

    def test_wrong_mask_length(self, weather):
        with pytest.raises(RelationError):
            select_mask(weather, np.array([True]))

    def test_empty_selection(self, weather):
        out = select_mask(weather, np.zeros(4, dtype=bool))
        assert out.nrows == 0
        assert out.names == weather.names


class TestProject:
    def test_reorders(self, weather):
        out = project(weather, ["W", "T"])
        assert out.names == ["W", "T"]
        assert out.row(0) == (3.0, "5am")

    def test_keeps_duplicates(self):
        rel = Relation.from_columns({"a": [1, 1], "b": [2, 3]})
        assert project(rel, ["a"]).nrows == 2


class TestExtend:
    def test_adds_column(self, weather):
        out = extend(weather, "double_h",
                     BAT.from_values([2.0, 16.0, 12.0, 2.0]))
        assert out.names[-1] == "double_h"

    def test_duplicate_name_rejected(self, weather):
        with pytest.raises(SchemaError):
            extend(weather, "H", BAT.from_values([0.0] * 4))

    def test_misaligned_rejected(self, weather):
        with pytest.raises(RelationError):
            extend(weather, "x", BAT.from_values([1.0]))


class TestRename:
    def test_rename(self, weather):
        out = rename(weather, {"T": "Time"})
        assert out.names == ["Time", "H", "W"]
        assert out.column("Time").python_values()[0] == "5am"


class TestCross:
    def test_cardinality(self, users, films):
        renamed = rename(films, {"RelY": "Year"})
        out = cross(users, renamed)
        assert out.nrows == users.nrows * films.nrows
        assert set(out.names) == {"User", "State", "YoB", "Title",
                                  "Year", "Director"}

    def test_overlap_rejected(self, users):
        with pytest.raises(SchemaError):
            cross(users, users)

    def test_pairs(self):
        a = Relation.from_columns({"x": [1, 2]})
        b = Relation.from_columns({"y": ["p", "q"]})
        rows = cross(a, b).to_rows()
        assert rows == [(1, "p"), (1, "q"), (2, "p"), (2, "q")]


class TestUnionDistinct:
    def test_union_all_keeps_duplicates(self):
        a = Relation.from_columns({"x": [1, 2]})
        b = Relation.from_columns({"x": [2]})
        assert union_all(a, b).nrows == 3

    def test_union_incompatible_rejected(self):
        a = Relation.from_columns({"x": [1]})
        b = Relation.from_columns({"x": ["s"]})
        with pytest.raises(SchemaError):
            union_all(a, b)

    def test_union_promotes_types(self):
        a = Relation.from_columns({"x": [1.5]})
        b = Relation.from_columns({"x": [2]})
        out = union_all(a, b)
        assert out.column("x").python_values() == [1.5, 2.0]

    def test_distinct(self):
        rel = Relation.from_columns({"a": [1, 1, 2, 1],
                                     "b": ["x", "x", "y", "z"]})
        out = distinct(rel)
        assert sorted(out.to_rows()) == [(1, "x"), (1, "z"), (2, "y")]

    def test_distinct_empty(self):
        rel = Relation.from_columns({"a": []})
        assert distinct(rel).nrows == 0

    def test_distinct_all_unique(self, users):
        assert distinct(users).nrows == 3


class TestLimitSort:
    def test_limit(self, weather):
        assert limit(weather, 2).nrows == 2

    def test_limit_offset(self, weather):
        out = limit(weather, 2, offset=1)
        assert out.column("T").python_values() == ["8am", "7am"]

    def test_sort_ascending(self, weather):
        out = sort(weather, ["H", "W"])
        assert out.column("H").python_values() == [1.0, 1.0, 6.0, 8.0]
        assert out.column("W").python_values() == [3.0, 4.0, 7.0, 5.0]

    def test_sort_descending(self, weather):
        out = sort(weather, ["H"], descending=[True])
        assert out.column("H").python_values()[0] == 8.0

    def test_sort_mixed_direction(self):
        rel = Relation.from_columns({"a": [1, 1, 2], "b": [5, 9, 1]})
        out = sort(rel, ["a", "b"], descending=[False, True])
        assert out.to_rows() == [(1, 9), (1, 5), (2, 1)]
