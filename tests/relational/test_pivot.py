"""Tests for PIVOT/UNPIVOT (the DBLP publication-count shape)."""

import pytest

from repro.errors import RelationError
from repro.relational import Relation, pivot
from repro.relational.pivot import unpivot


@pytest.fixture
def publications_long():
    """author x conference publication counts in long form."""
    return Relation.from_rows(
        ["author", "conf", "cnt"],
        [("ann", "SIGMOD", 2), ("ann", "VLDB", 1),
         ("bob", "SIGMOD", 3), ("cat", "ICDE", 4),
         ("cat", "SIGMOD", 1)])


class TestPivot:
    def test_shape(self, publications_long):
        out = pivot(publications_long, ["author"], "conf", "cnt")
        assert out.names == ["author", "ICDE", "SIGMOD", "VLDB"]
        assert out.nrows == 3

    def test_values_and_default(self, publications_long):
        out = pivot(publications_long, ["author"], "conf", "cnt")
        rows = {r[0]: r[1:] for r in out.to_rows()}
        assert rows["ann"] == (0.0, 2.0, 1.0)
        assert rows["bob"] == (0.0, 3.0, 0.0)
        assert rows["cat"] == (4.0, 1.0, 0.0)

    def test_duplicate_cells_summed(self):
        rel = Relation.from_rows(["a", "c", "v"],
                                 [("x", "p", 1), ("x", "p", 2)])
        out = pivot(rel, ["a"], "c", "v")
        assert out.to_rows() == [("x", 3.0)]

    def test_count_aggregate(self):
        rel = Relation.from_rows(["a", "c", "v"],
                                 [("x", "p", 10), ("x", "p", 20),
                                  ("y", "q", 5)])
        out = pivot(rel, ["a"], "c", "v", aggregate="count")
        rows = {r[0]: r[1:] for r in out.to_rows()}
        assert rows["x"] == (2.0, 0.0)
        assert rows["y"] == (0.0, 1.0)

    def test_custom_default(self, publications_long):
        out = pivot(publications_long, ["author"], "conf", "cnt",
                    default=-1.0)
        rows = {r[0]: r[1:] for r in out.to_rows()}
        assert rows["bob"] == (-1.0, 3.0, -1.0)

    def test_multi_index(self):
        rel = Relation.from_rows(
            ["a", "year", "c", "v"],
            [("x", 2020, "p", 1), ("x", 2021, "p", 2)])
        out = pivot(rel, ["a", "year"], "c", "v")
        assert out.nrows == 2

    def test_non_numeric_value_rejected(self):
        rel = Relation.from_rows(["a", "c", "v"], [("x", "p", "hello")])
        with pytest.raises(RelationError):
            pivot(rel, ["a"], "c", "v")

    def test_empty_rejected(self):
        rel = Relation.from_columns({"a": [], "c": [], "v": []})
        with pytest.raises(RelationError):
            pivot(rel, ["a"], "c", "v")

    def test_bad_aggregate_rejected(self, publications_long):
        with pytest.raises(RelationError):
            pivot(publications_long, ["author"], "conf", "cnt",
                  aggregate="median")


class TestUnpivot:
    def test_roundtrip(self, publications_long):
        wide = pivot(publications_long, ["author"], "conf", "cnt")
        long = unpivot(wide, ["author"], ["ICDE", "SIGMOD", "VLDB"],
                       var_name="conf", value_name="cnt")
        assert long.nrows == 9  # 3 authors x 3 conferences
        rows = {(r[0], r[1]): r[2] for r in long.to_rows()}
        assert rows[("ann", "SIGMOD")] == 2.0
        assert rows[("bob", "VLDB")] == 0.0

    def test_requires_value_columns(self, publications_long):
        wide = pivot(publications_long, ["author"], "conf", "cnt")
        with pytest.raises(RelationError):
            unpivot(wide, ["author"], [])
