"""Join tests, including property-based equivalence with a brute-force join."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bat.bat import BAT
from repro.errors import RelationError, SchemaError
from repro.relational import Relation, join
from repro.relational.joins import factorize, factorize_pair, join_positions


class TestFactorize:
    def test_equal_rows_equal_codes(self):
        a = BAT.from_values([1, 2, 1])
        b = BAT.from_values(["x", "y", "x"])
        codes = factorize([a, b])
        assert codes[0] == codes[2]
        assert codes[0] != codes[1]

    def test_pair_shares_code_space(self):
        left = [BAT.from_values([1, 2])]
        right = [BAT.from_values([2, 3])]
        lcodes, rcodes = factorize_pair(left, right)
        assert lcodes[1] == rcodes[0]
        assert lcodes[0] != rcodes[1]

    def test_numeric_cross_type(self):
        left = [BAT.from_values([1, 2])]
        right = [BAT.from_values([2.0, 9.0])]
        lcodes, rcodes = factorize_pair(left, right)
        assert lcodes[1] == rcodes[0]

    def test_incompatible_types_rejected(self):
        with pytest.raises(RelationError):
            factorize_pair([BAT.from_values(["a"])],
                           [BAT.from_values([1])])

    def test_empty_list_rejected(self):
        with pytest.raises(RelationError):
            factorize([])


def brute_force_inner(left_keys, right_keys):
    pairs = []
    for i, lk in enumerate(left_keys):
        for j, rk in enumerate(right_keys):
            if lk == rk:
                pairs.append((i, j))
    return sorted(pairs)


class TestJoinPositions:
    def test_inner_with_duplicates(self):
        left = [BAT.from_values([1, 2, 2])]
        right = [BAT.from_values([2, 2, 3])]
        lpos, rpos = join_positions(left, right)
        assert brute_force_inner([1, 2, 2], [2, 2, 3]) == \
            sorted(zip(lpos.tolist(), rpos.tolist()))

    def test_left_join_unmatched(self):
        left = [BAT.from_values([1, 5])]
        right = [BAT.from_values([1])]
        lpos, rpos = join_positions(left, right, how="left")
        assert list(lpos) == [0, 1]
        assert list(rpos) == [0, -1]

    def test_unsupported_kind(self):
        with pytest.raises(RelationError):
            join_positions([BAT.from_values([1])],
                           [BAT.from_values([1])], how="full")

    @given(st.lists(st.integers(0, 8), min_size=0, max_size=30),
           st.lists(st.integers(0, 8), min_size=0, max_size=30))
    @settings(max_examples=80, deadline=None)
    def test_matches_brute_force(self, lvals, rvals):
        if not lvals or not rvals:
            return
        left = [BAT.from_values(lvals)]
        right = [BAT.from_values(rvals)]
        lpos, rpos = join_positions(left, right)
        assert sorted(zip(lpos.tolist(), rpos.tolist())) == \
            brute_force_inner(lvals, rvals)

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=20),
           st.lists(st.integers(0, 5), min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_left_join_covers_all_left_rows(self, lvals, rvals):
        left = [BAT.from_values(lvals)]
        right = [BAT.from_values(rvals)]
        lpos, rpos = join_positions(left, right, how="left")
        rset = set(rvals)
        for i, v in enumerate(lvals):
            if v not in rset:
                assert (i in lpos.tolist())
        # every left row appears at least once
        assert set(lpos.tolist()) == set(range(len(lvals)))


class TestJoinRelation:
    def test_basic(self, users, ratings):
        renamed = Relation.from_columns(
            {"U2": ratings.column("User"), "Heat": ratings.column("Heat")})
        out = join(users, renamed, ["User"], ["U2"], drop_right_keys=True)
        rows = {r[0]: r[3] for r in out.to_rows()}
        assert rows == {"Ann": 1.5, "Tom": 0.0, "Jan": 4.0}

    def test_multi_key(self):
        a = Relation.from_columns({"k1": [1, 1, 2], "k2": ["x", "y", "x"],
                                   "v": [10, 20, 30]})
        b = Relation.from_columns({"j1": [1, 2], "j2": ["y", "x"],
                                   "w": [100, 200]})
        out = join(a, b, ["k1", "k2"], ["j1", "j2"], drop_right_keys=True)
        assert sorted(out.to_rows()) == [(1, "y", 20, 100),
                                         (2, "x", 30, 200)]

    def test_left_join_nulls(self):
        a = Relation.from_columns({"k": [1, 9], "v": [1.0, 2.0]})
        b = Relation.from_columns({"j": [1], "w": ["hit"]})
        out = join(a, b, ["k"], ["j"], how="left", drop_right_keys=True)
        rows = dict((r[0], r[2]) for r in out.to_rows())
        assert rows == {1: "hit", 9: None}

    def test_name_clash_rejected(self, users, ratings):
        with pytest.raises(SchemaError):
            join(users, ratings, ["User"], ["User"])

    def test_name_clash_avoided_by_dropping_keys(self, users, ratings):
        out = join(users, ratings, ["User"], ["User"],
                   drop_right_keys=True)
        assert out.nrows == 3
