"""Physical planner and executor: CSE, join strategy, order metadata,
and the warm-order seeding of derived relations (merge_result)."""

import numpy as np
import pytest

from repro.bat.bat import BAT, DataType
from repro.bat.catalog import Catalog
from repro.bat.properties import use_properties
from repro.core.ops import execute_rma
from repro.plan import nodes
from repro.plan.lazy import scan
from repro.plan.optimizer import optimize
from repro.plan.physical import Executor, plan_physical
from repro.relational import joins as rel_join
from repro.relational.relation import Relation
from repro.sql import Session
from repro.sql.logical import build_select
from repro.sql.parser import parse_sql


def find_nodes(plan, kind):
    return [n for n in nodes.walk_plan(plan) if isinstance(n, kind)]


def square_relation(n=4, seed=9):
    rng = np.random.default_rng(seed)
    matrix = rng.uniform(1.0, 9.0, (n, n)) + n * np.eye(n)
    data = {"key": [f"k{i:03d}" for i in range(n)]}
    for j in range(n):
        data[f"x{j}"] = matrix[:, j]
    return Relation.from_columns(data)


# -- common-subexpression elimination ------------------------------------------


class TestCse:
    def test_repeated_rma_subplan_runs_once(self):
        rel = square_relation()
        frame = scan(rel).rma("inv", by="key")
        pipe = frame.rma("mmu", by="key", other=frame, other_by="key")
        plan = optimize(pipe.plan, Catalog(), keep_all=True)
        executor = Executor(Catalog())
        result = executor.run(plan).to_plain_relation()
        assert executor.stats.cse_hits == 1
        assert result.nrows == rel.nrows

    def test_cse_ignores_alias_difference(self):
        rel = square_relation()
        a = scan(rel).rma("inv", by="key", alias="a")
        b = scan(rel).rma("inv", by="key", alias="b")
        pipe = a.rma("mmu", by="key", other=b, other_by="key")
        executor = Executor(Catalog())
        executor.run(pipe.plan)
        assert executor.stats.cse_hits == 1

    def test_distinct_subplans_not_shared(self):
        r1, r2 = square_relation(seed=1), square_relation(seed=2)
        pipe = scan(r1).rma("inv", by="key").rma(
            "mmu", by="key", other=scan(r2).rma("inv", by="key"),
            other_by="key")
        executor = Executor(Catalog())
        executor.run(pipe.plan)
        assert executor.stats.cse_hits == 0

    def test_cse_disabled(self):
        rel = square_relation()
        frame = scan(rel).rma("inv", by="key")
        pipe = frame.rma("mmu", by="key", other=frame, other_by="key")
        executor = Executor(Catalog(), cse=False)
        executor.run(pipe.plan)
        assert executor.stats.cse_hits == 0

    def test_deep_diamond_plans_and_executes_linearly(self):
        # Reusing a frame on both sides of every step makes 2^30 structural
        # occurrences; cached node hashes + the id-deduplicated walk and
        # the executor memo must keep this linear in distinct nodes.
        rel = square_relation(3)
        pipe = scan(rel).rma("inv", by="key")
        for _ in range(30):
            pipe = pipe.rma("mmu", by="key", other=pipe, other_by="key")
        info = plan_physical(pipe.plan, Catalog())
        executor = Executor(Catalog(), physical=info)
        result = executor.run(pipe.plan).to_plain_relation()
        assert executor.stats.cse_hits == 30
        assert result.nrows == rel.nrows

    def test_planner_marks_shared_subplans(self):
        rel = square_relation()
        frame = scan(rel).rma("inv", by="key")
        pipe = frame.rma("mmu", by="key", other=frame, other_by="key")
        info = plan_physical(pipe.plan, Catalog())
        assert any(count == 2 for count in info.shared.values())

    def test_sql_repeated_rma_shares(self, ):
        session = Session()
        session.register("m", square_relation())
        sql = ("SELECT a.x0 FROM INV(m BY key) AS a "
               "CROSS JOIN INV(m BY key) AS b")
        info = session.physical_info(sql)
        assert any(count == 2 for count in info.shared.values())


# -- merge join ----------------------------------------------------------------


def int_bat(values):
    return BAT(DataType.INT, np.asarray(values, dtype=np.int64))


class TestMergeJoin:
    @pytest.mark.parametrize("how", ["inner", "left"])
    def test_matches_hash_join_on_sorted_keys(self, how):
        left = int_bat([1, 2, 2, 4, 7, 9])
        right = int_bat([2, 2, 3, 4, 4, 8, 9])
        merged = rel_join.merge_join_positions([left], [right], how=how)
        hashed = rel_join.join_positions([left], [right], how=how)
        assert np.array_equal(merged[0], hashed[0])
        assert np.array_equal(merged[1], hashed[1])

    def test_unsorted_input_falls_back(self):
        left = int_bat([3, 1, 2])
        right = int_bat([2, 1, 3])
        merged = rel_join.merge_join_positions([left], [right])
        hashed = rel_join.join_positions([left], [right])
        assert np.array_equal(merged[0], hashed[0])
        assert np.array_equal(merged[1], hashed[1])

    def test_dbl_sorted_keys(self):
        left = BAT(DataType.DBL, np.array([0.5, 1.5, 2.5]))
        right = BAT(DataType.DBL, np.array([0.5, 2.5, 3.0]))
        merged = rel_join.merge_join_positions([left], [right])
        hashed = rel_join.join_positions([left], [right])
        assert np.array_equal(merged[0], hashed[0])
        assert np.array_equal(merged[1], hashed[1])

    def test_properties_off_falls_back(self):
        left, right = int_bat([1, 2, 3]), int_bat([2, 3, 4])
        with use_properties(False):
            merged = rel_join.merge_join_positions([left], [right])
            hashed = rel_join.join_positions([left], [right])
        assert np.array_equal(merged[0], hashed[0])
        assert np.array_equal(merged[1], hashed[1])


# -- join strategy choice -------------------------------------------------------


def sorted_tables():
    """Two relations physically sorted by their join keys."""
    left = Relation.from_columns({
        "id": np.arange(8, dtype=np.int64),
        "v": np.arange(8, dtype=np.float64)})
    right = Relation.from_columns({
        "key": np.arange(0, 16, 2, dtype=np.int64),
        "w": np.arange(8, dtype=np.float64)})
    return left.sorted_by(["id"]), right.sorted_by(["key"])


class TestJoinStrategy:
    def make_session(self):
        session = Session()
        left, right = sorted_tables()
        session.register("l", left)
        session.register("r", right)
        return session

    def strategy_of(self, session, sql):
        info = session.physical_info(sql)
        plan = session.plan(sql)
        joins = find_nodes(plan, nodes.JoinPlan)
        assert joins
        return info.join_strategy[joins[0]]

    def test_sorted_keys_choose_merge(self):
        session = self.make_session()
        assert self.strategy_of(
            session,
            "SELECT v, w FROM l JOIN r ON l.id = r.key") == "merge"

    def test_unsorted_side_chooses_hash(self):
        session = self.make_session()
        shuffled = Relation.from_columns({
            "key": np.array([5, 1, 3, 0, 2], dtype=np.int64),
            "w": np.arange(5, dtype=np.float64)})
        session.register("r", shuffled)
        assert self.strategy_of(
            session,
            "SELECT v, w FROM l JOIN r ON l.id = r.key") == "hash"

    def test_merge_result_equals_hash_result(self):
        session = self.make_session()
        sql = "SELECT v, w FROM l JOIN r ON l.id = r.key"
        fast = session.execute(sql)
        slow = Session(optimize_plans=False)
        left, right = sorted_tables()
        slow.register("l", left)
        slow.register("r", right)
        assert fast.same_rows(slow.execute(sql))

    def test_filter_above_scan_keeps_merge(self):
        session = self.make_session()
        assert self.strategy_of(
            session,
            "SELECT v, w FROM l JOIN r ON l.id = r.key "
            "WHERE v > 1.0") == "merge"

    def test_str_keys_stay_hash_even_when_sorted(self):
        # The runtime merge path rejects STR keys; the planner must not
        # predict a strategy the executor cannot take.
        session = Session()
        left = Relation.from_columns({
            "k": ["a", "b", "c"], "v": [1.0, 2.0, 3.0]}).sorted_by(["k"])
        right = Relation.from_columns({
            "j": ["a", "b", "d"], "w": [1.0, 2.0, 3.0]}).sorted_by(["j"])
        session.register("l", left)
        session.register("r", right)
        assert self.strategy_of(
            session, "SELECT v, w FROM l JOIN r ON l.k = r.j") == "hash"

    def test_mixed_dtype_keys_stay_hash(self):
        session = Session()
        left = Relation.from_columns({
            "id": np.arange(4, dtype=np.int64),
            "v": np.arange(4, dtype=np.float64)}).sorted_by(["id"])
        right = Relation.from_columns({
            "key": np.arange(4, dtype=np.float64),
            "w": np.arange(4, dtype=np.float64)}).sorted_by(["key"])
        session.register("l", left)
        session.register("r", right)
        assert self.strategy_of(
            session, "SELECT v, w FROM l JOIN r ON l.id = r.key") == "hash"

    def test_multi_key_sorted_join_chooses_merge(self):
        # Both sides are lexicographically sorted by (major, minor): the
        # composite-key merge path applies.
        session = Session()
        left, right = sorted_tables()
        session.register("l", left)
        session.register("r", right)
        assert self.strategy_of(
            session,
            "SELECT v, w FROM l JOIN r ON l.id = r.key AND l.v = r.w") \
            == "merge"

    def test_theta_join_without_equality_stays_hash(self):
        # No equality conjunct at all: the executor runs cross + filter,
        # so the planner must never claim a merge strategy.
        session = self.make_session()
        assert self.strategy_of(
            session, "SELECT v, w FROM l JOIN r ON l.id < r.key") == "hash"

    def test_multi_key_unsorted_minor_stays_hash(self):
        # Duplicate major keys with a decreasing minor inside a tie group:
        # not lexicographically sorted, so the planner keeps the hash path.
        session = Session()
        left = Relation.from_columns({
            "id": np.array([0, 0, 1, 1], dtype=np.int64),
            "v": np.array([2.0, 1.0, 3.0, 4.0])})
        right = Relation.from_columns({
            "key": np.array([0, 0, 1, 1], dtype=np.int64),
            "w": np.array([1.0, 2.0, 3.0, 4.0])})
        session.register("l", left)
        session.register("r", right)
        assert self.strategy_of(
            session,
            "SELECT v, w FROM l JOIN r ON l.id = r.key AND l.v = r.w") \
            == "hash"


# -- order metadata propagation -------------------------------------------------


class TestOrderMetadata:
    def test_full_sort_rma_establishes_order(self):
        session = Session()
        session.register("m", square_relation())
        sql = "SELECT * FROM INV(m BY key)"
        info = plan_physical(session.plan(sql), session.catalog)
        rma = find_nodes(session.plan(sql), nodes.Rma)[0]
        assert info.ordering[rma] == ("key",)
        assert info.keys[rma] == ("key",)

    def test_filter_preserves_order(self):
        rel, _ = sorted_tables()
        plan = nodes.Filter(scan(rel).plan, parse_predicate("id > 2"))
        info = plan_physical(plan, Catalog())
        assert info.ordering[plan] == ("id",)

    def test_sort_node_establishes_order(self):
        session = Session()
        session.register("m", square_relation())
        plan = build_select(parse_sql("SELECT key, x0 FROM m ORDER BY key"))
        info = plan_physical(plan, session.catalog)
        sort = find_nodes(plan, nodes.Sort)[0]
        assert info.ordering[sort] == ("key",)

    def test_projection_renames_order(self):
        rel, _ = sorted_tables()
        pipe = scan(rel).select("id", "v")
        plan = pipe.plan
        info = plan_physical(plan, Catalog())
        assert info.ordering[plan] == ("id",)

    def test_projection_over_join_does_not_claim_other_sides_order(self):
        # a is sorted by x; projecting b.x AS x above the join yields b's
        # values in join order — the ordering claim must not survive.
        session = Session()
        a = Relation.from_columns({
            "id": np.array([0, 1, 2], dtype=np.int64),
            "x": np.array([1, 2, 3], dtype=np.int64)}).sorted_by(["x"])
        b = Relation.from_columns({
            "id": np.array([2, 0, 1], dtype=np.int64),
            "x": np.array([300, 100, 200], dtype=np.int64)})
        session.register("a", a)
        session.register("b", b)
        sql = "SELECT b.x AS x FROM a JOIN b ON a.id = b.id"
        plan = session.plan(sql)
        info = plan_physical(plan, session.catalog)
        project = find_nodes(plan, nodes.Project)[0]
        assert info.ordering[project] == ()


def parse_predicate(text):
    select = parse_sql(f"SELECT 1 FROM _x WHERE {text}")
    return select.where


# -- warm-order seeding of derived relations (merge_result) ---------------------


class TestDerivedRelationSeeding:
    def test_full_sort_result_seeded_identity(self):
        rel = square_relation()
        result = execute_rma("inv", rel, "key")
        info = result.cached_order_info(("key",))
        assert info is not None
        assert np.array_equal(info.known_positions,
                              np.arange(result.nrows))
        assert info.known_is_key is True
        assert result.column("key").cached_prop("tkey") is True

    def test_elementwise_result_seeded_both_schemas(self):
        rng = np.random.default_rng(3)
        r = Relation.from_columns({
            "k1": rng.permutation(6).astype(np.int64),
            "a": rng.uniform(0, 1, 6)})
        s = Relation.from_columns({
            "k2": rng.permutation(6).astype(np.int64),
            "b": rng.uniform(0, 1, 6)})
        result = execute_rma("add", r, "k1", s, "k2")
        # First order schema: shares the input's OrderInfo verbatim.
        assert result.cached_order_info(("k1",)) is \
            r.cached_order_info(("k1",))
        # Second order schema: derived permutation, validated key.
        info = result.cached_order_info(("k2",))
        assert info is not None
        ordered = result.column("k2").tail[info.positions]
        assert np.array_equal(ordered, np.sort(ordered))
        assert info.known_is_key is True

    def test_seeded_positions_match_fresh_sort(self):
        rel = square_relation(6)
        result = execute_rma("inv", rel, "key")
        seeded = result.cached_order_info(("key",)).positions
        fresh = Relation(result.schema, result.columns)  # cold copy
        assert np.array_equal(seeded,
                              fresh.order_info(["key"]).positions)

    def test_chained_operation_skips_resort(self, monkeypatch):
        rel = square_relation()
        inverted = execute_rma("inv", rel, "key")

        import repro.relational.relation as rel_mod

        def forbidden(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("order_by called on a warm relation")

        monkeypatch.setattr(rel_mod, "order_by", forbidden)
        # The chained op re-establishes the same order: must hit the seed.
        again = execute_rma("inv", inverted, "key")
        assert again.nrows == rel.nrows

    def test_no_seeding_when_properties_disabled(self):
        rel = square_relation()
        with use_properties(False):
            result = execute_rma("inv", rel, "key")
        assert result.cached_order_info(("key",)) is None

    def test_equivariant_result_shares_input_order(self):
        rng = np.random.default_rng(5)
        rel = Relation.from_columns({
            "id": rng.permutation(8).astype(np.int64),
            "a": rng.uniform(0, 1, 8),
            "b": rng.uniform(0, 1, 8)})
        rel.order_info(["id"]).positions  # warm the input cache
        result = execute_rma("qqr", rel, "id")
        assert result.cached_order_info(("id",)) is \
            rel.cached_order_info(("id",))
