"""Lazy builder equivalence: plan execution is bit-identical to eager.

The lazy API must reproduce ``execute_rma`` exactly for every Table 2
operation — not just numerically close: same names, same dtypes, same raw
tails.  Relational operators (filter/select/join/sort/limit/distinct) are
checked against their SQL/relational counterparts.
"""

import numpy as np
import pytest

from repro.bat.bat import DataType
from repro.core.ops import execute_rma
from repro.errors import PlanError
from repro.opspec import OPS
from repro.plan.lazy import col, lit, scan
from repro.relational.relation import Relation


def identical(a: Relation, b: Relation) -> bool:
    if a.names != b.names:
        return False
    for name in a.names:
        ca, cb = a.column(name), b.column(name)
        if ca.dtype is not cb.dtype:
            return False
        if ca.dtype is DataType.DBL:
            if not np.array_equal(ca.tail, cb.tail, equal_nan=True):
                return False
        elif list(ca.tail) != list(cb.tail):
            return False
    return True


def keyed(matrix: np.ndarray, key: str = "key", prefix: str = "x",
          shuffle_seed: int | None = 3) -> Relation:
    n, k = matrix.shape
    data = {key: [f"k{i:03d}" for i in range(n)]}
    for j in range(k):
        data[f"{prefix}{j}"] = matrix[:, j]
    rel = Relation.from_columns(data)
    if shuffle_seed is not None and n > 1:
        rng = np.random.default_rng(shuffle_seed)
        perm = rng.permutation(n).astype(np.int64)
        rel = Relation(rel.schema, [c.fetch(perm) for c in rel.columns])
    return rel


RNG = np.random.default_rng(11)
SQUARE = RNG.uniform(1.0, 9.0, (4, 4)) + 4.0 * np.eye(4)
TALL = RNG.uniform(-5.0, 5.0, (6, 3))
SPD = TALL.T @ TALL + 3.0 * np.eye(3)

UNARY_INPUTS = {
    "tra": SQUARE, "inv": SQUARE, "evc": SQUARE, "evl": SQUARE,
    "det": SQUARE, "chf": SPD,
    "qqr": TALL, "rqr": TALL, "dsv": TALL, "vsv": TALL, "usv": TALL,
    "rnk": TALL,
}


class TestUnaryOps:
    @pytest.mark.parametrize("op", sorted(UNARY_INPUTS))
    def test_bit_identical(self, op):
        rel = keyed(UNARY_INPUTS[op])
        eager = execute_rma(op, rel, "key")
        lazy = scan(rel).rma(op, by="key").collect()
        assert identical(eager, lazy), op

    def test_all_unary_ops_covered(self):
        unary = {name for name, spec in OPS.items() if spec.arity == 1}
        assert unary == set(UNARY_INPUTS)


class TestBinaryOps:
    def binary_case(self, op):
        if op in ("add", "sub", "emu"):
            r = keyed(RNG.uniform(0.0, 10.0, (5, 3)), key="k1")
            s = keyed(RNG.uniform(0.0, 10.0, (5, 3)), key="k2",
                      shuffle_seed=5)
            return r, "k1", s, "k2"
        if op == "mmu":
            r = keyed(RNG.uniform(0.0, 5.0, (5, 3)), key="k1")
            s = keyed(RNG.uniform(0.0, 5.0, (3, 4)), key="k2",
                      shuffle_seed=5)
            return r, "k1", s, "k2"
        if op == "opd":
            r = keyed(RNG.uniform(0.0, 5.0, (5, 3)), key="k1")
            s = keyed(RNG.uniform(0.0, 5.0, (4, 3)), key="k2",
                      shuffle_seed=5)
            return r, "k1", s, "k2"
        if op in ("cpd", "sol"):
            r = keyed(RNG.uniform(0.0, 5.0, (6, 3)), key="k1")
            s = keyed(RNG.uniform(0.0, 5.0, (6, 2)), key="k2",
                      shuffle_seed=5)
            return r, "k1", s, "k2"
        raise AssertionError(op)

    @pytest.mark.parametrize("op", sorted(
        name for name, spec in OPS.items() if spec.arity == 2))
    def test_bit_identical(self, op):
        r, by, s, s_by = self.binary_case(op)
        eager = execute_rma(op, r, by, s, s_by)
        lazy = scan(r).rma(op, by=by, other=scan(s),
                           other_by=s_by).collect()
        assert identical(eager, lazy), op

    def test_other_accepts_bare_relation(self):
        r, by, s, s_by = self.binary_case("add")
        eager = execute_rma("add", r, by, s, s_by)
        lazy = scan(r).rma("add", by=by, other=s, other_by=s_by).collect()
        assert identical(eager, lazy)

    def test_arity_validation(self):
        r, by, s, s_by = self.binary_case("add")
        with pytest.raises(PlanError):
            scan(r).rma("add", by=by)
        with pytest.raises(PlanError):
            scan(r).rma("inv", by=by, other=s, other_by=s_by)


class TestChains:
    def test_ols_chain_matches_eager(self):
        n = 40
        rng = np.random.default_rng(4)
        a = Relation.from_columns({
            "id": np.arange(n, dtype=np.int64),
            "const": np.ones(n),
            "x": rng.uniform(0.0, 10.0, n)})
        v = Relation.from_columns({
            "id": np.arange(n, dtype=np.int64),
            "y": rng.uniform(0.0, 100.0, n)})
        xtx = execute_rma("cpd", a, "id", a, "id")
        xty = execute_rma("cpd", a, "id", v, "id")
        eager = execute_rma("mmu", execute_rma("inv", xtx, "C"), "C",
                            xty, "C")

        design = scan(a)
        lazy_xtx = design.rma("cpd", by="id", other=design, other_by="id")
        lazy_xty = design.rma("cpd", by="id", other=scan(v), other_by="id")
        lazy = (lazy_xtx.rma("inv", by="C")
                .rma("mmu", by="C", other=lazy_xty, other_by="C")
                .collect())
        assert identical(eager, lazy)

    def test_collect_without_cse_matches(self):
        rel = keyed(SQUARE)
        frame = scan(rel).rma("inv", by="key")
        pipe = frame.rma("mmu", by="key", other=frame, other_by="key")
        assert identical(pipe.collect(cse=True), pipe.collect(cse=False))
        assert identical(pipe.collect(optimize=False), pipe.collect())


class TestRelationalOperators:
    @pytest.fixture
    def rel(self):
        return Relation.from_columns({
            "id": np.array([3, 1, 2, 5, 4], dtype=np.int64),
            "grp": ["b", "a", "a", "c", "b"],
            "val": [1.5, 2.5, 0.5, 4.0, 3.0]})

    def test_scan_passthrough(self, rel):
        assert scan(rel).collect() is rel

    def test_filter(self, rel):
        out = scan(rel).filter(col("val") > 1.0).collect()
        assert out.to_rows() == [row for row in rel.to_rows()
                                 if row[2] > 1.0]

    def test_filter_compound(self, rel):
        out = scan(rel).filter((col("val") > lit(1.0))
                               & (col("grp") == "b")).collect()
        assert out.to_rows() == [(3, "b", 1.5), (4, "b", 3.0)]

    def test_select_names_and_exprs(self, rel):
        out = scan(rel).select("id", (col("val") * 2).alias("dbl")) \
            .collect()
        assert out.names == ["id", "dbl"]
        assert out.column("dbl").python_values() == \
            [v * 2 for v in rel.column("val").python_values()]

    def test_sort_limit(self, rel):
        out = scan(rel).sort("id").limit(2).collect()
        assert [r[0] for r in out.to_rows()] == [1, 2]
        out = scan(rel).sort("id", descending=True).limit(1).collect()
        assert out.to_rows()[0][0] == 5

    def test_distinct(self, rel):
        out = scan(rel).select("grp").distinct().collect()
        assert sorted(v for v in out.column("grp").python_values()) == \
            ["a", "b", "c"]

    def test_join(self, rel):
        other = Relation.from_columns({
            "key": np.array([1, 2, 3], dtype=np.int64),
            "label": ["one", "two", "three"]})
        out = (scan(rel, name="l")
               .join(scan(other, name="r"),
                     on=col("id", "l") == col("key", "r"))
               .collect())
        assert sorted(out.column("label").python_values()) == \
            ["one", "three", "two"]

    def test_explain_mentions_nodes(self, rel):
        text = (scan(rel).rma("rnk", by="id")
                .filter(col("rnk") >= 0).explain())
        assert "Rma RNK" in text
        assert "RelScan" in text

    def test_interior_select_prunes_scan(self, rel):
        pipe = scan(rel).select("id", "val").sort("id")
        text = pipe.explain()
        assert "Prune [id, val]" in text
        out = pipe.collect()
        assert out.names == ["id", "val"]
        assert [r[0] for r in out.to_rows()] == [1, 2, 3, 4, 5]

    def test_non_project_root_keeps_all_columns(self, rel):
        out = scan(rel).filter(col("val") > 1.0).collect()
        assert out.names == rel.names
