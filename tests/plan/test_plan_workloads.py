"""Lazy-plan equivalence for the four paper workloads' matrix pipelines.

Each workload's matrix part is rebuilt on the lazy API and must be
bit-identical (same raw tails) to the eager per-operation execution the
runners use.
"""

import numpy as np
import pytest

from repro.core import RmaConfig
from repro.core.ops import execute_rma
from repro.data.bixi import generate_numeric_trips, generate_stations, \
    generate_trips
from repro.data.dblp import generate_publications
from repro.linalg.policy import BackendPolicy
from repro.plan.lazy import scan
from repro.workloads.journeys_mlr import JourneysDataset, _design_names, \
    _rma_mlr
from repro.workloads.journeys_mlr import engine_prepare as prepare_journeys
from repro.workloads.trip_count import make_dataset
from repro.workloads.trips_olr import TripsDataset, _ols_inputs, _rma_ols, \
    _rma_ols_lazy
from repro.workloads.trips_olr import engine_prepare as prepare_trips
from repro.workloads.trips_olr import run_rma as run_trips_rma


@pytest.fixture(scope="module")
def stations():
    return generate_stations(20, seed=1)


@pytest.fixture(scope="module")
def config():
    return RmaConfig(policy=BackendPolicy(prefer="mkl"),
                     validate_keys=False)


class TestTripsOlr:
    def test_lazy_matches_eager(self, stations, config):
        trips = generate_trips(3_000, stations, seed=2)
        dataset = TripsDataset(trips, stations, 2014, 2017, min_count=5)
        prepared = prepare_trips(dataset)
        eager = _rma_ols(prepared, config)
        lazy = _rma_ols_lazy(prepared, config)
        assert np.array_equal(eager, lazy)

    def test_runner_agrees(self, stations):
        trips = generate_trips(3_000, stations, seed=2)
        dataset = TripsDataset(trips, stations, 2014, 2017, min_count=5)
        eager = run_trips_rma(dataset)
        lazy = run_trips_rma(dataset, lazy=True)
        assert lazy.system == "RMA+MKL+PLAN"
        assert np.array_equal(np.asarray(eager.signature),
                              np.asarray(lazy.signature))


class TestJourneysMlr:
    def test_lazy_matches_eager(self, stations, config):
        trips = generate_numeric_trips(4_000, stations, seed=3)
        dataset = JourneysDataset(trips, stations, n_legs=2, min_count=10)
        prepared = prepare_journeys(dataset)
        names = _design_names(dataset)
        eager = _rma_mlr(prepared, names, config)

        from repro.bat.bat import BAT, DataType
        from repro.relational.relation import Relation
        n = prepared.nrows
        columns = {"journey_id": prepared.column("journey_id"),
                   "const": BAT(DataType.DBL, np.ones(n))}
        for name in names:
            columns[name] = prepared.column(name)
        a = Relation.from_columns(columns)
        v = Relation.from_columns({
            "journey_id": prepared.column("journey_id"),
            "y": prepared.column("total_duration")})
        design = scan(a)
        xtx = design.rma("cpd", by="journey_id", other=design,
                         other_by="journey_id")
        xty = design.rma("cpd", by="journey_id", other=scan(v),
                         other_by="journey_id")
        beta = (xtx.rma("inv", by="C")
                .rma("mmu", by="C", other=xty, other_by="C")
                .collect(config=config))
        assert np.array_equal(eager, beta.column("y").tail)


class TestConferencesCov:
    def test_lazy_cross_product_matches(self, config):
        publications = generate_publications(400, 10)
        eager = execute_rma("cpd", publications, "author",
                            publications, "author", config=config)
        frame = scan(publications)
        lazy = frame.rma("cpd", by="author", other=frame,
                         other_by="author").collect(config=config)
        assert eager.names == lazy.names
        for name in eager.names[1:]:
            assert np.array_equal(eager.column(name).tail,
                                  lazy.column(name).tail)
        assert list(eager.column("C").tail) == list(lazy.column("C").tail)


class TestTripCountAdd:
    def test_lazy_add_matches(self):
        dataset = make_dataset(2_000)
        config = RmaConfig(policy=BackendPolicy(prefer="auto"),
                           validate_keys=False)
        eager = execute_rma("add", dataset.year1, dataset.key1,
                            dataset.year2, dataset.key2, config=config)
        lazy = (scan(dataset.year1)
                .rma("add", by=dataset.key1, other=scan(dataset.year2),
                     other_by=dataset.key2)
                .collect(config=config))
        assert eager.names == lazy.names
        for name in eager.names:
            assert np.array_equal(eager.column(name).tail,
                                  lazy.column(name).tail)

    def test_derived_result_starts_warm(self):
        dataset = make_dataset(500)
        result = (scan(dataset.year1)
                  .rma("add", by=dataset.key1, other=scan(dataset.year2),
                       other_by=dataset.key2)
                  .collect())
        info = result.cached_order_info((dataset.key1,))
        assert info is not None
        assert info.known_positions is not None
