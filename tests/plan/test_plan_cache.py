"""Session-scoped plan/result cache: reuse and stale-free invalidation."""

import numpy as np
import pytest

from repro.bat.catalog import Catalog
from repro.core.config import RmaConfig
from repro.plan.cache import PlanCache, catalog_stamps
from repro.plan.lazy import scan
from repro.relational.relation import Relation
from repro.sql import Session


def square_relation(n: int = 6, seed: int = 1) -> Relation:
    rng = np.random.default_rng(seed)
    data = {"key": [f"v{i}" for i in range(n)]}
    for j in range(n):
        data[f"c{j}"] = rng.uniform(1.0, 2.0, n)
    # Diagonal dominance keeps INV well-conditioned.
    for j in range(n):
        data[f"c{j}"][j] += n
    return Relation.from_columns(data)


GRAM_SQL = "SELECT * FROM CPD(a BY id, a BY id)"


def gram_table(n: int = 50, seed: int = 3) -> Relation:
    rng = np.random.default_rng(seed)
    return Relation.from_columns({
        "id": rng.permutation(n).astype(np.int64),
        "x": rng.uniform(0, 1, n),
        "y": rng.uniform(0, 1, n)})


class TestCatalogVersions:
    def test_create_bumps_versions(self):
        catalog = Catalog()
        assert catalog.version == 0
        assert catalog.table_version("t") is None
        catalog.create("t", gram_table())
        assert catalog.version == 1
        assert catalog.table_version("t") == 1
        catalog.create("t", gram_table(), replace=True)
        assert catalog.table_version("t") == 2

    def test_drop_removes_version(self):
        catalog = Catalog()
        catalog.create("t", gram_table())
        catalog.drop("t")
        assert catalog.table_version("t") is None
        assert catalog.version == 2  # drop is a mutation too

    def test_versions_case_insensitive(self):
        catalog = Catalog()
        catalog.create("Trips", gram_table())
        assert catalog.table_version("TRIPS") == 1


class TestSessionResultCache:
    def test_repeated_statement_hits_cache(self):
        session = Session()
        session.register("a", gram_table())
        first = session.execute(GRAM_SQL)
        assert session.last_stats.cache_hits == 0
        second = session.execute(GRAM_SQL)
        assert session.last_stats.cache_hits >= 1
        assert first.names == second.names
        assert all(first.column(n) == second.column(n)
                   for n in first.names)

    def test_shared_subplan_reused_across_different_statements(self):
        session = Session()
        session.register("a", gram_table())
        session.execute(GRAM_SQL)
        # A *different* statement containing the same CPD subplan.
        session.execute(
            "SELECT * FROM INV(CPD(a BY id, a BY id) BY C)")
        assert session.last_stats.cache_hits >= 1

    def test_insert_invalidates_affected_entry(self):
        session = Session()
        session.register("t", Relation.from_columns(
            {"id": [1, 2], "v": [1.0, 2.0]}))
        sql = "SELECT * FROM CPD(t BY id, t BY id)"
        before = session.execute(sql)
        session.execute("INSERT INTO t VALUES (3, 10.0)")
        after = session.execute(sql)
        assert session.last_stats.cache_hits == 0
        # CPD over 3 rows includes the new value's square.
        assert before.column("v").python_values() != \
            after.column("v").python_values()
        expected = 1.0 + 4.0 + 100.0
        assert after.column("v").python_values()[0] == pytest.approx(
            expected)

    def test_register_invalidates_affected_entry(self):
        session = Session()
        session.register("a", gram_table(seed=3))
        first = session.execute(GRAM_SQL)
        session.register("a", gram_table(seed=4))
        second = session.execute(GRAM_SQL)
        assert session.last_stats.cache_hits == 0
        assert first.column("x").python_values() != \
            second.column("x").python_values()

    def test_create_or_drop_invalidates(self):
        session = Session()
        session.register("a", gram_table())
        session.execute(GRAM_SQL)
        session.execute("DROP TABLE a")
        session.register("a", gram_table(seed=9))
        session.execute(GRAM_SQL)
        assert session.last_stats.cache_hits == 0

    def test_unrelated_mutation_keeps_entries(self):
        session = Session()
        session.register("a", gram_table())
        session.register("b", gram_table(seed=11))
        session.execute(GRAM_SQL)
        session.register("other", gram_table(seed=12))  # unrelated table
        session.execute(GRAM_SQL)
        assert session.last_stats.cache_hits >= 1

    def test_cache_disabled(self):
        session = Session(plan_cache=False)
        session.register("a", gram_table())
        session.execute(GRAM_SQL)
        session.execute(GRAM_SQL)
        assert session.last_stats.cache_hits == 0

    def test_cse_within_statement_still_counts(self):
        session = Session()
        session.register("a", gram_table())
        session.execute(
            "SELECT * FROM MMU(INV(CPD(a BY id, a BY id) BY C) BY C, "
            "CPD(a BY id, a BY id) BY C)")
        stats = session.last_stats
        assert stats.cse_hits >= 1  # repeated CPD inside one statement


def cached_entry(session):
    """The single statement-plan cache entry (keyed by canonical SQL)."""
    assert len(session._select_plans) == 1
    return next(iter(session._select_plans.values()))


class TestStatementPlanCache:
    def test_plan_object_reused(self):
        session = Session()
        session.register("a", gram_table())
        session.execute(GRAM_SQL)
        plan_a = cached_entry(session)[0]
        session.execute(GRAM_SQL)
        assert cached_entry(session)[0] is plan_a

    def test_plan_rebuilt_after_catalog_change(self):
        session = Session()
        session.register("a", gram_table())
        session.execute(GRAM_SQL)
        plan_a = cached_entry(session)[0]
        session.register("a", gram_table(seed=21))
        session.execute(GRAM_SQL)
        assert cached_entry(session)[0] is not plan_a

    def test_plan_rebuilt_after_config_swap(self):
        # Swapping the session config must replan — a plan optimized under
        # different settings (e.g. fusion on) must not keep executing.
        rng = np.random.default_rng(30)
        n = 50
        session = Session()
        for i in range(3):
            session.register(f"y{i}", Relation.from_columns({
                f"k{i}": rng.permutation(n).astype(np.int64),
                "v": rng.uniform(0, 1, n)}))
        sql = ("SELECT * FROM SUB(ADD(y0 BY k0, y1 BY k1) BY (k0, k1), "
               "y2 BY k2)")
        fused = session.execute(sql)
        assert session.last_stats.fused_nodes == 1
        session.config = RmaConfig(fuse_elementwise=False)
        unfused = session.execute(sql)
        assert session.last_stats.fused_nodes == 0
        assert all(fused.column(c) == unfused.column(c)
                   for c in fused.names)

    def test_physical_info_cached_with_plan(self):
        session = Session()
        session.register("a", gram_table())
        session.execute(GRAM_SQL)
        info_a = cached_entry(session)[1]
        session.execute(GRAM_SQL)
        assert cached_entry(session)[1] is info_a

    def test_plan_rebuilt_after_in_place_config_mutation(self):
        # Mutating the SAME config object must also replan (the cache
        # token covers field values, not just object identity).
        rng = np.random.default_rng(31)
        n = 40
        config = RmaConfig()
        session = Session(config=config)
        for i in range(3):
            session.register(f"y{i}", Relation.from_columns({
                f"k{i}": rng.permutation(n).astype(np.int64),
                "v": rng.uniform(0, 1, n)}))
        sql = ("SELECT * FROM SUB(ADD(y0 BY k0, y1 BY k1) BY (k0, k1), "
               "y2 BY k2)")
        session.execute(sql)
        assert session.last_stats.fused_nodes == 1
        config.fuse_elementwise = False  # in-place mutation
        session.execute(sql)
        assert session.last_stats.fused_nodes == 0

    def test_plan_cache_false_disables_statement_caches(self):
        session = Session(plan_cache=False)
        session.register("a", gram_table())
        session.execute(GRAM_SQL)
        session.execute(GRAM_SQL)
        assert len(session._select_plans) == 0
        assert len(session._statements) == 0
        assert session.result_cache is None


class TestLazyCache:
    def test_collect_with_shared_cache(self):
        cache = PlanCache()
        rel = gram_table()
        pipe = scan(rel).rma("cpd", by="id", other=scan(rel),
                             other_by="id")
        first = pipe.collect(cache=cache)
        assert cache.hits == 0
        second = pipe.collect(cache=cache)
        assert cache.hits >= 1
        assert first.names == second.names
        assert all(first.column(n) == second.column(n)
                   for n in first.names)

    def test_distinct_relations_do_not_collide(self):
        cache = PlanCache()
        a, b = gram_table(seed=1), gram_table(seed=2)
        ra = scan(a).rma("cpd", by="id", other=scan(a),
                         other_by="id").collect(cache=cache)
        rb = scan(b).rma("cpd", by="id", other=scan(b),
                         other_by="id").collect(cache=cache)
        assert ra.column("x").python_values() != \
            rb.column("x").python_values()

    def test_equal_valued_configs_share_entries(self):
        # The cache token is value-based: a fresh (but equal) RmaConfig
        # per collect call keeps hitting.
        cache = PlanCache()
        rel = gram_table()
        pipe = scan(rel).rma("cpd", by="id", other=scan(rel),
                             other_by="id")
        pipe.collect(cache=cache, config=RmaConfig())
        pipe.collect(cache=cache, config=RmaConfig())
        assert cache.hits >= 1

    def test_config_value_change_misses(self):
        cache = PlanCache()
        rel = gram_table()
        pipe = scan(rel).rma("cpd", by="id", other=scan(rel),
                             other_by="id")
        pipe.collect(cache=cache, config=RmaConfig(validate_keys=True))
        pipe.collect(cache=cache, config=RmaConfig(validate_keys=False))
        assert cache.hits == 0
        # A config mismatch is a miss, not an invalidation: the entry is
        # still valid for its own config.
        assert cache.invalidations == 0


class TestSharedCacheAcrossSessions:
    def test_independent_catalogs_never_share_stamped_entries(self):
        # Two sessions with independent catalogs but the same table name
        # and SQL text: version stamps only identify tables *within* one
        # catalog, so the shared cache must not serve A's result to B.
        shared = PlanCache()
        a = Session(plan_cache=shared)
        b = Session(plan_cache=shared)
        a.register("t", Relation.from_columns(
            {"id": [1, 2], "v": [1.0, 2.0]}))
        b.register("t", Relation.from_columns(
            {"id": [1, 2], "v": [100.0, 200.0]}))
        sql = "SELECT * FROM CPD(t BY id, t BY id)"
        ra = a.execute(sql)
        # Within one session the entry hits before B touches the key.
        a.execute(sql)
        assert a.last_stats.cache_hits >= 1
        rb = b.execute(sql)
        assert b.last_stats.cache_hits == 0
        assert ra.column("v").python_values()[0] == pytest.approx(5.0)
        assert rb.column("v").python_values()[0] == pytest.approx(50000.0)

    def test_relscan_entries_stay_shareable(self):
        # Lazy collect() builds a fresh catalog per call; stamp-free
        # entries (RelScan identity) must keep hitting across them.
        cache = PlanCache()
        rel = gram_table()
        pipe = scan(rel).rma("cpd", by="id", other=scan(rel),
                             other_by="id")
        pipe.collect(cache=cache)
        pipe.collect(cache=cache)
        assert cache.hits >= 1


class TestPlanCacheUnit:
    def test_stamps_cover_scanned_tables(self):
        session = Session()
        session.register("a", gram_table())
        plan = session.plan(GRAM_SQL)
        stamps = catalog_stamps(plan, session.catalog)
        assert stamps == (("a", 1),)

    def test_lru_eviction(self):
        cache = PlanCache(max_entries=2)
        catalog = Catalog()
        config = RmaConfig()
        rels = [gram_table(seed=i) for i in range(3)]
        from repro.plan import nodes
        plans = [nodes.RelScan(r, f"t{i}") for i, r in enumerate(rels)]
        for plan, rel in zip(plans, rels):
            cache.put(plan, catalog, config, rel)
        assert len(cache) == 2
        assert cache.get(plans[0], catalog, config) is None  # evicted
        assert cache.get(plans[2], catalog, config) is rels[2]
