"""EXPLAIN: statement parsing, session surface and plan rendering."""

import numpy as np
import pytest

from repro.errors import SqlSyntaxError
from repro.relational.relation import Relation
from repro.sql import Session, ast
from repro.sql.parser import parse_sql


@pytest.fixture
def session(users, ratings):
    s = Session()
    s.register("u", users)
    s.register("r", ratings)
    return s


class TestParser:
    def test_explain_select_parses(self):
        stmt = parse_sql("EXPLAIN SELECT * FROM u")
        assert isinstance(stmt, ast.Explain)
        assert isinstance(stmt.query, ast.Select)

    def test_explain_round_trips(self):
        stmt = parse_sql("EXPLAIN SELECT User FROM u WHERE YoB > 1966")
        assert stmt.to_sql().startswith("EXPLAIN SELECT")
        assert parse_sql(stmt.to_sql()) == stmt

    def test_explain_non_select_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("EXPLAIN DROP TABLE u")

    def test_explain_not_reserved_as_identifier(self, session):
        # EXPLAIN is a soft keyword: columns and tables may use the name.
        t = Relation.from_columns({"explain": [1, 2, 3]})
        session.register("t", t)
        result = session.execute("SELECT explain FROM t WHERE explain > 1")
        assert result.names == ["explain"]
        assert result.column("explain").python_values() == [2, 3]


class TestSessionExplain:
    def test_returns_one_column_relation(self, session):
        result = session.execute("EXPLAIN SELECT * FROM u")
        assert isinstance(result, Relation)
        assert result.names == ["explain"]
        assert result.nrows >= 2
        lines = result.column("explain").python_values()
        assert lines[0].startswith("Project")
        assert any("Scan u" in line for line in lines)

    def test_explain_string_helper(self, session):
        text = session.explain("SELECT * FROM INV(r BY User)")
        assert "Rma INV arg1 BY (User)" in text
        assert "Scan r" in text

    def test_explain_shows_pushdown(self, session):
        text = session.explain(
            "SELECT u.User, Net FROM u, r WHERE u.User = r.User "
            "AND YoB > 1966")
        assert "Join inner" in text
        assert "Filter" in text

    def test_explain_shows_merge_strategy(self, session):
        left = Relation.from_columns({
            "id": np.arange(6, dtype=np.int64),
            "v": np.arange(6, dtype=np.float64)}).sorted_by(["id"])
        right = Relation.from_columns({
            "key": np.arange(6, dtype=np.int64),
            "w": np.arange(6, dtype=np.float64)}).sorted_by(["key"])
        session.register("l", left)
        session.register("m", right)
        text = session.explain(
            "SELECT v, w FROM l JOIN m ON l.id = m.key")
        assert "strategy=merge" in text

    def test_explain_shows_order_metadata(self, session):
        text = session.explain("SELECT * FROM INV(r BY User)")
        assert "order=(User)" in text

    def test_explain_shows_shared_subplans(self, session):
        text = session.explain(
            "SELECT a.Ann FROM TRA(r BY User) AS a "
            "CROSS JOIN TRA(r BY User) AS b")
        assert "shared x2" in text

    def test_explain_of_explain_prefixed_plan(self, session):
        # Session.plan accepts the EXPLAIN form as well.
        plan = session.plan("EXPLAIN SELECT * FROM u")
        assert plan is not None

    def test_execute_unchanged_for_plain_select(self, session, users):
        result = session.execute("SELECT * FROM u")
        assert result.same_rows(users)
