"""Element-wise fusion: plan rewrite, fused execution, bit-identity.

The contract under test: for every chain shape, executing the optimized
plan (with ``FusedRma``) is *bit-identical* to executing the same pipeline
with fusion disabled — fusion elides intermediate materialization, never
changes values — and chains that must not fuse (shared subtrees,
order-schema boundaries) keep their unfused shape.
"""

import numpy as np
import pytest

from repro.core.algebra import add, sadd, smul, ssub, sub
from repro.core.config import RmaConfig
from repro.core.ops import execute_fused
from repro.core.context import FusionFallback
from repro.errors import RmaError
from repro.linalg.kernels import KernelProgram, KernelStep, run_program
from repro.plan import nodes
from repro.plan.lazy import col, scan
from repro.plan.optimizer import optimize
from repro.bat.catalog import Catalog
from repro.relational.relation import Relation
from repro.sql import Session


def relations_equal(a: Relation, b: Relation) -> bool:
    """Bit-identity: same names, dtypes and raw tails."""
    if a.names != b.names:
        return False
    return all(a.column(n) == b.column(n) for n in a.names)


def chain_relation(index: int, n: int = 300, seed: int = 0,
                   cols: int = 2, str_keys: bool = True) -> Relation:
    rng = np.random.default_rng(seed + index)
    perm = rng.permutation(n)
    if str_keys:
        key = [f"r{v:05d}" for v in perm]
    else:
        key = perm.astype(np.int64)
    data = {f"k{index}": key}
    for j in range(cols):
        data[f"c{j}"] = rng.uniform(-10.0, 10.0, n)
    return Relation.from_columns(data)


def collect_both(pipe, **kwargs):
    """(fused result, unfused result) for one lazy pipeline."""
    fused = pipe.collect(config=RmaConfig(**kwargs))
    unfused = pipe.collect(
        config=RmaConfig(fuse_elementwise=False, **kwargs))
    return fused, unfused


def find_fused(plan):
    return [n for n in nodes.walk_plan(plan)
            if isinstance(n, nodes.FusedRma)]


# -- the kernel-program layer ---------------------------------------------------


class TestKernelPrograms:
    def test_single_step_program(self):
        config = RmaConfig()
        a = [np.array([1.0, 2.0]), np.array([3.0, 4.0])]
        b = [np.array([10.0, 20.0]), np.array([30.0, 40.0])]
        program = KernelProgram.single("add", binary=True)
        out = run_program(program, [a, b], config.policy)
        assert np.array_equal(out[0], [11.0, 22.0])
        assert np.array_equal(out[1], [33.0, 44.0])

    def test_multi_step_program_with_scalar(self):
        config = RmaConfig()
        a = [np.array([1.0, 2.0])]
        b = [np.array([5.0, 6.0])]
        program = KernelProgram(2, (
            KernelStep("add", 0, 1),        # slot 2 = a + b
            KernelStep("smul", 2, scalar=2.0),  # slot 3 = 2 (a + b)
            KernelStep("sub", 3, 0),        # slot 4 = 2 (a + b) - a
        ))
        out = run_program(program, [a, b], config.policy)
        assert np.array_equal(out[0], [11.0, 14.0])

    def test_bad_slot_rejected(self):
        config = RmaConfig()
        program = KernelProgram(1, (KernelStep("sadd", 5, scalar=1.0),))
        with pytest.raises(RmaError):
            run_program(program, [[np.zeros(2)]], config.policy)

    def test_scalar_kernel_requires_value(self):
        config = RmaConfig()
        program = KernelProgram(1, (KernelStep("smul", 0),))
        with pytest.raises(RmaError):
            run_program(program, [[np.zeros(2)]], config.policy)


# -- eager scalar variants ------------------------------------------------------


class TestScalarOps:
    def test_values_and_schema(self):
        r = chain_relation(0)
        out = sadd(r, "k0", 2.5)
        assert out.names == ["k0", "c0", "c1"]
        assert out.column("k0") == r.column("k0")
        assert np.array_equal(out.column("c0").tail,
                              r.column("c0").tail + 2.5)
        out = ssub(r, "k0", 1.0)
        assert np.array_equal(out.column("c1").tail,
                              r.column("c1").tail - 1.0)
        out = smul(r, "k0", -3.0)
        assert np.array_equal(out.column("c0").tail,
                              r.column("c0").tail * -3.0)

    def test_scalar_required_and_rejected(self):
        r = chain_relation(0)
        with pytest.raises(RmaError):
            sadd(r, "k0", None)
        with pytest.raises(RmaError):
            add(r, "k0", r, "k0", RmaConfig())  # sanity: unrelated error ok

    def test_rows_keep_storage_order(self):
        r = chain_relation(0)
        out = smul(r, "k0", 2.0)
        assert list(out.column("k0").tail) == list(r.column("k0").tail)


# -- fusion rewrite (plan shapes) ----------------------------------------------


class TestFusionRewrite:
    def test_left_deep_chain_fuses(self):
        r0, r1, r2 = (chain_relation(i) for i in range(3))
        pipe = (scan(r0).rma("add", by="k0", other=scan(r1), other_by="k1")
                .rma("sub", by=("k0", "k1"), other=scan(r2), other_by="k2"))
        plan = optimize(pipe.plan, Catalog(), keep_all=True)
        fused = find_fused(plan)
        assert len(fused) == 1
        assert fused[0].member_ops == ("add", "sub")
        assert fused[0].bys == (("k0",), ("k1",), ("k2",))

    def test_right_deep_chain_fuses(self):
        r0, r1, r2 = (chain_relation(i) for i in range(3))
        inner = scan(r1).rma("emu", by="k1", other=scan(r2), other_by="k2")
        pipe = scan(r0).rma("add", by="k0", other=inner,
                            other_by=("k1", "k2"))
        plan = optimize(pipe.plan, Catalog(), keep_all=True)
        fused = find_fused(plan)
        assert len(fused) == 1
        assert fused[0].member_ops == ("emu", "add")

    def test_scalar_steps_fuse(self):
        r0, r1 = chain_relation(0), chain_relation(1)
        pipe = (scan(r0).rma("add", by="k0", other=scan(r1), other_by="k1")
                .rma("smul", by=("k0", "k1"), scalar=2.0)
                .rma("sadd", by=("k0", "k1"), scalar=-1.0))
        plan = optimize(pipe.plan, Catalog(), keep_all=True)
        fused = find_fused(plan)
        assert len(fused) == 1
        assert fused[0].member_ops == ("add", "smul", "sadd")
        assert fused[0].steps[1].scalar == 2.0

    def test_single_op_not_fused(self):
        r0, r1 = chain_relation(0), chain_relation(1)
        pipe = scan(r0).rma("add", by="k0", other=scan(r1), other_by="k1")
        plan = optimize(pipe.plan, Catalog(), keep_all=True)
        assert not find_fused(plan)

    def test_order_schema_boundary_blocks_fusion(self):
        # The parent orders the derived relation by a *permuted* schema:
        # alignment semantics differ, so the edge must not fuse.
        r0 = chain_relation(0, str_keys=False)
        r1 = chain_relation(1, str_keys=False)
        r2 = chain_relation(2, str_keys=False)
        pipe = (scan(r0).rma("add", by="k0", other=scan(r1), other_by="k1")
                .rma("sub", by=("k1", "k0"), other=scan(r2), other_by="k2"))
        plan = optimize(pipe.plan, Catalog(), keep_all=True)
        assert not find_fused(plan)
        fused, unfused = collect_both(pipe)
        assert relations_equal(fused, unfused)

    def test_shared_subtree_not_absorbed(self):
        # The inner chain is referenced twice: it must stay a separate
        # (CSE-shared) node, not be re-computed inside two fused chains.
        r0, r1 = chain_relation(0), chain_relation(1)
        inner = scan(r0).rma("add", by="k0", other=scan(r1), other_by="k1")
        doubled = inner.rma("smul", by=("k0", "k1"), scalar=2.0)
        tripled = inner.rma("smul", by=("k0", "k1"), scalar=3.0)
        pipe = doubled.rma("sub", by=("k0", "k1"), other=tripled,
                           other_by=("k0", "k1"))
        plan = optimize(pipe.plan, Catalog(), keep_all=True)
        # The shared `inner` add survives as a plain Rma node.
        inner_nodes = [n for n in nodes.walk_plan(plan)
                       if isinstance(n, nodes.Rma) and n.op == "add"]
        assert inner_nodes
        # NB the rewrite above is illegal RMA (overlapping order schemas of
        # sub's arguments) — only the plan *shape* is under test here.

    def test_duplicated_chain_still_fuses(self):
        # The SAME chain referenced twice: every interior node's count
        # equals the root's, so fusion proceeds — both references become
        # one structurally equal FusedRma that CSE executes once.
        r0 = chain_relation(0, str_keys=False)
        r1 = chain_relation(1, str_keys=False)
        chain = (scan(r0, name="a")
                 .rma("add", by="k0", other=scan(r1), other_by="k1")
                 .rma("smul", by=("k0", "k1"), scalar=2.0))
        pipe = chain.join(chain, on=(col("k0", "a") == col("k0", "a")))
        plan = optimize(pipe.plan, Catalog(), keep_all=True)
        fused = find_fused(plan)
        assert len(fused) == 2
        assert fused[0] == fused[1]  # CSE memoizes one execution

    def test_fusion_disabled_by_flag(self):
        r0, r1, r2 = (chain_relation(i) for i in range(3))
        pipe = (scan(r0).rma("add", by="k0", other=scan(r1), other_by="k1")
                .rma("sub", by=("k0", "k1"), other=scan(r2), other_by="k2"))
        plan = optimize(pipe.plan, Catalog(), keep_all=True, fuse=False)
        assert not find_fused(plan)

    def test_unfuse_reconstructs_chain(self):
        r0, r1, r2 = (chain_relation(i) for i in range(3))
        pipe = (scan(r0).rma("add", by="k0", other=scan(r1), other_by="k1")
                .rma("sub", by=("k0", "k1"), other=scan(r2), other_by="k2")
                .rma("smul", by=("k0", "k1", "k2"), scalar=2.0))
        plan = optimize(pipe.plan, Catalog(), keep_all=True)
        fused = find_fused(plan)[0]
        rebuilt = nodes.unfuse(fused)
        assert isinstance(rebuilt, nodes.Rma)
        assert rebuilt.op == "smul"
        assert rebuilt.by == (("k0", "k1", "k2"),)
        inner = rebuilt.inputs[0]
        assert inner.op == "sub" and inner.by == (("k0", "k1"), ("k2",))
        assert inner.inputs[0].op == "add"


# -- fused-vs-unfused bit-identity ---------------------------------------------


CHAIN_KW = [dict(validate_keys=True), dict(validate_keys=False)]


class TestFusedBitIdentity:
    @pytest.mark.parametrize("kwargs", CHAIN_KW,
                             ids=["validate", "novalidate"])
    def test_left_deep_mixed_ops(self, kwargs):
        r0, r1, r2, r3 = (chain_relation(i) for i in range(4))
        pipe = (scan(r0).rma("add", by="k0", other=scan(r1), other_by="k1")
                .rma("sub", by=("k0", "k1"), other=scan(r2), other_by="k2")
                .rma("emu", by=("k0", "k1", "k2"), other=scan(r3),
                     other_by="k3"))
        fused, unfused = collect_both(pipe, **kwargs)
        assert relations_equal(fused, unfused)

    @pytest.mark.parametrize("kwargs", CHAIN_KW,
                             ids=["validate", "novalidate"])
    def test_right_deep_chain(self, kwargs):
        r0, r1, r2 = (chain_relation(i) for i in range(3))
        inner = scan(r1).rma("emu", by="k1", other=scan(r2), other_by="k2")
        pipe = scan(r0).rma("add", by="k0", other=inner,
                            other_by=("k1", "k2"))
        fused, unfused = collect_both(pipe, **kwargs)
        assert relations_equal(fused, unfused)

    def test_scalar_mix(self):
        r0, r1 = chain_relation(0), chain_relation(1)
        pipe = (scan(r0).rma("smul", by="k0", scalar=0.5)
                .rma("add", by="k0", other=scan(r1), other_by="k1")
                .rma("ssub", by=("k0", "k1"), scalar=4.0))
        fused, unfused = collect_both(pipe)
        assert relations_equal(fused, unfused)

    def test_int_keys_and_int_values(self):
        rng = np.random.default_rng(5)
        n = 200
        r0 = Relation.from_columns({
            "k0": rng.permutation(n).astype(np.int64),
            "v": rng.integers(-100, 100, n)})
        r1 = Relation.from_columns({
            "k1": rng.permutation(n).astype(np.int64),
            "w": rng.integers(-100, 100, n)})
        r2 = Relation.from_columns({
            "k2": rng.permutation(n).astype(np.int64),
            "x": rng.integers(-100, 100, n)})
        pipe = (scan(r0).rma("add", by="k0", other=scan(r1), other_by="k1")
                .rma("emu", by=("k0", "k1"), other=scan(r2), other_by="k2"))
        fused, unfused = collect_both(pipe)
        assert relations_equal(fused, unfused)

    def test_presorted_keys(self):
        # Identity alignments (everything already sorted) stay identical.
        n = 100
        vals = np.arange(n, dtype=np.int64)
        rng = np.random.default_rng(8)
        rels = [Relation.from_columns({f"k{i}": vals,
                                       "v": rng.uniform(0, 1, n)})
                for i in range(3)]
        pipe = (scan(rels[0])
                .rma("add", by="k0", other=scan(rels[1]), other_by="k1")
                .rma("sub", by=("k0", "k1"), other=scan(rels[2]),
                     other_by="k2"))
        fused, unfused = collect_both(pipe)
        assert relations_equal(fused, unfused)

    def test_wide_application_schema(self):
        rels = [chain_relation(i, cols=5) for i in range(3)]
        pipe = (scan(rels[0])
                .rma("add", by="k0", other=scan(rels[1]), other_by="k1")
                .rma("emu", by=("k0", "k1"), other=scan(rels[2]),
                     other_by="k2"))
        fused, unfused = collect_both(pipe)
        assert relations_equal(fused, unfused)

    def test_fused_result_order_cache_is_warm(self):
        rels = [chain_relation(i) for i in range(3)]
        pipe = (scan(rels[0])
                .rma("add", by="k0", other=scan(rels[1]), other_by="k1")
                .rma("sub", by=("k0", "k1"), other=scan(rels[2]),
                     other_by="k2"))
        fused = pipe.collect()
        # All aligned schemas and combined prefixes are seeded.
        for key in (("k0",), ("k1",), ("k2",), ("k0", "k1"),
                    ("k0", "k1", "k2")):
            info = fused.cached_order_info(key)
            assert info is not None, key
        seeded = fused.cached_order_info(("k0", "k1", "k2")).positions
        cold = Relation(fused.schema, fused.columns)
        fresh = cold.order_info(("k0", "k1", "k2")).positions
        assert np.array_equal(seeded, fresh)


# -- runtime fallback -----------------------------------------------------------


class TestFusionFallback:
    def test_duplicate_keys_fall_back(self):
        # k0 has duplicates: the fused alignment identity does not hold,
        # the executor must replay the chain unfused (and match it).
        rng = np.random.default_rng(9)
        n = 60
        r0 = Relation.from_columns({
            "k0": (rng.permutation(n) // 2).astype(np.int64),
            "v": rng.uniform(0, 1, n)})
        r1 = Relation.from_columns({
            "k1": rng.permutation(n).astype(np.int64),
            "w": rng.uniform(0, 1, n)})
        r2 = Relation.from_columns({
            "k2": rng.permutation(n).astype(np.int64),
            "x": rng.uniform(0, 1, n)})
        pipe = (scan(r0).rma("add", by="k0", other=scan(r1), other_by="k1")
                .rma("sub", by=("k0", "k1"), other=scan(r2), other_by="k2"))
        config = RmaConfig(validate_keys=False)
        fused = pipe.collect(config=config)
        unfused = pipe.collect(
            config=RmaConfig(validate_keys=False, fuse_elementwise=False))
        assert relations_equal(fused, unfused)

    def test_fallback_counted_in_stats(self):
        rng = np.random.default_rng(10)
        n = 40
        r0 = Relation.from_columns({
            "k0": (rng.permutation(n) // 2).astype(np.int64),
            "v": rng.uniform(0, 1, n)})
        r1 = Relation.from_columns({
            "k1": rng.permutation(n).astype(np.int64),
            "w": rng.uniform(0, 1, n)})
        r2 = Relation.from_columns({
            "k2": rng.permutation(n).astype(np.int64),
            "x": rng.uniform(0, 1, n)})
        config = RmaConfig(validate_keys=False)
        session = Session(config=config)
        session.register("r0", r0)
        session.register("r1", r1)
        session.register("r2", r2)
        session.execute(
            "SELECT * FROM SUB(ADD(r0 BY k0, r1 BY k1) BY (k0, k1), "
            "r2 BY k2)")
        assert session.last_stats.fusion_fallbacks == 1
        assert session.last_stats.fused_nodes == 0

    def test_cardinality_mismatch_raises_like_unfused(self):
        r0 = chain_relation(0, n=50)
        r1 = chain_relation(1, n=50)
        r2 = chain_relation(2, n=40)  # wrong cardinality
        pipe = (scan(r0).rma("add", by="k0", other=scan(r1), other_by="k1")
                .rma("sub", by=("k0", "k1"), other=scan(r2), other_by="k2"))
        with pytest.raises(RmaError) as fused_err:
            pipe.collect()
        with pytest.raises(RmaError) as unfused_err:
            pipe.collect(config=RmaConfig(fuse_elementwise=False))
        assert str(fused_err.value) == str(unfused_err.value)

    def test_properties_off_falls_back(self):
        from repro.bat.properties import use_properties
        rels = [chain_relation(i) for i in range(3)]
        pipe = (scan(rels[0])
                .rma("add", by="k0", other=scan(rels[1]), other_by="k1")
                .rma("sub", by=("k0", "k1"), other=scan(rels[2]),
                     other_by="k2"))
        with use_properties(False):
            off = pipe.collect(config=RmaConfig(use_properties=False))
        on = pipe.collect()
        assert relations_equal(off, on)

    def test_execute_fused_precondition_error(self):
        rels = [chain_relation(i) for i in range(2)]
        steps = (KernelStep("add", 0, 1),)
        with pytest.raises(FusionFallback):
            # Overlapping order schemas.
            execute_fused(steps, [rels[0], rels[0]], [("k0",), ("k0",)])


# -- SQL front end and EXPLAIN --------------------------------------------------


class TestSqlFusion:
    def make_session(self, **kwargs):
        session = Session(**kwargs)
        for i in range(3):
            session.register(f"r{i}", chain_relation(i))
        return session

    SQL = ("SELECT * FROM SUB(ADD(r0 BY k0, r1 BY k1) BY (k0, k1), "
           "r2 BY k2)")

    def test_sql_chain_fuses_and_matches(self):
        fused = self.make_session().execute(self.SQL)
        unfused = self.make_session(
            config=RmaConfig(fuse_elementwise=False)).execute(self.SQL)
        assert relations_equal(fused, unfused)

    def test_explain_prints_fused_node_with_member_ops(self):
        text = self.make_session().explain(self.SQL)
        assert "FusedRma [ADD -> SUB]" in text
        assert "arg1 BY (k0), arg2 BY (k1), arg3 BY (k2)" in text

    def test_explain_unfused_when_disabled(self):
        session = self.make_session(
            config=RmaConfig(fuse_elementwise=False))
        text = session.explain(self.SQL)
        assert "FusedRma" not in text
        assert "Rma ADD" in text and "Rma SUB" in text

    def test_eager_chain_matches_lazy_fused(self):
        r0, r1, r2 = (chain_relation(i) for i in range(3))
        t1 = add(r0, "k0", r1, "k1")
        t2 = sub(t1, ("k0", "k1"), r2, "k2")
        eager = smul(t2, ("k0", "k1", "k2"), 2.0)
        lazy = (scan(r0).rma("add", by="k0", other=scan(r1), other_by="k1")
                .rma("sub", by=("k0", "k1"), other=scan(r2), other_by="k2")
                .rma("smul", by=("k0", "k1", "k2"), scalar=2.0)
                .collect())
        assert relations_equal(eager, lazy)
