"""Matrix expression handles: operators, inference, fusion, bridging."""

import numpy as np
import pytest

import repro
from repro.core.ops import execute_rma
from repro.errors import OrderSchemaError, PlanError
from repro.opspec import OPS, SCALAR_OPS
from repro.relational.relation import Relation


def rel_with_key(key: str, n: int = 6, cols=("x", "y"), seed: int = 0):
    rng = np.random.default_rng(seed)
    data = {key: [f"{key}{i}" for i in rng.permutation(n)]}
    for c in cols:
        data[c] = rng.uniform(0.0, 10.0, n)
    return Relation.from_columns(data)


@pytest.fixture
def db():
    return repro.connect()


class TestMethodGeneration:
    def test_every_op_is_a_method(self, db):
        m = db.matrix(rel_with_key("k"), by="k")
        for name in list(OPS) + list(SCALAR_OPS):
            method = getattr(type(m), name)
            assert callable(method), name
            assert method.__doc__ and name in method.__doc__

    def test_docstrings_mention_operator_sugar(self, db):
        m = db.matrix(rel_with_key("k"), by="k")
        assert "a @ b" in type(m).mmu.__doc__
        assert "a.T" in type(m).tra.__doc__


class TestOrderInference:
    def test_shape_type_r1_keeps_order(self, db):
        a = db.matrix(rel_with_key("ka", cols=("x", "y")), by="ka")
        b = db.matrix(rel_with_key("kb", 2, cols=("u", "v")), by="kb")
        assert (a @ b).by == ("ka",)
        assert a.qqr().by == ("ka",)

    def test_elementwise_concatenates_orders(self, db):
        a = db.matrix(rel_with_key("ka"), by="ka")
        b = db.matrix(rel_with_key("kb", seed=1), by="kb")
        assert (a + b).by == ("ka", "kb")
        assert (a + b).app_names == ("x", "y")

    def test_column_cast_results_keyed_by_C(self, db):
        a = db.matrix(rel_with_key("ka"), by="ka")
        assert a.T.by == ("C",)
        assert a.cpd(a).by == ("C",)
        assert a.rnk().by == ("C",)
        assert a.rnk().app_names == ("rnk",)

    def test_scalar_steps_keep_order(self, db):
        a = db.matrix(rel_with_key("ka"), by="ka")
        assert (2.0 * a).by == ("ka",)
        assert (2.0 * a).app_names == ("x", "y")


class TestOperatorChain:
    def test_issue_chain_explains_fused(self, db):
        """The acceptance chain: (a @ b + smul-chain) shows a FusedRma."""
        a = db.matrix(rel_with_key("ka", cols=("x", "y", "z")), by="ka")
        b = db.matrix(rel_with_key("kb", 3, cols=("u", "v"), seed=1),
                      by="kb")
        c = db.matrix(rel_with_key("kc", seed=2), by="kc")
        d = db.matrix(rel_with_key("kd", seed=3), by="kd")
        expr = a @ b + 2.0 * c - d
        text = expr.explain()
        assert "FusedRma" in text
        assert "SMUL" in text and "ADD" in text and "SUB" in text
        result = expr.collect()
        assert db.last_stats.fused_nodes == 1
        # Bit-identical to the eager per-op chain.
        ab = execute_rma("mmu", rel_of(a), "ka", rel_of(b), "kb")
        step = execute_rma("add", ab, "ka",
                           execute_rma("smul", rel_of(c), "kc",
                                       scalar=2.0), "kc")
        eager = execute_rma("sub", step, ["ka", "kc"], rel_of(d), "kd")
        assert result.names == eager.names
        for name in result.names:
            ca, cb = result.column(name), eager.column(name)
            assert list(ca.tail) == list(cb.tail) \
                or np.array_equal(ca.tail, cb.tail, equal_nan=True)

    def test_transpose_after_chain_narrows(self, db):
        a = db.matrix(rel_with_key("ka"), by="ka")
        c = db.matrix(rel_with_key("kc", seed=2), by="kc")
        expr = (a + c).T
        text = expr.explain()
        assert "Prune" in text and "Rma TRA" in text
        out = expr.collect()
        assert out.names[0] == "C"
        assert out.nrows == 2  # the two application columns

    def test_explicit_narrow(self, db):
        a = db.matrix(rel_with_key("ka"), by="ka")
        c = db.matrix(rel_with_key("kc", seed=2), by="kc")
        chain = a + c
        assert chain.narrow().by == ("ka",)
        assert chain.narrow().app_names == ("x", "y")
        # Single-part handles narrow to themselves.
        assert a.narrow() is a

    def test_radd_rsub(self, db):
        rel = rel_with_key("k")
        m = db.matrix(rel, by="k")
        via_ops = (1.0 + m).collect()
        eager = execute_rma("sadd", rel, "k", scalar=1.0)
        assert np.array_equal(via_ops.column("x").tail,
                              eager.column("x").tail)
        swapped = (5.0 - m).collect()
        negated = execute_rma(
            "sadd", execute_rma("smul", rel, "k", scalar=-1.0), "k",
            scalar=5.0)
        assert np.array_equal(swapped.column("x").tail,
                              negated.column("x").tail)

    def test_non_numeric_operand_rejected(self, db):
        m = db.matrix(rel_with_key("k"), by="k")
        with pytest.raises(TypeError):
            m + "nope"
        with pytest.raises(PlanError):
            m.add("nope")

    def test_elementwise_overlap_raises_at_build(self, db):
        m = db.matrix(rel_with_key("k"), by="k")
        with pytest.raises(OrderSchemaError):
            m + m

    def test_tra_multi_attribute_leaf_raises(self, db):
        rel = rel_with_key("k")
        m = db.matrix(rel, by=["k", "x"])
        with pytest.raises(OrderSchemaError):
            m.T

    def test_cross_database_operands_rejected(self, db):
        m1 = db.matrix(rel_with_key("ka"), by="ka")
        m2 = repro.connect().matrix(rel_with_key("kb"), by="kb")
        with pytest.raises(PlanError):
            m1 + m2

    def test_matrix_operand_rejects_by(self, db):
        m1 = db.matrix(rel_with_key("ka"), by="ka")
        m2 = db.matrix(rel_with_key("kb"), by="kb")
        with pytest.raises(PlanError):
            m1.add(m2, by="kb")

    def test_relation_operand_requires_by(self, db):
        m1 = db.matrix(rel_with_key("ka"), by="ka")
        with pytest.raises(PlanError):
            m1.add(rel_with_key("kb"))


def rel_of(matrix) -> Relation:
    """The relation behind a leaf handle (RelScan plan node)."""
    return matrix.plan.relation


class TestSharingAndCse:
    def test_shared_handle_executes_once(self, db):
        a = db.matrix(rel_with_key("ka", cols=("x", "y")), by="ka")
        gram = a.cpd(a)
        expr = gram.inv() @ gram
        assert "shared x2" in expr.explain()
        expr.collect()
        assert db.last_stats.cse_hits + db.last_stats.cache_hits >= 1

    def test_fusion_disabled_still_identical(self, db):
        a = db.matrix(rel_with_key("ka"), by="ka")
        c = db.matrix(rel_with_key("kc", seed=2), by="kc")
        expr = 2.0 * a + c
        fused = expr.collect()
        unfused = expr.collect(fuse_elementwise=False)
        assert "FusedRma" not in expr.explain(fuse_elementwise=False)
        for name in fused.names:
            ca, cb = fused.column(name), unfused.column(name)
            assert list(ca.tail) == list(cb.tail) \
                or np.array_equal(ca.tail, cb.tail, equal_nan=True)


class TestLazyBridge:
    def test_to_lazy_filters_expression_result(self, db):
        a = db.matrix(rel_with_key("ka"), by="ka")
        c = db.matrix(rel_with_key("kc", seed=2), by="kc")
        from repro.plan.lazy import col
        out = ((a + c).to_lazy()
               .filter(col("x") >= 0.0)
               .collect())
        assert set(out.names) == {"ka", "kc", "x", "y"}

    def test_to_lazy_resolves_named_tables(self, db):
        """A Matrix over a catalog table must bridge into a frame that
        plans against the owning database's catalog."""
        rel = rel_with_key("k", n=2)  # square application part
        db.register("t", rel)
        m = db.matrix("t", by="k")
        out = m.inv().to_lazy().collect()
        eager = execute_rma("inv", rel, "k")
        assert out.names == eager.names
        assert "Scan t" in m.inv().to_lazy().explain()

    def test_to_lazy_uses_session_caches(self, db):
        rel = rel_with_key("k", n=2)
        m = db.matrix(rel, by="k")
        m.inv().collect()  # populate the session result cache
        before = db.result_cache.hits
        m.inv().to_lazy().collect()
        assert db.result_cache.hits == before + 1

    def test_to_lazy_binding_survives_chaining(self, db):
        db.register("t", rel_with_key("k", n=2))
        from repro.plan.lazy import col
        out = (db.matrix("t", by="k").inv().to_lazy()
               .filter(col("x") <= 1e9)
               .select("k", "x")
               .collect())
        assert out.names == ["k", "x"]

    def test_ordered_by_rekeys(self, db):
        rel = rel_with_key("k")
        m = db.matrix(rel, by="k")
        rekeyed = m.ordered_by(["k", "x"])
        assert rekeyed.by == ("k", "x")
        assert rekeyed.app_names == ("y",)
